"""Tuning Kamino-Tx-Dynamic's α: storage vs hit rate vs latency (§4).

The dynamic backup keeps copies of only the most frequently modified
objects in an α-sized region, trading storage for occasional
copy-on-miss in the critical path.  This example sweeps α on a skewed
(zipfian) update workload and prints the resulting hit rates, evictions,
and storage footprint — the data an operator would use to pick α for a
known working set ("if the application expects a write working set size
to be 20% of the data set then setting α to 0.2 is adequate").

Run:  python examples/dynamic_backup_tuning.py
"""

from repro.bench import format_table
from repro.heap import PersistentHeap
from repro.kvstore import KVStore
from repro.nvm import NVMDevice, PmemPool
from repro.tx import kamino_dynamic, kamino_simple
from repro.workloads import YCSBWorkload

NRECORDS = 600
NOPS = 3000
HEAP_BYTES = 1 << 20  # snug: alpha is a fraction of the provisioned heap


def run_alpha(alpha):
    device = NVMDevice(8 << 20)
    pool = PmemPool.create(device)
    engine = kamino_dynamic(alpha=alpha) if alpha < 1.0 else kamino_simple()
    heap = PersistentHeap.create(pool, engine, heap_size=HEAP_BYTES)
    kv = KVStore.create(heap, value_size=240)
    workload = YCSBWorkload("A", NRECORDS, value_size=240, seed=11)
    workload.load(kv)
    device.stats.reset()
    for op in workload.run_ops(NOPS):
        workload.execute(kv, op)
    kv.drain()
    backup = engine.backup
    storage_pct = backup.storage_bytes / heap.region.size * 100
    if alpha < 1.0:
        return storage_pct, backup.hit_rate * 100, backup.evictions
    return storage_pct, 100.0, 0


def main() -> None:
    rows = []
    for alpha in (0.05, 0.1, 0.2, 0.4, 0.8, 1.0):
        storage, hits, evictions = run_alpha(alpha)
        label = "full mirror" if alpha == 1.0 else f"dynamic a={alpha}"
        rows.append([label, storage, hits, evictions])
    print(format_table(
        "Dynamic backup tuning on zipfian YCSB-A",
        ["configuration", "backup storage %", "write hit rate %", "evictions"],
        rows,
        note="skewed writes: a small alpha already captures the hot set",
    ))


if __name__ == "__main__":
    main()
