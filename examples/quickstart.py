"""Quickstart: transactional persistent objects with Kamino-Tx.

Mirrors the paper's Figure 10 programming model (Intel NVML's
transactional API) on the simulated NVM device:

* declare persistent struct layouts,
* allocate objects inside transactions (``TX_ZALLOC``),
* declare write intents (``TX_ADD``) before modifying,
* commit by leaving the ``with`` block — or abort by raising.

Run:  python examples/quickstart.py
"""

from repro.errors import TxAborted, WriteIntentError
from repro.heap import FixedStr, Int64, PPtr, PersistentHeap, PersistentStruct
from repro.nvm import NVMDevice, PmemPool
from repro.tx import kamino_simple


# --- 1. declare persistent struct layouts (paper Figure 10) -----------------
class ObjectType1(PersistentStruct):
    fields = [("attr", FixedStr(255))]


class ObjectType2(PersistentStruct):
    fields = [("attr", Int64()), ("other", PPtr())]


def main() -> None:
    # --- 2. create a pool on simulated NVM and a Kamino-Tx heap -------------
    device = NVMDevice(16 << 20)  # 16 MiB of simulated NVM
    pool = PmemPool.create(device)
    heap = PersistentHeap.create(pool, kamino_simple(), heap_size=4 << 20)

    # --- 3. a transaction: allocate, link, and publish two objects ----------
    with heap.transaction():
        obj1 = heap.alloc(ObjectType1)  # TX_ZALLOC
        obj2 = heap.alloc(ObjectType2)
        obj1.attr = "NewValue"  # fresh allocations are writable
        obj2.attr = len(obj1.attr)
        obj2.other = obj1.oid  # persistent pointer
        heap.set_root(obj2)
    print(f"committed: obj2.attr={obj2.attr}, obj1.attr={obj1.attr!r}")

    # --- 4. updates require a declared write intent (TX_ADD) ----------------
    try:
        with heap.transaction():
            obj1.attr = "no intent declared"
    except WriteIntentError as exc:
        print(f"as in NVML, writes need TX_ADD first: {exc}")

    with heap.transaction():
        obj1.tx_add()  # TX_ADD: in Kamino-Tx this logs a 32-byte intent —
        obj1.attr = "updated in place"  # no copy of the 255-byte object!

    # --- 5. aborts roll back from the asynchronous backup -------------------
    try:
        with heap.transaction():
            obj1.tx_add()
            obj1.attr = "doomed value"
            raise TxAborted()
    except TxAborted:
        pass
    print(f"after abort: obj1.attr={obj1.attr!r}")
    assert obj1.attr == "updated in place"

    # --- 6. the backup catches up off the critical path ---------------------
    engine = heap.engine
    print(f"pending backup syncs: {engine.pending_count}")
    heap.drain()
    print(f"after drain: {engine.pending_count}; backup mirrors main: "
          f"{engine.backup.mirror_equals_main(obj1.block_offset, 64)}")

    # --- 7. reopen the pool as a restart would ------------------------------
    device.persist_all()
    heap2 = PersistentHeap.open(PmemPool.open(device), kamino_simple())
    root = heap2.root(ObjectType2)
    linked = heap2.deref(root.other, ObjectType1)
    print(f"after reopen: root.attr={root.attr}, linked.attr={linked.attr!r}")


if __name__ == "__main__":
    main()
