"""A miniature Figure 12/13: YCSB on the persistent KV store.

Loads the B+Tree-backed store, traces YCSB-A and YCSB-C under undo
logging and Kamino-Tx-Simple, and replays the traces with four simulated
clients — the same pipeline the full benchmarks use, at toy scale.

Run:  python examples/kvstore_ycsb.py
"""

from repro.bench import format_table, replay, trace_ycsb

ENGINES = ["undo", "kamino-simple"]
WORKLOADS = ["A", "C"]


def main() -> None:
    rows = []
    for workload in WORKLOADS:
        for engine in ENGINES:
            records = trace_ycsb(
                engine, workload, nrecords=400, nops=800, value_size=1008
            )
            result = replay(records, nthreads=4, engine_name=engine, workload=workload)
            rows.append([
                f"YCSB-{workload}",
                engine,
                result.throughput_kops,
                result.mean_latency_us,
                result.percentile_latency_us(99),
            ])
    print(format_table(
        "YCSB on the persistent KV store (4 simulated clients)",
        ["workload", "engine", "K ops/s", "mean us", "p99 us"],
        rows,
        note="A: 50% updates -- kamino wins; C: 100% reads -- parity",
    ))


if __name__ == "__main__":
    main()
