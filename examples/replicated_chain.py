"""Kamino-Tx-Chain: replicated in-place updates surviving failures (§5).

Builds a 4-replica Kamino chain (f=2), runs writes through it, then
exercises the recovery protocols: a quick replica reboot repaired from a
neighbour (Figure 9), a fail-stop of the head with successor promotion,
and a new replica joining at the tail.

Run:  python examples/replicated_chain.py
"""

import statistics as st

from repro.nvm import CrashPolicy
from repro.replication import (
    KAMINO,
    TRADITIONAL,
    ChainCluster,
    fail_stop,
    join_new_replica,
    quick_reboot,
    run_clients,
)
from repro.workloads import Op, UPDATE


def write_ops(lo, hi, tag):
    return [Op(UPDATE, k, bytes([tag]) * 16) for k in range(lo, hi)]


def main() -> None:
    print("building a Kamino-Tx chain tolerating f=2 failures (4 replicas)")
    cluster = ChainCluster(f=2, mode=KAMINO, heap_mb=4, value_size=128)
    print("chain:", " -> ".join(f"{n.node_id}({n.role})" for n in cluster.chain))
    print(f"cluster storage: {cluster.total_storage_bytes >> 20} MiB "
          f"(f+2 heaps + one head backup; a naive per-replica mirror would "
          f"need {2 * sum(n.heap.region.size for n in cluster.chain) >> 20} MiB)\n")

    run_clients(cluster, [write_ops(0, 40, tag=1)])
    cluster.assert_replicas_consistent()
    print(f"40 writes committed chain-wide; mean latency "
          f"{st.mean(cluster.write_latencies_ns) / 1e3:.1f} us")

    # --- quick reboot of a middle replica (Figure 9) -------------------------
    print("\nquick-rebooting replica r2 with torn state ...")
    repaired = quick_reboot(cluster, 2, CrashPolicy.RANDOM)
    cluster.assert_replicas_consistent()
    print(f"r2 rolled forward {repaired} bytes from its predecessor; "
          f"replicas consistent again")

    # --- head fail-stop: the successor takes over ----------------------------
    print("\nfail-stopping the head ...")
    fail_stop(cluster, 0)
    print("new chain:", " -> ".join(f"{n.node_id}({n.role})" for n in cluster.chain))
    run_clients(cluster, [write_ops(0, 20, tag=2)])
    cluster.assert_replicas_consistent()
    print("new head (with freshly built backup) serves writes; consistent")

    # --- a new replica joins at the tail -------------------------------------
    print("\njoining a replacement replica at the tail ...")
    node = join_new_replica(cluster)
    cluster.assert_replicas_consistent()
    print("chain:", " -> ".join(f"{n.node_id}({n.role})" for n in cluster.chain))
    run_clients(cluster, [write_ops(20, 40, tag=3)])
    cluster.assert_replicas_consistent()
    print("writes flow through the repaired chain; all replicas agree")

    # --- compare against traditional chain replication ------------------------
    print("\nlatency comparison vs traditional chain (f=2, 1 KB values):")
    for mode in (TRADITIONAL, KAMINO):
        c = ChainCluster(f=2, mode=mode, heap_mb=16, value_size=1024)
        # preload, then measure in-place updates (inserts are dominated
        # by allocator work on both schemes)
        run_clients(c, [[Op(UPDATE, k, b"\x01" * 64) for k in range(400)]])
        c.write_latencies_ns.clear()
        streams = [
            [Op(UPDATE, 100 * cl + k, bytes([k % 255 + 1]) * 64) for k in range(40)]
            for cl in range(4)
        ]
        run_clients(c, streams)
        print(f"  {mode:12s}: {st.mean(c.write_latencies_ns) / 1e3:6.1f} us/write "
              f"({len(c.chain)} replicas, 4 pipelined clients)")


if __name__ == "__main__":
    main()
