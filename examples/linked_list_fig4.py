"""Figure 4's running example: a persistent doubly-linked list.

The paper illustrates Kamino-Tx with the four transaction shapes of a
sorted doubly-linked list (TxInsert / TxDelete / TxLookup / TxUpdate).
This example builds the list on each engine, runs the same operations,
and shows what each scheme moved in the transaction's critical path.

Run:  python examples/linked_list_fig4.py
"""

from repro.heap import PersistentHeap
from repro.kvstore import PersistentList
from repro.nvm import NVMDevice, PmemPool
from repro.tx import UndoLogEngine, kamino_simple


def demo(engine_factory, label: str) -> None:
    device = NVMDevice(16 << 20)
    pool = PmemPool.create(device)
    heap = PersistentHeap.create(pool, engine_factory(), heap_size=4 << 20)
    plist = PersistentList.create(heap)

    # build: 1 <-> 3 <-> 5 <-> 7
    for key in (5, 1, 7, 3):
        plist.insert(key, float(key))
    heap.drain()
    plist.check_invariants()

    # TxInsert splices node 4 between 3 and 5: a four-object transaction
    # (new node, prev, current, list root) — measure the critical path
    before = device.stats.snapshot()
    plist.insert(4, 4.0)
    crit = device.stats.delta(before)
    heap.drain()
    print(f"{label:>14}: TxInsert(4) copied {crit.copy_bytes:4d} bytes in the "
          f"critical path ({crit.flushes} flushes)")

    # TxUpdate / TxLookup / TxDelete round out Figure 4
    plist.update(4, 44.0)
    assert plist.lookup(4) == 44.0
    plist.delete(4)
    heap.drain()
    plist.check_invariants()
    assert plist.keys() == [1, 3, 5, 7]


def main() -> None:
    print("Figure 4: the same linked-list transactions under each scheme\n")
    demo(UndoLogEngine, "undo-logging")
    demo(kamino_simple, "kamino-tx")
    print("\nKamino-Tx's critical path copies nothing: the backup absorbs the")
    print("changes asynchronously after commit (run with drain() above).")


if __name__ == "__main__":
    main()
