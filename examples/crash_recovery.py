"""Crash-recovery tour: power-fail the device mid-transaction, recover.

Shows the failure window the paper's protocols close: a transaction is
interrupted by a power failure with *random per-8-byte-word survival*
of unflushed cache lines (the adversarial torn-write case), and recovery
restores a consistent heap — rolling back from the undo log or from the
Kamino backup, and rolling forward committed-but-unsynced transactions.

Run:  python examples/crash_recovery.py
"""

from repro.errors import DeviceCrashedError
from repro.heap import FixedStr, Int64, PersistentHeap, PersistentStruct
from repro.nvm import CrashPolicy, NVMDevice, PmemPool
from repro.tx import UndoLogEngine, kamino_simple, reopen_after_crash, verify_backup_consistency


class Account(PersistentStruct):
    fields = [("owner", FixedStr(24)), ("balance", Int64())]


def scenario(engine_factory, label: str) -> None:
    print(f"--- {label} " + "-" * (50 - len(label)))
    device = NVMDevice(16 << 20, seed=42)
    pool = PmemPool.create(device)
    heap = PersistentHeap.create(pool, engine_factory(), heap_size=4 << 20)

    with heap.transaction():
        alice = heap.alloc(Account)
        bob = heap.alloc(Account)
        alice.owner, alice.balance = "alice", 100
        bob.owner, bob.balance = "bob", 50
        heap.set_root(alice)
    heap.drain()
    bob_oid = bob.oid

    # a transfer transaction dies mid-flight: both writes issued, then a
    # scheduled power failure fires inside the engine's machinery
    device.schedule_crash(after_ops=8, policy=CrashPolicy.RANDOM, survival_prob=0.5)
    try:
        with heap.transaction():
            alice.tx_add()
            bob.tx_add()
            alice.balance = alice.balance - 30
            bob.balance = bob.balance + 30
        heap.drain()
        print("transfer committed before the fail-point fired")
    except DeviceCrashedError:
        print("power failed mid-transfer (unflushed words randomly torn)")
    device.cancel_scheduled_crash()
    if not device.crashed:
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)

    heap2, engine2, report = reopen_after_crash(device, engine_factory)
    alice2 = heap2.root(Account)
    bob2 = heap2.deref(bob_oid, Account)
    total = alice2.balance + bob2.balance
    print(f"recovery: {report}")
    print(f"after recovery: alice={alice2.balance}, bob={bob2.balance}, "
          f"total={total} (atomic: {'OK' if total == 150 else 'BROKEN'})")
    assert total == 150, "money was created or destroyed!"
    if hasattr(engine2, "backup"):
        verify_backup_consistency(heap2)
        print("backup verified consistent with the main heap")
    print()


def main() -> None:
    scenario(UndoLogEngine, "undo logging (NVML baseline)")
    scenario(kamino_simple, "Kamino-Tx-Simple")


if __name__ == "__main__":
    main()
