"""TPC-C-lite on the persistent KV store, with an invariant audit.

Runs the standard 45/43/4/4/4 transaction mix against two engines and
verifies TPC-C's money-conservation invariant afterwards (every payment
adds the same amount to the warehouse YTD and its district's YTD inside
one atomic transaction, so the totals must always agree).

Run:  python examples/tpcc_demo.py
"""

import time

from repro.bench import format_table
from repro.heap import PersistentHeap
from repro.kvstore import KVStore
from repro.nvm import NVMDevice, PmemPool
from repro.tx import UndoLogEngine, kamino_simple
from repro.workloads import TPCCLite
from repro.workloads.tpcc import _DISTRICT, _WAREHOUSE, _unpack, k_district, k_warehouse


def audit_money(kv, tpcc) -> float:
    """Return total YTD and assert warehouse == sum(districts)."""
    total = 0.0
    for w in range(tpcc.warehouses):
        (w_ytd,) = _unpack(_WAREHOUSE, kv.get(k_warehouse(w)))
        d_sum = sum(
            _unpack(_DISTRICT, kv.get(k_district(w, d)))[1]
            for d in range(tpcc.districts)
        )
        assert abs(w_ytd - d_sum) < 1e-6, "money conservation violated!"
        total += w_ytd
    return total


def run_engine(factory, label: str, ntx: int = 300):
    device = NVMDevice(96 << 20)
    pool = PmemPool.create(device)
    heap = PersistentHeap.create(pool, factory(), heap_size=32 << 20)
    kv = KVStore.create(heap, value_size=64)
    tpcc = TPCCLite(warehouses=2, districts=4, customers=30, items=100, seed=1)
    tpcc.load(kv)
    device.stats.reset()
    wall = time.time()
    stats = tpcc.run(kv, ntx)
    wall = time.time() - wall
    sim_us = device.stats.simulated_ns(device.model) / 1e3
    total = audit_money(kv, tpcc)
    kv.tree.check_invariants()
    return [
        label,
        stats.new_orders,
        stats.payments,
        stats.deliveries,
        sim_us / ntx,
        total,
    ]


def main() -> None:
    rows = [
        run_engine(UndoLogEngine, "undo-logging"),
        run_engine(kamino_simple, "kamino-tx"),
    ]
    print(format_table(
        "TPC-C-lite: 300 transactions, standard mix",
        ["engine", "new-orders", "payments", "deliveries", "sim us/tx", "total YTD $"],
        rows,
        note="money conservation audited after the run (warehouse == sum of districts)",
    ))


if __name__ == "__main__":
    main()
