"""TPC-C under power failures: application-level invariants survive.

TPC-C's payment profile adds the same amount to the warehouse YTD and
the district YTD inside one transaction, so at any quiescent point:

    warehouse.ytd == sum(district.ytd over its districts)

A crash that tore a payment in half would break the equality — this test
crashes the device at arbitrary operations inside a TPC-C mix and checks
the invariant after recovery, for both the baseline and Kamino engines.
"""

import pytest

from repro.errors import DeviceCrashedError
from repro.kvstore import KVStore
from repro.nvm import CrashPolicy
from repro.tx import UndoLogEngine, kamino_simple, reopen_after_crash, verify_backup_consistency
from repro.workloads import TPCCLite
from repro.workloads.tpcc import _DISTRICT, _WAREHOUSE, _unpack, k_district, k_warehouse

from ..conftest import build_heap

ENGINES = {"undo": UndoLogEngine, "kamino-simple": kamino_simple}


def money_invariant(kv, tpcc):
    """warehouse YTD must equal the sum of its districts' YTD."""
    for w in range(tpcc.warehouses):
        (w_ytd,) = _unpack(_WAREHOUSE, kv.get(k_warehouse(w)))
        d_total = 0.0
        for d in range(tpcc.districts):
            _next_o, d_ytd = _unpack(_DISTRICT, kv.get(k_district(w, d)))
            d_total += d_ytd
        assert abs(w_ytd - d_total) < 1e-6, (
            f"warehouse {w}: ytd {w_ytd} != district sum {d_total}"
        )


@pytest.mark.parametrize("name", sorted(ENGINES))
@pytest.mark.parametrize("crash_after", [40, 150, 600])
def test_tpcc_money_conserved_across_crash(name, crash_after):
    factory = ENGINES[name]
    heap, engine, device = build_heap(factory, pool_size=64 << 20, heap_size=24 << 20)
    kv = KVStore.create(heap, value_size=64)
    tpcc = TPCCLite(warehouses=1, districts=3, customers=10, items=40, seed=9)
    tpcc.load(kv)

    # run payments (the invariant-bearing profile) with a fail-point armed
    device.schedule_crash(crash_after, CrashPolicy.RANDOM, survival_prob=0.5)
    try:
        for _ in range(25):
            tpcc.do_payment(kv)
        kv.drain()
    except DeviceCrashedError:
        pass
    device.cancel_scheduled_crash()
    if not device.crashed:
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)

    heap2, engine2, _report = reopen_after_crash(device, factory)
    kv2 = KVStore.open(heap2)
    money_invariant(kv2, tpcc)
    kv2.tree.check_invariants()
    if hasattr(engine2, "backup"):
        verify_backup_consistency(heap2)
    # the store remains fully usable
    tpcc2 = TPCCLite(warehouses=1, districts=3, customers=10, items=40, seed=10)
    for _ in range(5):
        tpcc2.do_payment(kv2)
    kv2.drain()
    money_invariant(kv2, tpcc2)


@pytest.mark.parametrize("name", sorted(ENGINES))
def test_tpcc_new_order_atomic_across_crash(name):
    """A torn new-order would leave order rows without their lines (or
    a bumped district counter without the order); recovery must leave
    every visible order complete."""
    from repro.workloads.tpcc import _ORDER, k_order, k_order_line

    factory = ENGINES[name]
    heap, engine, device = build_heap(factory, pool_size=64 << 20, heap_size=24 << 20)
    kv = KVStore.create(heap, value_size=64)
    tpcc = TPCCLite(warehouses=1, districts=2, customers=8, items=40, seed=4)
    tpcc.load(kv)
    device.schedule_crash(300, CrashPolicy.RANDOM, survival_prob=0.5)
    try:
        for _ in range(15):
            tpcc.do_new_order(kv)
        kv.drain()
    except DeviceCrashedError:
        pass
    device.cancel_scheduled_crash()
    if not device.crashed:
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
    heap2, _, _ = reopen_after_crash(device, factory)
    kv2 = KVStore.open(heap2)
    # every order row visible after recovery has all of its lines
    for w in range(1):
        for d in range(2):
            next_o, _ = _unpack(_DISTRICT, kv2.get(k_district(w, d)))
            for o in range(1, next_o):
                row = kv2.get(k_order(w, d, o))
                assert row is not None, f"district counter at {next_o} but order {o} missing"
                _c, ol_cnt, _carrier, _ad = _unpack(_ORDER, row)
                for ln in range(ol_cnt):
                    assert kv2.get(k_order_line(w, d, o, ln)) is not None, (
                        f"order ({d},{o}) missing line {ln}"
                    )
