"""Exhaustive crash sweep: power-fail at EVERY device operation.

Where the hypothesis suite samples crash points, this test enumerates
them: a small fixed workload is run once to count its device operations,
then re-run once per operation index with a power failure scheduled
exactly there.  After each crash, recovery must produce an all-or-nothing
view of every transaction.  This is the strongest single statement the
repository makes about the engines' correctness.
"""

import pytest

from repro.errors import DeviceCrashedError
from repro.nvm import CrashPolicy
from repro.tx import (
    CoWEngine,
    UndoLogEngine,
    kamino_dynamic,
    kamino_simple,
    reopen_after_crash,
    verify_backup_consistency,
)

from ..conftest import Pair, build_heap

ENGINES = {
    "undo": UndoLogEngine,
    "cow": CoWEngine,
    "kamino-simple": kamino_simple,
    "kamino-dynamic": lambda: kamino_dynamic(alpha=0.5),
}

#: per-transaction updates: (object index, value); each tx is atomic
TXS = [
    [(0, 11), (1, 12)],
    [(2, 21)],
    [(0, 31), (2, 32), (3, 33)],
    [(1, 41)],
]
N_OBJECTS = 4


def _run_workload(heap, objs):
    for writes in TXS:
        with heap.transaction():
            for idx, val in writes:
                objs[idx].tx_add()
                objs[idx].key = val
                objs[idx].value = f"v{val}"
        heap.engine.sync_pending()


def _setup(factory, seed):
    heap, engine, device = build_heap(factory, seed=seed)
    with heap.transaction():
        objs = [heap.alloc(Pair) for _ in range(N_OBJECTS)]
        for i, o in enumerate(objs):
            o.key = i
            o.value = f"v{i}"
        heap.set_root(objs[0])
    heap.drain()
    return heap, engine, device, objs


def _count_ops(factory):
    heap, _, device, objs = _setup(factory, seed=0)
    device.schedule_crash(10**6)
    _run_workload(heap, objs)
    remaining = device._crash_countdown
    device.cancel_scheduled_crash()
    return 10**6 - remaining


def _valid_states():
    """Every prefix of the transaction sequence, plus one-extra states.

    Transactions run sequentially, so the observable state after a crash
    is 'first k transactions applied' for some k (a crash inside tx k+1
    either rolls back or — if past its commit record — rolls forward).
    """
    states = []
    model = {i: i for i in range(N_OBJECTS)}
    states.append(dict(model))
    for writes in TXS:
        for idx, val in writes:
            model[idx] = val
        states.append(dict(model))
    return states


@pytest.mark.parametrize("name", sorted(ENGINES))
def test_crash_at_every_operation(name):
    factory = ENGINES[name]
    nops = _count_ops(factory)
    assert 50 < nops < 3000, f"workload footprint changed unexpectedly: {nops}"
    valid = _valid_states()
    # sweep every 3rd op with DROP_ALL, plus a RANDOM pass on a stride,
    # to keep the runtime reasonable while covering each phase
    points = list(range(0, nops, 3))
    for point in points:
        heap, engine, device, objs = _setup(factory, seed=point)
        oids = [o.oid for o in objs]
        device.schedule_crash(point, CrashPolicy.DROP_ALL)
        try:
            _run_workload(heap, objs)
            heap.drain()
        except DeviceCrashedError:
            pass
        device.cancel_scheduled_crash()
        if not device.crashed:
            device.crash(CrashPolicy.DROP_ALL)
        heap2, engine2, _ = reopen_after_crash(device, factory)
        observed = {i: heap2.deref(oid, Pair).key for i, oid in enumerate(oids)}
        assert observed in valid, (
            f"{name}: crash at op {point} exposed invalid state {observed}"
        )
        for i, oid in enumerate(oids):
            o = heap2.deref(oid, Pair)
            assert o.value == f"v{o.key}", (
                f"{name}: crash at op {point}: object {i} torn inside"
            )
        if hasattr(engine2, "backup"):
            verify_backup_consistency(heap2)


@pytest.mark.parametrize("name", sorted(ENGINES))
def test_crash_at_every_operation_with_torn_words(name):
    """A sparser sweep under adversarial RANDOM word survival."""
    factory = ENGINES[name]
    nops = _count_ops(factory)
    valid = _valid_states()
    for point in range(0, nops, 17):
        heap, engine, device, objs = _setup(factory, seed=1000 + point)
        oids = [o.oid for o in objs]
        device.schedule_crash(point, CrashPolicy.RANDOM, survival_prob=0.5)
        try:
            _run_workload(heap, objs)
            heap.drain()
        except DeviceCrashedError:
            pass
        device.cancel_scheduled_crash()
        if not device.crashed:
            device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
        heap2, engine2, _ = reopen_after_crash(device, factory)
        observed = {i: heap2.deref(oid, Pair).key for i, oid in enumerate(oids)}
        assert observed in valid, (
            f"{name}: torn crash at op {point} exposed invalid state {observed}"
        )
