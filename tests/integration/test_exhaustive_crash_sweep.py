"""Exhaustive crash sweep: power-fail at EVERY device operation.

Where the hypothesis suite samples crash points, this test enumerates
them — via :class:`repro.check.CrashExplorer`, which replays the canned
``pairs`` workload (the same transaction script the hand-rolled version
of this test used) with a power failure scheduled at every mutating
device operation and judges each recovered heap against the committed-
transaction ledger, the workload's structure validators, and (for backup
engines) main/backup agreement.  This is the strongest single statement
the repository makes about the engines' correctness.

The engine list comes from the runtime registry: a newly registered
recoverable engine is swept automatically, with no edit here.
"""

import pytest

from repro.check import CrashExplorer
from repro.runtime.registry import registered_engines

ENGINES = sorted(
    name
    for name, info in registered_engines().items()
    if info.capabilities.recoverable and not info.capabilities.needs_chain_repair
)


def test_registry_supplies_engines():
    assert set(ENGINES) >= {"undo", "cow", "kamino-simple", "kamino-dynamic"}


@pytest.mark.parametrize("name", ENGINES)
def test_crash_at_every_operation(name):
    """Exhaustive DROP_ALL enumeration of every crash point."""
    explorer = CrashExplorer(name, workload="pairs")
    report = explorer.explore(max_points=None, random_samples=0, nested=False)
    assert 50 < report.n_ops < 3000, (
        f"workload footprint changed unexpectedly: {report.n_ops}"
    )
    # every point is either a novel crash state or pruned as a duplicate
    assert report.states_explored + report.states_pruned == report.n_ops
    assert report.ok, "\n".join(str(f) for f in report.failures)


@pytest.mark.parametrize("name", ENGINES)
def test_crash_at_every_operation_with_torn_words(name):
    """A sampled sweep under adversarial RANDOM word survival."""
    explorer = CrashExplorer(name, workload="pairs")
    report = explorer.explore(max_points=24, random_samples=2, nested=False)
    assert report.states_explored > 24  # DROP_ALL probes plus RANDOM lotteries
    assert report.ok, "\n".join(str(f) for f in report.failures)
