"""Real-thread integration: workers + background syncer, live.

The benchmarks run engines under the deterministic simulator; these
tests instead drive them with genuine ``threading`` concurrency — worker
threads issuing transactions while a :class:`BackupSyncer` drains the
Kamino queue in the background — to show the locking protocol is not
simulator-only.
"""

import threading

import pytest

from repro.kvstore import KVStore
from repro.tx import BackupSyncer, UndoLogEngine, kamino_simple, verify_backup_consistency

from ..conftest import Pair, build_heap


class TestThreadedKamino:
    def test_workers_with_background_syncer(self):
        heap, engine, _ = build_heap(
            lambda: kamino_simple(n_slots=128), pool_size=32 << 20, heap_size=8 << 20
        )
        nworkers, nobjs, rounds = 4, 16, 30
        with heap.transaction():
            objs = [heap.alloc(Pair) for _ in range(nobjs)]
        heap.drain()
        errors = []

        def worker(wid: int) -> None:
            try:
                for r in range(rounds):
                    o = objs[(wid + r * nworkers) % nobjs]
                    with heap.transaction():
                        o.tx_add()
                        o.key = o.key + 1
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        with BackupSyncer(engine):
            threads = [threading.Thread(target=worker, args=(w,)) for w in range(nworkers)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert not errors, errors
        heap.drain()
        total = sum(o.key for o in objs)
        assert total == nworkers * rounds
        verify_backup_consistency(heap)

    def test_disjoint_keys_full_parallelism(self):
        heap, engine, _ = build_heap(
            lambda: kamino_simple(n_slots=128), pool_size=32 << 20, heap_size=8 << 20
        )
        with heap.transaction():
            objs = [heap.alloc(Pair) for _ in range(4)]
        heap.drain()
        done = []

        def worker(wid: int) -> None:
            for _ in range(50):
                with heap.transaction():
                    objs[wid].tx_add()
                    objs[wid].key = objs[wid].key + 1
            done.append(wid)

        with BackupSyncer(engine):
            threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert sorted(done) == [0, 1, 2, 3]
        heap.drain()
        assert all(o.key == 50 for o in objs)
        verify_backup_consistency(heap)

    def test_hot_key_contention_serializes_correctly(self):
        heap, engine, _ = build_heap(
            lambda: kamino_simple(n_slots=128), pool_size=32 << 20, heap_size=8 << 20
        )
        with heap.transaction():
            hot = heap.alloc(Pair)
        heap.drain()

        def worker() -> None:
            for _ in range(25):
                with heap.transaction():
                    hot.tx_add()
                    hot.key = hot.key + 1

        with BackupSyncer(engine):
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        heap.drain()
        assert hot.key == 100  # every increment survived, none lost
        verify_backup_consistency(heap)


class TestThreadedKVStore:
    @pytest.mark.parametrize("factory", [UndoLogEngine, kamino_simple])
    def test_concurrent_disjoint_ranges(self, factory):
        heap, engine, _ = build_heap(
            lambda: factory(n_slots=128), pool_size=64 << 20, heap_size=24 << 20
        )
        kv = KVStore.create(heap, value_size=64)
        # preload so worker puts are in-place updates (no allocator races
        # on shared bitmap words between different key ranges)
        for k in range(4 * 40):
            kv.put(k, b"\x00")
        kv.drain()
        errors = []

        def worker(wid: int) -> None:
            try:
                base = wid * 40
                for i in range(40):
                    kv.put(base + i, bytes([wid + 1]) * 32)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        syncer = BackupSyncer(engine) if hasattr(engine, "backup") else None
        if syncer:
            syncer.start()
        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        if syncer:
            syncer.stop()
        assert not errors, errors
        kv.drain()
        kv.tree.check_invariants()
        for wid in range(4):
            for i in range(40):
                assert kv.get(wid * 40 + i)[:32] == bytes([wid + 1]) * 32
