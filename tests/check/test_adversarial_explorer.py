"""CrashExplorer adversarial mode: consistent stale-CRC replays on top
of bit rot.  Tree-protected sweeps stay clean (including nested recovery
crashes); checksum-only sweeps fail with a minimized, replayable repro —
the demonstration that per-line checksums cannot close this class."""

import pytest

from repro.check import CrashExplorer
from repro.check.minimize import minimize_failure, repro_snippet


class TestTreeProtectedSweep:
    def test_tree_sweep_stays_clean(self):
        explorer = CrashExplorer("kamino-simple")
        report = explorer.explore(
            max_points=6, media="protected", corrupt_lines=1,
            tree="streamed", stale_lines=2,
        )
        assert report.ok, "\n".join(str(f) for f in report.failures)

    @pytest.mark.media
    def test_tree_sweep_with_nested_recovery_crashes(self):
        explorer = CrashExplorer("kamino-simple")
        report = explorer.explore(
            max_points=6, media="protected", corrupt_lines=1,
            tree="streamed", stale_lines=2,
            nested=True, max_nested_points=2, random_samples=1,
        )
        assert report.ok, "\n".join(str(f) for f in report.failures)

    def test_eager_tree_sweep_stays_clean(self):
        explorer = CrashExplorer("kamino-simple")
        report = explorer.explore(
            max_points=4, media="protected", corrupt_lines=0,
            tree="eager", stale_lines=2,
        )
        assert report.ok, "\n".join(str(f) for f in report.failures)

    def test_stale_knob_inert_without_media(self):
        explorer = CrashExplorer("kamino-simple")
        report = explorer.explore(max_points=4, media="off", stale_lines=5)
        assert report.ok
        assert all(s == 0 for s in [f.scenario.stale_lines
                                    for f in report.failures] or [0])


class TestChecksumOnlySweepFails:
    def _failing_report(self):
        explorer = CrashExplorer("kamino-simple")
        return explorer.explore(
            max_points=6, media="protected", corrupt_lines=0,
            tree="off", stale_lines=2, nested=False, random_samples=0,
        )

    def test_checksum_only_misses_stale_replays(self):
        report = self._failing_report()
        assert not report.ok, (
            "per-line checksums unexpectedly caught a consistent replay"
        )

    def test_minimize_keeps_the_stale_knob(self):
        report = self._failing_report()
        small = minimize_failure(report.failures[0])
        assert small.scenario.media == "protected"
        assert 1 <= small.scenario.stale_lines <= 2
        assert small.scenario.corrupt_lines == 0

    def test_snippet_replays_the_stale_failure(self):
        report = self._failing_report()
        small = minimize_failure(report.failures[0])
        snippet = repro_snippet(small)
        assert "stale_lines=" in snippet
        explorer = CrashExplorer(small.scenario.engine)
        refailure, _fp = explorer.replay(small.scenario)
        assert refailure is not None

    def test_replay_is_deterministic(self):
        report = self._failing_report()
        scenario = report.failures[0].scenario
        explorer = CrashExplorer(scenario.engine)
        a, _ = explorer.replay(scenario)
        b, _ = explorer.replay(scenario)
        assert a is not None and b is not None
        assert a.violation.kind == b.violation.kind


@pytest.mark.media
class TestMirrorEngines:
    """kamino engines repair replayed main lines from the backup mirror
    (tree-verified donor); a consistent pair replay degrades typed."""

    @pytest.mark.parametrize("engine", ["kamino-dynamic", "cow", "undo"])
    def test_registry_engines_pass_adversarial_sweep(self, engine):
        explorer = CrashExplorer(engine)
        report = explorer.explore(
            max_points=4, media="protected", corrupt_lines=1,
            tree="streamed", stale_lines=2, nested=False,
        )
        assert report.ok, "\n".join(str(f) for f in report.failures)
