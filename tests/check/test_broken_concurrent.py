"""Acceptance: broken variants of the concurrent engines are caught.

One deliberately-miswired fixture per new engine, mirroring
``test_broken_engine.py``:

* **kamino-finegrained** — backup rolled forward *before* the commit
  record is durable.  A crash in the window leaves a RUNNING slot whose
  rollback source already holds new values; "rollback" then produces a
  mix of old and new data.
* **nvtraverse** — the destination stores applied to the main heap
  *before* the intent batch is durable (fence 1 reordered after the
  in-place edits).  A crash in the window leaves modified main bytes
  with a FREE-looking slot, so recovery has nothing to roll back and
  the torn state survives.

In both cases CrashExplorer must find the violation, the minimizer must
shrink it, the minimized scenario must still reproduce on the broken
factory, and the *correct* engine must pass the identical scenario.
"""

from repro.check import CrashExplorer, minimize_failure, replay_scenario, repro_snippet
from repro.tx.base import IntentKind
from repro.tx.finegrained import FineGrainedKaminoEngine
from repro.tx.nvtraverse import NVTraverseEngine


class PrematureBackupSync(FineGrainedKaminoEngine):
    """Broken on purpose: backup absorbs dirty data pre-commit-record."""

    def commit(self, tx):
        for offset, size, kind in tx.intents:
            if kind is IntentKind.WRITE:
                self.backup.absorb(offset, size)
        super().commit(tx)


def broken_finegrained():
    engine = PrematureBackupSync(alpha=0.5, stripes=4)
    engine.name = "kamino-finegrained"
    return engine


class DestinationBeforeIntents(NVTraverseEngine):
    """Broken on purpose: destination stores land before the intent
    batch is durable — the exact reordering fence 1 exists to prevent."""

    def commit(self, tx):
        if tx.intents:
            shadows = self._shadows(tx)
            region = self.heap_region
            for offset, size, kind in tx.intents:
                if kind is IntentKind.FREE:
                    continue
                shadow = shadows.get(offset)
                if shadow is not None:
                    # eagerly persisted, one range at a time: a crash
                    # mid-loop leaves a durable torn prefix with no
                    # durable intent record to roll it back
                    region.write(offset, bytes(shadow.buf))
                    region.flush(offset, size)
            region.pool.device.fence()
        super().commit(tx)


def broken_nvtraverse():
    engine = DestinationBeforeIntents()
    engine.name = "nvtraverse"
    return engine


def test_broken_finegrained_is_caught_with_minimized_repro():
    explorer = CrashExplorer("kamino-finegrained", engine_factory=broken_finegrained)
    report = explorer.explore(max_points=None, random_samples=0, nested=False)
    assert not report.ok, "the checker missed a premature backup sync"

    failure = report.failures[0]
    minimized = minimize_failure(failure, engine_factory=broken_finegrained)
    assert minimized.scenario.crash_after <= failure.scenario.crash_after

    # still reproduces on the broken engine...
    assert (
        replay_scenario(minimized.scenario, engine_factory=broken_finegrained)
        is not None
    )
    # ...and the correct engine passes the very same scenario
    assert replay_scenario(minimized.scenario) is None

    snippet = repro_snippet(minimized)
    assert "replay_scenario(Scenario(" in snippet
    assert f"crash_after={minimized.scenario.crash_after}" in snippet
    assert "kamino-finegrained" in snippet


def test_broken_nvtraverse_is_caught_with_minimized_repro():
    explorer = CrashExplorer("nvtraverse", engine_factory=broken_nvtraverse)
    report = explorer.explore(max_points=None, random_samples=0, nested=False)
    assert not report.ok, "the checker missed destination stores before fence 1"

    failure = report.failures[0]
    minimized = minimize_failure(failure, engine_factory=broken_nvtraverse)
    assert minimized.scenario.crash_after <= failure.scenario.crash_after

    assert (
        replay_scenario(minimized.scenario, engine_factory=broken_nvtraverse)
        is not None
    )
    assert replay_scenario(minimized.scenario) is None

    snippet = repro_snippet(minimized)
    assert "nvtraverse" in snippet
