"""CrashExplorer unit tests: counting, sampling, replay, registry sweep."""

import pytest

from repro.check import CrashExplorer, PairsWorkload, Scenario, replay_scenario, sweep_registry
from repro.check.explorer import _sample_points
from repro.nvm import CrashPolicy
from repro.runtime.registry import registered_engines


class TestSamplePoints:
    def test_exhaustive_when_under_limit(self):
        assert _sample_points(0, 4, None) == [0, 1, 2, 3, 4]
        assert _sample_points(0, 4, 10) == [0, 1, 2, 3, 4]

    def test_sample_hits_both_ends(self):
        points = _sample_points(0, 99, 5)
        assert points[0] == 0 and points[-1] == 99
        assert len(points) == 5

    def test_degenerate_ranges(self):
        assert _sample_points(3, 2, None) == []
        assert _sample_points(0, 50, 1) == [0]
        assert _sample_points(7, 7, None) == [7]


class TestCounting:
    def test_count_ops_excludes_setup_and_is_deterministic(self):
        explorer = CrashExplorer("undo")
        n = explorer.count_ops()
        assert 0 < n < 10_000
        assert explorer.count_ops() == n

    def test_golden_ledger_records_every_step(self):
        explorer = CrashExplorer("undo")
        ledger = explorer.golden_ledger()
        workload = PairsWorkload()
        assert ledger.n_steps == workload.n_steps
        # S_0 is the setup state: object i holds key i
        assert ledger.states[0] == {i: i for i in range(workload.n_objects)}
        # the final state reflects the whole default script
        assert ledger.states[-1] == {0: 31, 1: 41, 2: 32, 3: 33}


class TestReplay:
    def test_point_beyond_workload_checks_nothing(self):
        explorer = CrashExplorer("undo")
        failure, fingerprint = explorer.replay(
            Scenario(engine="undo", crash_after=10**6)
        )
        assert failure is None and fingerprint is None

    def test_good_engine_point_passes(self):
        failure = replay_scenario(
            Scenario(engine="undo", crash_after=5, policy=CrashPolicy.DROP_ALL)
        )
        assert failure is None

    def test_custom_transaction_script(self):
        failure = replay_scenario(
            Scenario(engine="cow", crash_after=3),
            workload_factory=lambda: PairsWorkload(txs=[[(0, 5)], [(1, 6)]]),
        )
        assert failure is None


class TestExplore:
    def test_every_point_explored_or_pruned(self):
        report = CrashExplorer("undo").explore(
            max_points=None, random_samples=0, nested=False
        )
        assert report.ok
        assert report.states_explored + report.states_pruned == report.n_ops

    def test_random_samples_add_states(self):
        base = CrashExplorer("undo").explore(
            max_points=6, random_samples=0, nested=False
        )
        sampled = CrashExplorer("undo").explore(
            max_points=6, random_samples=2, nested=False
        )
        assert sampled.states_explored > base.states_explored

    def test_summary_mentions_engine_and_counts(self):
        report = CrashExplorer("undo").explore(
            max_points=2, random_samples=0, nested=False
        )
        text = report.summary()
        assert "undo" in text and "explored=" in text and "ok" in text


class TestSweepRegistry:
    def test_skips_unsafe_and_chain_engines(self):
        reports = sweep_registry(
            workloads=("pairs",), max_points=2, random_samples=0, nested=False
        )
        swept = {r.engine for r in reports}
        assert swept >= {"undo", "cow", "kamino-simple", "kamino-dynamic"}
        assert "nolog" not in swept
        assert "intent-only" not in swept
        assert all(r.ok for r in reports)

    def test_engine_filter(self):
        reports = sweep_registry(
            workloads=("pairs",),
            engines=("undo",),
            max_points=2,
            random_samples=0,
            nested=False,
        )
        assert [r.engine for r in reports] == ["undo"]


@pytest.mark.parametrize(
    "workload", ["kv", "list", "ring"]
)
def test_other_canned_workloads_sweep_clean(workload):
    """Beyond pairs: tree, linked-list, and ring workloads under a
    sampled sweep with their structure validators active."""
    report = CrashExplorer("undo", workload=workload).explore(
        max_points=10, random_samples=1, nested=False
    )
    assert report.ok, "\n".join(str(f) for f in report.failures)
    assert report.states_explored > 0


def test_registry_declares_chain_engine():
    info = registered_engines()["intent-only"]
    assert info.capabilities.needs_chain_repair
    assert not info.capabilities.recoverable
