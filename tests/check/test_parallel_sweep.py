"""Worker-count invariance: fanning a sweep out must not change verdicts.

Every explorer's parallel path builds the full deterministic scenario
list first, fans replays over an ordered process pool, and folds the
results in scenario order — so ``workers=0`` (serial, same code path)
and ``workers=2`` must produce identical reports: same counts, same
pruning, same failures in the same order.  These tests pin that.
"""

import pytest

from repro.check import CrashExplorer
from repro.check.chain import ChainCrashExplorer, MigrationCrashExplorer, explore_nemesis
from repro.parallel import cpu_count, fan_out, resolve_workers


class TestParallelHelpers:
    def test_cpu_count_positive(self):
        assert cpu_count() >= 1

    def test_resolve_workers(self):
        assert resolve_workers(0) == 0  # serial
        assert resolve_workers(1) == 1
        assert resolve_workers(None) == cpu_count()
        assert resolve_workers(-1) == cpu_count()
        assert resolve_workers(3) == 3

    def test_fan_out_preserves_job_order(self):
        jobs = list(range(20))
        assert fan_out(_square, jobs, workers=2) == [j * j for j in jobs]
        assert fan_out(_square, jobs, workers=1) == [j * j for j in jobs]

    def test_fan_out_empty(self):
        assert fan_out(_square, [], workers=4) == []


def _square(job):
    return job * job


def _report_key(report):
    return (
        report.states_explored,
        getattr(report, "states_pruned", 0),
        getattr(report, "nested_explored", 0),
        [str(f) for f in report.failures],
    )


class TestEngineSweepInvariance:
    def test_serial_and_parallel_reports_identical(self):
        kwargs = dict(max_points=6, random_samples=1, max_nested_points=2)
        serial = CrashExplorer("undo").explore(workers=0, **kwargs)
        fanned = CrashExplorer("undo").explore(workers=2, **kwargs)
        assert _report_key(serial) == _report_key(fanned)
        assert serial.summary() == fanned.summary()

    def test_broken_engine_failures_survive_the_pool(self):
        kwargs = dict(max_points=None, nested=False, random_samples=1)
        serial = CrashExplorer("nolog").explore(workers=0, **kwargs)
        fanned = CrashExplorer("nolog").explore(workers=2, **kwargs)
        assert not serial.ok and not fanned.ok
        assert [str(f) for f in serial.failures] == [str(f) for f in fanned.failures]

    def test_unportable_explorer_falls_back_to_serial(self):
        """A closure-built workload can't cross a process boundary; the
        explorer must detect that and sweep in-process instead."""
        from repro.check.workload import PairsWorkload

        explorer = CrashExplorer("undo", workload_factory=lambda: PairsWorkload())
        assert not explorer._portable
        report = explorer.explore(workers=2, max_points=4, nested=False)
        assert report.ok


class TestChainSweepInvariance:
    @pytest.mark.parametrize("mode", ["kamino", "traditional"])
    def test_serial_and_parallel_reports_identical(self, mode):
        kwargs = dict(max_points=2, max_device_points=2)
        serial = ChainCrashExplorer(mode=mode).explore(workers=0, **kwargs)
        fanned = ChainCrashExplorer(mode=mode).explore(workers=2, **kwargs)
        assert serial.states_explored == fanned.states_explored
        assert [str(f) for f in serial.failures] == [str(f) for f in fanned.failures]


class TestMigrationSweepInvariance:
    def test_serial_and_parallel_reports_identical(self):
        serial = MigrationCrashExplorer().explore(
            max_points=2, reboots=False, workers=0
        )
        fanned = MigrationCrashExplorer().explore(
            max_points=2, reboots=False, workers=2
        )
        assert serial.states_explored == fanned.states_explored
        assert [str(f) for f in serial.failures] == [str(f) for f in fanned.failures]


class TestNemesisInvariance:
    def test_serial_and_parallel_verdicts_identical(self):
        from repro.faults import CORPUS

        scenarios = [s for s in CORPUS if s.name in ("flaky_link", "head_failover")]
        serial = explore_nemesis(scenarios=scenarios, seeds=2, workers=0)
        fanned = explore_nemesis(scenarios=scenarios, seeds=2, workers=2)
        assert serial.states_explored == fanned.states_explored == 4
        assert [str(f) for f in serial.failures] == [str(f) for f in fanned.failures]
