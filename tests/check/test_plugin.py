"""The checker's pytest integration (--check-budget + fixtures)."""

from repro.check.pytest_plugin import BUDGETS


def test_budget_catalogue():
    assert set(BUDGETS) == {"quick", "full"}
    quick, full = BUDGETS["quick"], BUDGETS["full"]
    assert quick.max_points is not None  # quick samples
    assert full.max_points is None  # full is exhaustive
    kwargs = quick.explore_kwargs()
    assert set(kwargs) == {"max_points", "random_samples", "max_nested_points"}


def test_session_budget_resolves(check_budget):
    assert check_budget is BUDGETS[check_budget.name]


def test_fixture_sweeps_engine(assert_engine_crash_consistent):
    """The one-line form: sweep an engine under the session budget."""
    assert_engine_crash_consistent(
        "undo", max_points=6, random_samples=0, max_nested_points=2
    )
