"""Acceptance: a deliberately broken engine is caught and minimized.

The injected bug is the classic ordering mistake Kamino-Tx's commit
protocol exists to prevent: rolling the backup forward *before* the
commit record is durable.  A power failure between the premature backup
sync and the COMMITTED mark leaves a RUNNING intent-log slot whose
rollback source — the backup — already holds the new values, so recovery
"rolls back" the in-flight transaction to a mix of old and new data.

The explorer must find it, the minimizer must shrink it to a
deterministic earliest crash point, and the emitted snippet's scenario
must replay (with the broken factory) and pass on the correct engine.
"""

from dataclasses import replace

from repro.check import CrashExplorer, minimize_failure, replay_scenario, repro_snippet
from repro.tx.backup import FullBackup
from repro.tx.base import IntentKind
from repro.tx.kamino import KaminoEngine


class BackupSyncBeforeCommit(KaminoEngine):
    """Broken on purpose: backup absorbs dirty data pre-commit-record."""

    def commit(self, tx):
        for offset, size, kind in tx.intents:
            if kind is IntentKind.WRITE:
                self.backup.absorb(offset, size)
        super().commit(tx)


def broken_factory():
    engine = BackupSyncBeforeCommit(backup=FullBackup())
    engine.name = "kamino-simple"
    return engine


def test_broken_engine_is_caught_with_minimized_repro():
    explorer = CrashExplorer("kamino-simple", engine_factory=broken_factory)
    report = explorer.explore(max_points=None, random_samples=0, nested=False)
    assert not report.ok, "the checker missed a premature backup sync"

    failure = report.failures[0]
    minimized = minimize_failure(failure, engine_factory=broken_factory)
    assert minimized.scenario.crash_after <= failure.scenario.crash_after
    assert minimized.scenario.nested_after is None

    # the minimized scenario still reproduces against the broken engine...
    assert (
        replay_scenario(minimized.scenario, engine_factory=broken_factory)
        is not None
    )
    # ...and the correct engine passes the very same scenario
    assert replay_scenario(minimized.scenario) is None

    snippet = repro_snippet(minimized)
    assert "replay_scenario(Scenario(" in snippet
    assert f"crash_after={minimized.scenario.crash_after}" in snippet
    assert "kamino-simple" in snippet


def test_broken_recovery_direction_is_caught():
    """A recovery that rolls RUNNING slots *forward* instead of back
    leaves an in-flight transaction's partially-flushed writes in place;
    the ledger oracle rejects the mixed state."""

    class BrokenRecovery(KaminoEngine):
        def recover(self, lazy=None):
            from repro.tx.base import RecoveryReport

            for rec in self.log.scan():
                # WRONG: absorb everything, committed or not
                for entry in rec.entries:
                    if entry.kind is IntentKind.WRITE:
                        self.backup.absorb(entry.offset, entry.size)
                self.log.free_slot_by_index(rec.index)
            return RecoveryReport()

    def factory():
        engine = BrokenRecovery(backup=FullBackup())
        engine.name = "kamino-simple"
        return engine

    explorer = CrashExplorer("kamino-simple", engine_factory=factory)
    report = explorer.explore(max_points=None, random_samples=0, nested=False)
    assert not report.ok
    minimized = minimize_failure(report.failures[0], engine_factory=factory)
    assert replay_scenario(minimized.scenario, engine_factory=factory) is not None
