"""Replication-chain crash sweeps (satellite: §5.2 fail-stop + §5.3
quick reboot mid-propagation must converge to a consistent chain)."""

import pytest

from repro.check import FAIL_STOP, QUICK_REBOOT, ChainCrashExplorer, ChainScenario
from repro.replication.chain import KAMINO, TRADITIONAL

MODES = [KAMINO, TRADITIONAL]


@pytest.mark.parametrize("mode", MODES)
def test_event_boundary_interventions_converge(mode):
    """Quick reboots (single + double) and fail-stops at sampled event
    boundaries, every replica: survivors must agree and no acked (for
    fail-stop) or committed (for quick-reboot) write may vanish."""
    explorer = ChainCrashExplorer(mode=mode, f=2, n_writes=4)
    report = explorer.explore(max_points=3, device_crashes=False)
    assert report.ok, "\n".join(str(f) for f in report.failures)
    assert report.states_explored > 0


@pytest.mark.parametrize("mode", MODES)
def test_device_crash_mid_chain_quick_reboot(mode):
    """Power failure *inside* a mid replica's transaction execution: the
    RUNNING intent-log slot identifies the incomplete ranges and the
    §5.3 repair path rolls them forward from the predecessor."""
    explorer = ChainCrashExplorer(mode=mode, f=2, n_writes=4)
    report = explorer.explore(
        max_points=1,
        interventions=(QUICK_REBOOT,),
        replicas=[1],
        device_crashes=True,
        max_device_points=5,
        double_reboot=False,
    )
    assert report.ok, "\n".join(str(f) for f in report.failures)


def test_fail_stop_mid_propagation_keeps_acked_writes():
    """Targeted §5.2 case: remove a mid replica while forwards are in
    flight; the predecessor re-forwards its window to the new successor
    and the chain re-converges."""
    explorer = ChainCrashExplorer(mode=KAMINO, f=2, n_writes=4)
    n_events = explorer.count_events()
    for after_events in (0, n_events // 2, n_events):
        failure = explorer.replay(
            ChainScenario(
                mode=KAMINO,
                intervention=FAIL_STOP,
                replica=1,
                after_events=after_events,
            )
        )
        assert failure is None, str(failure)


def test_quick_reboot_of_head_restores_from_local_backup():
    """§5.3 case 2: the head repairs from its own backup, then replays
    missed transactions from nobody (it has no predecessor)."""
    explorer = ChainCrashExplorer(mode=KAMINO, f=2, n_writes=4)
    n_events = explorer.count_events()
    for after_events in (1, n_events // 2):
        failure = explorer.replay(
            ChainScenario(
                mode=KAMINO,
                intervention=QUICK_REBOOT,
                replica=0,
                after_events=after_events,
            )
        )
        assert failure is None, str(failure)


def test_double_reboot_repair_is_idempotent():
    """A second power failure before the chain moves on: §5.3 repair
    must be re-runnable."""
    explorer = ChainCrashExplorer(mode=KAMINO, f=2, n_writes=3)
    failure = explorer.replay(
        ChainScenario(
            mode=KAMINO,
            intervention=QUICK_REBOOT,
            replica=2,
            after_events=explorer.count_events() // 2,
            double_reboot=True,
        )
    )
    assert failure is None, str(failure)
