"""Ledger (committed-prefix) oracle unit tests."""

from repro.check import Ledger, check_against_ledger


def make_ledger():
    # S_0 after setup, then two steps
    return Ledger(workload="pairs", states=[{0: 0}, {0: 1}, {0: 2}])


class TestExpectedAfter:
    def test_mid_run_admits_current_and_next(self):
        ledger = make_ledger()
        assert ledger.expected_after(0) == [{0: 0}, {0: 1}]
        assert ledger.expected_after(1) == [{0: 1}, {0: 2}]

    def test_after_last_step_admits_final_only(self):
        # crash in the trailing sync drain: nothing left to commit
        assert make_ledger().expected_after(2) == [{0: 2}]

    def test_steps_clamped_to_ledger_length(self):
        assert make_ledger().expected_after(17) == [{0: 2}]

    def test_n_steps(self):
        assert make_ledger().n_steps == 2


class TestCheckAgainstLedger:
    def test_admissible_states_pass(self):
        ledger = make_ledger()
        assert check_against_ledger(ledger, {0: 1}, 1) is None  # rolled back
        assert check_against_ledger(ledger, {0: 2}, 1) is None  # committed

    def test_alien_state_is_atomicity_violation(self):
        ledger = make_ledger()
        violation = check_against_ledger(ledger, {0: 99}, 1)
        assert violation is not None
        assert violation.kind == "atomicity"
        assert violation.observed == {0: 99}
        assert {0: 1} in violation.expected and {0: 2} in violation.expected
        assert "S_1" in violation.message and "S_2" in violation.message

    def test_lost_committed_step_is_caught(self):
        # one step returned (committed) but the recovered state is S_0
        violation = check_against_ledger(make_ledger(), {0: 0}, 1)
        assert violation is not None
        assert violation.kind == "atomicity"
