"""CrashExplorer media-corruption mode: protected recoveries stay clean,
unprotected ones corrupt silently, and minimization keeps the rot."""

from dataclasses import replace

import pytest

from repro.check import CrashExplorer, Scenario
from repro.check.minimize import minimize_failure, repro_snippet


class TestProtectedSweep:
    def test_protected_sweep_stays_clean(self):
        """With the sidecar on, every crash point either repairs the
        injected rot or degrades typed — the oracle accepts both."""
        explorer = CrashExplorer("kamino-simple")
        report = explorer.explore(max_points=6, media="protected",
                                  corrupt_lines=2)
        assert report.ok, "\n".join(str(f) for f in report.failures)

    @pytest.mark.media
    def test_protected_sweep_with_nesting(self):
        explorer = CrashExplorer("kamino-simple")
        report = explorer.explore(
            max_points=8, media="protected", corrupt_lines=2,
            nested=True, max_nested_points=2, random_samples=1,
        )
        assert report.ok, "\n".join(str(f) for f in report.failures)


class TestUnprotectedSweep:
    def test_unprotected_sweep_finds_silent_corruption(self):
        """Same engine, same crash points, sidecar off: the rot lands in
        committed state and the validators catch the divergence."""
        explorer = CrashExplorer("kamino-simple")
        report = explorer.explore(max_points=12, media="unprotected",
                                  corrupt_lines=2)
        assert not report.ok, "unprotected rot went unnoticed everywhere"
        kinds = {f.violation.kind for f in report.failures}
        assert kinds & {"backup", "validator", "recovery", "state"}

    def test_media_off_scenario_ignores_corruption_knobs(self):
        """``corrupt_lines`` without a media mode is inert: the sweep is
        the plain crash sweep and injection never runs."""
        explorer = CrashExplorer("kamino-simple")
        report = explorer.explore(max_points=6, media="off", corrupt_lines=5)
        assert report.ok

    def test_off_scenario_replay_matches_plain_scenario(self):
        plain = Scenario(engine="kamino-simple", crash_after=3)
        knobbed = replace(plain, media="off", corrupt_lines=4, corrupt_seed=7)
        explorer = CrashExplorer("kamino-simple")
        a, fp_a = explorer.replay(plain)
        b, fp_b = explorer.replay(knobbed)
        assert a is None and b is None
        assert fp_a is not None and fp_b is not None


class TestMinimization:
    def _one_failure(self):
        explorer = CrashExplorer("kamino-simple")
        report = explorer.explore(max_points=12, media="unprotected",
                                  corrupt_lines=3)
        assert report.failures
        return report.failures[0]

    def test_minimize_keeps_media_and_shrinks_lines(self):
        failure = self._one_failure()
        small = minimize_failure(failure)
        assert small.scenario.media == "unprotected"  # rot is load-bearing
        assert 1 <= small.scenario.corrupt_lines <= failure.scenario.corrupt_lines

    def test_snippet_replays_the_media_failure(self):
        failure = self._one_failure()
        small = minimize_failure(failure)
        snippet = repro_snippet(small)
        assert "media=" in snippet and "corrupt_lines=" in snippet
        # the snippet's scenario really does fail on replay
        explorer = CrashExplorer(small.scenario.engine)
        refailure, _fp = explorer.replay(small.scenario)
        assert refailure is not None

    def test_replay_is_deterministic(self):
        failure = self._one_failure()
        explorer = CrashExplorer(failure.scenario.engine)
        a, _ = explorer.replay(failure.scenario)
        b, _ = explorer.replay(failure.scenario)
        assert a is not None and b is not None
        assert a.violation.kind == b.violation.kind
