"""Nested crashes: power failures during recovery itself (satellite 2).

The paper's recovery argument (§3) rests on both repair directions being
idempotent — a crash *during* recovery is handled by simply running
recovery again.  The explorer makes that mechanical: for every novel
outer crash state it re-crashes at sampled points of recovery's own
mutating device operations, then recovers again and runs the full oracle
battery.  Every registered standalone-recoverable engine is swept.
"""

import pytest

from repro.check import CrashExplorer, Scenario, replay_scenario
from repro.nvm import CrashPolicy
from repro.runtime.registry import registered_engines

ENGINES = sorted(
    name
    for name, info in registered_engines().items()
    if info.capabilities.recoverable and not info.capabilities.needs_chain_repair
)


@pytest.mark.parametrize("name", ENGINES)
def test_nested_crash_sweep(name):
    """Sampled outer points x sampled recovery points, all oracles."""
    report = CrashExplorer(name).explore(
        max_points=8, random_samples=0, nested=True, max_nested_points=3
    )
    assert report.ok, "\n".join(str(f) for f in report.failures)
    # the sweep must actually have crashed inside recovery
    assert report.nested_explored > 0


@pytest.mark.parametrize("name", ENGINES)
def test_nested_crash_with_torn_recovery_writes(name):
    """Recovery's own writes torn by a RANDOM-policy nested crash."""
    for nested_after in (0, 2, 5):
        scenario = Scenario(
            engine=name,
            crash_after=12,
            policy=CrashPolicy.DROP_ALL,
            nested_after=nested_after,
            nested_policy=CrashPolicy.RANDOM,
            device_seed=nested_after,
        )
        failure = replay_scenario(scenario)
        assert failure is None, str(failure)
