"""FIFO servers, bandwidth, and engine cost-model lookup."""

import pytest

from repro.sim import BandwidthResource, FIFOServer, cost_model_for


class TestFIFOServer:
    def test_idle_server_serves_immediately(self):
        s = FIFOServer("s")
        assert s.request(arrival=100, service_ns=50) == 150

    def test_queueing_behind_busy_server(self):
        s = FIFOServer("s")
        s.request(0, 100)
        assert s.request(10, 50) == 150  # waits until 100

    def test_idle_gap_is_not_worked_through(self):
        s = FIFOServer("s")
        s.request(0, 10)
        assert s.request(100, 10) == 110  # server idle 10..100

    def test_negative_service_rejected(self):
        s = FIFOServer("s")
        with pytest.raises(ValueError):
            s.request(0, -1)

    def test_utilization(self):
        s = FIFOServer("s")
        s.request(0, 50)
        assert s.utilization(100) == pytest.approx(0.5)

    def test_reset(self):
        s = FIFOServer("s")
        s.request(0, 100)
        s.reset()
        assert s.request(0, 10) == 10


class TestBandwidth:
    def test_transfer_time_scales_with_bytes(self):
        bw = BandwidthResource(bandwidth_gbps=1.0)  # 1 byte/ns
        assert bw.transfer(0, 1000) == 1000

    def test_contention_queues(self):
        bw = BandwidthResource(bandwidth_gbps=1.0)
        bw.transfer(0, 1000)
        assert bw.transfer(0, 1000) == 2000

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            BandwidthResource(0)


class TestCostModels:
    def test_undo_is_serialized_and_copies(self):
        m = cost_model_for("undo")
        assert m.serial_ns_per_intent > 0
        assert m.serial_includes_copy
        assert not m.locks_released_after_sync

    def test_kamino_variants_share_model(self):
        simple = cost_model_for("kamino-simple")
        dynamic = cost_model_for("kamino-dynamic-30")
        assert simple is dynamic
        assert simple.locks_released_after_sync
        assert simple.serial_ns_per_intent < cost_model_for("undo").serial_ns_per_intent

    def test_unknown_engine_gets_neutral_model(self):
        m = cost_model_for("exotic")
        assert m.serial_ns_per_intent == 0
