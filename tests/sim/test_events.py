"""Event simulator: ordering, determinism, cancellation, bounds."""

import pytest

from repro.sim import EventSimulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(30, fired.append, "c")
        sim.schedule(10, fired.append, "a")
        sim.schedule(20, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        sim = EventSimulator()
        fired = []
        for tag in "abcde":
            sim.schedule(5, fired.append, tag)
        sim.run()
        assert fired == list("abcde")

    def test_now_advances(self):
        sim = EventSimulator()
        times = []
        sim.schedule(10, lambda: times.append(sim.now))
        sim.schedule(25, lambda: times.append(sim.now))
        sim.run()
        assert times == [10, 25]

    def test_nested_scheduling(self):
        sim = EventSimulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(5, lambda: fired.append(("inner", sim.now)))

        sim.schedule(10, outer)
        sim.run()
        assert fired == [("outer", 10), ("inner", 15)]

    def test_negative_delay_rejected(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_at_absolute_time(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(10, lambda: sim.at(30, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [30]

    def test_at_in_the_past_clamps_to_now(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(10, lambda: sim.at(5, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [10]

    def test_coalesced_batch_restores_clock_after_inline_advance(self):
        """The fast path pops same-timestamp events as one batch, but a
        callback may advance the shared clock inline (cost charging);
        every event in the batch must still observe its scheduled time."""
        sim = EventSimulator()
        observed = []

        def charge_and_record(tag):
            observed.append((tag, sim.now))
            sim.clock.now += 7  # inline cost, as SimClock.advance does

        for tag in "abc":
            sim.schedule(10, charge_and_record, tag)
        sim.schedule(20, lambda: observed.append(("late", sim.now)))
        sim.run()
        assert observed == [("a", 10), ("b", 10), ("c", 10), ("late", 20)]

    def test_zero_delay_events_fire_within_the_batch(self):
        sim = EventSimulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(10, outer)
        sim.schedule(10, lambda: fired.append(("peer", sim.now)))
        sim.run()
        assert fired == [("outer", 10), ("peer", 10), ("inner", 10)]


class TestControl:
    def test_cancel(self):
        sim = EventSimulator()
        fired = []
        ev = sim.schedule(10, fired.append, "x")
        ev.cancel()
        sim.run()
        assert fired == []

    def test_run_until(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(50, fired.append, "b")
        sim.run(until=20)
        assert fired == ["a"]
        assert sim.now == 20
        sim.run()
        assert fired == ["a", "b"]

    def test_max_events(self):
        sim = EventSimulator()
        fired = []
        for i in range(5):
            sim.schedule(i + 1, fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_pending_count(self):
        sim = EventSimulator()
        a = sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        a.cancel()
        assert sim.pending == 1

    def test_determinism_across_runs(self):
        def trial():
            sim = EventSimulator()
            out = []
            sim.schedule(5, lambda: (out.append("x"), sim.schedule(0, out.append, "y")))
            sim.schedule(5, out.append, "z")
            sim.run()
            return out

        assert trial() == trial()
