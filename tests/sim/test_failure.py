"""Failure-injection helpers."""

import pytest

from repro.errors import DeviceCrashedError
from repro.nvm import CrashPolicy, NVMDevice
from repro.sim import crash_points, run_until_crash, sweep_crashes


class TestCrashPoints:
    def test_counts_device_operations(self):
        def run(device):
            device.write(0, b"x" * 64)
            device.flush(0, 64)
            device.fence()

        n = crash_points(run, lambda: NVMDevice(4096))
        assert n == 3

    def test_raises_when_bound_exceeded(self):
        def run(device):
            for _ in range(10):
                device.write(0, b"x")

        with pytest.raises(RuntimeError):
            crash_points(run, lambda: NVMDevice(4096), max_points=5)


class TestSweep:
    def test_covers_ops_times_policies(self):
        points = list(sweep_crashes(4, stride=2))
        assert len(points) == 2 * 2  # ops {0, 2} x two default policies
        assert all(isinstance(p, CrashPolicy) for _i, p in points)

    def test_custom_policies(self):
        points = list(sweep_crashes(2, policies=[CrashPolicy.KEEP_ALL]))
        assert [p for _i, p in points] == [CrashPolicy.KEEP_ALL] * 2


class TestRunUntilCrash:
    def test_detects_scheduled_crash(self):
        device = NVMDevice(4096)
        device.schedule_crash(1)

        def work():
            device.write(0, b"a")
            device.write(8, b"b")

        assert run_until_crash(work) is True
        assert device.crashed

    def test_clean_run_returns_false(self):
        device = NVMDevice(4096)
        assert run_until_crash(lambda: device.write(0, b"a")) is False
