"""Failure-injection helpers."""

import pytest

from repro.nvm import CrashPolicy, NVMDevice
from repro.sim import crash_points, run_until_crash


class TestCrashPoints:
    def test_counts_device_operations(self):
        def run(device):
            device.write(0, b"x" * 64)
            device.flush(0, 64)
            device.fence()

        n = crash_points(run, lambda: NVMDevice(4096))
        assert n == 3

    def test_reads_do_not_tick(self):
        def run(device):
            device.write(0, b"x" * 8)
            device.read(0, 8)
            device.read(0, 8)

        assert crash_points(run, lambda: NVMDevice(4096)) == 1

    def test_raises_when_bound_exceeded(self):
        def run(device):
            for _ in range(10):
                device.write(0, b"x")

        with pytest.raises(RuntimeError):
            crash_points(run, lambda: NVMDevice(4096), max_points=5)

    def test_uses_public_accessor(self):
        """The count comes from NVMDevice.scheduled_crash_remaining()."""
        device = NVMDevice(4096)
        assert device.scheduled_crash_remaining() is None
        device.schedule_crash(10, CrashPolicy.DROP_ALL)
        assert device.scheduled_crash_remaining() == 10
        device.write(0, b"x")
        assert device.scheduled_crash_remaining() == 9
        device.cancel_scheduled_crash()
        assert device.scheduled_crash_remaining() is None


class TestRunUntilCrash:
    def test_detects_scheduled_crash(self):
        device = NVMDevice(4096)
        device.schedule_crash(1)

        def work():
            device.write(0, b"a")
            device.write(8, b"b")

        assert run_until_crash(work) is True
        assert device.crashed

    def test_clean_run_returns_false(self):
        device = NVMDevice(4096)
        assert run_until_crash(lambda: device.write(0, b"a")) is False
