"""Simulated network: delivery, FIFO per link, failure injection."""

import random

from repro.sim import EventSimulator, LinkFaultPolicy, NetStats, SimNetwork


def make_net(hop=1000.0, seed=None):
    sim = EventSimulator()
    rng = random.Random(seed) if seed is not None else None
    net = SimNetwork(sim, hop_latency_ns=hop, rng=rng)
    return sim, net


class TestDelivery:
    def test_message_delivered_after_hop_latency(self):
        sim, net = make_net(hop=1000)
        got = []
        net.register("b", lambda src, msg: got.append((sim.now, src, msg)))
        net.send("a", "b", "hello")
        sim.run()
        assert got == [(1000, "a", "hello")]

    def test_fifo_per_link(self):
        sim, net = make_net()
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        for i in range(5):
            net.send("a", "b", i)
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_extra_delay(self):
        sim, net = make_net(hop=1000)
        got = []
        net.register("b", lambda src, msg: got.append(sim.now))
        net.send("a", "b", "x", extra_delay_ns=500)
        sim.run()
        assert got == [1500]

    def test_unknown_destination_dropped(self):
        sim, net = make_net()
        net.send("a", "ghost", "x")
        sim.run()
        assert net.dropped == 1


class TestFailures:
    def test_down_node_receives_nothing(self):
        sim, net = make_net()
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.fail_node("b")
        net.send("a", "b", "x")
        sim.run()
        assert got == []
        assert net.dropped == 1

    def test_revive_restores_delivery(self):
        sim, net = make_net()
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.fail_node("b")
        net.revive_node("b")
        net.send("a", "b", "x")
        sim.run()
        assert got == ["x"]

    def test_cut_link_is_directional(self):
        sim, net = make_net()
        got_a, got_b = [], []
        net.register("a", lambda src, msg: got_a.append(msg))
        net.register("b", lambda src, msg: got_b.append(msg))
        net.cut_link("a", "b")
        net.send("a", "b", "x")  # dropped
        net.send("b", "a", "y")  # delivered
        sim.run()
        assert got_b == []
        assert got_a == ["y"]

    def test_inflight_message_dropped_when_node_fails_before_delivery(self):
        sim, net = make_net(hop=1000)
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.send("a", "b", "x")
        sim.schedule(500, net.fail_node, "b")
        sim.run()
        assert got == []


class TestSplitDropCounters:
    def test_cut_link_counts_as_link_drop(self):
        sim, net = make_net()
        net.register("b", lambda src, msg: None)
        net.cut_link("a", "b")
        net.send("a", "b", "x")
        sim.run()
        assert net.stats.dropped_link == 1
        assert net.stats.dropped_node == 0
        assert net.stats.dropped_fault == 0

    def test_down_node_counts_as_node_drop(self):
        sim, net = make_net()
        net.register("b", lambda src, msg: None)
        net.fail_node("b")
        net.send("a", "b", "x")
        sim.run()
        assert net.stats.dropped_node == 1
        assert net.stats.dropped_link == 0

    def test_policy_drop_counts_as_fault_drop(self):
        sim, net = make_net(seed=1)
        net.register("b", lambda src, msg: None)
        net.set_link_policy("a", "b", LinkFaultPolicy(drop_p=1.0))
        net.send("a", "b", "x")
        sim.run()
        assert net.stats.dropped_fault == 1
        # the aggregate legacy view sums all three
        assert net.dropped == 1

    def test_snapshot_delta_contract(self):
        sim, net = make_net()
        net.register("b", lambda src, msg: None)
        net.send("a", "b", "x")
        sim.run()
        before = net.stats.snapshot()
        net.send("a", "b", "y")
        net.send("a", "ghost", "z")
        sim.run()
        window = net.stats.delta(before)
        assert window.sent == 2
        assert window.delivered == 1
        assert window.dropped_node == 1
        # snapshot is detached from the live counters
        assert isinstance(before, NetStats)
        assert before.sent == 1


class TestLinkFaultPolicies:
    def test_deterministic_under_same_seed(self):
        def run(seed):
            sim, net = make_net(seed=seed)
            got = []
            net.register("b", lambda src, msg: got.append(msg))
            net.set_link_policy("a", "b", LinkFaultPolicy(drop_p=0.5, dup_p=0.3))
            for i in range(50):
                net.send("a", "b", i)
            sim.run()
            return got, net.stats.snapshot()

        got1, stats1 = run(seed=7)
        got2, stats2 = run(seed=7)
        got3, _ = run(seed=8)
        assert got1 == got2
        assert stats1 == stats2
        assert got1 != got3  # different seed, different faults

    def test_duplication_delivers_twice(self):
        sim, net = make_net(seed=3)
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.set_link_policy("a", "b", LinkFaultPolicy(dup_p=1.0))
        net.send("a", "b", "x")
        sim.run()
        assert got == ["x", "x"]
        assert net.stats.duplicated == 1
        assert net.stats.delivered == 2

    def test_corruption_detected_and_dropped(self):
        sim, net = make_net(seed=3)
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.set_link_policy("a", "b", LinkFaultPolicy(corrupt_p=1.0))
        net.send("a", "b", "x")
        sim.run()
        assert got == []
        assert net.stats.corrupted == 1
        assert net.stats.dropped_fault == 1

    def test_reordering_can_break_fifo(self):
        sim, net = make_net(seed=11)
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.set_link_policy(
            "a", "b",
            LinkFaultPolicy(reorder_p=0.5, jitter_min_ns=0.0,
                            jitter_max_ns=10_000.0),
        )
        for i in range(30):
            net.send("a", "b", i)
        sim.run()
        assert sorted(got) == list(range(30))  # nothing lost
        assert got != list(range(30))  # but not in order
        assert net.stats.reordered > 0

    def test_default_policy_applies_to_every_link(self):
        sim, net = make_net(seed=5)
        net.register("b", lambda src, msg: None)
        net.register("c", lambda src, msg: None)
        net.set_default_policy(LinkFaultPolicy(drop_p=1.0))
        net.send("a", "b", "x")
        net.send("a", "c", "y")
        sim.run()
        assert net.stats.dropped_fault == 2

    def test_clear_faults_restores_clean_delivery(self):
        sim, net = make_net(seed=5)
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.set_default_policy(LinkFaultPolicy(drop_p=1.0))
        net.set_node_delay("b", 5_000.0)
        net.partition([["a"], ["b"]])
        net.clear_faults()
        net.send("a", "b", "x")
        sim.run()
        assert got == ["x"]
        assert sim.now == 1000.0  # no residual slow-node delay

    def test_clear_faults_keeps_down_nodes_down(self):
        sim, net = make_net()
        net.register("b", lambda src, msg: None)
        net.fail_node("b")
        net.clear_faults()
        net.send("a", "b", "x")
        sim.run()
        assert net.stats.dropped_node == 1


class TestPartitionsAndSlowNodes:
    def test_partition_blocks_cross_group_traffic(self):
        sim, net = make_net()
        got = []
        for n in ("a", "b", "c"):
            net.register(n, lambda src, msg, n=n: got.append((n, msg)))
        net.partition([["a", "b"], ["c"]])
        net.send("a", "b", "in-group")
        net.send("a", "c", "cross")
        sim.run()
        assert got == [("b", "in-group")]
        assert net.stats.dropped_link == 1

    def test_heal_partition(self):
        sim, net = make_net()
        got = []
        net.register("c", lambda src, msg: got.append(msg))
        net.partition([["a"], ["c"]])
        net.heal_partition()
        net.send("a", "c", "x")
        sim.run()
        assert got == ["x"]

    def test_slow_node_adds_delay_both_directions(self):
        sim, net = make_net(hop=1000)
        times = []
        net.register("a", lambda src, msg: times.append(sim.now))
        net.register("b", lambda src, msg: times.append(sim.now))
        net.set_node_delay("b", 2_000.0)
        net.send("a", "b", "to-slow")
        sim.run()
        net.send("b", "a", "from-slow")
        sim.run()
        assert times == [3000.0, 6000.0]


class TestGroupStats:
    """Per-group stat partitions for transports shared by many chains."""

    def make_grouped(self):
        sim, net = make_net(seed=11)
        for node, group in (("a0", "g0"), ("a1", "g0"),
                            ("b0", "g1"), ("b1", "g1")):
            net.register(node, lambda src, msg: None)
            net.assign_group(node, group)
        return sim, net

    def test_messages_charged_to_source_group(self):
        sim, net = self.make_grouped()
        net.send("a0", "a1", "x")
        net.send("b0", "b1", "y")
        net.send("b1", "b0", "z")
        sim.run()
        assert net.stats.group("g0").sent == 1
        assert net.stats.group("g1").sent == 2
        assert net.stats.group("g0").delivered == 1
        assert net.stats.group("g1").delivered == 2

    def test_group_counters_sum_to_totals_under_faults(self):
        sim, net = self.make_grouped()
        net.set_default_policy(LinkFaultPolicy(drop_p=0.5))
        for i in range(40):
            net.send("a0", "a1", i)
            net.send("b0", "b1", i)
        sim.run()
        s = net.stats
        g0, g1 = s.group("g0"), s.group("g1")
        assert g0.sent + g1.sent == s.sent == 80
        assert g0.delivered + g1.delivered == s.delivered
        assert g0.dropped_fault + g1.dropped_fault == s.dropped_fault
        assert s.dropped_fault > 0

    def test_cross_group_message_charged_to_source(self):
        sim, net = self.make_grouped()
        net.send("a0", "b0", "cross")
        sim.run()
        assert net.stats.group("g0").sent == 1
        assert net.stats.group("g1").sent == 0

    def test_ungrouped_node_falls_back_to_destination_group(self):
        sim, net = self.make_grouped()
        net.register("loner", lambda src, msg: None)
        net.send("loner", "a0", "in")
        sim.run()
        assert net.stats.group("g0").sent == 1
        assert net.group_of("loner") is None

    def test_snapshot_and_delta_carry_the_partition(self):
        sim, net = self.make_grouped()
        net.send("a0", "a1", "one")
        sim.run()
        snap = net.stats.snapshot()
        net.send("a0", "a1", "two")
        net.send("b0", "b1", "three")
        sim.run()
        window = net.stats.delta(snap)
        assert window.group("g0").sent == 1
        assert window.group("g1").sent == 1
