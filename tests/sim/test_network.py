"""Simulated network: delivery, FIFO per link, failure injection."""

from repro.sim import EventSimulator, SimNetwork


def make_net(hop=1000.0):
    sim = EventSimulator()
    net = SimNetwork(sim, hop_latency_ns=hop)
    return sim, net


class TestDelivery:
    def test_message_delivered_after_hop_latency(self):
        sim, net = make_net(hop=1000)
        got = []
        net.register("b", lambda src, msg: got.append((sim.now, src, msg)))
        net.send("a", "b", "hello")
        sim.run()
        assert got == [(1000, "a", "hello")]

    def test_fifo_per_link(self):
        sim, net = make_net()
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        for i in range(5):
            net.send("a", "b", i)
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_extra_delay(self):
        sim, net = make_net(hop=1000)
        got = []
        net.register("b", lambda src, msg: got.append(sim.now))
        net.send("a", "b", "x", extra_delay_ns=500)
        sim.run()
        assert got == [1500]

    def test_unknown_destination_dropped(self):
        sim, net = make_net()
        net.send("a", "ghost", "x")
        sim.run()
        assert net.dropped == 1


class TestFailures:
    def test_down_node_receives_nothing(self):
        sim, net = make_net()
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.fail_node("b")
        net.send("a", "b", "x")
        sim.run()
        assert got == []
        assert net.dropped == 1

    def test_revive_restores_delivery(self):
        sim, net = make_net()
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.fail_node("b")
        net.revive_node("b")
        net.send("a", "b", "x")
        sim.run()
        assert got == ["x"]

    def test_cut_link_is_directional(self):
        sim, net = make_net()
        got_a, got_b = [], []
        net.register("a", lambda src, msg: got_a.append(msg))
        net.register("b", lambda src, msg: got_b.append(msg))
        net.cut_link("a", "b")
        net.send("a", "b", "x")  # dropped
        net.send("b", "a", "y")  # delivered
        sim.run()
        assert got_b == []
        assert got_a == ["y"]

    def test_inflight_message_dropped_when_node_fails_before_delivery(self):
        sim, net = make_net(hop=1000)
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.send("a", "b", "x")
        sim.schedule(500, net.fail_node, "b")
        sim.run()
        assert got == []
