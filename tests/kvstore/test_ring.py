"""Persistent ring buffer: FIFO semantics, wraparound, crash visibility."""

import pytest

from repro.errors import HeapError, PoolCorruptionError
from repro.kvstore.ring import PersistentRing
from repro.nvm import CrashPolicy, NVMDevice, PmemPool


def make_ring(size=4096):
    device = NVMDevice(1 << 20)
    pool = PmemPool.create(device)
    region = pool.create_region("ring", size)
    return PersistentRing.create(region), device, region


class TestFIFO:
    def test_append_consume_order(self):
        ring, _, _ = make_ring()
        for i in range(5):
            ring.append(bytes([i]) * (i + 1))
        assert ring.drain() == [bytes([i]) * (i + 1) for i in range(5)]

    def test_empty_consume_none(self):
        ring, _, _ = make_ring()
        assert ring.consume() is None

    def test_peek_does_not_consume(self):
        ring, _, _ = make_ring()
        ring.append(b"a")
        ring.append(b"b")
        assert list(ring.peek_all()) == [b"a", b"b"]
        assert list(ring.peek_all()) == [b"a", b"b"]
        assert len(ring) == 2

    def test_interleaved_produce_consume(self):
        ring, _, _ = make_ring()
        ring.append(b"1")
        assert ring.consume() == b"1"
        ring.append(b"2")
        ring.append(b"3")
        assert ring.consume() == b"2"
        assert ring.consume() == b"3"
        assert ring.consume() is None

    def test_empty_payload(self):
        ring, _, _ = make_ring()
        ring.append(b"")
        assert ring.consume() == b""


class TestCapacity:
    def test_wraparound_preserves_records(self):
        ring, _, _ = make_ring(size=512)
        # data area ~448 bytes; cycle far more than one lap
        for i in range(100):
            ring.append(bytes([i % 256]) * 40)
            assert ring.consume() == bytes([i % 256]) * 40

    def test_full_ring_rejected(self):
        ring, _, _ = make_ring(size=512)
        with pytest.raises(HeapError):
            for i in range(100):
                ring.append(b"x" * 40)

    def test_oversized_record_rejected(self):
        ring, _, _ = make_ring(size=512)
        with pytest.raises(HeapError):
            ring.append(b"x" * 400)

    def test_consume_frees_space(self):
        ring, _, _ = make_ring(size=512)
        for _ in range(4):
            ring.append(b"y" * 40)
        before = ring.free_bytes
        ring.consume()
        assert ring.free_bytes > before


class TestCrash:
    def test_reopen_preserves_pending(self):
        ring, device, region = make_ring()
        ring.append(b"alpha")
        ring.append(b"beta")
        ring.consume()
        device.crash(CrashPolicy.DROP_ALL)
        device.restart()
        ring2 = PersistentRing.open(region)
        assert ring2.drain() == [b"beta"]

    def test_torn_append_invisible(self):
        """Crash between the record flush and the index advance: the
        durable produce index still excludes the record."""
        ring, device, region = make_ring()
        ring.append(b"kept")
        # arm the fail-point so the power fails inside the next append,
        # after the record write but before the index store completes
        device.schedule_crash(3, CrashPolicy.DROP_ALL)
        from repro.errors import DeviceCrashedError

        with pytest.raises(DeviceCrashedError):
            ring.append(b"torn")
        device.restart()
        ring2 = PersistentRing.open(region)
        assert ring2.drain() == [b"kept"]

    def test_every_crash_point_yields_prefix(self):
        """Exhaustive: crash at each device op during three appends; the
        recovered ring must hold a prefix of the appended records."""
        payloads = [b"one", b"two22", b"three3333"]
        # count the ops once
        ring, device, region = make_ring()
        device.schedule_crash(10**6)
        for p in payloads:
            ring.append(p)
        nops = 10**6 - device.scheduled_crash_remaining()
        device.cancel_scheduled_crash()
        from repro.errors import DeviceCrashedError

        for point in range(nops):
            ring, device, region = make_ring()
            device.schedule_crash(point, CrashPolicy.RANDOM, survival_prob=0.5)
            try:
                for p in payloads:
                    ring.append(p)
            except DeviceCrashedError:
                pass
            device.cancel_scheduled_crash()
            if not device.crashed:
                device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
            device.restart()
            got = PersistentRing.open(region).drain()
            assert got == payloads[: len(got)], f"crash at {point}: {got}"

    def test_open_rejects_unformatted(self):
        device = NVMDevice(1 << 20)
        pool = PmemPool.create(device)
        region = pool.create_region("ring", 4096)
        with pytest.raises(PoolCorruptionError):
            PersistentRing.open(region)


class TestMediaCorruption:
    """Rot in ring bytes, classified: a failing *tail* record is a torn
    append (truncate durably); a failing *mid-ring* record is media
    corruption (typed error, or repair from self-verifying bytes)."""

    @staticmethod
    def _record_addr(ring, index):
        """Region offset + total size of the index-th pending record."""
        from repro.kvstore.ring import _REC_HDR, _pad

        logical = ring._consume
        for _ in range(index):
            length = _REC_HDR.unpack(
                ring.region.read(ring._addr(logical), _REC_HDR.size)
            )[0]
            logical += _pad(_REC_HDR.size + length)
        addr = ring._addr(logical)
        length = _REC_HDR.unpack(ring.region.read(addr, _REC_HDR.size))[0]
        return addr, _REC_HDR.size + length

    @staticmethod
    def _rot_payload(ring, index):
        from repro.kvstore.ring import _REC_HDR

        addr, _size = TestMediaCorruption._record_addr(ring, index)
        off = addr + _REC_HDR.size
        byte = ring.region.read(off, 1)[0]
        ring.region.write_and_flush(off, bytes([byte ^ 0x40]))
        return addr

    def test_rotted_tail_record_truncates(self):
        ring, device, region = make_ring()
        ring.append(b"kept-one")
        ring.append(b"kept-two")
        ring.append(b"doomed-tail")
        self._rot_payload(ring, 2)
        assert ring.drain() == [b"kept-one", b"kept-two"]
        # the truncation is durable: a reopen sees the shortened ring
        ring2 = PersistentRing.open(region)
        assert ring2.drain() == []

    def test_mid_ring_rot_raises_typed(self):
        from repro.errors import RingCorruptionError

        ring, device, region = make_ring()
        for payload in (b"first", b"second", b"third"):
            ring.append(payload)
        addr = self._rot_payload(ring, 0)
        with pytest.raises(RingCorruptionError) as exc:
            ring.drain()
        assert exc.value.offset == addr
        assert exc.value.record_index == 0
        assert "mid-ring" in str(exc.value)

    def test_scrub_repairs_from_verifying_bytes(self):
        ring, device, region = make_ring()
        for payload in (b"alpha", b"bravo", b"charlie"):
            ring.append(payload)
        pristine = {}
        for i in range(3):
            addr, size = self._record_addr(ring, i)
            pristine[addr] = region.read(addr, size)
        self._rot_payload(ring, 1)

        def repair(addr, size):
            return pristine.get(addr)

        assert ring.scrub(repair=repair) == 1
        assert ring.drain() == [b"alpha", b"bravo", b"charlie"]

    def test_scrub_rejects_non_verifying_repair_bytes(self):
        from repro.errors import RingCorruptionError

        ring, device, region = make_ring()
        for payload in (b"alpha", b"bravo", b"charlie"):
            ring.append(payload)
        addr, size = self._record_addr(ring, 1)
        self._rot_payload(ring, 1)

        def bad_repair(a, s):
            return b"\x00" * s  # wrong length field AND wrong crc

        with pytest.raises(RingCorruptionError):
            ring.scrub(repair=bad_repair)

    def test_scrub_clean_ring_is_a_no_op(self):
        ring, device, region = make_ring()
        for payload in (b"a", b"bb", b"ccc"):
            ring.append(payload)
        assert ring.scrub() == 0
        assert ring.drain() == [b"a", b"bb", b"ccc"]
