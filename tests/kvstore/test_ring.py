"""Persistent ring buffer: FIFO semantics, wraparound, crash visibility."""

import pytest

from repro.errors import HeapError, PoolCorruptionError
from repro.kvstore.ring import PersistentRing
from repro.nvm import CrashPolicy, NVMDevice, PmemPool


def make_ring(size=4096):
    device = NVMDevice(1 << 20)
    pool = PmemPool.create(device)
    region = pool.create_region("ring", size)
    return PersistentRing.create(region), device, region


class TestFIFO:
    def test_append_consume_order(self):
        ring, _, _ = make_ring()
        for i in range(5):
            ring.append(bytes([i]) * (i + 1))
        assert ring.drain() == [bytes([i]) * (i + 1) for i in range(5)]

    def test_empty_consume_none(self):
        ring, _, _ = make_ring()
        assert ring.consume() is None

    def test_peek_does_not_consume(self):
        ring, _, _ = make_ring()
        ring.append(b"a")
        ring.append(b"b")
        assert list(ring.peek_all()) == [b"a", b"b"]
        assert list(ring.peek_all()) == [b"a", b"b"]
        assert len(ring) == 2

    def test_interleaved_produce_consume(self):
        ring, _, _ = make_ring()
        ring.append(b"1")
        assert ring.consume() == b"1"
        ring.append(b"2")
        ring.append(b"3")
        assert ring.consume() == b"2"
        assert ring.consume() == b"3"
        assert ring.consume() is None

    def test_empty_payload(self):
        ring, _, _ = make_ring()
        ring.append(b"")
        assert ring.consume() == b""


class TestCapacity:
    def test_wraparound_preserves_records(self):
        ring, _, _ = make_ring(size=512)
        # data area ~448 bytes; cycle far more than one lap
        for i in range(100):
            ring.append(bytes([i % 256]) * 40)
            assert ring.consume() == bytes([i % 256]) * 40

    def test_full_ring_rejected(self):
        ring, _, _ = make_ring(size=512)
        with pytest.raises(HeapError):
            for i in range(100):
                ring.append(b"x" * 40)

    def test_oversized_record_rejected(self):
        ring, _, _ = make_ring(size=512)
        with pytest.raises(HeapError):
            ring.append(b"x" * 400)

    def test_consume_frees_space(self):
        ring, _, _ = make_ring(size=512)
        for _ in range(4):
            ring.append(b"y" * 40)
        before = ring.free_bytes
        ring.consume()
        assert ring.free_bytes > before


class TestCrash:
    def test_reopen_preserves_pending(self):
        ring, device, region = make_ring()
        ring.append(b"alpha")
        ring.append(b"beta")
        ring.consume()
        device.crash(CrashPolicy.DROP_ALL)
        device.restart()
        ring2 = PersistentRing.open(region)
        assert ring2.drain() == [b"beta"]

    def test_torn_append_invisible(self):
        """Crash between the record flush and the index advance: the
        durable produce index still excludes the record."""
        ring, device, region = make_ring()
        ring.append(b"kept")
        # arm the fail-point so the power fails inside the next append,
        # after the record write but before the index store completes
        device.schedule_crash(3, CrashPolicy.DROP_ALL)
        from repro.errors import DeviceCrashedError

        with pytest.raises(DeviceCrashedError):
            ring.append(b"torn")
        device.restart()
        ring2 = PersistentRing.open(region)
        assert ring2.drain() == [b"kept"]

    def test_every_crash_point_yields_prefix(self):
        """Exhaustive: crash at each device op during three appends; the
        recovered ring must hold a prefix of the appended records."""
        payloads = [b"one", b"two22", b"three3333"]
        # count the ops once
        ring, device, region = make_ring()
        device.schedule_crash(10**6)
        for p in payloads:
            ring.append(p)
        nops = 10**6 - device.scheduled_crash_remaining()
        device.cancel_scheduled_crash()
        from repro.errors import DeviceCrashedError

        for point in range(nops):
            ring, device, region = make_ring()
            device.schedule_crash(point, CrashPolicy.RANDOM, survival_prob=0.5)
            try:
                for p in payloads:
                    ring.append(p)
            except DeviceCrashedError:
                pass
            device.cancel_scheduled_crash()
            if not device.crashed:
                device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
            device.restart()
            got = PersistentRing.open(region).drain()
            assert got == payloads[: len(got)], f"crash at {point}: {got}"

    def test_open_rejects_unformatted(self):
        device = NVMDevice(1 << 20)
        pool = PmemPool.create(device)
        region = pool.create_region("ring", 4096)
        with pytest.raises(PoolCorruptionError):
            PersistentRing.open(region)
