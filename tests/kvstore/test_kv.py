"""KVStore facade: records, in-place updates, RMW, reopen, crash."""

import pytest

from repro.errors import DeviceCrashedError, HeapError
from repro.kvstore import KVStore
from repro.nvm import CrashPolicy, PmemPool
from repro.tx import UndoLogEngine, kamino_simple, reopen_after_crash
from repro.heap import PersistentHeap

from ..conftest import build_heap

POOL = 32 << 20
HEAP = 12 << 20


def make_kv(factory=UndoLogEngine, value_size=256):
    heap, engine, device = build_heap(factory, pool_size=POOL, heap_size=HEAP)
    kv = KVStore.create(heap, value_size=value_size)
    return kv, heap, device


class TestBasics:
    def test_put_get_roundtrip(self):
        kv, _, _ = make_kv()
        kv.put(1, b"hello")
        assert kv.get(1) == b"hello".ljust(256, b"\0")

    def test_get_missing(self):
        kv, _, _ = make_kv()
        assert kv.get(404) is None

    def test_put_returns_existed_flag(self):
        kv, _, _ = make_kv()
        assert kv.put(1, b"a") is False
        assert kv.put(1, b"b") is True

    def test_update_in_place_keeps_pointer(self):
        kv, heap, _ = make_kv()
        kv.put(1, b"a")
        ptr1 = kv.tree.get(1)
        kv.put(1, b"b" * 200)
        assert kv.tree.get(1) == ptr1  # no reallocation

    def test_oversized_value_rejected(self):
        kv, _, _ = make_kv(value_size=16)
        with pytest.raises(ValueError):
            kv.put(1, b"x" * 17)

    def test_contains_and_len(self):
        kv, _, _ = make_kv()
        kv.put(1, b"a")
        kv.put(2, b"b")
        assert 1 in kv and 3 not in kv
        assert len(kv) == 2


class TestDelete:
    def test_delete_frees_value_blob(self):
        kv, heap, _ = make_kv()
        kv.put(1, b"a")
        kv.drain()
        used = heap.allocator.allocated_bytes
        kv.put(2, b"b")
        kv.delete(2)
        kv.drain()
        assert heap.allocator.allocated_bytes == used
        assert kv.get(2) is None

    def test_delete_missing(self):
        kv, _, _ = make_kv()
        assert kv.delete(5) is False


class TestScanAndRMW:
    def test_scan_returns_values(self):
        kv, _, _ = make_kv()
        for k in range(10):
            kv.put(k, bytes([k]))
        got = kv.scan(3, 4)
        assert [k for k, _ in got] == [3, 4, 5, 6]
        assert got[0][1][0] == 3

    def test_read_modify_write(self):
        kv, _, _ = make_kv()
        kv.put(1, b"\x05")
        assert kv.read_modify_write(1, lambda v: bytes([v[0] + 1]))
        assert kv.get(1)[0] == 6

    def test_rmw_missing_key(self):
        kv, _, _ = make_kv()
        assert kv.read_modify_write(9, lambda v: v) is False

    def test_rmw_is_atomic_under_abort(self):
        kv, heap, _ = make_kv(factory=kamino_simple)
        kv.put(1, b"\x01")
        kv.drain()
        with pytest.raises(RuntimeError):
            with heap.transaction():
                kv.read_modify_write(1, lambda v: bytes([v[0] + 1]))
                raise RuntimeError("abort rmw")
        kv.drain()
        assert kv.get(1)[0] == 1


class TestReopen:
    def test_reopen_from_pool_root(self):
        kv, heap, device = make_kv()
        for k in range(50):
            kv.put(k, bytes([k]) * 10)
        kv.drain()
        device.persist_all()
        heap2 = PersistentHeap.open(PmemPool.open(device), UndoLogEngine())
        kv2 = KVStore.open(heap2)
        assert kv2.value_size == 256
        for k in range(50):
            assert kv2.get(k)[:10] == bytes([k]) * 10

    def test_open_without_root_fails(self):
        heap, _, _ = build_heap(UndoLogEngine)
        with pytest.raises(HeapError):
            KVStore.open(heap)


class TestCrash:
    @pytest.mark.parametrize("factory", [UndoLogEngine, kamino_simple])
    def test_crash_mid_workload_recovers_consistent(self, factory):
        kv, heap, device = make_kv(factory)
        committed = {}
        for k in range(30):
            kv.put(k, bytes([k]) * 8)
            committed[k] = bytes([k]) * 8
        kv.drain()
        device.schedule_crash(25, CrashPolicy.RANDOM, survival_prob=0.5)
        attempted = {}
        try:
            for k in range(30, 60):
                kv.put(k, bytes([k]) * 8)
                attempted[k] = bytes([k]) * 8
            kv.drain()
        except DeviceCrashedError:
            pass
        device.cancel_scheduled_crash()
        if not device.crashed:
            device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
        heap2, _, _ = reopen_after_crash(device, factory)
        kv2 = KVStore.open(heap2)
        kv2.tree.check_invariants()
        for k, v in committed.items():
            assert kv2.get(k)[: len(v)] == v
        # attempted keys are each all-or-nothing
        for k, v in attempted.items():
            got = kv2.get(k)
            assert got is None or got[: len(v)] == v
