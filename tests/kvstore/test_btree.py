"""B+Tree: structure, splits, scans, deletes, crash recovery, model check."""

import random

import pytest

from repro.errors import SchemaError
from repro.kvstore import BPlusTree, node_class
from repro.nvm import CrashPolicy
from repro.tx import UndoLogEngine, kamino_simple, reopen_after_crash

from ..conftest import build_heap

BIG_POOL = 64 << 20
BIG_HEAP = 24 << 20


def make_tree(factory=UndoLogEngine, fanout=8):
    heap, engine, device = build_heap(factory, pool_size=BIG_POOL, heap_size=BIG_HEAP)
    tree = BPlusTree.create(heap, fanout=fanout)
    return tree, heap, device


class TestBasics:
    def test_empty_tree(self):
        tree, _, _ = make_tree()
        assert tree.get(1) is None
        assert len(tree) == 0
        assert tree.height() == 0
        tree.check_invariants()

    def test_single_insert(self):
        tree, _, _ = make_tree()
        tree.put(5, 500)
        assert tree.get(5) == 500
        assert len(tree) == 1
        assert tree.height() == 1

    def test_update_replaces_and_returns_old(self):
        tree, _, _ = make_tree()
        assert tree.put(5, 500) is None
        assert tree.put(5, 501) == 500
        assert tree.get(5) == 501
        assert len(tree) == 1  # count unchanged on replace

    def test_missing_key(self):
        tree, _, _ = make_tree()
        tree.put(5, 500)
        assert tree.get(4) is None
        assert tree.get(6) is None

    def test_fanout_validation(self):
        with pytest.raises(SchemaError):
            node_class(2)
        with pytest.raises(SchemaError):
            node_class(1000)


class TestSplits:
    def test_sequential_inserts_split_correctly(self):
        tree, _, _ = make_tree(fanout=8)
        for k in range(100):
            tree.put(k, k * 10)
        tree.check_invariants()
        assert tree.height() >= 2
        for k in range(100):
            assert tree.get(k) == k * 10

    def test_reverse_inserts(self):
        tree, _, _ = make_tree(fanout=8)
        for k in reversed(range(100)):
            tree.put(k, k)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == list(range(100))

    def test_random_inserts(self):
        tree, _, _ = make_tree(fanout=8)
        keys = list(range(500))
        random.Random(42).shuffle(keys)
        for k in keys:
            tree.put(k, k + 1)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == list(range(500))

    def test_multilevel_height_grows_logarithmically(self):
        tree, _, _ = make_tree(fanout=8)
        for k in range(1000):
            tree.put(k, k)
        assert 3 <= tree.height() <= 6


class TestScan:
    def test_scan_from_start(self):
        tree, _, _ = make_tree(fanout=8)
        for k in range(0, 100, 2):
            tree.put(k, k)
        assert [k for k, _ in tree.scan(0, 5)] == [0, 2, 4, 6, 8]

    def test_scan_from_middle_key_absent(self):
        tree, _, _ = make_tree(fanout=8)
        for k in range(0, 100, 2):
            tree.put(k, k)
        assert [k for k, _ in tree.scan(31, 3)] == [32, 34, 36]

    def test_scan_crosses_leaves(self):
        tree, _, _ = make_tree(fanout=4)
        for k in range(50):
            tree.put(k, k)
        assert [k for k, _ in tree.scan(10, 20)] == list(range(10, 30))

    def test_scan_past_end(self):
        tree, _, _ = make_tree()
        tree.put(1, 1)
        assert tree.scan(100, 5) == []

    def test_scan_empty_tree(self):
        tree, _, _ = make_tree()
        assert tree.scan(0, 5) == []


class TestDelete:
    def test_delete_returns_pointer(self):
        tree, _, _ = make_tree()
        tree.put(5, 500)
        assert tree.delete(5) == 500
        assert tree.get(5) is None
        assert len(tree) == 0

    def test_delete_missing(self):
        tree, _, _ = make_tree()
        assert tree.delete(5) is None

    def test_delete_half_then_reinsert(self):
        tree, _, _ = make_tree(fanout=8)
        for k in range(200):
            tree.put(k, k)
        for k in range(0, 200, 2):
            assert tree.delete(k) == k
        tree.check_invariants()
        for k in range(200):
            expect = None if k % 2 == 0 else k
            assert tree.get(k) == expect
        for k in range(0, 200, 2):
            tree.put(k, k * 7)
        tree.check_invariants()
        assert tree.get(100) == 700

    def test_scan_skips_deleted(self):
        tree, _, _ = make_tree(fanout=4)
        for k in range(20):
            tree.put(k, k)
        for k in range(5, 15):
            tree.delete(k)
        assert [k for k, _ in tree.scan(0, 100)] == list(range(5)) + list(range(15, 20))


class TestModelCheck:
    @pytest.mark.parametrize("factory", [UndoLogEngine, kamino_simple])
    def test_random_ops_match_dict(self, factory):
        tree, heap, _ = make_tree(factory, fanout=6)
        rng = random.Random(7)
        model = {}
        for step in range(1500):
            op = rng.random()
            key = rng.randrange(200)
            if op < 0.5:
                old = tree.put(key, step + 1)
                assert old == model.get(key)
                model[key] = step + 1
            elif op < 0.75:
                assert tree.get(key) == model.get(key)
            else:
                assert tree.delete(key) == model.pop(key, None)
        heap.drain()
        tree.check_invariants()
        assert dict(tree.items()) == model


class TestAtomicity:
    @pytest.mark.parametrize("factory", [UndoLogEngine, kamino_simple])
    def test_abort_mid_split_leaves_tree_intact(self, factory):
        tree, heap, _ = make_tree(factory, fanout=4)
        for k in range(0, 8, 2):  # fill one leaf
            tree.put(k, k)
        heap.drain()
        snapshot = dict(tree.items())
        with pytest.raises(RuntimeError):
            with heap.transaction():
                tree.put(1, 1)  # forces a split inside the outer tx
                raise RuntimeError("abort during structural change")
        heap.drain()
        tree.check_invariants()
        assert dict(tree.items()) == snapshot

    def test_crash_mid_split_recovers(self):
        from repro.errors import DeviceCrashedError

        factory = kamino_simple
        tree, heap, device = make_tree(factory, fanout=4)
        for k in range(0, 40, 2):
            tree.put(k, k)
        heap.drain()
        snapshot = dict(tree.items())
        meta_oid = tree.meta.oid
        device.schedule_crash(15, CrashPolicy.RANDOM, survival_prob=0.5)
        try:
            tree.put(21, 21)
            heap.drain()
            snapshot[21] = 21
        except DeviceCrashedError:
            pass
        device.cancel_scheduled_crash()
        if not device.crashed:
            device.crash(CrashPolicy.RANDOM)
        heap2, _, _ = reopen_after_crash(device, factory)
        tree2 = BPlusTree.open(heap2, meta_oid)
        tree2.check_invariants()
        got = dict(tree2.items())
        assert got == snapshot or got == {**snapshot, 21: 21}
