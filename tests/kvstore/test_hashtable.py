"""Persistent hash table: probing, tombstones, load factor, collisions."""

import random

import pytest

from repro.errors import HeapError
from repro.kvstore import PersistentHashTable
from repro.tx import UndoLogEngine

from ..conftest import build_heap


@pytest.fixture
def table():
    heap, _, _ = build_heap(UndoLogEngine, pool_size=32 << 20, heap_size=8 << 20)
    return PersistentHashTable.create(heap, capacity_hint=512), heap


class TestBasics:
    def test_put_get(self, table):
        ht, _ = table
        ht.put(1, 100)
        assert ht.get(1) == 100

    def test_get_missing(self, table):
        ht, _ = table
        assert ht.get(42) is None

    def test_replace_returns_old(self, table):
        ht, _ = table
        assert ht.put(1, 100) is None
        assert ht.put(1, 200) == 100
        assert ht.get(1) == 200
        assert len(ht) == 1

    def test_many_keys(self, table):
        ht, _ = table
        for k in range(400):
            ht.put(k, k * 3)
        for k in range(400):
            assert ht.get(k) == k * 3
        assert len(ht) == 400

    def test_items(self, table):
        ht, _ = table
        for k in (3, 1, 2):
            ht.put(k, k)
        assert sorted(ht.items()) == [(1, 1), (2, 2), (3, 3)]


class TestDelete:
    def test_delete_then_get(self, table):
        ht, _ = table
        ht.put(1, 100)
        assert ht.delete(1) == 100
        assert ht.get(1) is None
        assert len(ht) == 0

    def test_delete_missing(self, table):
        ht, _ = table
        assert ht.delete(9) is None

    def test_tombstone_does_not_break_probe_chain(self, table):
        ht, _ = table
        # force a collision chain, then delete the middle element
        keys = list(range(1000, 1300))
        for k in keys:
            ht.put(k, k)
        for k in keys[::3]:
            ht.delete(k)
        for i, k in enumerate(keys):
            expect = None if i % 3 == 0 else k
            assert ht.get(k) == expect

    def test_tombstone_slot_reused(self, table):
        ht, _ = table
        ht.put(1, 1)
        ht.delete(1)
        ht.put(1, 2)
        assert ht.get(1) == 2
        assert len(ht) == 1


class TestLoadFactor:
    def test_over_load_rejected(self):
        heap, _, _ = build_heap(UndoLogEngine, pool_size=32 << 20, heap_size=8 << 20)
        ht = PersistentHashTable.create(heap, capacity_hint=128)
        with pytest.raises(HeapError):
            for k in range(200):
                ht.put(k, k)

    def test_capacity_hint_too_large(self):
        heap, _, _ = build_heap(UndoLogEngine, pool_size=32 << 20, heap_size=8 << 20)
        with pytest.raises(HeapError):
            PersistentHashTable.create(heap, capacity_hint=10**6)


class TestAtomicity:
    def test_aborted_put_invisible(self, table):
        ht, heap = table
        ht.put(1, 100)
        heap.drain()
        with pytest.raises(RuntimeError):
            with heap.transaction():
                ht.put(1, 999)
                ht.put(2, 222)
                raise RuntimeError("abort")
        heap.drain()
        assert ht.get(1) == 100
        assert ht.get(2) is None
        assert len(ht) == 1

    def test_model_check_random_ops(self, table):
        ht, heap = table
        rng = random.Random(3)
        model = {}
        for step in range(800):
            k = rng.randrange(150)
            r = rng.random()
            if r < 0.55:
                assert ht.put(k, step) == model.get(k)
                model[k] = step
            elif r < 0.8:
                assert ht.get(k) == model.get(k)
            else:
                assert ht.delete(k) == model.pop(k, None)
        assert dict(ht.items()) == model
        assert len(ht) == len(model)
