"""Persistent doubly-linked list (the Figure 4 running example)."""

import pytest

from repro.tx import kamino_simple

from ..conftest import build_heap
from repro.kvstore import PersistentList


@pytest.fixture
def plist(any_engine_heap):
    heap, engine, device = any_engine_heap
    return PersistentList.create(heap), heap


class TestInsert:
    def test_insert_sorted_positions(self, plist):
        lst, heap = plist
        for k in (5, 1, 9, 3, 7):
            lst.insert(k, float(k))
        assert lst.keys() == [1, 3, 5, 7, 9]
        lst.check_invariants()

    def test_insert_at_head_and_tail(self, plist):
        lst, heap = plist
        lst.insert(5, 5.0)
        lst.insert(1, 1.0)  # new head
        lst.insert(9, 9.0)  # new tail
        assert lst.keys() == [1, 5, 9]
        assert heap.deref(lst.root.head).key == 1
        assert heap.deref(lst.root.tail).key == 9

    def test_duplicates_allowed_adjacent(self, plist):
        lst, heap = plist
        lst.insert(5, 1.0)
        lst.insert(5, 2.0)
        assert lst.keys() == [5, 5]
        lst.check_invariants()

    def test_length_tracked(self, plist):
        lst, _ = plist
        for k in range(10):
            lst.insert(k, 0.0)
        assert len(lst) == 10


class TestDelete:
    def test_delete_middle(self, plist):
        lst, heap = plist
        for k in (1, 2, 3):
            lst.insert(k, float(k))
        assert lst.delete(2)
        assert lst.keys() == [1, 3]
        lst.check_invariants()

    def test_delete_head_and_tail(self, plist):
        lst, heap = plist
        for k in (1, 2, 3):
            lst.insert(k, float(k))
        assert lst.delete(1)
        assert lst.delete(3)
        assert lst.keys() == [2]
        lst.check_invariants()

    def test_delete_only_element(self, plist):
        lst, heap = plist
        lst.insert(1, 1.0)
        assert lst.delete(1)
        assert lst.keys() == []
        assert len(lst) == 0
        lst.check_invariants()

    def test_delete_missing(self, plist):
        lst, _ = plist
        lst.insert(1, 1.0)
        assert not lst.delete(2)

    def test_delete_frees_node(self, plist):
        lst, heap = plist
        lst.insert(1, 1.0)
        used = heap.allocator.allocated_bytes
        lst.insert(2, 2.0)
        lst.delete(2)
        heap.drain()
        assert heap.allocator.allocated_bytes == used


class TestLookupUpdate:
    def test_lookup(self, plist):
        lst, _ = plist
        lst.insert(4, 44.0)
        assert lst.lookup(4) == 44.0
        assert lst.lookup(5) is None

    def test_update(self, plist):
        lst, _ = plist
        lst.insert(4, 44.0)
        assert lst.update(4, 45.0)
        assert lst.lookup(4) == 45.0

    def test_update_missing(self, plist):
        lst, _ = plist
        assert not lst.update(1, 0.0)


class TestAtomicity:
    def test_aborted_insert_leaves_links_intact(self, plist):
        lst, heap = plist
        for k in (1, 3):
            lst.insert(k, float(k))
        heap.drain()
        with pytest.raises(RuntimeError):
            with heap.transaction():
                lst.insert(2, 2.0)
                raise RuntimeError("abort the splice")
        heap.drain()
        assert lst.keys() == [1, 3]
        lst.check_invariants()

    def test_aborted_delete_leaves_links_intact(self, plist):
        lst, heap = plist
        for k in (1, 2, 3):
            lst.insert(k, float(k))
        heap.drain()
        with pytest.raises(RuntimeError):
            with heap.transaction():
                lst.delete(2)
                raise RuntimeError("abort the unlink")
        heap.drain()
        assert lst.keys() == [1, 2, 3]
        lst.check_invariants()
