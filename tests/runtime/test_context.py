"""ExecutionContext: construction, inline charging, reset/snapshot."""

import pytest

from repro.nvm.latency import DRAM, NVDIMM
from repro.runtime import ExecutionContext, SharedResources
from repro.sim.resources import FIFOServer


class TestConstruction:
    def test_create_builds_full_stack(self):
        ctx = ExecutionContext.create("kamino-simple", value_size=256, heap_mb=4)
        assert ctx.device is not None
        assert ctx.heap is not None
        assert ctx.kv is not None
        assert ctx.engine_name == "kamino-simple"
        assert ctx.engine.name == "kamino-simple"

    def test_create_forwards_engine_kwargs(self):
        ctx = ExecutionContext.create(
            "kamino-dynamic", value_size=256, heap_mb=4, alpha=0.25
        )
        assert ctx.engine.name == "kamino-dynamic-25"

    def test_create_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ExecutionContext.create("quantum")

    def test_create_with_coalescing(self):
        ctx = ExecutionContext.create(
            "undo", value_size=256, heap_mb=4, coalesce_flushes=True
        )
        assert ctx.device.coalesce_flushes

    def test_bare_context_for_replication(self):
        ctx = ExecutionContext(model=DRAM)
        assert ctx.device is None
        assert ctx.stats is None
        assert ctx.resources.model is DRAM
        with pytest.raises(ValueError):
            ctx.run_tx("op", lambda: None)

    def test_events_share_the_clock(self):
        ctx = ExecutionContext.create("undo", value_size=256, heap_mb=4)
        ctx.clock.advance(100.0)
        assert ctx.events.now == 100.0
        ctx.events.schedule(50.0, lambda: None)
        ctx.events.run()
        assert ctx.clock.now == 150.0

    def test_shared_resources_across_contexts(self):
        shared = SharedResources(NVDIMM)
        a = ExecutionContext.create(
            "undo", value_size=256, heap_mb=4, resources=shared
        )
        b = ExecutionContext.create(
            "kamino-simple", value_size=256, heap_mb=4, resources=shared
        )
        assert a.resources is b.resources


class TestInlineCharging:
    def _ctx(self, **kw):
        return ExecutionContext.create("kamino-simple", value_size=256, heap_mb=4, **kw)

    def test_run_tx_advances_clock_by_crit_ns(self):
        ctx = self._ctx()
        rec = ctx.run_tx("put", lambda: ctx.kv.put(1, b"x" * 32))
        assert rec.crit_ns > 0
        assert ctx.clock.now == pytest.approx(rec.crit_ns)

    def test_charges_accumulate(self):
        ctx = self._ctx()
        r1 = ctx.run_tx("put", lambda: ctx.kv.put(1, b"a" * 32))
        r2 = ctx.run_tx("put", lambda: ctx.kv.put(2, b"b" * 32))
        assert ctx.clock.now == pytest.approx(r1.crit_ns + r2.crit_ns)
        assert len(ctx.records) == 2

    def test_charge_false_leaves_clock(self):
        ctx = self._ctx()
        rec = ctx.run_tx("put", lambda: ctx.kv.put(1, b"x" * 32), charge=False)
        assert rec.crit_ns > 0
        assert ctx.clock.now == 0.0
        assert ctx.records  # still recorded

    def test_record_captures_footprint(self):
        ctx = self._ctx()
        rec = ctx.run_tx("put", lambda: ctx.kv.put(1, b"x" * 32))
        assert rec.kind == "put"
        assert rec.n_intents > 0
        assert rec.write_set
        assert rec.async_ns > 0  # kamino's deferred backup sync

    def test_run_ops_traces_stream(self):
        ctx = self._ctx()
        ctx.run_ops(range(5), lambda i: ctx.kv.put(i, b"v" * 16), kind_of=lambda i: "put")
        assert len(ctx.records) == 5


class TestResetSnapshotContract:
    def test_reset_zeroes_every_surface(self):
        ctx = ExecutionContext.create("undo", value_size=256, heap_mb=4)
        ctx.run_tx("put", lambda: ctx.kv.put(1, b"x" * 32))
        ctx.resources.bandwidth.transfer(0.0, 1000)
        assert ctx.clock.now > 0
        ctx.reset()
        snap = ctx.snapshot()
        assert snap.clock.now == 0.0
        assert snap.stats.stores == 0
        assert all(s.requests == 0 and s.busy_ns == 0.0 for s in snap.servers.values())
        assert ctx.records == []

    def test_reset_preserves_durable_state(self):
        ctx = ExecutionContext.create("undo", value_size=256, heap_mb=4)
        ctx.run_tx("put", lambda: ctx.kv.put(7, b"keep" + b"\0" * 28))
        ctx.reset()
        assert ctx.kv.get(7)[:4] == b"keep"

    def test_snapshot_names_all_servers(self):
        ctx = ExecutionContext(model=NVDIMM)
        extra = ctx.resources.register(FIFOServer("replica-r0"))
        extra.request(0.0, 10.0)
        snap = ctx.snapshot()
        assert set(snap.servers) == {"nvm-bandwidth", "log-mgmt", "replica-r0"}
        assert snap.servers["replica-r0"].busy_ns == 10.0

    def test_snapshot_is_frozen_in_time(self):
        ctx = ExecutionContext.create("undo", value_size=256, heap_mb=4)
        before = ctx.snapshot()
        ctx.run_tx("put", lambda: ctx.kv.put(1, b"x" * 32))
        after = ctx.snapshot()
        assert before.clock.now == 0.0
        assert after.clock.delta(before.clock) == after.clock.now


class TestUniformContract:
    """Every accounting object answers reset() and snapshot()."""

    def test_nvmstats(self):
        from repro.nvm.stats import NVMStats

        s = NVMStats()
        s.stores, s.flush_bursts = 5, 2
        snap = s.snapshot()
        assert (snap.stores, snap.flush_bursts) == (5, 2)
        s.reset()
        assert s.stores == 0 and s.flush_bursts == 0

    def test_fifo_server(self):
        server = FIFOServer("s")
        server.request(0.0, 25.0)
        snap = server.snapshot()
        assert snap.busy_ns == 25.0 and snap.requests == 1
        server.reset()
        assert server.snapshot().requests == 0

    def test_sim_clock(self):
        from repro.runtime import SimClock

        clock = SimClock()
        clock.advance(9.0)
        assert clock.snapshot().now == 9.0
        clock.reset()
        assert clock.snapshot().now == 0.0
