"""SimClock: the unified virtual time source."""

import pytest

from repro.runtime import ClockSnapshot, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(100.0)
        clock.advance(50.5)
        assert clock.now == 150.5
        assert clock.advances == 2

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_is_monotonic(self):
        clock = SimClock()
        clock.advance_to(200.0)
        assert clock.now == 200.0
        clock.advance_to(100.0)  # never goes backwards
        assert clock.now == 200.0

    def test_reset_contract(self):
        clock = SimClock()
        clock.advance(42.0)
        clock.reset()
        assert clock.now == 0.0
        assert clock.advances == 0

    def test_snapshot_is_immutable_view(self):
        clock = SimClock()
        clock.advance(10.0)
        snap = clock.snapshot()
        assert snap == ClockSnapshot(now=10.0, advances=1)
        clock.advance(5.0)
        assert snap.now == 10.0  # frozen
        assert clock.snapshot().delta(snap) == 5.0


class TestEventSimulatorBinding:
    def test_shared_clock_sees_event_time(self):
        from repro.sim.events import EventSimulator

        clock = SimClock()
        sim = EventSimulator(clock=clock)
        fired = []
        sim.schedule(120.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [120.0]
        assert clock.now == 120.0

    def test_inline_advance_visible_to_simulator(self):
        from repro.sim.events import EventSimulator

        clock = SimClock()
        sim = EventSimulator(clock=clock)
        clock.advance(500.0)
        assert sim.now == 500.0
        event = sim.schedule(10.0, lambda: None)
        assert event.time == 510.0

    def test_standalone_simulator_unchanged(self):
        from repro.sim.events import EventSimulator

        sim = EventSimulator()
        sim.schedule(30.0, lambda: None)
        sim.run()
        assert sim.now == 30.0
