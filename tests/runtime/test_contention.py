"""The contended-workload battery: crossover, determinism, lock stats.

``--contention-seeds N`` (the ``contention_seeds`` session fixture,
default 2) widens the seed sweep the same way ``--nemesis-seeds`` does
for fault injection: CI's contention-smoke job raises it, local runs
stay quick.

The headline claim under test: at ≥4 simulated clients on a hot
zipfian key space, ``kamino-finegrained`` strictly beats the
global-lock ``kamino-dynamic`` — while at 1 client the two are
float-exact equals (the cost-profile split sums to the baseline's
constant).
"""

from repro.bench.contention import run_contended_cell, run_contention_sweep

#: small enough to keep each cell ~100 ms, hot enough to collide
NRECORDS = 160
NOPS = 480
KW = {"kamino-dynamic": {"alpha": 0.5},
      "kamino-finegrained": {"alpha": 0.5, "stripes": 16}}


def test_crossover_across_seeds(contention_seeds):
    """The fine-grained engine wins at 8 clients for every swept seed.

    At 4 clients the ~130 ns/tx serialized-software saving still
    competes with object-lock scheduling noise on some seeds; by 8
    clients the queueing term dominates and the win is unconditional
    (checked across seeds 0-5 at authoring time, 1.7-4.8%).
    """
    for seed in range(contention_seeds):
        sweep = run_contention_sweep(
            client_counts=(1, 8),
            seed=seed,
            engine_kwargs=KW,
        )
        base = sweep.cell("kamino-dynamic", 8)
        chal = sweep.cell("kamino-finegrained", 8)
        assert chal.duration_ns < base.duration_ns, (
            f"seed {seed}: no win at 8 clients "
            f"({chal.duration_ns} >= {base.duration_ns})"
        )
        crossover = sweep.crossover_clients()
        assert crossover is not None and crossover <= 8
        # single client: bit-identical scheduling (differential pin)
        assert (
            sweep.cell("kamino-finegrained", 1).duration_ns
            == sweep.cell("kamino-dynamic", 1).duration_ns
        )


def test_cells_are_deterministic():
    """Same seed, same cell — virtual time has no noise to hide behind."""
    cells = [
        run_contended_cell(
            "kamino-finegrained", 4,
            nrecords=NRECORDS, nops=NOPS, seed=1,
            alpha=0.5, stripes=16,
        )
        for _ in range(2)
    ]
    assert cells[0].duration_ns == cells[1].duration_ns
    assert cells[0].mean_latency_ns == cells[1].mean_latency_ns
    assert cells[0].dependent_waits == cells[1].dependent_waits
    assert cells[0].lock_stats == cells[1].lock_stats


def test_lock_stats_reported():
    """The cell surfaces the striped table's counters alongside the
    scheduler's — the two views of the same contention."""
    cell = run_contended_cell(
        "kamino-finegrained", 4,
        nrecords=NRECORDS, nops=NOPS, seed=0,
        alpha=0.5, stripes=16,
    )
    stats = cell.lock_stats
    assert stats["stripes"] == 16
    assert stats["write_acquires"] > 0
    assert stats["read_acquires"] > 0
    # the hash spreads the hot set: no stripe monopolises the traffic
    total = stats["write_acquires"] + stats["read_acquires"]
    assert stats["hottest_stripe_acquires"] < total
    doc = cell.to_dict()
    assert doc["lock_stats"]["stripes"] == 16
    assert doc["throughput_kops"] > 0


def test_sweep_document_shape():
    sweep = run_contention_sweep(
        client_counts=(1, 2),
        nrecords=80,
        nops=160,
        engine_kwargs=KW,
    )
    doc = sweep.to_dict()
    assert doc["baseline"] == "kamino-dynamic"
    assert doc["challenger"] == "kamino-finegrained"
    assert len(doc["cells"]) == 4
    assert "crossover_clients" in doc
    assert "speedup_at_max_clients" in doc
