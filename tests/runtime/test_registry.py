"""Engine registry: decorator registration, lookup, capabilities."""

import pytest

from repro.runtime.registry import (
    EngineCapabilities,
    engine_info,
    find_registered,
    make_engine,
    register_engine,
    registered_engines,
    registry_snapshot,
    unregister_engine,
)


class TestBuiltins:
    def test_all_builtin_engines_registered(self):
        assert set(registered_engines()) >= {
            "cow", "kamino-dynamic", "kamino-simple", "nolog", "undo",
        }

    def test_capabilities_reflect_schemes(self):
        engines = registered_engines()
        assert engines["undo"].capabilities.copies_in_critical_path
        assert not engines["kamino-simple"].capabilities.copies_in_critical_path
        assert engines["kamino-simple"].capabilities.has_backup
        assert engines["kamino-simple"].capabilities.locks_released_after_sync
        assert not engines["nolog"].capabilities.recoverable
        assert engines["kamino-dynamic"].capabilities.options == ("alpha",)

    def test_make_engine_builds_each(self):
        for name in registered_engines():
            engine = make_engine(name)
            assert engine.name.startswith(name.split("-")[0])

    def test_make_engine_forwards_kwargs(self):
        engine = make_engine("kamino-dynamic", alpha=0.3)
        assert engine.name == "kamino-dynamic-30"

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine("quantum")
        with pytest.raises(ValueError, match="unknown engine"):
            engine_info("quantum")


class TestLookup:
    def test_exact_match(self):
        assert find_registered("undo").name == "undo"

    def test_prefix_match_for_runtime_names(self):
        # kamino_dynamic(alpha=0.3).name == "kamino-dynamic-30"
        info = find_registered("kamino-dynamic-30")
        assert info.name == "kamino-dynamic"

    def test_longest_prefix_wins(self):
        assert find_registered("kamino-simple").name == "kamino-simple"

    def test_unknown_returns_none(self):
        assert find_registered("xyzzy") is None


class TestDecorator:
    def test_register_and_unregister(self):
        @register_engine(
            "test-noop",
            capabilities=EngineCapabilities(description="throwaway", recoverable=False),
        )
        def factory():
            return object()

        try:
            assert "test-noop" in registered_engines()
            assert engine_info("test-noop").capabilities.description == "throwaway"
            make_engine("test-noop")
        finally:
            unregister_engine("test-noop")
        assert "test-noop" not in registered_engines()

    def test_default_capabilities(self):
        @register_engine("test-default")
        def factory():
            return object()

        try:
            caps = engine_info("test-default").capabilities
            assert caps.recoverable
            assert caps.cost_profile == "default"
            assert caps.options == ()
        finally:
            unregister_engine("test-default")


class TestRegistrySnapshot:
    """``registry_snapshot`` heals any mutation — the conftest fixture
    wraps every test in one, so these also document why leaks stopped."""

    def test_unregistered_builtin_is_restored(self):
        with registry_snapshot():
            unregister_engine("undo")
            assert "undo" not in registered_engines()
        assert "undo" in registered_engines()

    def test_throwaway_registration_is_erased(self):
        with registry_snapshot():
            @register_engine("test-leak")
            def factory():
                return object()

            assert "test-leak" in registered_engines()
        assert "test-leak" not in registered_engines()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with registry_snapshot():
                unregister_engine("cow")
                raise RuntimeError("boom")
        assert "cow" in registered_engines()

    def test_conftest_fixture_leak_first_half(self):
        """Deliberately leak a mutation (no explicit snapshot)..."""
        unregister_engine("kamino-simple")
        register_engine("test-fixture-leak")(lambda: object())
        assert "kamino-simple" not in registered_engines()

    def test_conftest_fixture_leak_second_half(self):
        """...and observe the autouse fixture healed it before this test
        (file order is execution order within a module)."""
        assert "kamino-simple" in registered_engines()
        assert "test-fixture-leak" not in registered_engines()


class TestCostModelIntegration:
    def test_cost_profile_drives_scheduler(self):
        from repro.sim.resources import ENGINE_COST_MODELS, cost_model_for

        assert cost_model_for("undo") is ENGINE_COST_MODELS["undo"]
        assert cost_model_for("kamino-simple") is ENGINE_COST_MODELS["kamino"]
        assert cost_model_for("kamino-dynamic-30") is ENGINE_COST_MODELS["kamino"]

    def test_registered_profile_beats_prefix_heuristic(self):
        from repro.sim.resources import ENGINE_COST_MODELS, cost_model_for

        # an engine whose name would prefix-match "undo" but whose
        # registration declares the kamino profile: the registry wins
        @register_engine(
            "undo-free",
            capabilities=EngineCapabilities(cost_profile="kamino"),
        )
        def factory():
            return object()

        try:
            assert cost_model_for("undo-free") is ENGINE_COST_MODELS["kamino"]
        finally:
            unregister_engine("undo-free")

    def test_legacy_view_matches_registry(self):
        from repro.tx import ENGINE_FACTORIES

        assert set(ENGINE_FACTORIES) == set(registered_engines())
