"""Online multi-client simulation vs the two-phase trace replay.

The acceptance bar for the runtime refactor: with one client, online
execution must reproduce the historical trace-then-replay numbers
within 1% (it is in fact bit-identical — same scheduler, same inputs);
with several clients it must show real contention effects.
"""

import pytest

from repro.bench import replay
from repro.bench.runners import run_ycsb_online, trace_ycsb
from repro.runtime import ExecutionContext, run_online
from repro.runtime.online import replay_records


def _put_stream(ctx, n):
    return list(range(n)), lambda i: ctx.kv.put(i % 50, bytes([i % 255 + 1]) * 32)


class TestSingleClientEquivalence:
    @pytest.mark.parametrize("engine", ["undo", "kamino-simple"])
    def test_online_matches_trace_replay_within_1pct(self, engine):
        records = trace_ycsb(engine, "A", nrecords=150, nops=300, value_size=256)
        two_phase = replay(records, 1, engine, workload="A")
        online = run_ycsb_online(engine, "A", 1, nrecords=150, nops=300, value_size=256)
        assert online.ops == two_phase.ops
        assert online.throughput_kops == pytest.approx(
            two_phase.throughput_kops, rel=0.01
        )
        assert online.mean_latency_us == pytest.approx(
            two_phase.mean_latency_us, rel=0.01
        )

    def test_replay_records_equals_legacy_replay(self):
        records = trace_ycsb("undo", "B", nrecords=100, nops=200, value_size=256)
        for nthreads in (1, 4):
            a = replay(records, nthreads, "undo")
            b = replay_records(records, nthreads, "undo")
            assert a.duration_ns == b.duration_ns
            assert a.latencies_ns == b.latencies_ns


class TestMultiClient:
    def test_more_clients_more_throughput(self):
        r1 = run_ycsb_online("kamino-simple", "B", 1, nrecords=150, nops=400, value_size=256)
        r4 = run_ycsb_online("kamino-simple", "B", 4, nrecords=150, nops=400, value_size=256)
        assert r4.ops == r1.ops == 400
        assert r4.throughput_kops > 1.5 * r1.throughput_kops

    def test_nthreads_validated(self):
        ctx = ExecutionContext.create("undo", value_size=256, heap_mb=4)
        with pytest.raises(ValueError):
            run_online(ctx, [], lambda op: None, 0)
        with pytest.raises(ValueError):
            replay_records([], 0, "undo")

    def test_bare_context_rejected(self):
        ctx = ExecutionContext()
        with pytest.raises(ValueError, match="no engine"):
            run_online(ctx, [1], lambda op: None, 1)

    def test_ops_execute_against_shared_heap(self):
        ctx = ExecutionContext.create("undo", value_size=256, heap_mb=4)
        ops, executor = _put_stream(ctx, 60)
        result = run_online(ctx, ops, executor, 3, kind_of=lambda i: "put")
        assert result.ops == 60
        assert result.nthreads == 3
        # every key landed, whatever the interleaving
        for i in range(50):
            assert ctx.kv.get(i) is not None

    def test_charges_land_on_context_resources(self):
        ctx = ExecutionContext.create("undo", value_size=256, heap_mb=4)
        ops, executor = _put_stream(ctx, 40)
        run_online(ctx, ops, executor, 2, kind_of=lambda i: "put")
        snap = ctx.snapshot()
        assert snap.servers["nvm-bandwidth"].requests > 0
        assert snap.servers["log-mgmt"].requests > 0
        assert ctx.clock.now > 0  # the shared clock carried the simulation

    def test_coalescing_shortens_simulated_time(self):
        base = run_ycsb_online("undo", "A", 4, nrecords=150, nops=400, value_size=256)
        fast = run_ycsb_online(
            "undo", "A", 4, nrecords=150, nops=400, value_size=256,
            coalesce_flushes=True,
        )
        assert fast.ops == base.ops
        assert fast.duration_ns < base.duration_ns


class TestDependentTransactions:
    def test_hot_key_serializes_clients(self):
        # same update stream, but all on one key vs spread over 30 keys:
        # the hot key forces clients to take turns (and, for kamino, to
        # wait out each predecessor's backup sync)
        def prepared():
            ctx = ExecutionContext.create("kamino-simple", value_size=256, heap_mb=4)
            for k in range(30):
                ctx.kv.put(k, bytes([k + 1]) * 32)
            ctx.kv.drain()
            ctx.reset()
            return ctx

        ops = list(range(30))
        ctx = prepared()
        hot = run_online(
            ctx, ops, lambda i: ctx.kv.put(0, bytes([i % 255 + 1]) * 32), 4,
            kind_of=lambda i: "put",
        )
        ctx2 = prepared()
        cold = run_online(
            ctx2, ops, lambda i: ctx2.kv.put(i, bytes([i % 255 + 1]) * 32), 4,
            kind_of=lambda i: "put",
        )
        assert hot.mean_latency_us > cold.mean_latency_us
