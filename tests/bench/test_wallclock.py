"""The wall-clock harness: schema, invariance self-check, regressions."""

import json

import pytest

from repro.bench import wallclock
from repro.bench.runners import run_ycsb_online
from repro.nvm import NVMDevice, ReferenceNVMDevice, backend as nvm_backend


def _tiny(naive):
    """A miniature fig12 hot loop that finishes in well under a second."""
    kwargs = wallclock._stack_kwargs(naive, "kamino-simple")
    return run_ycsb_online(
        "kamino-simple",
        "A",
        2,
        nrecords=40,
        nops=80,
        value_size=256,
        heap_mb=8,
        coalesce_flushes=True,
        **kwargs,
    )


class TestStackKwargs:
    def test_optimized_side(self):
        kw = wallclock._stack_kwargs(False, "kamino-simple")
        assert kw["device_cls"] is nvm_backend.device_class(None)
        assert kw["lock_mode"] == "uncontended"
        assert kw["coalesce_sync"] is True

    def test_optimized_side_pure_backend(self):
        nvm_backend.set_default_backend("pure")
        try:
            kw = wallclock._stack_kwargs(False, "kamino-simple")
            assert kw["device_cls"] is NVMDevice
        finally:
            nvm_backend.set_default_backend(None)

    def test_naive_side(self):
        kw = wallclock._stack_kwargs(True, "kamino-dynamic")
        assert kw["device_cls"] is ReferenceNVMDevice
        assert kw["lock_mode"] == "locked"
        assert kw["coalesce_sync"] is False

    def test_non_kamino_engines_get_no_sync_knob(self):
        assert "coalesce_sync" not in wallclock._stack_kwargs(False, "undo")


def test_both_stacks_simulate_identically():
    """The harness's denominator is honest: same sim results both sides."""
    opt = _tiny(naive=False)
    ref = _tiny(naive=True)
    assert opt.duration_ns == ref.duration_ns
    assert opt.ops == ref.ops
    assert opt.latencies_ns == ref.latencies_ns


def test_run_benchmarks_quick_serial_schema(tmp_path):
    doc = wallclock.run_benchmarks(names=["fig12_hot_loop"], quick=True, workers=0)
    assert doc["schema_version"] == wallclock.SCHEMA_VERSION
    assert doc["quick"] is True
    meta = doc["metadata"]
    assert meta["backend"] in ("pure", "numpy")
    assert meta["workers"] == 0
    assert meta["cpu_count"] >= 1
    entry = doc["benchmarks"]["fig12_hot_loop"]
    for key in ("wall_s", "sim_time", "txs", "naive_wall_s", "speedup_vs_naive"):
        assert key in entry
    assert entry["txs"] == wallclock.QUICK_SIZES["nops"]
    assert entry["wall_s"] > 0
    path = tmp_path / "bench.json"
    wallclock.save(doc, str(path))
    assert wallclock.load(str(path)) == json.loads(path.read_text())


def test_run_benchmarks_explicit_pure_backend_restores_default():
    before = nvm_backend.default_backend()
    doc = wallclock.run_benchmarks(
        names=["fig12_hot_loop"], quick=True, with_naive=False, backend="pure"
    )
    assert doc["metadata"]["backend"] == "pure"
    assert nvm_backend.default_backend() == before


def test_run_benchmarks_without_naive():
    doc = wallclock.run_benchmarks(
        names=["fig12_hot_loop"], quick=True, with_naive=False
    )
    entry = doc["benchmarks"]["fig12_hot_loop"]
    assert "speedup_vs_naive" not in entry
    assert "naive_wall_s" not in entry


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError):
        wallclock.run_benchmarks(names=["no_such_bench"])


class TestRegressionReport:
    BASE = {"benchmarks": {"b": {"speedup_vs_naive": 4.0}}}

    def test_ok_within_tolerance(self):
        cur = {"benchmarks": {"b": {"speedup_vs_naive": 3.2}}}
        assert wallclock.regression_report(cur, self.BASE, tolerance=0.25) == []

    def test_flags_below_floor(self):
        cur = {"benchmarks": {"b": {"speedup_vs_naive": 2.9}}}
        problems = wallclock.regression_report(cur, self.BASE, tolerance=0.25)
        assert len(problems) == 1 and "b:" in problems[0]

    def test_flags_missing_benchmark(self):
        problems = wallclock.regression_report({"benchmarks": {}}, self.BASE)
        assert any("not re-measured" in p for p in problems)

    def test_baseline_without_speedup_is_skipped(self):
        base = {"benchmarks": {"b": {"wall_s": 1.0}}}
        assert wallclock.regression_report({"benchmarks": {}}, base) == []

    def test_quick_run_compares_against_quick_section(self):
        """A quick run vs a full-size trajectory point must use the
        baseline's quick_benchmarks section, not the full-size speedups."""
        base = {
            "quick": False,
            "benchmarks": {"b": {"speedup_vs_naive": 100.0}},
            "quick_benchmarks": {"b": {"speedup_vs_naive": 4.0}},
        }
        cur = {"quick": True, "benchmarks": {"b": {"speedup_vs_naive": 3.5}}}
        assert wallclock.regression_report(cur, base, tolerance=0.25) == []
        cur["benchmarks"]["b"]["speedup_vs_naive"] = 2.0
        assert len(wallclock.regression_report(cur, base, tolerance=0.25)) == 1

    def test_full_run_uses_full_section(self):
        base = {
            "quick": False,
            "benchmarks": {"b": {"speedup_vs_naive": 4.0}},
            "quick_benchmarks": {"b": {"speedup_vs_naive": 100.0}},
        }
        cur = {"quick": False, "benchmarks": {"b": {"speedup_vs_naive": 3.5}}}
        assert wallclock.regression_report(cur, base, tolerance=0.25) == []

    def test_cross_backend_comparison_refused(self):
        base = {
            "metadata": {"backend": "pure"},
            "benchmarks": {"b": {"speedup_vs_naive": 4.0}},
        }
        cur = {
            "metadata": {"backend": "numpy"},
            "benchmarks": {"b": {"speedup_vs_naive": 0.1}},
        }
        problems = wallclock.regression_report(cur, base, tolerance=0.25)
        assert len(problems) == 1
        assert "backend mismatch" in problems[0]
        assert "refused" in problems[0]

    def test_schema_v1_baseline_without_metadata_still_compares(self):
        """Pre-PR7 trajectory points carry no metadata block; they keep
        gating leniently instead of erroring."""
        cur = {
            "metadata": {"backend": "numpy"},
            "benchmarks": {"b": {"speedup_vs_naive": 3.2}},
        }
        assert wallclock.regression_report(cur, self.BASE, tolerance=0.25) == []
        cur["benchmarks"]["b"]["speedup_vs_naive"] = 2.0
        assert len(wallclock.regression_report(cur, self.BASE, tolerance=0.25)) == 1
