"""Timeline recorder: phase capture, commit points, rendering."""

import pytest

from repro.bench import build_stack
from repro.bench.timeline import (
    TimelineRecorder,
    critical_path_ns,
    record_one_update,
    render_timeline,
)


def recorded(engine_name):
    stack = build_stack(engine_name, value_size=256, heap_mb=8)
    stack.kv.put(1, b"\x01" * 200)
    stack.engine.sync_pending()
    return record_one_update(stack, 1, b"\x02" * 200)


class TestRecording:
    def test_phases_are_contiguous_and_ordered(self):
        rec = recorded("kamino-simple")
        assert rec.spans
        for a, b in zip(rec.spans, rec.spans[1:]):
            assert a.end_ns == b.start_ns
        assert rec.spans[0].start_ns == 0.0

    def test_undo_commit_is_log_discard(self):
        rec = recorded("undo")
        discard = next(s for s in rec.spans if s.name == "delete_copy")
        assert rec.commit_ns == discard.end_ns

    def test_kamino_commit_is_commit_record(self):
        rec = recorded("kamino-simple")
        record = next(s for s in rec.spans if s.name == "commit_record")
        assert rec.commit_ns == record.end_ns

    def test_kamino_backup_copy_after_commit(self):
        rec = recorded("kamino-simple")
        backup = next(s for s in rec.spans if s.name == "copy_to_backup")
        assert backup.start_ns >= rec.commit_ns

    def test_hook_removed_after_context(self):
        stack = build_stack("undo", value_size=256, heap_mb=8)
        with TimelineRecorder(stack.device, stack.engine):
            pass
        assert stack.engine.phase_hook is None

    def test_critical_path_helper(self):
        rec = recorded("kamino-simple")
        assert 0 < critical_path_ns(rec) < rec.total_ns


class TestRendering:
    def test_render_contains_all_phases(self):
        rec = recorded("undo")
        out = render_timeline("undo", rec)
        for span in rec.spans:
            if span.duration_ns > 0:
                assert span.name in out

    def test_commit_marker_present(self):
        rec = recorded("kamino-simple")
        out = render_timeline("k", rec)
        assert "|" in out

    def test_shared_scale_shrinks_bars(self):
        rec = recorded("undo")
        tight = render_timeline("u", rec)
        loose = render_timeline("u", rec, scale_ns=rec.total_ns * 4)
        assert tight.count("#") > loose.count("#")

    def test_empty_recorder(self):
        stack = build_stack("undo", value_size=256, heap_mb=8)
        rec = TimelineRecorder(stack.device, stack.engine)
        assert "(no phases recorded)" in render_timeline("x", rec)
