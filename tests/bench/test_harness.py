"""Benchmark harness: trace collection, replay mechanics, shape checks."""

import pytest

from repro.bench import TraceCollector, TxRecord, build_stack, replay, trace_ycsb
from repro.bench.report import format_table, speedup_note
from repro.bench.tco import CostModel, normalized_ops_per_dollar, provisioned_gb
from repro.nvm.latency import NVDIMM


def small_trace(engine="kamino-simple", workload="A", nops=300):
    return trace_ycsb(engine, workload, nrecords=200, nops=nops, value_size=256, heap_mb=16)


class TestTraceCollector:
    def test_records_one_per_op(self):
        records = small_trace(nops=100)
        assert len(records) == 100

    def test_kamino_trace_splits_crit_and_async(self):
        records = small_trace("kamino-simple")
        updates = [r for r in records if r.kind == "update"]
        assert updates
        assert all(r.async_ns > 0 for r in updates)
        assert all(r.crit_copy_bytes == 0 for r in updates)

    def test_undo_trace_has_no_async_but_copies(self):
        records = small_trace("undo")
        updates = [r for r in records if r.kind == "update"]
        assert all(r.async_ns == 0 for r in updates)
        assert all(r.crit_copy_bytes > 0 for r in updates)

    def test_reads_have_empty_write_sets(self):
        records = small_trace()
        reads = [r for r in records if r.kind == "read"]
        assert reads
        assert all(not r.write_set for r in reads)
        assert all(r.read_set for r in reads)

    def test_kamino_updates_cheaper_critical_path(self):
        k = small_trace("kamino-simple")
        u = small_trace("undo")
        k_up = [r.crit_ns for r in k if r.kind == "update"]
        u_up = [r.crit_ns for r in u if r.kind == "update"]
        assert sum(k_up) / len(k_up) < sum(u_up) / len(u_up)


class TestReplay:
    def test_all_ops_complete(self):
        records = small_trace()
        result = replay(records, 4, "kamino-simple")
        assert result.ops == len(records)
        assert result.duration_ns > 0

    def test_more_threads_more_throughput_read_only(self):
        records = small_trace(workload="C")
        r1 = replay(records, 1, "kamino-simple")
        r8 = replay(records, 8, "kamino-simple")
        assert r8.throughput_kops > 4 * r1.throughput_kops

    def test_single_thread_latency_matches_trace(self):
        records = small_trace(workload="C")
        r = replay(records, 1, "kamino-simple")
        expect = sum(rec.crit_ns for rec in records) / len(records) / 1e3
        assert r.mean_latency_us == pytest.approx(expect, rel=0.1)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            replay([], 0, "undo")

    def test_deterministic(self):
        records = small_trace()
        a = replay(records, 4, "kamino-simple")
        b = replay(records, 4, "kamino-simple")
        assert a.duration_ns == b.duration_ns
        assert a.latencies_ns == b.latencies_ns

    def test_percentiles_monotone(self):
        records = small_trace()
        r = replay(records, 4, "kamino-simple")
        assert (
            r.percentile_latency_us(50)
            <= r.percentile_latency_us(95)
            <= r.percentile_latency_us(99)
        )


class TestPaperShapes:
    """The headline comparisons the evaluation section rests on."""

    def test_kamino_beats_undo_on_write_heavy(self):
        k = replay(small_trace("kamino-simple", "A"), 4, "kamino-simple")
        u = replay(small_trace("undo", "A"), 4, "undo")
        assert k.throughput_kops > 1.2 * u.throughput_kops
        assert k.mean_latency_us < u.mean_latency_us

    def test_parity_on_read_only(self):
        k = replay(small_trace("kamino-simple", "C"), 4, "kamino-simple")
        u = replay(small_trace("undo", "C"), 4, "undo")
        assert k.throughput_kops == pytest.approx(u.throughput_kops, rel=0.05)

    def test_gap_grows_with_threads(self):
        k_recs = small_trace("kamino-simple", "A")
        u_recs = small_trace("undo", "A")
        ratios = []
        for n in (2, 8):
            k = replay(k_recs, n, "kamino-simple")
            u = replay(u_recs, n, "undo")
            ratios.append(k.throughput_kops / u.throughput_kops)
        assert ratios[1] > ratios[0]


class TestTCO:
    def test_provisioning_multiples(self):
        assert provisioned_gb(10, "undo") == 10
        assert provisioned_gb(10, "kamino-simple") == 20
        assert provisioned_gb(10, "kamino-dynamic-30", alpha=0.3) == pytest.approx(13)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            provisioned_gb(10, "raid")

    def test_normalization_base_is_one(self):
        series = {"undo": 100.0, "kamino-simple": 200.0}
        norm = normalized_ops_per_dollar(series, 10, alphas={})
        assert norm["undo"] == 1.0
        assert norm["kamino-simple"] > 1.0

    def test_storage_cost_penalises_full_mirror(self):
        # equal throughput => the mirror's extra NVM must cost it
        series = {"undo": 100.0, "kamino-simple": 100.0}
        norm = normalized_ops_per_dollar(series, 50, alphas={})
        assert norm["kamino-simple"] < 1.0


class TestReport:
    def test_format_table_alignment(self):
        out = format_table("T", ["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_speedup_note(self):
        note = speedup_note("undo", {"undo": 2.0, "kamino": 5.0})
        assert "2.50x" in note
