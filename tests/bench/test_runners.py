"""Benchmark runner glue: stack building and the YCSB matrix."""

import pytest

from repro.bench import build_stack, run_ycsb_matrix, trace_tpcc
from repro.nvm.latency import DRAM


class TestBuildStack:
    def test_stack_components_wired(self):
        stack = build_stack("kamino-simple", value_size=256, heap_mb=4)
        assert stack.engine is stack.heap.engine
        assert stack.kv.heap is stack.heap
        assert stack.engine_name == "kamino-simple"

    def test_engine_kwargs_forwarded(self):
        stack = build_stack("kamino-dynamic", value_size=256, heap_mb=4, alpha=0.25)
        assert stack.engine.name == "kamino-dynamic-25"

    def test_latency_model_applied(self):
        stack = build_stack("undo", value_size=256, heap_mb=4, model=DRAM)
        assert stack.device.model is DRAM

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            build_stack("quantum")


class TestMatrix:
    def test_cross_product_keys(self):
        results = run_ycsb_matrix(
            ["undo"], ["C"], nthreads_list=(1, 2), nrecords=40, nops=60,
            value_size=128,
        )
        assert set(results) == {("undo", "C", 1), ("undo", "C", 2)}
        for result in results.values():
            assert result.ops == 60

    def test_trace_shared_across_thread_counts(self):
        results = run_ycsb_matrix(
            ["kamino-simple"], ["C"], nthreads_list=(1, 4), nrecords=40, nops=60,
            value_size=128,
        )
        # read-only trace: 4 threads must beat 1 thread on the same trace
        assert (
            results[("kamino-simple", "C", 4)].throughput_kops
            > results[("kamino-simple", "C", 1)].throughput_kops
        )


class TestTpccTrace:
    def test_records_produced(self):
        records = trace_tpcc("undo", nops=30)
        assert len(records) == 30
        assert all(r.kind == "tpcc" for r in records)
        assert any(r.write_set for r in records)
