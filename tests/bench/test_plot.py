"""ASCII chart rendering."""

from repro.bench import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_longest_bar_is_max(self):
        out = bar_chart("t", {"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[0] == "t"
        bar_a = lines[1].count("█")
        bar_b = lines[2].count("█")
        assert bar_b == 10
        assert bar_a == 5

    def test_values_printed(self):
        out = bar_chart("t", {"x": 3.14159}, unit="us")
        assert "3.14us" in out

    def test_empty_series(self):
        assert "(no data)" in bar_chart("t", {})

    def test_zero_values_do_not_crash(self):
        out = bar_chart("t", {"a": 0.0, "b": 0.0})
        assert "a" in out


class TestGroupedBarChart:
    def test_shared_scale_across_groups(self):
        out = grouped_bar_chart(
            "t", {"g1": {"s": 1.0}, "g2": {"s": 4.0}}, width=8
        )
        lines = out.splitlines()
        assert lines[2].count("█") == 2   # g1.s = 1/4 of scale
        assert lines[4].count("█") == 8   # g2.s = max

    def test_group_headers_present(self):
        out = grouped_bar_chart("t", {"alpha": {"s": 1.0}})
        assert " alpha" in out

    def test_empty(self):
        assert "(no data)" in grouped_bar_chart("t", {})
