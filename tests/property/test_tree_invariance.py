"""Property: the integrity tree is pure observation on the fault-free path.

Differential sweeps over random persist programs, on every constructible
device backend.  (1) A tree-guarded device is byte- and stats-identical
to an unguarded one — leaf CRC streaming rides the persist path without
adding device operations, and nothing the tree disputes exists when no
fault was injected.  (2) Attaching a tree does not move the crash
fingerprint relative to the checksum-only sidecar — the explorer's dedup
key sees one crash state, not two.  (3) Streamed and eager propagation
converge to the same root over the same durable image — the lazy pending
log is a scheduling choice, never a semantic one.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.nvm import backend
from repro.nvm.latency import CACHE_LINE

DEVICE_SIZE = 16384
N_LINES = DEVICE_SIZE // CACHE_LINE
BACKENDS = backend.available_backends()

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def op_sequences(draw):
    nops = draw(st.integers(1, 12))
    ops = []
    for _ in range(nops):
        kind = draw(st.sampled_from(["write", "flush", "fence", "persist_all"]))
        if kind == "write":
            addr = draw(st.integers(0, DEVICE_SIZE - 1))
            size = draw(st.integers(1, min(128, DEVICE_SIZE - addr)))
            data = bytes(draw(st.integers(0, 255)) for _ in range(size))
            ops.append(("write", addr, data))
        elif kind == "flush":
            addr = draw(st.integers(0, DEVICE_SIZE - 1))
            ops.append(("flush", addr, min(256, DEVICE_SIZE - addr)))
        else:
            ops.append((kind,))
    return ops


def apply_ops(device, ops):
    for op in ops:
        if op[0] == "write":
            device.write(op[1], op[2])
        elif op[0] == "flush":
            device.flush(op[1], op[2])
        elif op[0] == "fence":
            device.fence()
        else:
            device.persist_all()
    device.persist_all()


def make_device(backend_name, tree=None, protect=False):
    device = backend.make_device(DEVICE_SIZE, backend=backend_name, seed=0)
    if tree is not None:
        device.attach_media(seed=0, tree=tree)
    elif protect:
        device.attach_media(seed=0, protect=True)
    return device


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestTreeIsFreeWithoutFaults:
    @given(ops=op_sequences())
    @SETTINGS
    def test_guarded_matches_unguarded(self, backend_name, ops):
        plain = make_device(backend_name)
        guarded = make_device(backend_name, tree="streamed")
        apply_ops(plain, ops)
        apply_ops(guarded, ops)
        assert bytes(plain._durable) == bytes(guarded._durable)
        # nothing disputed: sidecar, tree, and fault maps all clean
        assert guarded.media.bad_lines() == []
        assert not guarded.media.faulty
        assert guarded.media.tree.scan(guarded._durable) == []
        for stat in ("media_flips", "media_dead", "media_stale",
                     "media_detected", "media_repaired"):
            assert getattr(guarded.stats, stat) == 0
        # the tree is host-side bookkeeping riding persists — it adds no
        # device operations to the data path
        assert plain.stats.stores == guarded.stats.stores
        assert plain.stats.store_bytes == guarded.stats.store_bytes
        assert plain.stats.flushes == guarded.stats.flushes
        assert plain.stats.fences == guarded.stats.fences

    @given(ops=op_sequences())
    @SETTINGS
    def test_tree_does_not_move_the_crash_fingerprint(self, backend_name, ops):
        """The explorer dedups crash states by fingerprint; the tree must
        not split one state into two."""
        sidecar_only = make_device(backend_name, protect=True)
        treed = make_device(backend_name, tree="streamed")
        apply_ops(sidecar_only, ops)
        apply_ops(treed, ops)
        assert sidecar_only.overlay_fingerprint() == treed.overlay_fingerprint()

    @given(ops=op_sequences())
    @SETTINGS
    def test_streamed_and_eager_converge(self, backend_name, ops):
        streamed = make_device(backend_name, tree="streamed")
        eager = make_device(backend_name, tree="eager")
        apply_ops(streamed, ops)
        apply_ops(eager, ops)
        assert bytes(streamed._durable) == bytes(eager._durable)
        streamed.media.tree.apply_pending()
        assert streamed.media.tree.leaves == eager.media.tree.leaves
        assert streamed.media.tree.root() == eager.media.tree.root()
