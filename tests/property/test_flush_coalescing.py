"""Property: the flush coalescer never changes crash semantics.

The write-combining coalescer (``NVMDevice(coalesce_flushes=True)``)
only changes *cost accounting* — runs of adjacent dirty lines are
charged as bursts.  The safety claim is that durability is byte-
identical: for ANY sequence of stores/copies/flushes/fences and ANY
crash policy (including seeded torn-word randomness), the post-crash
durable bytes of a coalescing device equal those of a non-coalescing
device driven identically.  Hypothesis searches for a counterexample.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.nvm import CrashPolicy, NVMDevice
from repro.nvm.stats import NVMStats

DEVICE_SIZE = 4096

SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def op_sequences(draw):
    nops = draw(st.integers(1, 30))
    ops = []
    for _ in range(nops):
        kind = draw(st.sampled_from(["write", "copy", "flush", "fence", "persist_all"]))
        if kind == "write":
            addr = draw(st.integers(0, DEVICE_SIZE - 1))
            size = draw(st.integers(1, min(256, DEVICE_SIZE - addr)))
            data = bytes(draw(st.integers(1, 255)) for _ in range(size))
            ops.append(("write", addr, data))
        elif kind == "copy":
            size = draw(st.integers(1, 256))
            src = draw(st.integers(0, DEVICE_SIZE - size))
            dst = draw(st.integers(0, DEVICE_SIZE - size))
            ops.append(("copy", dst, src, size))
        elif kind == "flush":
            addr = draw(st.integers(0, DEVICE_SIZE - 1))
            size = draw(st.integers(1, min(512, DEVICE_SIZE - addr)))
            ops.append(("flush", addr, size))
        elif kind == "fence":
            ops.append(("fence",))
        else:
            ops.append(("persist_all",))
    return ops


def _drive(device: NVMDevice, ops) -> None:
    for op in ops:
        if op[0] == "write":
            device.write(op[1], op[2])
        elif op[0] == "copy":
            device.copy(op[1], op[2], op[3])
        elif op[0] == "flush":
            device.flush(op[1], op[2])
        elif op[0] == "fence":
            device.fence()
        else:
            device.persist_all()


@given(
    ops=op_sequences(),
    policy=st.sampled_from([CrashPolicy.DROP_ALL, CrashPolicy.KEEP_ALL, CrashPolicy.RANDOM]),
    seed=st.integers(0, 2**16),
    survival=st.floats(0.0, 1.0),
)
@SETTINGS
def test_coalescing_preserves_crash_state(ops, policy, seed, survival):
    plain = NVMDevice(DEVICE_SIZE, seed=seed, coalesce_flushes=False)
    burst = NVMDevice(DEVICE_SIZE, seed=seed, coalesce_flushes=True)
    _drive(plain, ops)
    _drive(burst, ops)

    # identical overlay state before the crash...
    assert plain.dirty_lines == burst.dirty_lines

    # ...and identical durable bytes after it, under the same policy and
    # the same seeded torn-word randomness
    plain.crash(policy, survival_prob=survival)
    burst.crash(policy, survival_prob=survival)
    assert plain.durable_read(0, DEVICE_SIZE) == burst.durable_read(0, DEVICE_SIZE)


@given(ops=op_sequences())
@SETTINGS
def test_coalescing_only_discounts_cost(ops):
    """Coalescing charges the same primitive counts, never more bursts
    than lines, and strictly fewer bursts when adjacency exists."""
    plain = NVMDevice(DEVICE_SIZE, coalesce_flushes=False)
    burst = NVMDevice(DEVICE_SIZE, coalesce_flushes=True)
    _drive(plain, ops)
    _drive(burst, ops)

    p, b = plain.stats, burst.stats
    assert (p.flushes, p.flushed_lines, p.stores, p.loads, p.copies) == (
        b.flushes, b.flushed_lines, b.stores, b.loads, b.copies
    )
    # without the coalescer every line is its own burst
    assert p.flush_bursts == p.flushed_lines
    assert b.flush_bursts <= b.flushed_lines


def test_simulated_ns_reduces_to_old_formula_without_coalescing():
    """bursts == lines makes the burst term vanish: old cost exactly."""
    from repro.nvm.latency import NVDIMM

    s = NVMStats(flushes=3, flushed_lines=10, flush_bursts=10)
    legacy = NVMStats(flushes=3, flushed_lines=10)  # hand-built, no burst info
    assert s.simulated_ns(NVDIMM) == legacy.simulated_ns(NVDIMM)
    assert s.simulated_ns(NVDIMM) == 10 * NVDIMM.flush_line_ns


def test_coalesced_burst_is_cheaper():
    from repro.nvm.latency import NVDIMM

    contiguous = NVMStats(flushes=1, flushed_lines=8, flush_bursts=1)
    scattered = NVMStats(flushes=1, flushed_lines=8, flush_bursts=8)
    assert contiguous.simulated_ns(NVDIMM) < scattered.simulated_ns(NVDIMM)
