"""Property-based crash-atomicity tests (hypothesis).

The central safety property of every recoverable engine: **crash the
device at an arbitrary operation inside an arbitrary transaction — after
recovery, every transaction is all-or-nothing and (for Kamino engines)
the backup again mirrors the main heap.**

Hypothesis chooses: the engine, the sequence of committed updates, the
in-flight transaction's writes, the exact device operation at which power
fails, and the cache-eviction behaviour at the failure (drop / keep /
random torn words).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import DeviceCrashedError
from repro.nvm import CrashPolicy
from repro.runtime.registry import registered_engines
from repro.tx import reopen_after_crash, verify_backup_consistency

from ..conftest import Pair, build_heap

#: every registered engine whose capabilities declare it recoverable —
#: a newly registered engine is swept automatically, with no edit here
ENGINES = {
    name: info.factory
    for name, info in registered_engines().items()
    if info.capabilities.recoverable
}


def test_registry_supplies_engines():
    """The sweep is registry-driven and excludes unsafe baselines."""
    assert set(ENGINES) >= {"undo", "cow", "kamino-simple", "kamino-dynamic"}
    assert "nolog" not in ENGINES

POLICIES = [CrashPolicy.DROP_ALL, CrashPolicy.KEEP_ALL, CrashPolicy.RANDOM]

N_OBJECTS = 6

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _apply_tx(heap, objs, writes):
    """Run one transaction updating objs[i] = v for each (i, v)."""
    with heap.transaction():
        for i, v in writes:
            o = objs[i]
            o.tx_add()
            o.key = v
            o.value = f"v{v}"


@st.composite
def crash_scenarios(draw):
    engine_name = draw(st.sampled_from(sorted(ENGINES)))
    policy = draw(st.sampled_from(POLICIES))
    seed = draw(st.integers(0, 2**20))
    committed = draw(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, N_OBJECTS - 1), st.integers(1, 1000)),
                min_size=1,
                max_size=3,
            ),
            min_size=0,
            max_size=3,
        )
    )
    inflight = draw(
        st.lists(
            st.tuples(st.integers(0, N_OBJECTS - 1), st.integers(1001, 2000)),
            min_size=1,
            max_size=4,
            unique_by=lambda t: t[0],
        )
    )
    crash_after = draw(st.integers(0, 120))
    return engine_name, policy, seed, committed, inflight, crash_after


@given(crash_scenarios())
@SETTINGS
def test_crash_anywhere_is_atomic(scenario):
    engine_name, policy, seed, committed, inflight, crash_after = scenario
    factory = ENGINES[engine_name]
    heap, engine, device = build_heap(factory, seed=seed)

    # establish a baseline of N committed objects
    with heap.transaction():
        objs = [heap.alloc(Pair) for _ in range(N_OBJECTS)]
        for i, o in enumerate(objs):
            o.key = i
            o.value = f"v{i}"
        heap.set_root(objs[0])
    heap.drain()
    oids = [o.oid for o in objs]
    model = {i: i for i in range(N_OBJECTS)}

    # committed transactions update the model
    for writes in committed:
        _apply_tx(heap, objs, writes)
        for i, v in writes:
            model[i] = v
    heap.drain()

    # in-flight transaction with a scheduled crash somewhere inside it
    pre_model = dict(model)
    post_model = dict(model)
    for i, v in inflight:
        post_model[i] = v
    device.schedule_crash(crash_after, policy, survival_prob=0.5)
    crashed = True
    try:
        _apply_tx(heap, objs, inflight)
        heap.drain()
        crashed = False
    except DeviceCrashedError:
        pass
    device.cancel_scheduled_crash()
    if not crashed:
        # budget never hit: the whole tx (and sync) completed normally
        model = post_model
        if device.crashed:  # pragma: no cover - defensive
            device.restart()
        device.crash(policy, survival_prob=0.5)
    heap2, engine2, _report = reopen_after_crash(device, factory)
    objs2 = [heap2.deref(oid, Pair) for oid in oids]
    observed = {i: o.key for i, o in enumerate(objs2)}

    if crashed:
        assert observed in (pre_model, post_model), (
            f"{engine_name}/{policy}: partial transaction visible: "
            f"{observed} is neither {pre_model} nor {post_model}"
        )
    else:
        assert observed == model

    # field-level atomicity: value must match key within each object
    for i, o in enumerate(objs2):
        assert o.value == f"v{o.key}"

    if hasattr(engine2, "backup"):
        verify_backup_consistency(heap2)


@given(
    engine_name=st.sampled_from(sorted(ENGINES)),
    crash_after=st.integers(0, 60),
    seed=st.integers(0, 2**16),
)
@SETTINGS
def test_crash_during_alloc_free_cycle(engine_name, crash_after, seed):
    """Allocator metadata obeys the same atomicity as user data."""
    factory = ENGINES[engine_name]
    heap, engine, device = build_heap(factory, seed=seed)
    with heap.transaction():
        keeper = heap.alloc(Pair)
        keeper.key = 7
        heap.set_root(keeper)
    heap.drain()
    used = heap.allocator.allocated_bytes

    device.schedule_crash(crash_after, CrashPolicy.RANDOM, survival_prob=0.5)
    completed = False
    try:
        with heap.transaction():
            tmp = heap.alloc(Pair)
            tmp.key = 1
        with heap.transaction():
            heap.free(tmp)
        heap.drain()
        completed = True
    except DeviceCrashedError:
        pass
    device.cancel_scheduled_crash()
    if not completed and not device.crashed:
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
    if completed and not device.crashed:
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)

    heap2, engine2, _ = reopen_after_crash(device, factory)
    # alloc+free is net zero; a crash may leave the tmp block allocated
    # (tx1 committed, tx2 not) but never torn metadata
    assert heap2.allocator.allocated_bytes in (used, used + 128)
    assert heap2.root(Pair).key == 7
    # allocator still functional
    with heap2.transaction():
        heap2.alloc(Pair)
    heap2.drain()
    if hasattr(engine2, "backup"):
        verify_backup_consistency(heap2)
