"""Property-based crash-atomicity tests (hypothesis).

The central safety property of every recoverable engine: **crash the
device at an arbitrary operation inside an arbitrary transaction — after
recovery, every transaction is all-or-nothing and (for Kamino engines)
the backup again mirrors the main heap.**

Hypothesis chooses: the engine, the transaction script, the exact device
operation at which power fails, the cache-eviction behaviour at the
failure (drop / keep / random torn words), and — sometimes — a second
crash inside recovery itself.  The replay and the oracle battery are the
checker's (:func:`repro.check.replay_scenario`): the model bookkeeping,
the recovery, the ledger comparison, and the backup-mirror check all run
exactly as they do in ``repro check``, so a hypothesis counterexample is
already a ready-to-paste :class:`~repro.check.Scenario`.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.check import PairsWorkload, Scenario, replay_scenario
from repro.nvm import CrashPolicy
from repro.runtime.registry import registered_engines

#: every registered engine whose capabilities declare it recoverable —
#: a newly registered engine is swept automatically, with no edit here
ENGINES = {
    name: info.factory
    for name, info in registered_engines().items()
    if info.capabilities.recoverable and not info.capabilities.needs_chain_repair
}


def test_registry_supplies_engines():
    """The sweep is registry-driven and excludes unsafe baselines."""
    assert set(ENGINES) >= {"undo", "cow", "kamino-simple", "kamino-dynamic"}
    assert "nolog" not in ENGINES
    assert "intent-only" not in ENGINES


POLICIES = [CrashPolicy.DROP_ALL, CrashPolicy.KEEP_ALL, CrashPolicy.RANDOM]

N_OBJECTS = 6

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def crash_scenarios(draw):
    """An engine, a transaction script, and a fully-determined crash."""
    engine_name = draw(st.sampled_from(sorted(ENGINES)))
    policy = draw(st.sampled_from(POLICIES))
    seed = draw(st.integers(0, 2**20))
    txs = draw(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, N_OBJECTS - 1), st.integers(1, 2000)),
                min_size=1,
                max_size=4,
                unique_by=lambda t: t[0],
            ),
            min_size=1,
            max_size=4,
        )
    )
    crash_after = draw(st.integers(0, 120))
    nested_after = draw(st.one_of(st.none(), st.integers(0, 30)))
    scenario = Scenario(
        engine=engine_name,
        workload="pairs",
        crash_after=crash_after,
        policy=policy,
        survival=0.5,
        device_seed=seed,
        nested_after=nested_after,
    )
    return scenario, txs


@given(crash_scenarios())
@SETTINGS
def test_crash_anywhere_is_atomic(case):
    scenario, txs = case
    failure = replay_scenario(
        scenario,
        workload_factory=lambda: PairsWorkload(txs=txs, n_objects=N_OBJECTS),
    )
    assert failure is None, (
        f"{failure}\n(transaction script: {txs!r})"
    )


@given(
    engine_name=st.sampled_from(sorted(ENGINES)),
    crash_after=st.integers(0, 60),
    seed=st.integers(0, 2**16),
)
@SETTINGS
def test_crash_during_alloc_free_cycle(engine_name, crash_after, seed):
    """Allocator metadata obeys the same atomicity as user data.

    Alloc/free transactions mutate the bitmap words and deferred-free
    machinery rather than user structs, so this keeps its own workload
    instead of the canned pairs script.
    """
    from repro.errors import DeviceCrashedError
    from repro.tx import reopen_after_crash, verify_backup_consistency

    from ..conftest import Pair, build_heap

    factory = ENGINES[engine_name]
    heap, engine, device = build_heap(factory, seed=seed)
    with heap.transaction():
        keeper = heap.alloc(Pair)
        keeper.key = 7
        heap.set_root(keeper)
    heap.drain()
    used = heap.allocator.allocated_bytes

    device.schedule_crash(crash_after, CrashPolicy.RANDOM, survival_prob=0.5)
    completed = False
    try:
        with heap.transaction():
            tmp = heap.alloc(Pair)
            tmp.key = 1
        with heap.transaction():
            heap.free(tmp)
        heap.drain()
        completed = True
    except DeviceCrashedError:
        pass
    device.cancel_scheduled_crash()
    if not completed and not device.crashed:
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
    if completed and not device.crashed:
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)

    heap2, engine2, _ = reopen_after_crash(device, factory)
    # alloc+free is net zero; a crash may leave the tmp block allocated
    # (tx1 committed, tx2 not) but never torn metadata
    assert heap2.allocator.allocated_bytes in (used, used + 128)
    assert heap2.root(Pair).key == 7
    # allocator still functional
    with heap2.transaction():
        heap2.alloc(Pair)
    heap2.drain()
    if hasattr(engine2, "backup"):
        verify_backup_consistency(heap2)
