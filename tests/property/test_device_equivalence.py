"""Property: the optimized device is observationally equal to the naive one.

Hypothesis searches for ANY op sequence on which the optimized
``NVMDevice`` (mask tables, single-line fast paths, bulk dirty ranges,
elided locks) diverges from ``ReferenceNVMDevice`` (the per-word-loop
implementation) — in read results, ``NVMStats``, dirty lines, or the
durable bytes surviving a crash under each ``CrashPolicy``.  A second
sweep runs every registered recoverable engine end-to-end on both
devices (optimized stack with sync coalescing on, reference stack with
it off) and demands identical stats, simulated time, and durable state.
"""

import itertools

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.heap import PersistentHeap
from repro.nvm import CrashPolicy, NVMDevice, PmemPool, ReferenceNVMDevice
from repro.runtime.registry import registered_engines
from repro.tx.base import Transaction

from ..conftest import Pair

DEVICE_SIZE = 16384
LINE = 64
BULK_BYTES = 4096  # the bulk dirty-range threshold (64 lines)

POLICIES = [CrashPolicy.DROP_ALL, CrashPolicy.KEEP_ALL, CrashPolicy.RANDOM]

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def op_sequences(draw):
    nops = draw(st.integers(1, 25))
    ops = []
    for _ in range(nops):
        kind = draw(
            st.sampled_from(
                ["write", "copy", "bulk_copy", "flush", "flush_multi", "fence", "persist_all"]
            )
        )
        if kind == "write":
            addr = draw(st.integers(0, DEVICE_SIZE - 1))
            size = draw(st.integers(1, min(256, DEVICE_SIZE - addr)))
            data = bytes(draw(st.integers(0, 255)) for _ in range(size))
            ops.append(("write", addr, data))
        elif kind == "copy":
            size = draw(st.integers(1, 256))
            src = draw(st.integers(0, DEVICE_SIZE - size))
            dst = draw(st.integers(0, DEVICE_SIZE - size))
            chunks = draw(st.integers(1, 4))
            ops.append(("copy", dst, src, size, chunks))
        elif kind == "bulk_copy":
            nlines = BULK_BYTES // LINE
            src = draw(st.integers(0, DEVICE_SIZE // LINE - nlines)) * LINE
            dst = draw(st.integers(0, DEVICE_SIZE // LINE - nlines)) * LINE
            ops.append(("copy", dst, src, BULK_BYTES, 1))
        elif kind == "flush":
            addr = draw(st.integers(0, DEVICE_SIZE - 1))
            size = draw(st.integers(1, min(1024, DEVICE_SIZE - addr)))
            ops.append(("flush", addr, size))
        elif kind == "flush_multi":
            ranges = []
            for _ in range(draw(st.integers(1, 4))):
                addr = draw(st.integers(0, DEVICE_SIZE - 1))
                ranges.append((addr, draw(st.integers(1, min(256, DEVICE_SIZE - addr)))))
            ops.append(("flush_multi", ranges))
        elif kind == "fence":
            ops.append(("fence",))
        else:
            ops.append(("persist_all",))
    return ops


def _drive(device, ops):
    for op in ops:
        if op[0] == "write":
            device.write(op[1], op[2])
        elif op[0] == "copy":
            device.copy(op[1], op[2], op[3], chunks=op[4])
        elif op[0] == "flush":
            device.flush(op[1], op[2])
        elif op[0] == "flush_multi":
            device.flush_multi(op[1])
        elif op[0] == "fence":
            device.fence()
        else:
            device.persist_all()


@given(
    ops=op_sequences(),
    lock_mode=st.sampled_from(["locked", "uncontended"]),
    policy=st.sampled_from(POLICIES),
    seed=st.integers(0, 2**16),
    survival=st.floats(0.0, 1.0),
)
@SETTINGS
def test_optimized_device_is_observationally_equal(ops, lock_mode, policy, seed, survival):
    opt = NVMDevice(DEVICE_SIZE, seed=seed, lock_mode=lock_mode)
    ref = ReferenceNVMDevice(DEVICE_SIZE, seed=seed)
    _drive(opt, ops)
    _drive(ref, ops)

    assert opt.read(0, DEVICE_SIZE) == ref.read(0, DEVICE_SIZE)
    assert opt.dirty_lines == ref.dirty_lines
    assert opt.stats.snapshot() == ref.stats.snapshot()

    # same policy + same seed => bit-identical crash survivors
    opt.crash(policy, survival_prob=survival)
    ref.crash(policy, survival_prob=survival)
    assert opt.durable_read(0, DEVICE_SIZE) == ref.durable_read(0, DEVICE_SIZE)


# -- full-stack sweep over the engine registry ------------------------------

ENGINES = {
    name: info
    for name, info in registered_engines().items()
    if info.capabilities.recoverable
}

POOL_SIZE = 8 << 20
HEAP_SIZE = 2 << 20
N_OBJECTS = 5

STACK_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _run_stack(info, device_cls, coalesce, batches, seed):
    Transaction._ids = itertools.count(1)  # txids land in durable slot headers
    device = device_cls(POOL_SIZE, seed=seed)
    pool = PmemPool.create(device)
    kwargs = {"coalesce_sync": coalesce} if info.capabilities.has_backup else {}
    engine = info.factory(**kwargs)
    heap = PersistentHeap.create(pool, engine, heap_size=HEAP_SIZE)
    objs = []
    with heap.transaction():
        for _ in range(N_OBJECTS):
            objs.append(heap.alloc(Pair))
    for batch in batches:
        with heap.transaction():
            for i, v in batch:
                o = objs[i]
                o.tx_add()
                o.key = v
                o.value = f"v{v}"
    heap.drain()
    return device


@given(
    name=st.sampled_from(sorted(ENGINES)),
    batches=st.lists(
        st.lists(
            st.tuples(st.integers(0, N_OBJECTS - 1), st.integers(0, 2**31)),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=4,
    ),
    seed=st.integers(0, 2**16),
)
@STACK_SETTINGS
def test_engine_stacks_match_on_both_devices(name, batches, seed):
    info = ENGINES[name]
    opt = _run_stack(info, NVMDevice, True, batches, seed)
    ref = _run_stack(info, ReferenceNVMDevice, False, batches, seed)
    assert opt.stats.snapshot() == ref.stats.snapshot()
    assert opt.stats.simulated_ns(opt.model) == ref.stats.simulated_ns(ref.model)
    assert opt.durable_read(0, POOL_SIZE) == ref.durable_read(0, POOL_SIZE)
    assert opt.read(0, POOL_SIZE) == ref.read(0, POOL_SIZE)
    assert opt.dirty_lines == ref.dirty_lines
