"""Hypothesis property tests: B+Tree and hash table vs model dicts."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kvstore import BPlusTree, PersistentHashTable
from repro.tx import UndoLogEngine, kamino_simple

from ..conftest import build_heap

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["put", "get", "delete"]),
        st.integers(0, 60),
        st.integers(1, 10**6),
    ),
    min_size=1,
    max_size=120,
)


@given(ops=ops_strategy, fanout=st.sampled_from([4, 6, 8, 16]))
@SETTINGS
def test_btree_matches_dict(ops, fanout):
    heap, _, _ = build_heap(UndoLogEngine, pool_size=32 << 20, heap_size=12 << 20)
    tree = BPlusTree.create(heap, fanout=fanout)
    model = {}
    for op, key, value in ops:
        if op == "put":
            assert tree.put(key, value) == model.get(key)
            model[key] = value
        elif op == "get":
            assert tree.get(key) == model.get(key)
        else:
            assert tree.delete(key) == model.pop(key, None)
    tree.check_invariants()
    assert dict(tree.items()) == model
    assert len(tree) == len(model)
    # scans agree with the sorted model on arbitrary windows
    if model:
        lo = min(model)
        got = tree.scan(lo, 10)
        expect = sorted(model.items())[:10]
        assert got == expect


@given(ops=ops_strategy)
@SETTINGS
def test_hashtable_matches_dict(ops):
    heap, _, _ = build_heap(UndoLogEngine, pool_size=32 << 20, heap_size=12 << 20)
    table = PersistentHashTable.create(heap, capacity_hint=256)
    model = {}
    for op, key, value in ops:
        if op == "put":
            assert table.put(key, value) == model.get(key)
            model[key] = value
        elif op == "get":
            assert table.get(key) == model.get(key)
        else:
            assert table.delete(key) == model.pop(key, None)
    assert dict(table.items()) == model
    assert len(table) == len(model)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "update"]), st.integers(0, 20)),
        min_size=1,
        max_size=60,
    )
)
@SETTINGS
def test_linkedlist_invariants_hold(ops):
    from repro.kvstore import PersistentList

    heap, _, _ = build_heap(kamino_simple, pool_size=32 << 20, heap_size=12 << 20)
    plist = PersistentList.create(heap)
    model = []
    for op, key in ops:
        if op == "insert":
            plist.insert(key, float(key))
            model.append(key)
            model.sort()
        elif op == "delete":
            removed = plist.delete(key)
            assert removed == (key in model)
            if removed:
                model.remove(key)
        else:
            updated = plist.update(key, -1.0)
            assert updated == (key in model)
    heap.drain()
    plist.check_invariants()
    assert plist.keys() == model
