"""Property: the media layer is visible exactly when faults are injected.

Three sweeps.  (1) Any flipped durable bit changes
``overlay_fingerprint`` — the checker's dedup key is media-aware, so two
crash states differing only by rot are never pruned as one.  (2)
``clone_durable`` carries the whole fault map: every injected fault is
observable on the clone exactly as on the original.  (3) Differential
invariance: with a media model attached but NO faults injected, a
device is byte- and stats-identical to one with no model at all — the
protection layer is free when nothing is wrong.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.nvm import NVMDevice
from repro.nvm.latency import CACHE_LINE

DEVICE_SIZE = 16384
N_LINES = DEVICE_SIZE // CACHE_LINE

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def op_sequences(draw):
    nops = draw(st.integers(1, 12))
    ops = []
    for _ in range(nops):
        kind = draw(st.sampled_from(["write", "flush", "fence", "persist_all"]))
        if kind == "write":
            addr = draw(st.integers(0, DEVICE_SIZE - 1))
            size = draw(st.integers(1, min(128, DEVICE_SIZE - addr)))
            data = bytes(draw(st.integers(0, 255)) for _ in range(size))
            ops.append(("write", addr, data))
        elif kind == "flush":
            addr = draw(st.integers(0, DEVICE_SIZE - 1))
            ops.append(("flush", addr, min(256, DEVICE_SIZE - addr)))
        else:
            ops.append((kind,))
    return ops


def apply_ops(device, ops):
    for op in ops:
        if op[0] == "write":
            device.write(op[1], op[2])
        elif op[0] == "flush":
            device.flush(op[1], op[2])
        elif op[0] == "fence":
            device.fence()
        else:
            device.persist_all()
    device.persist_all()


class TestFingerprintMediaAwareness:
    @given(ops=op_sequences(), addr=st.integers(0, DEVICE_SIZE - 1),
           bit=st.integers(0, 7))
    @SETTINGS
    def test_any_flip_changes_the_fingerprint(self, ops, addr, bit):
        device = NVMDevice(DEVICE_SIZE, seed=0)
        device.attach_media(seed=0, protect=True)
        apply_ops(device, ops)
        before = device.overlay_fingerprint()
        device.media.flip_bit(addr, bit)
        assert device.overlay_fingerprint() != before

    @given(ops=op_sequences(), line=st.integers(0, N_LINES - 1))
    @SETTINGS
    def test_dead_line_changes_the_fingerprint(self, ops, line):
        """Equal bytes, different fault maps: a dead line is a different
        crash state even though no data byte moved."""
        device = NVMDevice(DEVICE_SIZE, seed=0)
        device.attach_media(seed=0, protect=True)
        apply_ops(device, ops)
        before = device.overlay_fingerprint()
        device.media.kill_line(line)
        assert device.overlay_fingerprint() != before


class TestCloneCarriage:
    @given(
        ops=op_sequences(),
        flips=st.lists(
            st.tuples(st.integers(0, DEVICE_SIZE - 1), st.integers(0, 7)),
            max_size=4,
        ),
        dead=st.lists(st.integers(0, N_LINES - 1), max_size=2, unique=True),
    )
    @SETTINGS
    def test_clone_sees_every_fault(self, ops, flips, dead):
        device = NVMDevice(DEVICE_SIZE, seed=0)
        media = device.attach_media(seed=0, protect=True)
        apply_ops(device, ops)
        for addr, bit in flips:
            if addr // CACHE_LINE in media.dead:
                continue
            media.flip_bit(addr, bit)
        for line in dead:
            media.kill_line(line)
        clone = device.clone_durable(seed=0)
        assert clone.media is not None
        assert clone.media.dead == media.dead
        assert clone.media.bad_lines() == media.bad_lines()
        assert clone.media.fingerprint_token() == media.fingerprint_token()


class TestDifferentialInvariance:
    @given(ops=op_sequences())
    @SETTINGS
    def test_no_faults_means_no_difference(self, ops):
        plain = NVMDevice(DEVICE_SIZE, seed=0)
        guarded = NVMDevice(DEVICE_SIZE, seed=0)
        guarded.attach_media(seed=0, protect=True)
        apply_ops(plain, ops)
        apply_ops(guarded, ops)
        assert bytes(plain._durable) == bytes(guarded._durable)
        assert guarded.media.bad_lines() == []
        assert not guarded.media.faulty
        for stat in ("media_flips", "media_dead", "media_detected",
                     "media_repaired"):
            assert getattr(guarded.stats, stat) == 0
        # the data-path stats agree too: the sidecar rides persists, it
        # does not add device operations
        assert plain.stats.stores == guarded.stats.stores
        assert plain.stats.store_bytes == guarded.stats.store_bytes
        assert plain.stats.flushes == guarded.stats.flushes
        assert plain.stats.fences == guarded.stats.fences
