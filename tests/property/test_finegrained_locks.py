"""Property-based invariants of the striped lock table (hypothesis).

The fine-grained engine family rests on three claims about
:class:`~repro.tx.striped_locks.StripedLockTable`:

* **No lost updates** — a write lock really excludes: counters bumped
  under ``acquire_write``/``release_write`` from real racing threads
  never drop an increment, whatever the stripe count.
* **Ordered acquisition never deadlocks** — threads batch-acquiring
  overlapping write sets through ``acquire_write_many`` (canonical
  ascending order) all complete; no waits-for cycle, no timeout.
* **Stripe-count invariance** — an offset's behaviour depends only on
  its own entry, so any single-threaded operation sequence produces
  bit-identical lock stats for 1, 4, or 32 stripes — and a whole engine
  run produces bit-identical durable bytes and device counters.

Hypothesis picks the offsets, the thread scripts, and the stripe
widths; the assertions are exact equalities, not tolerances.
"""

import threading

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.tx import StripedLockTable
from repro.tx.locks import ObjectLockTable

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: offsets are block starts; keep them 32-byte aligned like the heap's
OFFSETS = st.integers(0, 63).map(lambda i: i * 32)


@given(
    nstripes=st.sampled_from([1, 2, 7, 16]),
    offsets=st.lists(OFFSETS, min_size=1, max_size=4, unique=True),
    nthreads=st.integers(2, 4),
    increments=st.integers(5, 25),
)
@SETTINGS
def test_no_lost_updates(nstripes, offsets, nthreads, increments):
    """Racing increments under write locks are never lost."""
    table = StripedLockTable(nstripes, timeout=10.0)
    counters = {off: 0 for off in offsets}
    errors = []

    def worker(txid):
        try:
            for i in range(increments):
                off = offsets[i % len(offsets)]
                table.acquire_write(txid, off)
                try:
                    counters[off] += 1  # unprotected but for the lock
                finally:
                    table.release_write(txid, off)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(txid,))
        for txid in range(1, nthreads + 1)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    assert sum(counters.values()) == nthreads * increments
    assert len(table) == 0  # every entry garbage-collected
    assert table.stats.write_acquires == nthreads * increments


@given(
    nstripes=st.sampled_from([1, 3, 16]),
    write_sets=st.lists(
        st.lists(OFFSETS, min_size=1, max_size=5, unique=True),
        min_size=2,
        max_size=4,
    ),
    rounds=st.integers(1, 6),
)
@SETTINGS
def test_ordered_batch_acquisition_never_deadlocks(nstripes, write_sets, rounds):
    """Overlapping batch acquirers all finish: the canonical ascending
    order makes a waits-for cycle impossible, so the (short) timeout
    escape never fires."""
    table = StripedLockTable(nstripes, timeout=5.0)
    barrier = threading.Barrier(len(write_sets))
    errors = []

    def worker(txid, offsets):
        try:
            barrier.wait(timeout=5.0)
            for _ in range(rounds):
                table.acquire_write_many(txid, offsets)
                table.release_write_many(txid, offsets)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(txid, ws))
        for txid, ws in enumerate(write_sets, start=1)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors, f"deadlock/timeout under ordered acquisition: {errors}"
    assert len(table) == 0


@st.composite
def lock_scripts(draw):
    """A legal single-threaded sequence of transactions over the table.

    Each step is one transaction's full lock lifecycle: read locks on a
    read set, batch write locks, then either a plain release or the
    pending-sync deferral (mark_pending → release_pending).
    """
    steps = draw(
        st.lists(
            st.tuples(
                st.lists(OFFSETS, min_size=0, max_size=3, unique=True),  # reads
                st.lists(OFFSETS, min_size=1, max_size=3, unique=True),  # writes
                st.booleans(),  # defer via pending-sync?
            ),
            min_size=1,
            max_size=8,
        )
    )
    return steps


def _run_script(table, steps):
    for txid, (reads, writes, defer) in enumerate(steps, start=1):
        reads = [off for off in reads if off not in writes]
        for off in reads:
            table.acquire_read(txid, off)
        table.acquire_write_many(txid, writes)
        for off in reads:
            table.release_read(txid, off)
        if defer:
            for off in sorted(writes):
                table.mark_pending(txid, off)
            for off in sorted(writes):
                table.release_pending(off)
        else:
            table.release_write_many(txid, writes)


@given(steps=lock_scripts())
@SETTINGS
def test_stripe_count_invariance(steps):
    """The same script yields identical counters at every stripe width,
    and width 1 matches the baseline global table exactly."""
    snapshots = []
    for nstripes in (1, 4, 32):
        table = StripedLockTable(nstripes, timeout=1.0)
        _run_script(table, steps)
        assert len(table) == 0
        snap = table.stats_snapshot()
        assert snap.stripes == nstripes
        snapshots.append(
            (
                snap.write_acquires,
                snap.read_acquires,
                snap.dependent_waits,
                snap.conflict_waits,
                snap.on_demand_syncs,
            )
        )
    assert snapshots[0] == snapshots[1] == snapshots[2]

    baseline = ObjectLockTable(timeout=1.0)
    _run_script(baseline, steps)
    base = baseline.stats
    assert snapshots[0] == (
        base.write_acquires,
        base.read_acquires,
        base.dependent_waits,
        base.conflict_waits,
        base.on_demand_syncs,
    )


@given(seed=st.integers(0, 2**16), stripes=st.sampled_from([(1, 8), (8, 64)]))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_engine_bit_identity_across_stripe_widths(seed, stripes):
    """A full engine run is bit-identical for any stripe count: locks
    are volatile, so the durable bytes and every device counter match."""
    import itertools

    from repro.tx import kamino_finegrained
    from repro.tx.base import Transaction

    from ..conftest import Pair, build_heap

    results = []
    for nstripes in stripes:
        # txids are a process-global counter and get folded into each
        # durable entry's self-check; pin them so the runs are comparable
        Transaction._ids = itertools.count(1)
        heap, engine, device = build_heap(
            lambda: kamino_finegrained(alpha=0.5, stripes=nstripes), seed=seed
        )
        with heap.transaction():
            objs = [heap.alloc(Pair) for _ in range(4)]
            for i, o in enumerate(objs):
                o.key = seed + i
            heap.set_root(objs[0])
        with heap.transaction():
            root = heap.root(Pair)
            root.tx_add()
            root.key = -1
        heap.drain()
        results.append((device.overlay_fingerprint(), device.stats.snapshot()))

    assert results[0][0] == results[1][0]  # durable bytes
    assert results[0][1] == results[1][1]  # every NVM counter
