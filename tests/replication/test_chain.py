"""Chain protocol: commit flow, consistency, admission, aborts, storage."""

import statistics as st

import pytest

from repro.errors import ChainConfigError, TxAborted
from repro.replication import KAMINO, TRADITIONAL, ChainCluster, run_clients
from repro.workloads import Op, READ, UPDATE, YCSBWorkload


def make_cluster(mode=KAMINO, f=2, **kw):
    kw.setdefault("heap_mb", 4)
    kw.setdefault("value_size", 128)
    return ChainCluster(f=f, mode=mode, **kw)


def write_stream(n, key_space=20, vb=16):
    return [Op(UPDATE, k % key_space, bytes([k % 256]) * vb) for k in range(n)]


class TestConfiguration:
    def test_kamino_uses_f_plus_2(self):
        assert len(make_cluster(KAMINO, f=2).chain) == 4

    def test_traditional_uses_f_plus_1(self):
        assert len(make_cluster(TRADITIONAL, f=2).chain) == 3

    def test_invalid_f(self):
        with pytest.raises(ChainConfigError):
            ChainCluster(f=0)

    def test_invalid_mode(self):
        with pytest.raises(ChainConfigError):
            ChainCluster(mode="raft")

    def test_kamino_only_head_has_backup(self):
        cluster = make_cluster(KAMINO)
        assert hasattr(cluster.head.engine, "backup")
        for node in cluster.chain[1:]:
            assert not hasattr(node.engine, "backup")

    def test_storage_requirement_ordering(self):
        # kamino: (f+2+α)·D  <  2(f+1)·D (naive per-replica mirror) and
        # > (f+1)·D (traditional)
        kamino = make_cluster(KAMINO, f=2).total_storage_bytes
        trad = make_cluster(TRADITIONAL, f=2).total_storage_bytes
        data = make_cluster(TRADITIONAL, f=2).head.heap.region.size
        assert trad == pytest.approx(3 * data, rel=0.01)
        assert kamino == pytest.approx(5 * data, rel=0.01)  # 4 heaps + 1 backup
        assert kamino < 2 * 4 * data


@pytest.mark.parametrize("mode", [TRADITIONAL, KAMINO])
class TestCommitFlow:
    def test_write_reaches_every_replica(self, mode):
        cluster = make_cluster(mode)
        run_clients(cluster, [write_stream(30)])
        cluster.assert_replicas_consistent()
        assert cluster.committed == 30

    def test_read_at_tail_sees_committed_writes(self, mode):
        cluster = make_cluster(mode)
        run_clients(cluster, [write_stream(10, key_space=10)])
        results = []
        cluster.submit_read("get", (3,), lambda r, _l: results.append(r))
        cluster.drain()
        assert results and results[0] is not None

    def test_multiple_clients_all_complete(self, mode):
        cluster = make_cluster(mode)
        streams = [write_stream(25, key_space=100) for _ in range(4)]
        clients = run_clients(cluster, streams)
        assert all(c.done for c in clients)
        cluster.assert_replicas_consistent()

    def test_latencies_recorded(self, mode):
        cluster = make_cluster(mode)
        run_clients(cluster, [write_stream(20)])
        assert len(cluster.write_latencies_ns) == 20
        assert all(l > 0 for l in cluster.write_latencies_ns)

    def test_intent_logs_cleaned_up(self, mode):
        cluster = make_cluster(mode)
        run_clients(cluster, [write_stream(30)])
        for node in cluster.chain[1:]:
            backlog = getattr(node.engine, "cleanup_backlog", 0)
            assert backlog <= 1  # at most the final in-flight window


class TestAdmissionControl:
    def test_dependent_writes_queue_at_head(self):
        cluster = make_cluster(KAMINO)
        ops = [Op(UPDATE, 7, bytes([i]) * 16) for i in range(10)]  # same key
        run_clients(cluster, [ops, list(ops)])  # two clients, same key
        assert cluster.dependent_queued > 0
        cluster.assert_replicas_consistent()

    def test_independent_writes_pipeline(self):
        # distinct keys throughout: consecutive same-key writes would be
        # dependent on their *own* predecessor's backup sync
        cluster = make_cluster(KAMINO)
        a = [Op(UPDATE, 100 + i, b"a" * 16) for i in range(10)]
        b = [Op(UPDATE, 200 + i, b"b" * 16) for i in range(10)]
        run_clients(cluster, [a, b])
        assert cluster.dependent_queued == 0

    def test_same_key_back_to_back_is_dependent(self):
        """The §7.1 burst case: consecutive writes to one key wait for
        the predecessor's backup sync even from a single client."""
        cluster = make_cluster(KAMINO)
        ops = [Op(UPDATE, 1, bytes([i]) * 16) for i in range(5)]
        run_clients(cluster, [ops])
        assert cluster.dependent_queued > 0

    def test_dependent_transactions_serialize_correctly(self):
        cluster = make_cluster(KAMINO)
        ops = [Op(UPDATE, 5, bytes([i]) * 16) for i in range(20)]
        run_clients(cluster, [ops])
        got = []
        cluster.submit_read("get", (5,), lambda r, _l: got.append(r))
        cluster.drain()
        assert got[0][:16] == bytes([19]) * 16  # last write wins


class TestAborts:
    def test_abort_never_forwarded(self):
        cluster = make_cluster(KAMINO)

        def aborting_put(kv, key, value):
            with kv.heap.transaction():
                kv.put(key, value)
                raise TxAborted()

        for node in cluster.chain:
            node.register_proc("aborting_put", aborting_put)
        run_clients(cluster, [write_stream(5, key_space=5)])
        fwd_before = cluster.net.sent
        done = []
        cluster.submit_write("aborting_put", (3, b"x" * 16), [3], lambda r, l: done.append(r))
        cluster.drain()
        assert cluster.aborted == 1
        assert done == [None]
        # no TxForward left the head for the aborted transaction
        assert cluster.net.sent == fwd_before
        cluster.assert_replicas_consistent()

    def test_abort_rolls_back_head_locally(self):
        cluster = make_cluster(KAMINO)

        def aborting_put(kv, key, value):
            with kv.heap.transaction():
                kv.put(key, value)
                raise TxAborted()

        for node in cluster.chain:
            node.register_proc("aborting_put", aborting_put)
        run_clients(cluster, [[Op(UPDATE, 3, b"keep" + b"\0" * 12)]])
        cluster.submit_write("aborting_put", (3, b"bad" + b"\0" * 13), [3])
        cluster.drain()
        got = []
        cluster.submit_read("get", (3,), lambda r, _l: got.append(r))
        cluster.drain()
        assert got[0][:4] == b"keep"
        cluster.assert_replicas_consistent()


class TestPerformanceShape:
    def test_kamino_chain_writes_faster_than_traditional(self):
        """Figure 17's headline: no copies in the critical path at any
        replica makes write latency lower despite one extra hop."""
        lat = {}
        for mode in (TRADITIONAL, KAMINO):
            cluster = ChainCluster(f=2, mode=mode, heap_mb=16, value_size=1024)
            wl = YCSBWorkload("A", nrecords=100, value_size=1024, seed=3)
            load = [Op(UPDATE, k, bytes([k % 256]) * 64) for k in range(100)]
            run_clients(cluster, [load])
            streams = [list(wl.run_ops(80)) for _ in range(2)]
            run_clients(cluster, streams)
            lat[mode] = st.mean(cluster.write_latencies_ns)
            cluster.assert_replicas_consistent()
        assert lat[KAMINO] < lat[TRADITIONAL]
