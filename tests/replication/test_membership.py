"""Membership manager: views, neighbours, failures, joins."""

import pytest

from repro.errors import ReplicationError, StaleViewError
from repro.replication import MembershipManager


@pytest.fixture
def mm():
    return MembershipManager(["a", "b", "c", "d"])


class TestViews:
    def test_initial_view(self, mm):
        assert mm.view_id == 1
        assert mm.order() == ("a", "b", "c", "d")

    def test_empty_chain_rejected(self):
        with pytest.raises(ReplicationError):
            MembershipManager([])

    def test_stale_view_rejected(self, mm):
        mm.declare_failed("b")
        with pytest.raises(StaleViewError):
            mm.validate_view(1)
        mm.validate_view(2)  # current is fine


class TestNeighbours:
    def test_head_has_no_predecessor(self, mm):
        pred, succ = mm.neighbours("a")
        assert pred is None and succ == "b"

    def test_tail_has_no_successor(self, mm):
        pred, succ = mm.neighbours("d")
        assert pred == "c" and succ is None

    def test_middle(self, mm):
        assert mm.neighbours("b") == ("a", "c")

    def test_unknown_node(self, mm):
        with pytest.raises(ReplicationError):
            mm.neighbours("zz")


class TestTransitions:
    def test_declare_failed_bumps_view(self, mm):
        view = mm.declare_failed("b")
        assert view.view_id == 2
        assert view.order == ("a", "c", "d")
        assert mm.neighbours("a") == (None, "c")

    def test_cannot_remove_unknown(self, mm):
        with pytest.raises(ReplicationError):
            mm.declare_failed("zz")

    def test_cannot_empty_chain(self):
        mm = MembershipManager(["solo"])
        with pytest.raises(ReplicationError):
            mm.declare_failed("solo")

    def test_join_at_tail(self, mm):
        view = mm.add_at_tail("e")
        assert view.order[-1] == "e"
        assert mm.view_id == 2

    def test_rejoin_existing_rejected(self, mm):
        with pytest.raises(ReplicationError):
            mm.add_at_tail("a")


class TestFailureDetection:
    def test_quick_reboot_within_timeout(self, mm):
        assert mm.is_quick_reboot("a", went_down_at_ns=0, now_ns=1_000_000)
        assert not mm.is_quick_reboot("a", went_down_at_ns=0, now_ns=10**9)

    def test_rejoin_request_current_member(self, mm):
        view = mm.rejoin_request("b", claimed_view=1)
        assert view.view_id == mm.view_id

    def test_rejoin_request_removed_member(self, mm):
        mm.declare_failed("b")
        with pytest.raises(ReplicationError):
            mm.rejoin_request("b", claimed_view=1)
