"""Membership manager: views, neighbours, failures, joins."""

import pytest

from repro.errors import ReplicationError, StaleViewError
from repro.replication import MembershipManager


@pytest.fixture
def mm():
    return MembershipManager(["a", "b", "c", "d"])


class TestViews:
    def test_initial_view(self, mm):
        assert mm.view_id == 1
        assert mm.order() == ("a", "b", "c", "d")

    def test_empty_chain_rejected(self):
        with pytest.raises(ReplicationError):
            MembershipManager([])

    def test_stale_view_rejected(self, mm):
        mm.declare_failed("b")
        with pytest.raises(StaleViewError):
            mm.validate_view(1)
        mm.validate_view(2)  # current is fine


class TestNeighbours:
    def test_head_has_no_predecessor(self, mm):
        pred, succ = mm.neighbours("a")
        assert pred is None and succ == "b"

    def test_tail_has_no_successor(self, mm):
        pred, succ = mm.neighbours("d")
        assert pred == "c" and succ is None

    def test_middle(self, mm):
        assert mm.neighbours("b") == ("a", "c")

    def test_unknown_node(self, mm):
        with pytest.raises(ReplicationError):
            mm.neighbours("zz")


class TestTransitions:
    def test_declare_failed_bumps_view(self, mm):
        view = mm.declare_failed("b")
        assert view.view_id == 2
        assert view.order == ("a", "c", "d")
        assert mm.neighbours("a") == (None, "c")

    def test_cannot_remove_unknown(self, mm):
        with pytest.raises(ReplicationError):
            mm.declare_failed("zz")

    def test_cannot_empty_chain(self):
        mm = MembershipManager(["solo"])
        with pytest.raises(ReplicationError):
            mm.declare_failed("solo")

    def test_join_at_tail(self, mm):
        view = mm.add_at_tail("e")
        assert view.order[-1] == "e"
        assert mm.view_id == 2

    def test_rejoin_existing_rejected(self, mm):
        with pytest.raises(ReplicationError):
            mm.add_at_tail("a")


class TestDuplicateDeclarations:
    def test_duplicate_failure_declaration_rejected(self, mm):
        mm.declare_failed("b")
        view_before = mm.view_id
        with pytest.raises(ReplicationError, match="duplicate declaration"):
            mm.declare_failed("b")
        assert mm.view_id == view_before  # no second view bump

    def test_duplicate_distinct_from_unknown_node(self, mm):
        with pytest.raises(ReplicationError, match="not in the chain"):
            mm.declare_failed("zz")

    def test_rejoined_node_can_fail_again(self, mm):
        mm.declare_failed("b")
        mm.add_at_tail("b")
        view = mm.declare_failed("b")  # fresh incarnation, fresh failure
        assert "b" not in view.order


class TestReplacement:
    def test_replace_failed_is_single_view_bump(self, mm):
        view = mm.replace_failed("b", "spare")
        assert view.view_id == 2
        assert view.order == ("a", "c", "d", "spare")

    def test_replace_unknown_failed_rejected(self, mm):
        with pytest.raises(ReplicationError, match="not in the chain"):
            mm.replace_failed("zz", "spare")

    def test_replace_already_removed_is_duplicate(self, mm):
        mm.declare_failed("b")
        with pytest.raises(ReplicationError, match="duplicate declaration"):
            mm.replace_failed("b", "spare")

    def test_replace_with_existing_member_rejected(self, mm):
        with pytest.raises(ReplicationError):
            mm.replace_failed("b", "c")

    def test_head_failure_promotes_successor(self, mm):
        view = mm.declare_failed("a")
        assert view.order[0] == "b"
        assert mm.neighbours("b") == (None, "c")

    def test_tail_failure_promotes_predecessor(self, mm):
        view = mm.declare_failed("d")
        assert view.order[-1] == "c"
        assert mm.neighbours("c") == ("b", None)


class TestFailureDetection:
    def test_quick_reboot_within_timeout(self, mm):
        assert mm.is_quick_reboot("a", went_down_at_ns=0, now_ns=1_000_000)
        assert not mm.is_quick_reboot("a", went_down_at_ns=0, now_ns=10**9)

    def test_rejoin_request_current_member(self, mm):
        view = mm.rejoin_request("b", claimed_view=1)
        assert view.view_id == mm.view_id

    def test_rejoin_request_removed_member(self, mm):
        mm.declare_failed("b")
        with pytest.raises(ReplicationError):
            mm.rejoin_request("b", claimed_view=1)

    def test_rejoin_with_stale_view_rejected(self, mm):
        # the view moved on while the replica was down (another failure
        # was handled): the quick-reboot path is no longer safe
        mm.declare_failed("c")
        with pytest.raises(StaleViewError):
            mm.rejoin_request("b", claimed_view=1)

    def test_rejoin_with_current_view_accepted(self, mm):
        mm.declare_failed("c")
        view = mm.rejoin_request("b", claimed_view=mm.view_id)
        assert view.view_id == mm.view_id
