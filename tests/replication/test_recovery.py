"""Chain failures: quick reboots (Figure 9), fail-stop repair, joins."""

import pytest

from repro.nvm import CrashPolicy
from repro.replication import (
    KAMINO,
    TRADITIONAL,
    ChainCluster,
    fail_stop,
    join_new_replica,
    quick_reboot,
    run_clients,
)
from repro.replication.node import ROLE_HEAD, ROLE_TAIL
from repro.workloads import Op, UPDATE


def loaded_cluster(mode=KAMINO, f=2, nkeys=30):
    cluster = ChainCluster(f=f, mode=mode, heap_mb=4, value_size=128)
    ops = [Op(UPDATE, k, bytes([k + 1]) * 16) for k in range(nkeys)]
    run_clients(cluster, [ops])
    return cluster


def write_more(cluster, lo, hi):
    ops = [Op(UPDATE, k, bytes([(k + 7) % 256]) * 16) for k in range(lo, hi)]
    run_clients(cluster, [ops])


class TestQuickReboot:
    @pytest.mark.parametrize("index", [1, 2, 3])
    @pytest.mark.parametrize("policy", [CrashPolicy.DROP_ALL, CrashPolicy.RANDOM])
    def test_non_head_reboot_rolls_forward(self, index, policy):
        cluster = loaded_cluster(KAMINO)
        quick_reboot(cluster, index, policy)
        cluster.assert_replicas_consistent()
        write_more(cluster, 0, 10)
        cluster.assert_replicas_consistent()

    @pytest.mark.parametrize("policy", [CrashPolicy.DROP_ALL, CrashPolicy.RANDOM])
    def test_head_reboot_rolls_back_from_local_backup(self, policy):
        cluster = loaded_cluster(KAMINO)
        quick_reboot(cluster, 0, policy)
        cluster.assert_replicas_consistent()
        write_more(cluster, 0, 10)
        cluster.assert_replicas_consistent()

    def test_traditional_reboot_uses_undo_logs(self):
        cluster = loaded_cluster(TRADITIONAL)
        quick_reboot(cluster, 1, CrashPolicy.RANDOM)
        cluster.assert_replicas_consistent()

    def test_reboot_with_genuinely_torn_replica_state(self):
        """Crash a mid replica while a write is mid-flight down the
        chain; the reboot must repair the torn range from its
        predecessor."""
        cluster = loaded_cluster(KAMINO)
        # start writes but stop the simulator before they complete
        ops = [Op(UPDATE, k, bytes([99]) * 16) for k in range(5)]
        for op in ops:
            cluster.submit_write("put", (op.key, op.value), [op.key])
        cluster.sim.run(max_events=6)  # partially through the chain
        quick_reboot(cluster, 2, CrashPolicy.RANDOM)
        cluster.drain()
        cluster.assert_replicas_consistent()


class TestFailStop:
    def test_mid_failure_chain_shrinks_and_continues(self):
        cluster = loaded_cluster(KAMINO)
        fail_stop(cluster, 1)
        assert len(cluster.chain) == 3
        write_more(cluster, 0, 10)
        cluster.assert_replicas_consistent()

    def test_tail_failure_promotes_predecessor(self):
        cluster = loaded_cluster(KAMINO)
        fail_stop(cluster, len(cluster.chain) - 1)
        assert cluster.tail.role == ROLE_TAIL
        write_more(cluster, 0, 10)
        cluster.assert_replicas_consistent()

    def test_head_failure_promotes_successor_with_backup(self):
        cluster = loaded_cluster(KAMINO)
        fail_stop(cluster, 0)
        assert cluster.head.role == ROLE_HEAD
        assert hasattr(cluster.head.engine, "backup")
        write_more(cluster, 0, 10)
        cluster.assert_replicas_consistent()

    def test_traditional_head_failure(self):
        cluster = loaded_cluster(TRADITIONAL)
        fail_stop(cluster, 0)
        write_more(cluster, 0, 10)
        cluster.assert_replicas_consistent()

    def test_view_id_bumps_per_failure(self):
        cluster = loaded_cluster(KAMINO)
        v0 = cluster.view_id
        fail_stop(cluster, 1)
        assert cluster.view_id == v0 + 1

    def test_tolerates_f_failures_with_one_quick_reboot(self):
        """§5's sizing argument: with f+2 replicas, f fail-stops plus one
        quick reboot with an incomplete transaction is survivable."""
        cluster = loaded_cluster(KAMINO, f=2)  # 4 replicas
        fail_stop(cluster, 1)
        fail_stop(cluster, 1)
        assert len(cluster.chain) == 2
        quick_reboot(cluster, 1, CrashPolicy.RANDOM)
        write_more(cluster, 0, 10)
        cluster.assert_replicas_consistent()


class TestJoin:
    def test_new_replica_joins_at_tail_with_state(self):
        cluster = loaded_cluster(KAMINO)
        fail_stop(cluster, 1)
        node = join_new_replica(cluster)
        assert cluster.tail is node
        cluster.assert_replicas_consistent()
        write_more(cluster, 0, 10)
        cluster.assert_replicas_consistent()

    def test_join_then_survive_more_failures(self):
        cluster = loaded_cluster(KAMINO)
        fail_stop(cluster, 2)
        join_new_replica(cluster)
        fail_stop(cluster, 1)
        write_more(cluster, 0, 10)
        cluster.assert_replicas_consistent()
