"""Protocol hardening: timeouts, retransmission, dedup, degradation,
back-pressure, and automatic node replacement."""

import pytest

from repro.errors import ClientStuckError, ClusterDegraded, RequestTimeoutError
from repro.replication import (
    KAMINO,
    ChainCluster,
    RetryPolicy,
    join_new_replica,
    replace_node,
    run_clients,
)
from repro.workloads import Op, UPDATE


def small_cluster(**kw):
    kw.setdefault("f", 1)
    kw.setdefault("mode", KAMINO)
    kw.setdefault("heap_mb", 2)
    kw.setdefault("value_size", 64)
    return ChainCluster(**kw)


class TestRetransmission:
    def test_dropped_forward_is_retransmitted_after_heal(self):
        cluster = small_cluster()
        results = []
        cluster.net.cut_link("r0", "r1")
        cluster.sim.at(1_000_000.0, cluster.net.heal_link, "r0", "r1")
        cluster.submit_write("put", (1, b"v"), [1], lambda r, lat: results.append(r))
        cluster.drain()
        assert cluster.committed == 1
        assert cluster.retransmissions >= 1
        assert len(results) == 1 and not isinstance(results[0], Exception)
        cluster.assert_replicas_consistent()

    def test_backoff_is_capped_exponential(self):
        retry = RetryPolicy(timeout_ns=100.0, backoff=2.0, max_timeout_ns=400.0)
        assert [retry.timeout_for(a) for a in range(5)] == [
            100.0, 200.0, 400.0, 400.0, 400.0
        ]

    def test_exhausted_retries_surface_timeout_exactly_once(self):
        cluster = small_cluster()
        results = []
        cluster.net.cut_link("r0", "r1")  # never healed
        cluster.submit_write("put", (1, b"v"), [1], lambda r, lat: results.append(r))
        cluster.drain()
        assert len(results) == 1
        assert isinstance(results[0], RequestTimeoutError)
        assert cluster.timed_out == 1
        assert cluster.committed == 0
        # keys were released: a later write to the same key admits
        cluster.net.heal_link("r0", "r1")
        cluster.submit_write("put", (1, b"w"), [1], lambda r, lat: results.append(r))
        cluster.drain()
        assert not isinstance(results[1], Exception)
        assert cluster.committed == 1


class TestDeduplication:
    def test_inflight_duplicate_absorbed(self):
        cluster = small_cluster()
        results = []
        cb = lambda r, lat: results.append(r)  # noqa: E731
        cluster.submit_write("put", (1, b"v"), [1], cb,
                             client_id="c0", request_id=0)
        cluster.submit_write("put", (1, b"v"), [1], cb,
                             client_id="c0", request_id=0)
        cluster.drain()
        assert cluster.committed == 1
        assert cluster.duplicate_requests == 1
        assert len(results) == 1  # the duplicate is silently absorbed

    def test_completed_duplicate_replayed_from_dedup_table(self):
        cluster = small_cluster()
        results = []
        cb = lambda r, lat: results.append(r)  # noqa: E731
        cluster.submit_write("put", (1, b"v"), [1], cb,
                             client_id="c0", request_id=0)
        cluster.drain()
        committed_before = cluster.committed
        cluster.submit_write("put", (1, b"v"), [1], cb,
                             client_id="c0", request_id=0)
        cluster.drain()
        assert cluster.committed == committed_before  # not re-executed
        assert cluster.duplicate_requests == 1
        assert len(results) == 2  # but the reply was replayed


class TestDegradation:
    def test_below_quorum_rejects_with_typed_error(self):
        cluster = small_cluster(write_quorum=5)  # 3 replicas < 5
        results = []
        cluster.submit_write("put", (1, b"v"), [1],
                             lambda r, lat: results.append(r))
        cluster.drain()
        assert len(results) == 1
        assert isinstance(results[0], ClusterDegraded)
        assert cluster.degraded_rejections == 1
        assert cluster.committed == 0

    def test_circuit_breaker_opens_after_repeated_failures(self):
        cluster = small_cluster(retry=RetryPolicy(max_retries=2),
                                degrade_after=1)
        results = []
        cluster.net.cut_link("r0", "r1")
        cluster.submit_write("put", (1, b"v"), [1],
                             lambda r, lat: results.append(r))
        cluster.drain()
        assert isinstance(results[0], RequestTimeoutError)
        assert cluster.degraded  # breaker open within the cooldown window
        cluster.submit_write("put", (2, b"w"), [2],
                             lambda r, lat: results.append(r))
        assert isinstance(results[1], ClusterDegraded)  # fast rejection
        assert cluster.degraded_rejections == 1

    def test_queue_policy_parks_then_readmits_on_view_change(self):
        cluster = ChainCluster(f=2, mode=KAMINO, heap_mb=2, value_size=64,
                               write_quorum=5, degraded_policy="queue")
        results = []
        cluster.submit_write("put", (1, b"v"), [1],
                             lambda r, lat: results.append(r))
        cluster.drain()
        assert results == []  # parked, not rejected
        join_new_replica(cluster)  # 5th replica restores the quorum
        cluster.drain()
        assert len(results) == 1 and not isinstance(results[0], Exception)
        assert cluster.committed == 1

    def test_queue_policy_readmits_when_the_breaker_closes(self):
        # the breaker-close readmit path (docs/FAULTS.md): a write parked
        # while the breaker is open drains back through admission on
        # close_breaker, counted by degraded_readmissions
        cluster = small_cluster(degraded_policy="queue")
        cluster.trip_breaker()
        results = []
        cluster.submit_write("put", (1, b"parked"), [1],
                             lambda r, lat: results.append(r))
        cluster.drain()
        assert results == []  # parked, not rejected
        assert cluster.degraded_readmissions == 0
        cluster.close_breaker()
        cluster.drain()
        assert len(results) == 1 and not isinstance(results[0], Exception)
        assert cluster.committed == 1
        assert cluster.degraded_readmissions == 1

    def test_reads_degrade_to_deepest_live_replica(self):
        cluster = small_cluster()
        cluster.submit_write("put", (1, b"v"), [1])
        cluster.drain()
        cluster.net.fail_node(cluster.tail.node_id)
        got = []
        cluster.submit_read("get", (1,), lambda r, lat: got.append(r))
        cluster.drain()
        assert got and got[0] is not None and got[0].startswith(b"v")

    def test_reads_with_no_live_replica_reject(self):
        cluster = small_cluster()
        for node in cluster.chain:
            cluster.net.fail_node(node.node_id)
        got = []
        cluster.submit_read("get", (1,), lambda r, lat: got.append(r))
        cluster.drain()
        assert len(got) == 1
        assert isinstance(got[0], ClusterDegraded)


class TestBackPressure:
    def test_backup_lag_bound_stalls_admission(self):
        cluster = small_cluster(max_backup_lag=2)
        for k in range(10):
            cluster.submit_write("put", (k, bytes([k + 1]) * 8), [k])
        cluster.drain()
        assert cluster.backpressure_stalls > 0
        assert cluster.committed == 10
        cluster.assert_replicas_consistent()


class TestClientStuck:
    def test_unhardened_client_stuck_raises_typed_error(self):
        cluster = small_cluster(retry=RetryPolicy.disabled())
        cluster.net.cut_link("r0", "r1")
        with pytest.raises(ClientStuckError) as exc:
            run_clients(cluster, [[Op(UPDATE, 1, b"v")]])
        assert exc.value.client_ids == ("c0",)

    def test_raise_on_stuck_false_returns_clients(self):
        cluster = small_cluster(retry=RetryPolicy.disabled())
        cluster.net.cut_link("r0", "r1")
        clients = run_clients(cluster, [[Op(UPDATE, 1, b"v")]],
                              raise_on_stuck=False)
        assert not clients[0].done

    def test_hardened_clients_survive_transient_cut(self):
        cluster = small_cluster()
        cluster.net.cut_link("r0", "r1")
        cluster.sim.at(1_000_000.0, cluster.net.heal_link, "r0", "r1")
        clients = run_clients(
            cluster, [[Op(UPDATE, k, bytes([k + 1]) * 8) for k in range(4)]]
        )
        assert clients[0].done
        assert not clients[0].failed
        cluster.assert_replicas_consistent()


class TestUnknownOutcomes:
    def test_late_reply_after_timeout_is_not_double_applied(self):
        # a slow replica pushes the first op past the client timeout: the
        # rid lands in unknown_rids and is resubmitted under the same
        # identity, so when the original's reply finally arrives the head
        # must have absorbed the duplicate — one execution, not two
        cluster = small_cluster()
        cluster.net.set_node_delay("r1", 600_000.0)
        cluster.sim.at(3_000_000.0, cluster.net.clear_faults)
        clients = run_clients(
            cluster, [[Op(UPDATE, 1, b"a" * 8), Op(UPDATE, 1, b"b" * 8)]]
        )
        client = clients[0]
        assert client.done and not client.failed
        assert 0 in client.unknown_rids  # the timeout was recorded
        assert cluster.duplicate_requests >= 1  # the resubmit was absorbed
        assert cluster.committed == 2  # each op executed exactly once
        # the late rid-0 completion must not clobber the later write
        assert cluster.kv_states()[-1][1].startswith(b"b")
        cluster.assert_replicas_consistent()


class TestNodeReplacement:
    def test_replace_mid_replica_single_view_bump(self):
        cluster = ChainCluster(f=2, mode=KAMINO, heap_mb=2, value_size=64)
        for k in range(4):
            cluster.submit_write("put", (k, bytes([k + 1]) * 8), [k])
        cluster.drain()
        failed_id = cluster.chain[1].node_id
        spare = replace_node(cluster, 1)
        assert cluster.view_id == 2  # remove + splice in ONE bump
        assert failed_id not in [n.node_id for n in cluster.chain]
        assert cluster.chain[-1] is spare
        assert tuple(n.node_id for n in cluster.chain) == cluster.membership.order()
        # the spare caught up via state transfer and serves new writes
        cluster.submit_write("put", (9, b"after"), [9])
        cluster.drain()
        cluster.assert_replicas_consistent()
        assert cluster.kv_states()[-1][9].startswith(b"after")

    def test_replace_keeps_f_target(self):
        cluster = ChainCluster(f=2, mode=KAMINO, heap_mb=2, value_size=64)
        n_before = len(cluster.chain)
        replace_node(cluster, 2)
        assert len(cluster.chain) == n_before
