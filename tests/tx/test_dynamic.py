"""Kamino-Tx-Dynamic: partial backup, LRU, pinning, copy-on-miss."""

import pytest

from repro.errors import HeapError
from repro.tx import DynamicBackup, kamino_dynamic, verify_backup_consistency

from ..conftest import Pair, build_heap


@pytest.fixture
def setup():
    heap, engine, device = build_heap(lambda: kamino_dynamic(alpha=0.3))
    with heap.transaction():
        objs = [heap.alloc(Pair) for _ in range(20)]
        for i, o in enumerate(objs):
            o.key = i
    heap.drain()
    return heap, engine, device, objs


class TestCopyOnMiss:
    def test_first_write_misses_then_hits(self, setup):
        heap, engine, _, objs = setup
        backup = engine.backup
        misses_before = backup.misses
        with heap.transaction():
            objs[0].tx_add()
            objs[0].key = 100
        heap.drain()
        assert backup.misses > misses_before
        hits_before = backup.hits
        with heap.transaction():
            objs[0].tx_add()
            objs[0].key = 101
        heap.drain()
        assert backup.hits > hits_before

    def test_miss_copies_in_critical_path(self):
        heap, engine, device = build_heap(lambda: kamino_dynamic(alpha=0.3))
        with heap.transaction():
            p = heap.alloc(Pair)
        heap.drain()
        # evict nothing: p simply has no copy yet
        before = device.stats.snapshot()
        tx = heap.begin()
        p.tx_add()  # miss: copy-on-demand happens here
        crit = device.stats.delta(before)
        assert crit.copy_bytes > 0
        p.key = 5
        tx.commit()
        heap.drain()

    def test_hit_copies_nothing_in_critical_path(self, setup):
        heap, engine, device, objs = setup
        with heap.transaction():
            objs[3].tx_add()
            objs[3].key = 1
        heap.drain()
        before = device.stats.snapshot()
        with heap.transaction():
            objs[3].tx_add()  # hit: no critical-path copy
            objs[3].key = 2
        crit = device.stats.delta(before)
        assert crit.copy_bytes == 0
        heap.drain()

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            DynamicBackup(alpha=0.0)
        with pytest.raises(ValueError):
            DynamicBackup(alpha=1.5)


class TestRollback:
    def test_abort_restores_via_partial_backup(self, setup):
        heap, engine, _, objs = setup
        with heap.transaction():
            objs[5].tx_add()
            objs[5].key = 500
        heap.drain()
        with pytest.raises(RuntimeError):
            with heap.transaction():
                objs[5].tx_add()
                objs[5].key = 999
                raise RuntimeError("boom")
        assert objs[5].key == 500
        heap.drain()
        verify_backup_consistency(heap)

    def test_consistency_invariant_after_many_updates(self, setup):
        heap, engine, _, objs = setup
        for round_ in range(3):
            for o in objs:
                with heap.transaction():
                    o.tx_add()
                    o.key = o.key + 1
        heap.drain()
        verify_backup_consistency(heap)


class TestEvictionAndPinning:
    def test_eviction_under_pressure(self):
        # a tiny backup: writes to many distinct objects must evict
        heap, engine, device = build_heap(
            lambda: kamino_dynamic(alpha=0.01), heap_size=2 << 20
        )
        objs = []
        for _ in range(6):
            with heap.transaction():
                objs.extend(heap.alloc(Pair) for _ in range(60))
            heap.drain()
        for o in objs:
            with heap.transaction():
                o.tx_add()
                o.key = 1
            heap.drain()
        assert engine.backup.evictions > 0
        verify_backup_consistency(heap)

    def test_storage_bounded_by_alpha(self):
        heap, engine, _ = build_heap(lambda: kamino_dynamic(alpha=0.25))
        backup_region = engine.backup.region
        assert backup_region.size <= 0.3 * heap.region.size

    def test_free_drops_backup_entry(self, setup):
        heap, engine, _, objs = setup
        with heap.transaction():
            objs[7].tx_add()
            objs[7].key = 5
        heap.drain()
        off = objs[7].block_offset
        assert engine.backup.lookup.get(off) is not None
        with heap.transaction():
            heap.free(objs[7])
        heap.drain()
        assert engine.backup.lookup.get(off) is None

    def test_hit_rate_reported(self, setup):
        heap, engine, _, objs = setup
        for _ in range(5):
            with heap.transaction():
                objs[0].tx_add()
                objs[0].key += 1
            heap.drain()
        assert 0.0 < engine.backup.hit_rate <= 1.0
