"""Object lock table: reentrancy, upgrade, pending release, on-demand sync."""

import threading

import pytest

from repro.errors import LockTimeoutError
from repro.tx import ObjectLockTable


class TestBasicLocking:
    def test_write_lock_reentrant(self):
        t = ObjectLockTable()
        t.acquire_write(1, 100)
        t.acquire_write(1, 100)  # no deadlock
        assert t.holder(100) == 1

    def test_read_then_write_upgrade(self):
        t = ObjectLockTable()
        t.acquire_read(1, 100)
        t.acquire_write(1, 100)
        assert t.holder(100) == 1

    def test_writer_may_read(self):
        t = ObjectLockTable()
        t.acquire_write(1, 100)
        t.acquire_read(1, 100)

    def test_multiple_readers(self):
        t = ObjectLockTable()
        t.acquire_read(1, 100)
        t.acquire_read(2, 100)
        assert t.is_locked(100)

    def test_release_write(self):
        t = ObjectLockTable()
        t.acquire_write(1, 100)
        t.release_write(1, 100)
        assert not t.is_locked(100)
        t.acquire_write(2, 100)  # now free for others

    def test_release_read(self):
        t = ObjectLockTable()
        t.acquire_read(1, 100)
        t.release_read(1, 100)
        assert not t.is_locked(100)

    def test_entries_garbage_collected(self):
        t = ObjectLockTable()
        for off in range(50):
            t.acquire_write(1, off)
            t.release_write(1, off)
        assert len(t) == 0

    def test_conflicting_writer_times_out(self):
        t = ObjectLockTable(timeout=0.1)
        t.acquire_write(1, 100)
        with pytest.raises(LockTimeoutError):
            t.acquire_write(2, 100)

    def test_reader_blocks_writer(self):
        t = ObjectLockTable(timeout=0.1)
        t.acquire_read(1, 100)
        with pytest.raises(LockTimeoutError):
            t.acquire_write(2, 100)


class TestPendingSync:
    def test_pending_blocks_next_writer_until_release(self):
        t = ObjectLockTable(timeout=0.1)
        t.acquire_write(1, 100)
        t.mark_pending(1, 100)
        assert t.is_pending(100)
        with pytest.raises(LockTimeoutError):
            t.acquire_write(2, 100)
        t.release_pending(100)
        t.acquire_write(2, 100)

    def test_pending_blocks_readers_too(self):
        t = ObjectLockTable(timeout=0.1)
        t.acquire_write(1, 100)
        t.mark_pending(1, 100)
        with pytest.raises(LockTimeoutError):
            t.acquire_read(2, 100)

    def test_resolver_called_for_pending(self):
        calls = []
        t = ObjectLockTable()
        t.acquire_write(1, 100)
        t.mark_pending(1, 100)
        t.set_resolver(lambda off: (calls.append(off), t.release_pending(off)))
        t.acquire_write(2, 100)
        assert calls == [100]
        assert t.stats.on_demand_syncs == 1
        assert t.stats.dependent_waits >= 1

    def test_dependent_wait_counted(self):
        t = ObjectLockTable()
        t.acquire_write(1, 100)
        t.mark_pending(1, 100)
        t.set_resolver(lambda off: t.release_pending(off))
        t.acquire_read(2, 100)
        assert t.stats.dependent_waits == 1

    def test_independent_objects_never_wait(self):
        t = ObjectLockTable()
        t.acquire_write(1, 100)
        t.mark_pending(1, 100)
        t.acquire_write(2, 200)  # different object: no wait
        assert t.stats.dependent_waits == 0

    def test_background_release_unblocks_waiter(self):
        t = ObjectLockTable(timeout=5.0)
        t.acquire_write(1, 100)
        t.mark_pending(1, 100)
        acquired = threading.Event()

        def waiter():
            t.acquire_write(2, 100)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        t.release_pending(100)
        assert acquired.wait(timeout=2.0)
        thread.join()

    def test_force_pending_for_recovery(self):
        t = ObjectLockTable()
        t.force_pending(100)
        assert t.is_pending(100)
        t.release_pending(100)
        assert not t.is_locked(100)
