"""Transaction core API: states, nesting, helpers, run_transaction."""

import pytest

from repro.errors import TxAborted, TxError
from repro.tx import IntentKind, TxState, UndoLogEngine, run_transaction
from repro.tx.base import RecoveryReport, Transaction

from ..conftest import Pair, build_heap


@pytest.fixture
def heap_and_engine():
    heap, engine, _ = build_heap(UndoLogEngine)
    return heap, engine


class TestTransactionStates:
    def test_fresh_transaction_active(self, heap_and_engine):
        _, engine = heap_and_engine
        tx = engine.begin()
        assert tx.state is TxState.ACTIVE
        tx.commit()
        assert tx.state is TxState.COMMITTED

    def test_commit_after_commit_rejected(self, heap_and_engine):
        _, engine = heap_and_engine
        tx = engine.begin()
        tx.commit()
        with pytest.raises(TxError):
            tx.commit()

    def test_abort_after_commit_rejected(self, heap_and_engine):
        _, engine = heap_and_engine
        tx = engine.begin()
        tx.commit()
        with pytest.raises(TxError):
            tx.abort()

    def test_add_after_commit_rejected(self, heap_and_engine):
        _, engine = heap_and_engine
        tx = engine.begin()
        tx.commit()
        with pytest.raises(TxError):
            tx.add(0, 8)

    def test_txids_unique_and_increasing(self, heap_and_engine):
        _, engine = heap_and_engine
        a = engine.begin()
        b = engine.begin()
        assert b.txid > a.txid
        a.commit()
        b.commit()

    def test_zero_size_intent_rejected(self, heap_and_engine):
        _, engine = heap_and_engine
        tx = engine.begin()
        with pytest.raises(TxError):
            tx.add(100, 0)
        tx.abort()


class TestIntentTracking:
    def test_covers_write(self, heap_and_engine):
        heap, engine = heap_and_engine
        with heap.transaction() as tx:
            p = heap.alloc(Pair)
            blk = p.block_offset
            assert tx.covers_write(blk, 8)
            assert tx.covers_write(blk + 16, 32)
            assert not tx.covers_write(blk + 4096, 8)

    def test_has_intent_exact_start(self, heap_and_engine):
        heap, engine = heap_and_engine
        with heap.transaction() as tx:
            p = heap.alloc(Pair)
            assert tx.has_intent(p.block_offset)
            assert not tx.has_intent(p.block_offset + 8)

    def test_intent_kinds_recorded(self, heap_and_engine):
        heap, engine = heap_and_engine
        with heap.transaction() as tx:
            p = heap.alloc(Pair)
            kinds = {kind for _o, _s, kind in tx.intents}
            assert IntentKind.ALLOC in kinds
            assert IntentKind.WRITE in kinds  # allocator bitmap word


class TestCallbacks:
    def test_on_commit_runs_only_on_commit(self, heap_and_engine):
        _, engine = heap_and_engine
        fired = []
        tx = engine.begin()
        tx.on_commit.append(lambda: fired.append("c"))
        tx.on_abort.append(lambda: fired.append("a"))
        tx.commit()
        assert fired == ["c"]

    def test_on_abort_runs_in_reverse_order(self, heap_and_engine):
        _, engine = heap_and_engine
        fired = []
        tx = engine.begin()
        tx.on_abort.append(lambda: fired.append(1))
        tx.on_abort.append(lambda: fired.append(2))
        tx.abort()
        assert fired == [2, 1]


class TestRunTransaction:
    def test_commits_on_success(self, heap_and_engine):
        _, engine = heap_and_engine
        tx = run_transaction(engine, lambda tx: None)
        assert tx.state is TxState.COMMITTED

    def test_swallows_intentional_abort(self, heap_and_engine):
        _, engine = heap_and_engine

        def body(tx):
            raise TxAborted()

        tx = run_transaction(engine, body)
        assert tx.state is TxState.ABORTED

    def test_propagates_other_errors_after_rollback(self, heap_and_engine):
        _, engine = heap_and_engine

        def body(tx):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            run_transaction(engine, body)


class TestRecoveryReport:
    def test_repr(self):
        r = RecoveryReport()
        r.rolled_back = 2
        assert "back=2" in repr(r)
