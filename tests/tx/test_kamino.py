"""Kamino-Tx engine semantics: critical path, async sync, dependent txs."""

import pytest

from repro.errors import TxAborted
from repro.tx import kamino_simple, verify_backup_consistency
from repro.tx.intent_log import SlotState

from ..conftest import Pair, build_heap


@pytest.fixture
def setup():
    heap, engine, device = build_heap(kamino_simple)
    with heap.transaction():
        p = heap.alloc(Pair)
        p.key = 1
        p.value = "base"
        heap.set_root(p)
    heap.drain()
    return heap, engine, device, p


class TestCriticalPath:
    def test_no_copies_in_critical_path(self, setup):
        """The headline claim: commit moves no data (only log + flushes)."""
        heap, engine, device, p = setup
        before = device.stats.snapshot()
        with heap.transaction():
            p.tx_add()
            p.key = 2
        crit = device.stats.delta(before)
        assert crit.copy_bytes == 0  # nothing copied before commit returned
        before = device.stats.snapshot()
        heap.drain()
        post = device.stats.delta(before)
        assert post.copy_bytes > 0  # the copying happened afterwards

    def test_undo_copies_in_critical_path(self):
        """Contrast: the baseline copies during the transaction itself."""
        from repro.tx import UndoLogEngine

        heap, engine, device = build_heap(UndoLogEngine)
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 1
        before = device.stats.snapshot()
        with heap.transaction():
            p.tx_add()
            p.key = 2
        crit = device.stats.delta(before)
        assert crit.copy_bytes > 0

    def test_engine_flags(self, setup):
        _, engine, _, _ = setup
        assert engine.copies_in_critical_path is False
        assert engine.name == "kamino-simple"


class TestAsyncSync:
    def test_commit_leaves_work_pending(self, setup):
        heap, engine, _, p = setup
        with heap.transaction():
            p.tx_add()
            p.key = 10
        assert engine.pending_count == 1
        assert engine.locks.is_pending(p.block_offset)

    def test_sync_pending_drains_and_releases(self, setup):
        heap, engine, _, p = setup
        with heap.transaction():
            p.tx_add()
            p.key = 10
        assert engine.sync_pending() == 1
        assert engine.pending_count == 0
        assert not engine.locks.is_locked(p.block_offset)
        verify_backup_consistency(heap)

    def test_sync_limit_respected(self, setup):
        heap, engine, _, p = setup
        for i in range(3):
            with heap.transaction():
                p.tx_add()
                p.key = i
            # distinct txs on the same object: resolver syncs between them
        # at least the last one is pending
        assert engine.pending_count >= 1
        assert engine.sync_pending(limit=1) <= 1

    def test_backup_converges_to_main(self, setup):
        heap, engine, _, p = setup
        for i in range(5):
            with heap.transaction():
                p.tx_add()
                p.key = i
                p.value = f"v{i}"
        heap.drain()
        verify_backup_consistency(heap)
        assert engine.backup.mirror_equals_main(p.block_offset, 64)

    def test_eager_sync_mode(self):
        heap, engine, device = build_heap(lambda: kamino_simple(eager_sync=True))
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 5
        assert engine.pending_count == 0
        verify_backup_consistency(heap)


class TestDependentTransactions:
    def test_dependent_write_triggers_on_demand_sync(self, setup):
        heap, engine, _, p = setup
        with heap.transaction():
            p.tx_add()
            p.key = 1
        base_syncs = engine.locks.stats.on_demand_syncs
        with heap.transaction():  # same object: dependent
            p.tx_add()
            p.key = 2
        assert engine.locks.stats.on_demand_syncs > base_syncs

    def test_dependent_read_also_waits(self, setup):
        heap, engine, _, p = setup
        with heap.transaction():
            p.tx_add()
            p.key = 1
        base = engine.locks.stats.dependent_waits
        with heap.transaction():
            _ = p.key  # transactional read of a pending object
        assert engine.locks.stats.dependent_waits > base

    def test_independent_transactions_do_not_wait(self, setup):
        heap, engine, _, p = setup
        with heap.transaction():
            q = heap.alloc(Pair)
        heap.drain()
        base = engine.locks.stats.dependent_waits
        with heap.transaction():
            p.tx_add()
            p.key = 1
        with heap.transaction():  # different object
            q.tx_add()
            q.key = 2
        # q's lock acquisition must not have waited on p's pending sync
        assert engine.locks.stats.dependent_waits == base


class TestAbort:
    def test_abort_restores_from_backup(self, setup):
        heap, engine, _, p = setup
        with pytest.raises(TxAborted):
            with heap.transaction():
                p.tx_add()
                p.key = 999
                p.value = "doomed"
                raise TxAborted()
        assert p.key == 1
        assert p.value == "base"
        verify_backup_consistency(heap)

    def test_abort_releases_locks_immediately(self, setup):
        heap, engine, _, p = setup
        with pytest.raises(TxAborted):
            with heap.transaction():
                p.tx_add()
                p.key = 999
                raise TxAborted()
        assert not engine.locks.is_locked(p.block_offset)
        assert engine.pending_count == 0

    def test_abort_of_pending_object_syncs_first(self, setup):
        heap, engine, _, p = setup
        with heap.transaction():
            p.tx_add()
            p.key = 50
        # p pending; a dependent tx that aborts must still see key == 50
        with pytest.raises(TxAborted):
            with heap.transaction():
                p.tx_add()
                p.key = 60
                raise TxAborted()
        assert p.key == 50
        heap.drain()
        verify_backup_consistency(heap)


class TestLogSlotLifecycle:
    def test_slot_released_only_after_sync(self, setup):
        heap, engine, _, p = setup
        free_before = engine.log.free_slots
        with heap.transaction():
            p.tx_add()
            p.key = 3
        assert engine.log.free_slots == free_before - 1
        heap.drain()
        assert engine.log.free_slots == free_before

    def test_commit_record_is_durable_before_sync(self, setup):
        heap, engine, device, p = setup
        with heap.transaction():
            p.tx_add()
            p.key = 3
        # before sync: durable slot state must be COMMITTED
        recs = engine.log.scan()
        assert any(r.state is SlotState.COMMITTED for r in recs)
        heap.drain()
