"""BackupSyncer thread lifecycle and FullBackup mechanics."""

import threading
import time

import pytest

from repro.tx import BackupSyncer, FullBackup, kamino_simple, verify_backup_consistency

from ..conftest import Pair, build_heap


class TestBackupSyncer:
    def test_drains_in_background(self):
        heap, engine, _ = build_heap(kamino_simple)
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 1
        assert engine.pending_count == 1
        with BackupSyncer(engine, poll_interval=0.001) as syncer:
            deadline = time.monotonic() + 5
            while engine.pending_count and time.monotonic() < deadline:
                time.sleep(0.002)
        assert engine.pending_count == 0
        assert syncer.synced >= 1
        verify_backup_consistency(heap)

    def test_stop_drains_remaining(self):
        heap, engine, _ = build_heap(kamino_simple)
        syncer = BackupSyncer(engine).start()
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 2
        syncer.stop(drain=True)
        assert engine.pending_count == 0

    def test_double_start_rejected(self):
        heap, engine, _ = build_heap(kamino_simple)
        syncer = BackupSyncer(engine).start()
        with pytest.raises(RuntimeError):
            syncer.start()
        syncer.stop()

    def test_restartable_after_stop(self):
        heap, engine, _ = build_heap(kamino_simple)
        syncer = BackupSyncer(engine)
        syncer.start()
        syncer.stop()
        syncer.start()
        syncer.stop()

    def test_crashed_device_surfaces_summary_not_exception(self):
        """A power failure under the syncer must not explode __exit__.

        The pending roll-forwards belong to crash recovery at that
        point; stop(drain=True) records a clean crash_summary instead of
        raising DeviceCrashedError out of the with-block teardown.
        """
        heap, engine, device = build_heap(kamino_simple)
        with BackupSyncer(engine, poll_interval=0.001) as syncer:
            with heap.transaction():
                p = heap.alloc(Pair)
                p.key = 7
            device.crash()  # power failure on "another thread"
        assert syncer.crashed
        assert "crash" in syncer.crash_summary
        # a restart (next recovered run) begins with a clean slate
        device.restart()
        syncer.start()
        assert syncer.crash_summary is None
        syncer.stop()

    def test_explicit_drain_after_crash_records_summary(self):
        heap, engine, device = build_heap(kamino_simple)
        syncer = BackupSyncer(engine).start()
        device.crash()
        syncer.stop(drain=True)  # must not raise
        assert syncer.crashed


class TestThrottle:
    def test_no_bound_never_waits(self):
        heap, engine, _ = build_heap(kamino_simple)
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 1
        syncer = BackupSyncer(engine)  # max_lag=None
        assert syncer.throttle()
        assert syncer.throttled == 0

    def test_within_bound_proceeds_immediately(self):
        heap, engine, _ = build_heap(kamino_simple)
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 1
        syncer = BackupSyncer(engine, max_lag=8)
        assert syncer.throttle()
        assert syncer.throttled == 0

    def test_backlog_over_bound_blocks_until_drained(self):
        heap, engine, _ = build_heap(kamino_simple)
        for i in range(4):
            with heap.transaction():
                p = heap.alloc(Pair)
                p.key = i
        assert engine.pending_count > 0
        syncer = BackupSyncer(engine, poll_interval=0.001, max_lag=0)
        # delay the drain so the writer demonstrably has to wait
        starter = threading.Timer(0.05, syncer.start)
        starter.start()
        assert syncer.throttle(timeout=5.0)
        starter.join()
        syncer.stop()
        assert syncer.throttled == 1
        assert engine.pending_count == 0

    def test_timeout_returns_false_when_backlog_stuck(self):
        heap, engine, _ = build_heap(kamino_simple)
        for i in range(3):
            with heap.transaction():
                p = heap.alloc(Pair)
                p.key = i
        syncer = BackupSyncer(engine, max_lag=0)  # never started: no drain
        assert not syncer.throttle(timeout=0.05)
        assert syncer.throttled == 1


class TestFullBackupMechanics:
    def test_absorb_then_restore_roundtrip(self):
        heap, engine, _ = build_heap(kamino_simple)
        backup = engine.backup
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 10
        heap.drain()
        blk = p.block_offset
        assert backup.mirror_equals_main(blk, 64)
        # scribble on main outside any transaction, then restore
        heap.region.write(p.oid, b"\xff" * 8)
        assert not backup.mirror_equals_main(blk, 64)
        backup.restore(blk, 64)
        assert p.key == 10

    def test_fresh_backup_seeded_from_heap(self):
        heap, engine, _ = build_heap(kamino_simple)
        backup = engine.backup
        # the allocator header region must already mirror
        assert backup.mirror_equals_main(0, 4096)

    def test_storage_bytes_equals_heap(self):
        heap, engine, _ = build_heap(kamino_simple)
        assert engine.backup.storage_bytes == heap.region.size
