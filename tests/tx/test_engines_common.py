"""Semantics every engine must share, plus undo/CoW-specific checks."""

import pytest

from repro.errors import TxAborted, TxError, WriteIntentError
from repro.tx import CoWEngine, NoLoggingEngine, UndoLogEngine, make_engine
from repro.tx.base import TxState

from ..conftest import Cell, Pair, build_heap


class TestCommonSemantics:
    def test_committed_data_visible_after_drain(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 77
            p.value = "payload"
            heap.set_root(p)
        heap.drain()
        r = heap.root(Pair)
        assert (r.key, r.value) == (77, "payload")

    def test_multi_object_atomic_update(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            a, b = heap.alloc(Pair), heap.alloc(Pair)
            a.key, b.key = 1, 2
        heap.drain()
        with pytest.raises(RuntimeError):
            with heap.transaction():
                a.tx_add()
                b.tx_add()
                a.key = 10
                b.key = 20
                raise RuntimeError("fail after both writes")
        heap.drain()
        assert (a.key, b.key) == (1, 2)  # neither survived

    def test_abort_mid_linked_list_insert(self, any_engine_heap):
        """Figure 4's running example: a doubly-linked insert that aborts."""
        heap, _, _ = any_engine_heap
        with heap.transaction():
            head = heap.alloc(Cell)
            tail = heap.alloc(Cell)
            head.value, tail.value = 1, 3
            head.next = tail.oid
            heap.set_root(head)
        heap.drain()
        with pytest.raises(RuntimeError):
            with heap.transaction():
                mid = heap.alloc(Cell)
                mid.value = 2
                mid.next = tail.oid
                head.tx_add()
                head.next = mid.oid
                raise RuntimeError("abort mid-insert")
        heap.drain()
        assert heap.deref(head.next).value == 3  # link restored

    def test_sequential_transactions_isolated_by_locks(self, any_engine_heap):
        heap, engine, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 0
        for i in range(10):
            with heap.transaction():
                p.tx_add()
                p.key = p.key + 1
        heap.drain()
        assert p.key == 10

    def test_write_set_tracked(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction() as tx:
            p = heap.alloc(Pair)
            p.key = 1
            assert p.block_offset in tx.write_set

    def test_commit_then_further_use_rejected(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction() as tx:
            heap.alloc(Pair)
        with pytest.raises(TxError):
            tx.commit()


class TestCoWSpecific:
    def test_original_untouched_until_commit(self):
        heap, engine, device = build_heap(CoWEngine)
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 1
        # mutate inside a tx and inspect the main heap directly
        tx = heap.begin()
        p.tx_add()
        p.key = 42
        # reading through the tx sees the shadow...
        assert p.key == 42
        # ...but main-heap bytes still hold the old value
        import struct

        raw = heap.region.read(p.oid, 8)
        assert struct.unpack("<q", raw)[0] == 1
        tx.commit()
        raw = heap.region.read(p.oid, 8)
        assert struct.unpack("<q", raw)[0] == 42

    def test_cheap_abort_no_data_motion(self):
        heap, engine, device = build_heap(CoWEngine)
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 1
        tx = heap.begin()
        p.tx_add()
        p.key = 9
        before = device.stats.snapshot()
        tx.abort()
        delta = device.stats.delta(before)
        assert delta.copy_bytes == 0  # "simply deleting the copy is enough"
        assert p.key == 1

    def test_commit_copies_twice_per_object(self):
        """CoW pays copy-in + copy-out; undo pays only copy-in."""
        heap_cow, _, dev_cow = build_heap(CoWEngine)
        heap_undo, _, dev_undo = build_heap(UndoLogEngine)
        for heap in (heap_cow, heap_undo):
            with heap.transaction():
                p = heap.alloc(Pair)
                p.key = 1
                heap.set_root(p)
        results = {}
        for name, heap, dev in (("cow", heap_cow, dev_cow), ("undo", heap_undo, dev_undo)):
            p = heap.root(Pair)
            before = dev.stats.snapshot()
            with heap.transaction():
                p.tx_add()
                p.key = 2
            results[name] = dev.stats.delta(before).copy_bytes
        assert results["cow"] >= 2 * results["undo"]


class TestNoLoggingSpecific:
    def test_commit_works(self):
        heap, _, _ = build_heap(NoLoggingEngine)
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 3
        assert p.key == 3

    def test_abort_unsupported(self):
        heap, _, _ = build_heap(NoLoggingEngine)
        tx = heap.begin()
        p = heap.alloc(Pair)
        with pytest.raises(TxError):
            tx.abort()

    def test_no_log_no_copies(self):
        heap, _, device = build_heap(NoLoggingEngine)
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 1
        before = device.stats.snapshot()
        with heap.transaction():
            p.tx_add()
            p.key = 2
        delta = device.stats.delta(before)
        assert delta.copy_bytes == 0


class TestEngineFactory:
    def test_make_engine_by_name(self):
        assert make_engine("undo").name == "undo"
        assert make_engine("kamino-simple").name == "kamino-simple"
        assert make_engine("kamino-dynamic", alpha=0.2).name == "kamino-dynamic-20"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_engine("quantum")
