"""Lazy recovery (§6.2): pending locks rebuilt from write intents.

Instead of blocking recovery on the backup-sync backlog, the engine
re-queues committed-but-unsynced transactions for the background syncer
and re-locks their objects as *pending* — so the first dependent
transaction after the restart still waits (or syncs on demand) exactly
as it would have before the crash.
"""

import pytest

from repro.heap import PersistentHeap
from repro.nvm import CrashPolicy, PmemPool
from repro.tx import kamino_dynamic, kamino_simple, verify_backup_consistency

from ..conftest import Pair, build_heap

FACTORIES = {
    "kamino-simple": lambda: kamino_simple(lazy_recovery=True),
    "kamino-dynamic": lambda: kamino_dynamic(alpha=0.5, lazy_recovery=True),
}


def crash_with_unsynced_commit(name):
    factory = FACTORIES[name]
    heap, engine, device = build_heap(factory)
    with heap.transaction():
        p = heap.alloc(Pair)
        p.key = 1
        p.value = "base"
        heap.set_root(p)
    heap.drain()
    with heap.transaction():
        p.tx_add()
        p.key = 2
        p.value = "committed-unsynced"
    # crash with the sync still queued
    assert engine.pending_count == 1
    device.crash(CrashPolicy.DROP_ALL)
    device.restart()
    engine2 = factory()
    heap2 = PersistentHeap.open(PmemPool.open(device), engine2)
    return heap2, engine2, p.oid, p.block_offset


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestLazyRecovery:
    def test_committed_data_visible_immediately(self, name):
        heap2, engine2, oid, _blk = crash_with_unsynced_commit(name)
        p2 = heap2.deref(oid, Pair)
        assert p2.key == 2
        assert p2.value == "committed-unsynced"

    def test_sync_work_requeued_not_done(self, name):
        heap2, engine2, _oid, _blk = crash_with_unsynced_commit(name)
        assert engine2.pending_count >= 1
        heap2.drain()
        assert engine2.pending_count == 0
        verify_backup_consistency(heap2)

    def test_objects_relocked_pending(self, name):
        heap2, engine2, _oid, blk = crash_with_unsynced_commit(name)
        assert engine2.locks.is_pending(blk)
        heap2.drain()
        assert not engine2.locks.is_locked(blk)

    def test_dependent_tx_after_restart_syncs_on_demand(self, name):
        heap2, engine2, oid, blk = crash_with_unsynced_commit(name)
        p2 = heap2.deref(oid, Pair)
        base = engine2.locks.stats.on_demand_syncs
        with heap2.transaction():
            p2.tx_add()  # dependent: the pending lock must resolve first
            p2.key = 3
        assert engine2.locks.stats.on_demand_syncs > base
        heap2.drain()
        assert p2.key == 3
        verify_backup_consistency(heap2)

    def test_log_slot_freed_only_after_requeued_sync(self, name):
        heap2, engine2, _oid, _blk = crash_with_unsynced_commit(name)
        free_before = engine2.log.free_slots
        assert free_before < engine2.log.n_slots  # the slot is still held
        heap2.drain()
        assert engine2.log.free_slots == free_before + 1

    def test_recrash_before_lazy_sync_still_recovers(self, name):
        heap2, engine2, oid, _blk = crash_with_unsynced_commit(name)
        # crash again before the background syncer ran
        heap2.device.crash(CrashPolicy.DROP_ALL)
        heap2.device.restart()
        factory = FACTORIES[name]
        engine3 = factory()
        heap3 = PersistentHeap.open(PmemPool.open(heap2.device), engine3)
        p3 = heap3.deref(oid, Pair)
        assert p3.key == 2
        heap3.drain()
        verify_backup_consistency(heap3)


class TestEagerVsLazyEquivalence:
    def test_final_states_identical(self):
        states = {}
        for mode, factory in {
            "eager": lambda: kamino_simple(lazy_recovery=False),
            "lazy": lambda: kamino_simple(lazy_recovery=True),
        }.items():
            heap, engine, device = build_heap(factory, seed=5)
            with heap.transaction():
                p = heap.alloc(Pair)
                p.key = 7
                heap.set_root(p)
            with heap.transaction():
                p.tx_add()
                p.key = 8
            device.crash(CrashPolicy.DROP_ALL)
            device.restart()
            heap2 = PersistentHeap.open(PmemPool.open(device), factory())
            heap2.drain()
            verify_backup_consistency(heap2)
            states[mode] = heap2.root(Pair).key
        assert states["eager"] == states["lazy"] == 8
