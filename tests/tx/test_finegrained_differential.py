"""Differential pin: kamino-finegrained ≡ kamino-dynamic, single client.

The fine-grained engine changes *only* volatile lock-table structure;
everything durable — intent log, in-place stores, commit records,
backup sync — is inherited.  Under one uncontended client the two
engines must therefore be **bit-identical**: same durable bytes, same
device counters, same crash fingerprints, same virtual-time replay.
Any divergence means the striping leaked into the persistence protocol.

txids are a process-global counter folded into each durable intent
entry's self-check, so every comparison pins the counter first.
"""

import itertools

from repro.bench.contention import run_contended_cell
from repro.bench.runners import _load_ycsb
from repro.nvm import CrashPolicy
from repro.nvm.latency import NVDIMM
from repro.tx.base import Transaction

BASELINE = ("kamino-dynamic", {"alpha": 0.5})
CHALLENGER = ("kamino-finegrained", {"alpha": 0.5, "stripes": 16})

NRECORDS = 120
NOPS = 240
VALUE_SIZE = 256


def _run_ycsb_serial(engine_name, engine_kwargs, crash_after_ops=None):
    """Load + run YCSB-A serially; return (device, fingerprint, stats)."""
    Transaction._ids = itertools.count(1)
    stack, workload = _load_ycsb(
        engine_name, "A", NRECORDS, VALUE_SIZE, 0, NVDIMM,
        heap_mb=24, **engine_kwargs,
    )
    ops = list(workload.run_ops(NOPS))
    if crash_after_ops is not None:
        ops = ops[:crash_after_ops]
    for op in ops:
        workload.execute(stack.kv, op)
    stack.ctx.heap.drain()
    device = stack.device
    return device, device.overlay_fingerprint(), device.stats.snapshot()


def test_durable_bytes_and_stats_identical():
    _, fp_base, stats_base = _run_ycsb_serial(*BASELINE)
    _, fp_fg, stats_fg = _run_ycsb_serial(*CHALLENGER)
    assert fp_base == fp_fg, "durable bytes diverged"
    assert stats_base == stats_fg, "device counters diverged"


def test_crash_fingerprints_identical():
    """Power off at the same mid-workload point: the surviving-word
    lottery is seeded by the device, so identical behaviour must yield
    identical post-crash durable state."""
    fps = []
    for engine_name, kwargs in (BASELINE, CHALLENGER):
        device, _, _ = _run_ycsb_serial(engine_name, kwargs, crash_after_ops=NOPS // 2)
        device.fingerprint_crashes = True
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
        fps.append(device.last_crash_fingerprint)
    assert fps[0] == fps[1]


def test_online_replay_identical_single_client():
    """The scheduler view agrees too: the cost-profile split (8 serial +
    32 local ns) sums to the baseline's 40 ns, so single-client virtual
    durations and latencies are float-exact equals."""
    cells = []
    for engine_name, kwargs in (BASELINE, CHALLENGER):
        Transaction._ids = itertools.count(1)
        cells.append(
            run_contended_cell(
                engine_name, 1,
                nrecords=NRECORDS, nops=NOPS, value_size=VALUE_SIZE,
                heap_mb=24, **kwargs,
            )
        )
    base, fg = cells
    assert base.ops == fg.ops
    assert base.duration_ns == fg.duration_ns
    assert base.mean_latency_ns == fg.mean_latency_ns
    assert base.max_latency_ns == fg.max_latency_ns
    assert base.dependent_waits == fg.dependent_waits
