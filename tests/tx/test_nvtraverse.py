"""NVTraverse-engine oracles: the correctness argument, as assertions.

The engine's claim (see ``src/repro/tx/nvtraverse.py``) decomposes into
device-counter oracles this file checks directly:

1. the traversal phase performs zero NVM stores, flushes, fences, or
   copies — only loads;
2. the destination phase costs exactly three fences per update
   transaction, regardless of write-set size;
3. an abort is NVM-silent (no stores at all) and leaves the main heap
   bytes untouched;
4. shadow writes are visible to reads inside the transaction but reach
   the main heap only at commit;
5. the full crash-recovery sweep passes (CrashExplorer fixture), for
   nvtraverse and the fine-grained engine both.
"""

import pytest

from repro.tx import nvtraverse

from ..conftest import Pair, build_heap


@pytest.fixture
def traverse_heap():
    return build_heap(nvtraverse)


def _committed_pair(heap):
    with heap.transaction():
        p = heap.alloc(Pair)
        p.key = 1
        p.value = "seed"
        heap.set_root(p)
    heap.drain()
    return heap.root(Pair)


class TestTraversalPhaseIsVolatile:
    def test_zero_nvm_mutations_before_commit(self, traverse_heap):
        heap, engine, device = traverse_heap
        _committed_pair(heap)
        base = device.stats.snapshot()
        with heap.transaction():
            p = heap.root(Pair)
            p.tx_add()
            p.key = 2
            p.value = "updated"
            q = heap.alloc(Pair)
            q.key = 3
            mid = device.stats.delta(base)
            # loads are allowed (seeding shadows, reading structs);
            # everything that mutates NVM is deferred to the destination
            assert mid.stores == 0
            assert mid.flushes == 0
            assert mid.fences == 0
            assert mid.copies == 0

    def test_shadow_read_visibility(self, traverse_heap):
        heap, engine, device = traverse_heap
        _committed_pair(heap)
        root_off = heap.root(Pair).block_offset
        before = bytes(engine.heap_region.read(root_off, 8))
        with heap.transaction():
            p = heap.root(Pair)
            p.tx_add()
            p.key = 42
            # the transaction sees its own shadow...
            assert p.key == 42
            # ...while the main heap still holds the committed bytes
            assert bytes(engine.heap_region.read(root_off, 8)) == before
        heap.drain()
        assert heap.root(Pair).key == 42


class TestDestinationPhase:
    def test_exactly_three_fences_per_update(self, traverse_heap):
        heap, engine, device = traverse_heap
        _committed_pair(heap)
        for n_extra in (0, 3):
            heap.drain()  # settle the previous iteration's backup sync
            base = device.stats.snapshot()
            with heap.transaction():
                p = heap.root(Pair)
                p.tx_add()
                p.key += 1
                for _ in range(n_extra):  # widen the write set
                    heap.alloc(Pair)
            delta = device.stats.delta(base)
            # fence 1: intent batch; fence 2: destination stores;
            # fence 3: commit record — independent of write-set size
            assert delta.fences == 3

    def test_read_only_transaction_is_free(self, traverse_heap):
        heap, engine, device = traverse_heap
        _committed_pair(heap)
        base = device.stats.snapshot()
        with heap.transaction():
            assert heap.root(Pair).key == 1
        delta = device.stats.delta(base)
        assert delta.stores == 0
        assert delta.fences == 0


class TestAbort:
    def test_abort_is_nvm_silent(self, traverse_heap):
        heap, engine, device = traverse_heap
        _committed_pair(heap)
        root_off = heap.root(Pair).block_offset
        before = bytes(engine.heap_region.read(root_off, 64))
        base = device.stats.snapshot()

        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with heap.transaction():
                p = heap.root(Pair)
                p.tx_add()
                p.key = 99
                raise Boom()
        delta = device.stats.delta(base)
        assert delta.stores == 0, "abort wrote to NVM"
        assert bytes(engine.heap_region.read(root_off, 64)) == before
        assert heap.root(Pair).key == 1
        # the engine is still usable afterwards
        with heap.transaction():
            p = heap.root(Pair)
            p.tx_add()
            p.key = 7
        heap.drain()
        assert heap.root(Pair).key == 7


class TestCrashSweep:
    def test_nvtraverse_crash_consistent(self, assert_engine_crash_consistent):
        assert_engine_crash_consistent(
            "nvtraverse", max_points=None, random_samples=1, max_nested_points=6
        )

    def test_finegrained_crash_consistent(self, assert_engine_crash_consistent):
        assert_engine_crash_consistent(
            "kamino-finegrained",
            max_points=None,
            random_samples=1,
            max_nested_points=6,
        )
