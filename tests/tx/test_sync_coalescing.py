"""Interval-coalesced backup sync must be invisible in simulated results.

The engines' ``coalesce_sync`` fast path drains adjacent pending ranges
as single bulk ``device.copy`` calls and batches their flushes through
``flush_multi``.  The contract (ISSUE tentpole, docs/INTERNALS.md) is
that every :class:`~repro.nvm.stats.NVMStats` counter, every durable
byte, and hence the simulated time are *bit-identical* to the historical
entry-at-a-time loop — only wall-clock changes.  These tests run the
same workload both ways on same-seed devices and diff everything.
"""

import itertools

import pytest

from repro.nvm import NVMDevice, PmemPool
from repro.heap import PersistentHeap
from repro.tx import kamino_dynamic, kamino_simple, verify_backup_consistency
from repro.tx.base import IntentKind

from ..conftest import HEAP_SIZE, POOL_SIZE, Pair

FACTORIES = {
    "kamino-simple": kamino_simple,
    "kamino-dynamic": lambda **kw: kamino_dynamic(alpha=0.5, **kw),
}

# crafted intent offsets live far above anything the workload allocates
CRAFT_BASE = 1 << 20


def _build(factory, coalesce: bool):
    device = NVMDevice(POOL_SIZE, seed=7)
    pool = PmemPool.create(device)
    engine = factory(coalesce_sync=coalesce)
    heap = PersistentHeap.create(pool, engine, heap_size=HEAP_SIZE)
    return heap, engine, device


def _craft_tx(heap, engine, ranges):
    """One transaction whose intent entries are exactly ``ranges``."""
    tx = engine.begin()
    for off, size in ranges:
        engine.on_add(tx, off, size, IntentKind.WRITE)
        heap.region.write(off, bytes((off + i) & 0xFF for i in range(size)))
    engine.commit(tx)


def _run_workload(factory, coalesce: bool):
    # txids are drawn from a process-global counter and land in durable
    # slot headers; pin the sequence so both runs write identical bytes
    from repro.tx.base import Transaction

    Transaction._ids = itertools.count(1)
    heap, engine, device = _build(factory, coalesce)
    # ordinary heap traffic: multi-object txs, re-modification, a free
    objs = []
    with heap.transaction():
        for i in range(6):
            p = heap.alloc(Pair)
            p.key = i
            p.value = f"v{i}"
            objs.append(p)
    with heap.transaction():
        for p in objs[:3]:
            p.tx_add()
            p.key += 100
    with heap.transaction():
        heap.free(objs[5])
    heap.drain()
    # crafted shapes that target the coalescing guards:
    # three exactly-adjacent line-aligned entries (merge into one run)
    _craft_tx(heap, engine, [(CRAFT_BASE, 64), (CRAFT_BASE + 64, 64), (CRAFT_BASE + 128, 64)])
    # adjacent but the boundary is NOT line-aligned (must not merge)
    _craft_tx(heap, engine, [(CRAFT_BASE + 4096, 32), (CRAFT_BASE + 4128, 32)])
    # a gap between entries (must not merge)
    _craft_tx(heap, engine, [(CRAFT_BASE + 8192, 64), (CRAFT_BASE + 8192 + 256, 64)])
    # same line touched twice in one tx (dynamic flush-deferral guard)
    _craft_tx(heap, engine, [(CRAFT_BASE + 12288, 32), (CRAFT_BASE + 12288, 32)])
    # a long adjacent run of sub-line writes with line-aligned boundaries
    _craft_tx(heap, engine, [(CRAFT_BASE + 16384 + 64 * i, 64) for i in range(8)])
    heap.drain()
    verify_backup_consistency(heap)
    return heap, engine, device


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_coalesced_sync_is_bit_identical(name):
    factory = FACTORIES[name]
    heap_a, engine_a, dev_a = _run_workload(factory, coalesce=True)
    heap_b, engine_b, dev_b = _run_workload(factory, coalesce=False)
    assert dev_a.stats.snapshot() == dev_b.stats.snapshot()
    assert dev_a.stats.simulated_ns(dev_a.model) == dev_b.stats.simulated_ns(dev_b.model)
    assert dev_a.durable_read(0, dev_a.size) == dev_b.durable_read(0, dev_b.size)
    assert dev_a.read(0, dev_a.size) == dev_b.read(0, dev_b.size)
    assert dev_a.dirty_lines == dev_b.dirty_lines


def test_full_backup_run_actually_merges():
    """The adjacent-run tx drains as ONE device.copy (chunks=3), not three."""
    heap, engine, device = _build(kamino_simple, coalesce=True)
    calls = []
    real_copy = device.copy

    def counting_copy(dst, src, size, chunks=1):
        calls.append((size, chunks))
        return real_copy(dst, src, size, chunks=chunks)

    _craft_tx(heap, engine, [(CRAFT_BASE, 64), (CRAFT_BASE + 64, 64), (CRAFT_BASE + 128, 64)])
    device.copy = counting_copy
    try:
        engine.sync_pending()
    finally:
        device.copy = real_copy
    assert calls == [(192, 3)]
    # the merged call still charges three logical copies
    assert device.stats.copies >= 3


def test_misaligned_boundary_does_not_merge():
    heap, engine, device = _build(kamino_simple, coalesce=True)
    calls = []
    real_copy = device.copy

    def counting_copy(dst, src, size, chunks=1):
        calls.append((size, chunks))
        return real_copy(dst, src, size, chunks=chunks)

    _craft_tx(heap, engine, [(CRAFT_BASE, 32), (CRAFT_BASE + 32, 32)])
    device.copy = counting_copy
    try:
        engine.sync_pending()
    finally:
        device.copy = real_copy
    assert calls == [(32, 1), (32, 1)]


def test_recovery_roll_forward_coalesces_identically():
    """COMMITTED slots replayed by recover() give identical stats/state."""
    from repro.nvm import CrashPolicy

    from repro.tx.base import Transaction

    images = {}
    for coalesce in (True, False):
        Transaction._ids = itertools.count(1)
        heap, engine, device = _build(kamino_simple, coalesce)
        _craft_tx(heap, engine, [(CRAFT_BASE + 64 * i, 64) for i in range(4)])
        # committed but unsynced: crash now; open() runs recovery
        device.crash(CrashPolicy.KEEP_ALL)
        device.restart()
        pool = PmemPool.open(device)
        engine2 = kamino_simple(coalesce_sync=coalesce)
        PersistentHeap.open(pool, engine2)
        assert engine2.last_recovery_report.rolled_forward == 1
        images[coalesce] = (device.stats.snapshot(), device.durable_read(0, device.size))
    assert images[True] == images[False]
