"""Crash-recovery matrix: every engine × crash point × eviction policy.

The invariant under test is the paper's atomicity guarantee: after a
crash at *any* point, recovery yields a heap in which every transaction
is either fully applied or fully absent — and for Kamino engines the
backup again mirrors the main heap.
"""

import pytest

from repro.check import Scenario, replay_scenario
from repro.nvm import CrashPolicy
from repro.runtime.registry import registered_engines
from repro.tx import reopen_after_crash, verify_backup_consistency

from ..conftest import Pair, build_heap

#: registry-driven: every standalone-recoverable engine is in the matrix
ENGINE_FACTORIES = {
    name: info.factory
    for name, info in registered_engines().items()
    if info.capabilities.recoverable and not info.capabilities.needs_chain_repair
}

POLICIES = [CrashPolicy.DROP_ALL, CrashPolicy.KEEP_ALL, CrashPolicy.RANDOM]


def committed_setup(factory, seed=0):
    heap, engine, device = build_heap(factory, seed=seed)
    with heap.transaction():
        p = heap.alloc(Pair)
        p.key = 1
        p.value = "committed"
        heap.set_root(p)
    heap.drain()
    return heap, engine, device, p


def check_after(device, factory, expect_value):
    heap, engine, _report = reopen_after_crash(device, factory)
    r = heap.root(Pair)
    assert r.key == 1
    assert r.value == expect_value
    if hasattr(engine, "backup"):
        verify_backup_consistency(heap)
    # the recovered heap must accept new transactions
    with heap.transaction():
        r.tx_add()
        r.value = "post-recovery"
    heap.drain()
    assert r.value == "post-recovery"


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
class TestCrashMatrix:
    def test_crash_mid_transaction_rolls_back(self, name, policy):
        factory = ENGINE_FACTORIES[name]
        heap, engine, device, p = committed_setup(factory)
        heap.begin()
        p.tx_add()
        p.value = "in-flight"
        device.crash(policy, survival_prob=0.5)
        check_after(device, factory, "committed")

    def test_crash_after_intent_before_write(self, name, policy):
        factory = ENGINE_FACTORIES[name]
        heap, engine, device, p = committed_setup(factory)
        heap.begin()
        p.tx_add()  # intent declared, nothing written
        device.crash(policy, survival_prob=0.5)
        check_after(device, factory, "committed")

    def test_crash_after_commit_preserves(self, name, policy):
        factory = ENGINE_FACTORIES[name]
        heap, engine, device, p = committed_setup(factory)
        with heap.transaction():
            p.tx_add()
            p.value = "second"
        # kamino: backup sync still pending at this point
        device.crash(policy, survival_prob=0.5)
        check_after(device, factory, "second")

    def test_crash_with_multiple_inflight_states(self, name, policy):
        """One committed-unsynced tx and one in-flight tx on different
        objects: recovery must roll one forward and the other back."""
        factory = ENGINE_FACTORIES[name]
        heap, engine, device, p = committed_setup(factory)
        with heap.transaction():
            q = heap.alloc(Pair)
            q.key = 2
            q.value = "q-base"
        heap.drain()
        qoid = q.oid
        with heap.transaction():
            q.tx_add()
            q.value = "q-committed"
        # q committed (possibly unsynced); now crash inside a tx on p
        heap.begin()
        p.tx_add()
        p.value = "p-in-flight"
        device.crash(policy, survival_prob=0.5)
        heap2, engine2, _ = reopen_after_crash(device, factory)
        p2 = heap2.root(Pair)
        assert p2.value == "committed"
        q2 = heap2.deref(qoid, Pair)
        assert q2.value == "q-committed"
        if hasattr(engine2, "backup"):
            verify_backup_consistency(heap2)


@pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
class TestRecoveryIdempotence:
    def test_double_crash_during_recovery_window(self, name):
        """Crash again immediately after recovery's repairs: a second
        recovery must still converge (all repairs are idempotent)."""
        factory = ENGINE_FACTORIES[name]
        heap, engine, device, p = committed_setup(factory)
        heap.begin()
        p.tx_add()
        p.value = "doomed"
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
        # first recovery
        heap2, engine2, _ = reopen_after_crash(device, factory)
        # immediately crash again (recovery wrote flushed data only)
        device.crash(CrashPolicy.DROP_ALL)
        check_after(device, factory, "committed")

    def test_crash_inside_recovery_converges(self, name):
        """Explorer-driven nested crashes: power-fail mid-transaction,
        then again at several points *inside recovery's own writes*; the
        final recovery must still satisfy every oracle."""
        for nested_after in (0, 1, 3, 7):
            scenario = Scenario(
                engine=name,
                workload="pairs",
                crash_after=9,
                policy=CrashPolicy.DROP_ALL,
                nested_after=nested_after,
            )
            failure = replay_scenario(scenario)
            assert failure is None, str(failure)

    def test_recovery_report_counts(self, name):
        factory = ENGINE_FACTORIES[name]
        heap, engine, device, p = committed_setup(factory)
        heap.begin()
        p.tx_add()
        p.value = "doomed"
        device.crash(CrashPolicy.KEEP_ALL)
        _heap, _engine, report = reopen_after_crash(device, factory)
        # the in-flight tx left a non-FREE slot; at least one was handled
        assert report.rolled_back + report.rolled_forward >= 0


class TestCrashWithAllocations:
    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_crash_mid_alloc_leaks_nothing(self, name):
        factory = ENGINE_FACTORIES[name]
        heap, engine, device, p = committed_setup(factory)
        used_before = heap.allocator.allocated_bytes
        heap.begin()
        q = heap.alloc(Pair)
        q.key = 9
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
        heap2, _, _ = reopen_after_crash(device, factory)
        assert heap2.allocator.allocated_bytes == used_before

    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_crash_mid_free_keeps_block(self, name):
        factory = ENGINE_FACTORIES[name]
        heap, engine, device, p = committed_setup(factory)
        heap.begin()
        heap.free(p)
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
        heap2, _, _ = reopen_after_crash(device, factory)
        assert heap2.allocator.is_allocated(p.block_offset)
        assert heap2.root(Pair).value == "committed"

    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_committed_free_survives_crash(self, name):
        factory = ENGINE_FACTORIES[name]
        heap, engine, device, p = committed_setup(factory)
        with heap.transaction():
            q = heap.alloc(Pair)
        heap.drain()
        blk = q.block_offset
        with heap.transaction():
            heap.free(q)
        device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
        heap2, _, _ = reopen_after_crash(device, factory)
        assert not heap2.allocator.is_allocated(blk)


class TestSlotReuseTornHeader:
    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_crash_on_reused_slot_keeps_committed_state(self, name):
        """Regression: a later transaction reuses a committed one's log
        slot; the crash tears the reused slot's unflushed header so the
        new RUNNING state word survives next to the previous owner's
        txid and n_entries words.  Recovery used to roll the *committed*
        transaction's durably-valid entries back over its own data
        (observed with the undo engine at seed 1, crash after 6 device
        ops: the keeper's allocation bitmap bit was erased)."""
        from repro.errors import DeviceCrashedError

        factory = ENGINE_FACTORIES[name]
        heap, engine, device = build_heap(factory, seed=1)
        with heap.transaction():
            keeper = heap.alloc(Pair)
            keeper.key = 7
            heap.set_root(keeper)
        heap.drain()
        used = heap.allocator.allocated_bytes
        device.schedule_crash(6, CrashPolicy.RANDOM, survival_prob=0.5)
        try:
            with heap.transaction():
                tmp = heap.alloc(Pair)
                tmp.key = 1
            with heap.transaction():
                heap.free(tmp)
            heap.drain()
        except DeviceCrashedError:
            pass
        device.cancel_scheduled_crash()
        if not device.crashed:
            device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
        heap2, _engine2, _report = reopen_after_crash(device, factory)
        # the keeper's transaction committed before the crash: its
        # allocation and root object must survive any recovery outcome
        assert heap2.allocator.allocated_bytes in (used, used + 128)
        assert heap2.allocator.is_allocated(heap2.root(Pair).block_offset)
        assert heap2.root(Pair).key == 7
