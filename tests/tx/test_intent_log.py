"""LogManager: slots, durability protocol, torn-entry scan, recovery gate."""

import pytest

from repro.errors import DeviceCrashedError, LogFullError, PoolCorruptionError, TxError
from repro.nvm import CrashPolicy, NVMDevice, PmemPool
from repro.tx import IntentKind, LogManager, SlotState
from repro.tx.intent_log import ENTRY_SIZE


def make_log(n_slots=4, max_entries=8, data_bytes=0, size=1 << 20):
    device = NVMDevice(size)
    pool = PmemPool.create(device)
    region = pool.create_region(
        "intent_log", LogManager.required_size(n_slots, max_entries, data_bytes)
    )
    log = LogManager(region, n_slots, max_entries, data_bytes)
    log.format()
    return log, device, region


class TestSlotPool:
    def test_acquire_and_release(self):
        log, _, _ = make_log()
        slot = log.acquire(txid=1)
        assert log.free_slots == 3
        slot.release()
        assert log.free_slots == 4

    def test_exhaustion_blocks_then_raises(self):
        log, _, _ = make_log(n_slots=2)
        log.acquire(1)
        log.acquire(2)
        with pytest.raises(TxError):
            log.acquire(3, timeout=0.1)

    def test_slot_offsets_distinct_and_inside_region(self):
        log, _, region = make_log(n_slots=4, max_entries=8, data_bytes=128)
        offs = [log.slot_offset(i) for i in range(4)]
        assert len(set(offs)) == 4
        assert max(offs) + log.slot_size() <= region.size


class TestEntries:
    def test_append_and_readback(self):
        log, _, _ = make_log()
        slot = log.acquire(1)
        slot.append(1000, 64, IntentKind.WRITE)
        slot.append(2000, 32, IntentKind.ALLOC)
        assert [e.offset for e in slot.entries] == [1000, 2000]

    def test_entry_limit_enforced(self):
        log, _, _ = make_log(max_entries=2)
        slot = log.acquire(1)
        slot.append(1, 8, IntentKind.WRITE)
        slot.append(2, 8, IntentKind.WRITE)
        with pytest.raises(LogFullError):
            slot.append(3, 8, IntentKind.WRITE)

    def test_data_reservation(self):
        log, _, _ = make_log(data_bytes=64)
        slot = log.acquire(1)
        a = slot.reserve_data(32)
        b = slot.reserve_data(32)
        assert b == a + 32
        with pytest.raises(LogFullError):
            slot.reserve_data(1)

    def test_dirty_tracking(self):
        log, _, _ = make_log()
        slot = log.acquire(1)
        assert not slot.dirty
        slot.append(1, 8, IntentKind.WRITE)
        assert slot.dirty
        slot.make_durable()
        assert not slot.dirty


class TestDurabilityProtocol:
    def test_undurable_entries_invisible_after_crash(self):
        log, device, region = make_log()
        slot = log.acquire(1)
        slot.append(1000, 64, IntentKind.WRITE)
        # no make_durable: crash drops it
        device.crash(CrashPolicy.DROP_ALL)
        device.restart()
        log2 = LogManager(region, log.n_slots, log.max_entries, log.data_bytes)
        log2.open()
        assert log2.scan() == []

    def test_durable_entries_survive_crash(self):
        log, device, region = make_log()
        slot = log.acquire(7)
        slot.append(1000, 64, IntentKind.WRITE)
        slot.append(2000, 32, IntentKind.FREE)
        slot.make_durable()
        device.crash(CrashPolicy.DROP_ALL)
        device.restart()
        log2 = LogManager(region, log.n_slots, log.max_entries, log.data_bytes)
        log2.open()
        recs = log2.scan()
        assert len(recs) == 1
        assert recs[0].txid == 7
        assert recs[0].state is SlotState.RUNNING
        assert [(e.offset, e.size, e.kind) for e in recs[0].entries] == [
            (1000, 64, IntentKind.WRITE),
            (2000, 32, IntentKind.FREE),
        ]

    def test_partial_batch_gated_by_durable_count(self):
        log, device, region = make_log()
        slot = log.acquire(1)
        slot.append(1000, 64, IntentKind.WRITE)
        slot.make_durable()
        slot.append(2000, 64, IntentKind.WRITE)  # second batch, not durable
        device.crash(CrashPolicy.DROP_ALL)
        device.restart()
        log2 = LogManager(region, log.n_slots, log.max_entries, log.data_bytes)
        log2.open()
        recs = log2.scan()
        assert len(recs[0].entries) == 1

    def test_torn_entries_under_random_eviction_never_misparse(self):
        # adversarial: every seed must yield either a valid prefix or nothing
        for seed in range(25):
            device = NVMDevice(1 << 20, seed=seed)
            pool = PmemPool.create(device)
            region = pool.create_region("intent_log", LogManager.required_size(2, 8, 0))
            log = LogManager(region, 2, 8, 0)
            log.format()
            device.persist_all()
            slot = log.acquire(1)
            for i in range(5):
                slot.append(64 * (i + 1), 64, IntentKind.WRITE)
            # crash before make_durable with random word survival
            device.crash(CrashPolicy.RANDOM, survival_prob=0.5)
            device.restart()
            log2 = LogManager(region, 2, 8, 0)
            log2.open()
            for rec in log2.scan():
                # header count was never flushed, so no entries may surface
                assert rec.entries == []

    def test_reused_slot_never_resurrects_previous_owner(self):
        # Regression: a committed transaction's released slot still holds
        # its durably-valid entries and old n_entries word.  When a new
        # owner's header write tears under word-granular random survival
        # (new RUNNING state word + old txid/n_entries words), the scan
        # must not surface the previous owner's entries — the txid-bound
        # entry check rejects them like torn ones.  Exercised at every
        # crash point of the reuse protocol across many seeds.
        stale_offsets = {1000, 2000, 3000}
        for seed in range(10):
            for crash_after in range(1, 6):
                device = NVMDevice(1 << 20, seed=seed)
                pool = PmemPool.create(device)
                region = pool.create_region(
                    "intent_log", LogManager.required_size(2, 8, 0)
                )
                log = LogManager(region, 2, 8, 0)
                log.format()
                slot = log.acquire(txid=1)
                for off in sorted(stale_offsets):
                    slot.append(off, 64, IntentKind.WRITE)
                slot.make_durable()
                slot.release()  # durable FREE; entries + old count remain
                slot2 = log.acquire(txid=2)
                assert slot2.index == slot.index
                device.schedule_crash(crash_after, CrashPolicy.RANDOM)
                try:
                    slot2.append(500, 64, IntentKind.WRITE)
                    slot2.make_durable()
                except DeviceCrashedError:
                    pass
                device.cancel_scheduled_crash()
                if not device.crashed:
                    device.crash(CrashPolicy.RANDOM)
                device.restart()
                log2 = LogManager(region, 2, 8, 0)
                log2.open()
                for rec in log2.scan():
                    offsets = {e.offset for e in rec.entries}
                    assert not (offsets & stale_offsets), (
                        f"seed={seed} crash_after={crash_after}: stale "
                        f"entries resurrected: {sorted(offsets)}"
                    )

    def test_committed_state_survives(self):
        log, device, region = make_log()
        slot = log.acquire(1)
        slot.append(1000, 64, IntentKind.WRITE)
        slot.make_durable()
        slot.set_state(SlotState.COMMITTED)
        device.crash(CrashPolicy.DROP_ALL)
        device.restart()
        log2 = LogManager(region, log.n_slots, log.max_entries, log.data_bytes)
        log2.open()
        assert log2.scan()[0].state is SlotState.COMMITTED

    def test_released_slot_not_scanned(self):
        log, device, region = make_log()
        slot = log.acquire(1)
        slot.append(1000, 64, IntentKind.WRITE)
        slot.make_durable()
        slot.release()
        device.crash(CrashPolicy.DROP_ALL)
        device.restart()
        log2 = LogManager(region, log.n_slots, log.max_entries, log.data_bytes)
        log2.open()
        assert log2.scan() == []

    def test_free_slot_by_index(self):
        log, device, region = make_log()
        slot = log.acquire(1)
        slot.append(1000, 64, IntentKind.WRITE)
        slot.make_durable()
        log.free_slot_by_index(slot.index)
        assert log.scan() == []


class TestHeaderValidation:
    def test_open_rejects_unformatted(self):
        device = NVMDevice(1 << 20)
        pool = PmemPool.create(device)
        region = pool.create_region("intent_log", LogManager.required_size(2, 8, 0))
        log = LogManager(region, 2, 8, 0)
        with pytest.raises(PoolCorruptionError):
            log.open()

    def test_open_adopts_persisted_geometry(self):
        log, device, region = make_log(n_slots=4, max_entries=8)
        log2 = LogManager(region, 999, 999, 999)
        log2.open()
        assert log2.n_slots == 4
        assert log2.max_entries == 8
