"""Recovery on rotted media: verify sources, repair on reopen, degrade typed."""

import pytest

from repro.errors import (
    BothCopiesLostError,
    DeviceCrashedError,
    IntegrityError,
    MediaError,
)
from repro.nvm import CrashPolicy
from repro.nvm.latency import CACHE_LINE
from repro.tx import BackupSyncer, kamino_simple, reopen_after_crash

from ..conftest import Pair, build_heap


def protected_stack(seed=0):
    heap, engine, device = build_heap(kamino_simple, seed=seed)
    device.attach_media(seed=seed, protect=True)
    with heap.transaction():
        p = heap.alloc(Pair)
        p.key = 42
        p.value = "steady"
    heap.drain()
    return heap, engine, device, p


class TestReopenScrubs:
    def test_flip_during_outage_repaired_on_reopen(self):
        """Rot landing while the machine is down is gone after reopen."""
        heap, engine, device, p = protected_stack()
        oid = p._oid
        device.crash(CrashPolicy.KEEP_ALL)
        device.media.flip_bit(heap.region.offset + oid, 5)
        heap2, engine2, _report = reopen_after_crash(device, kamino_simple)
        assert engine2.last_scrub_report is not None
        assert engine2.last_scrub_report.repaired >= 1
        assert device.media.bad_lines() == []
        obj = heap2.deref(oid, Pair)
        assert obj.key == 42

    def test_backup_flip_during_outage_repaired_from_main(self):
        heap, engine, device, p = protected_stack()
        device.crash(CrashPolicy.KEEP_ALL)
        device.media.flip_bit(engine.backup.region.offset + p._oid, 5)
        _heap2, engine2, _report = reopen_after_crash(device, kamino_simple)
        assert engine2.last_scrub_report.repaired >= 1
        assert device.media.bad_lines() == []


class TestRecoverySourceVerification:
    def test_corrupt_rollforward_source_degrades_typed(self):
        """A COMMITTED slot whose main (roll-forward source) line rotted
        must raise, never copy garbage over the backup."""
        heap, engine, device, p = protected_stack()
        with heap.transaction():
            p.tx_add()
            p.key = 1000  # committed; roll-forward still queued
        assert engine.pending_count >= 1
        device.crash(CrashPolicy.KEEP_ALL)  # commit record durable
        device.media.flip_bit(heap.region.offset + p._oid, 2)
        with pytest.raises(BothCopiesLostError):
            reopen_after_crash(device, kamino_simple)

    def test_corrupt_rollback_source_raises_integrity_error(self):
        """Crash mid-transaction, then rot the backup line recovery would
        roll back from: the restore must refuse the bad source.  Crash
        points where the slot already committed recover cleanly instead
        (the backup line is then a destination, healed by overwrite)."""
        typed = clean = 0
        for after in range(1, 26):
            heap, engine, device = build_heap(kamino_simple, seed=after)
            device.attach_media(seed=after, protect=True)
            with heap.transaction():
                p = heap.alloc(Pair)
                p.key = 7
            heap.drain()
            device.schedule_crash(after, CrashPolicy.KEEP_ALL)
            try:
                with heap.transaction():
                    p.tx_add()
                    p.key = 8
                    p.value = "mutated-under-fire"
                heap.drain()
            except DeviceCrashedError:
                pass
            else:
                device.cancel_scheduled_crash()
                continue
            device.media.flip_bit(engine.backup.region.offset + p._oid, 3)
            try:
                heap2, engine2, _report = reopen_after_crash(
                    device, kamino_simple
                )
            except IntegrityError:
                typed += 1
                continue
            except MediaError:
                continue  # other typed degrade — still never silent
            clean += 1
            assert device.media.bad_lines() == []  # reopen scrub healed it
        assert typed >= 1, "no crash point exercised the rollback-source check"
        assert clean >= 1, "no crash point recovered cleanly"


class TestQuarantinePersistence:
    def test_quarantine_table_survives_reopen(self):
        from repro.integrity import Scrubber

        heap, engine, device, p = protected_stack()
        line = (engine.backup.region.offset + p._oid) // CACHE_LINE
        device.media.kill_line(line)
        report = Scrubber(
            device, pool=heap.region.pool, engine=engine
        ).scrub_once()
        assert report.quarantined == 1
        device.crash(CrashPolicy.KEEP_ALL)
        heap2, _engine2, _report = reopen_after_crash(device, kamino_simple)
        assert line in device.media.retired
        table = heap2.region.pool.quarantine_table()
        assert line in [ln for ln, _spare in table]
        assert heap2.deref(p._oid, Pair).key == 42


class TestSyncerPendingRanges:
    def test_crash_summary_names_pending_repair_ranges(self):
        heap, engine, device = build_heap(kamino_simple)
        syncer = BackupSyncer(engine)  # never started: backlog stays put
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 7
        assert engine.pending_ranges()
        device.crash()
        syncer.stop(drain=True)
        assert syncer.crashed
        assert syncer.pending_repair_ranges
        assert "pending repair ranges" in syncer.crash_summary
        off, size = syncer.pending_repair_ranges[0]
        assert f"[{off}, {off + size})" in syncer.crash_summary

    def test_syncer_dies_mid_repair_then_recovery_completes(self):
        """Power fails while the syncer is rolling a commit forward; the
        queued ranges surface in the summary and a reopen finishes the
        roll-forward that the dead syncer abandoned."""
        heap, engine, device = build_heap(kamino_simple)
        with heap.transaction():
            p = heap.alloc(Pair)
            q = heap.alloc(Pair)
            p.key = 1
            q.key = 2
        heap.drain()
        oid = p._oid
        # disjoint write sets: neither commit resolves the other's sync
        with heap.transaction():
            p.tx_add()
            p.key = 11
            p.value = "acked"
        with heap.transaction():
            q.tx_add()
            q.key = 12
        assert engine.pending_count >= 2
        # the fail-point fires inside the (synchronous) roll-forward copy
        # of the first task, leaving the second queued for recovery
        device.schedule_crash(2, CrashPolicy.KEEP_ALL)
        syncer = BackupSyncer(engine)
        syncer.stop(drain=True)  # drain runs sync_pending on this thread
        device.cancel_scheduled_crash()
        assert syncer.crashed
        assert "pending repair ranges" in syncer.crash_summary
        heap2, engine2, _report = reopen_after_crash(device, kamino_simple)
        assert engine2.pending_count == 0
        obj = heap2.deref(oid, Pair)
        assert obj.key == 11 and obj.value == "acked"
