"""Scrubber authority rules: repair from the right copy, or degrade typed."""

import pytest

from repro.errors import BothCopiesLostError
from repro.integrity import Scrubber
from repro.nvm.latency import CACHE_LINE
from repro.tx import kamino_simple

from ..conftest import Pair, build_heap

_LINE = CACHE_LINE


def kamino_stack(seed=0):
    heap, engine, device = build_heap(kamino_simple, seed=seed)
    media = device.attach_media(seed=seed, protect=True)
    pairs = []
    with heap.transaction():
        for i in range(8):
            p = heap.alloc(Pair)
            p.key = i
            p.value = f"value-{i}"
            pairs.append(p)
    heap.drain()  # backup mirror caught up
    return heap, engine, device, media, pairs


def scrubber(heap, engine, device, **kw):
    return Scrubber(device, pool=heap.region.pool, engine=engine, **kw)


def main_line(heap, obj):
    return (heap.region.offset + obj._oid) // _LINE


def backup_line(heap, engine, obj):
    return (engine.backup.region.offset + obj._oid) // _LINE


class TestRepairDirections:
    def test_main_repaired_from_backup(self):
        heap, engine, device, media, pairs = kamino_stack()
        before = pairs[2].key
        media.flip_bit(heap.region.offset + pairs[2]._oid, 4)
        report = scrubber(heap, engine, device).scrub_once()
        assert report.repaired >= 1 and report.ok
        assert pairs[2].key == before
        assert media.bad_lines() == []
        assert device.stats.media_repaired >= 1

    def test_backup_repaired_from_main(self):
        heap, engine, device, media, pairs = kamino_stack()
        addr = engine.backup.region.offset + pairs[1]._oid
        media.flip_bit(addr, 0)
        report = scrubber(heap, engine, device).scrub_once()
        assert report.repaired == 1 and report.ok
        assert media.bad_lines() == []

    def test_pending_sync_blocks_stale_backup(self):
        """A committed-but-unsynced line must NOT be 'repaired' from the
        lagging backup; without a peer it degrades to lost."""
        heap, engine, device, media, pairs = kamino_stack()
        with heap.transaction():
            pairs[0].tx_add()
            pairs[0].key = 999  # committed; backup sync still queued
        assert engine.pending_count >= 1
        assert engine.pending_ranges()
        line = main_line(heap, pairs[0])
        media.flip_bit(line * _LINE, 6)
        report = scrubber(heap, engine, device).scrub_once()
        assert report.lost == 1 and report.repaired == 0
        assert line in media.lost
        with pytest.raises(BothCopiesLostError):
            heap.read_bytes(pairs[0]._oid, 8)

    def test_pending_line_recovers_via_peer(self):
        heap, engine, device, media, pairs = kamino_stack()
        pristine = bytes(device._durable)
        with heap.transaction():
            pairs[0].tx_add()
            pairs[0].key = 999
        snapshot = bytes(device._durable)
        line = main_line(heap, pairs[0])
        media.flip_bit(line * _LINE, 6)

        def peer(addr, size):
            return snapshot[addr : addr + size]

        report = scrubber(heap, engine, device, peer_repair=peer).scrub_once()
        assert report.repaired == 1 and report.lost == 0
        assert pairs[0].key == 999
        del pristine


class TestBothCopies:
    def test_both_copies_bad_degrades_typed(self):
        heap, engine, device, media, pairs = kamino_stack()
        media.flip_bit(heap.region.offset + pairs[3]._oid, 1)
        media.flip_bit(engine.backup.region.offset + pairs[3]._oid, 1)
        report = scrubber(heap, engine, device).scrub_once()
        assert report.lost >= 1 and report.ok
        with pytest.raises(BothCopiesLostError):
            heap.read_bytes(pairs[3]._oid, 8)

    def test_both_copies_bad_peer_saves_the_line(self):
        heap, engine, device, media, pairs = kamino_stack()
        snapshot = bytes(device._durable)
        media.flip_bit(heap.region.offset + pairs[3]._oid, 1)
        media.flip_bit(engine.backup.region.offset + pairs[3]._oid, 1)

        def peer(addr, size):
            return snapshot[addr : addr + size]

        report = scrubber(heap, engine, device, peer_repair=peer).scrub_once()
        assert report.lost == 0 and report.repaired == 2
        assert pairs[3].key == 3


class TestQuarantine:
    def test_dead_line_quarantined_and_restored(self):
        heap, engine, device, media, pairs = kamino_stack()
        line = backup_line(heap, engine, pairs[4])
        media.kill_line(line)
        report = scrubber(heap, engine, device).scrub_once()
        assert report.quarantined == 1 and report.repaired >= 1
        assert line in media.retired and line not in media.dead
        table = heap.region.pool.quarantine_table()
        assert line in [ln for ln, _spare in table]

    def test_stuck_line_quarantined_after_failed_repair(self):
        heap, engine, device, media, pairs = kamino_stack()
        media.stick_bit(heap.region.offset + pairs[5]._oid, 3, 1)
        report = scrubber(heap, engine, device).scrub_once()
        line = main_line(heap, pairs[5])
        assert line in media.retired  # rewrite failed, quarantine cured it
        assert media.verify_line(line)
        assert pairs[5].key == 5
        assert report.ok

    def test_spare_capacity_exhaustion_reported(self):
        heap, engine, device, media, pairs = kamino_stack()
        pool = heap.region.pool
        start = engine.backup.region.offset // _LINE
        for i in range(40):  # more than SPARE_LINES=32
            spare = pool.quarantine_line(start + 200 + i)
            if spare is None:
                break
        else:
            pytest.fail("quarantine table never filled up")


class TestScrubberLoop:
    def test_clean_pool_scrubs_clean(self):
        heap, engine, device, media, _pairs = kamino_stack()
        report = scrubber(heap, engine, device).scrub_once()
        assert report.clean and report.ok
        assert device.stats.media_detected == 0

    def test_armed_scrubber_fires_periodically(self):
        from repro.sim import EventSimulator

        heap, engine, device, media, pairs = kamino_stack()
        sim = EventSimulator()
        s = scrubber(heap, engine, device).arm(sim, interval_ns=1000.0)
        media.flip_bit(heap.region.offset + pairs[6]._oid, 2)
        sim.run(until=5500.0)
        s.disarm()
        assert s.passes >= 3
        assert media.bad_lines() == []
        assert pairs[6].key == 6
