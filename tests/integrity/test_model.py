"""MediaFaultModel: injection semantics, typed errors, state carriage."""

import pytest

from repro.errors import BothCopiesLostError, UncorrectableMediaError
from repro.integrity import MediaFaultModel
from repro.nvm import NVMDevice
from repro.nvm.latency import CACHE_LINE

SIZE = 1 << 16


def make_device(protect=True, seed=0):
    device = NVMDevice(SIZE, seed=seed)
    media = device.attach_media(seed=seed, protect=protect)
    return device, media


def persist(device, addr, data):
    device.write(addr, data)
    device.flush(addr, len(data))
    device.fence()


class TestFlips:
    def test_flip_is_silent_but_detectable(self):
        device, media = make_device()
        persist(device, 256, b"\x00" * 64)
        media.flip_bit(256, 3)
        # silent: the read succeeds and returns the corrupted byte
        assert device.read(256, 1) == bytes([1 << 3])
        # detectable: the line fails checksum verification
        assert not media.verify_line(256 // CACHE_LINE)
        assert media.bad_lines() == [256 // CACHE_LINE]
        assert device.stats.media_flips == 1

    def test_inject_flips_respects_ranges(self):
        device, media = make_device()
        persist(device, 0, bytes(range(256)) * 4)
        flips = media.inject_flips(16, ranges=[(128, 64), (512, 64)])
        assert len(flips) == 16
        for addr, bit in flips:
            assert 128 <= addr < 192 or 512 <= addr < 576
            assert 0 <= bit < 8

    def test_unprotected_flip_is_undetectable(self):
        device, media = make_device(protect=False)
        persist(device, 0, b"\xff" * 64)
        media.flip_bit(0, 0)
        assert not media.protected
        assert media.verify_line(0)  # nothing to verify against
        assert media.bad_lines() == []

    def test_legitimate_rewrite_clears_taint(self):
        device, media = make_device()
        persist(device, 0, b"a" * 64)
        media.flip_bit(0, 1)
        assert not media.verify_line(0)
        persist(device, 0, b"b" * 64)  # full-line overwrite re-blesses
        assert media.verify_line(0)


class TestStuck:
    def test_stuck_bit_reasserts_after_writes(self):
        device, media = make_device()
        persist(device, 64, b"\x00" * 64)
        media.stick_bit(64, 7, 1)
        assert device.read(64, 1)[0] & 0x80
        persist(device, 64, b"\x00" * 64)  # rewrite tries to clear it
        assert device.read(64, 1)[0] & 0x80  # ...and fails
        assert not media.verify_line(1)

    def test_repair_of_stuck_line_fails_until_retired(self):
        device, media = make_device()
        persist(device, 64, b"\x00" * 64)
        media.stick_bit(64, 7, 1)
        media.repair_line(1, b"\x00" * CACHE_LINE)
        assert not media.verify_line(1)  # stuck bit re-corrupted it
        media.retire(1)
        media.repair_line(1, b"\x00" * CACHE_LINE)
        assert media.verify_line(1)  # the spare line holds clean media


class TestDeadAndLost:
    def test_dead_line_raises_until_retired(self):
        device, media = make_device()
        persist(device, 128, b"x" * 64)
        media.kill_line(2)
        with pytest.raises(UncorrectableMediaError) as exc:
            device.read(128, 8)
        assert 2 in exc.value.lines
        media.retire(2)
        device.read(128, 8)  # remapped to a spare: reads serve again

    def test_lost_line_raises_typed(self):
        device, media = make_device()
        media.mark_lost(3)
        with pytest.raises(BothCopiesLostError):
            device.read(3 * CACHE_LINE, 1)

    def test_kill_lines_stays_inside_ranges(self):
        device, media = make_device()
        killed = media.kill_lines(3, ranges=[(1024, 256)])
        assert killed
        for line in killed:
            assert 1024 <= line * CACHE_LINE < 1280


class TestInvariance:
    def test_no_faults_moves_no_counters(self):
        device, media = make_device()
        for i in range(32):
            persist(device, i * 64, bytes([i]) * 64)
        device.persist_all()
        stats = device.stats
        assert stats.media_flips == 0
        assert stats.media_dead == 0
        assert stats.media_detected == 0
        assert stats.media_repaired == 0
        assert not media.faulty
        assert media.bad_lines() == []


class TestCarriage:
    def test_clone_carries_fault_state(self):
        device, media = make_device()
        persist(device, 0, b"q" * 64)
        media.flip_bit(0, 2)
        media.kill_line(5)
        media.stick_bit(448, 0, 1)
        clone = device.clone_durable(seed=0)
        assert clone.media is not None
        assert not clone.media.verify_line(0)
        assert 5 in clone.media.dead
        assert 7 in clone.media.stuck
        with pytest.raises(UncorrectableMediaError):
            clone.read(5 * CACHE_LINE, 1)

    def test_fingerprint_token_distinguishes_fault_maps(self):
        _device, media_a = make_device()
        _device2, media_b = make_device()
        assert media_a.fingerprint_token() == media_b.fingerprint_token()
        media_b.kill_line(9)
        assert media_a.fingerprint_token() != media_b.fingerprint_token()
