"""IntegrityTree: geometry, streamed/eager propagation, adversarial
stale-replay detection, crash recovery, and the closed coverage window."""

import zlib
from array import array

import pytest

import repro
from repro.errors import IntegrityTreeError, MediaError, RootMismatchError
from repro.integrity import FANOUT, IntegrityTree, TREE_MODES
from repro.integrity.tree import ZERO_LINE_CRC
from repro.nvm import NVMDevice
from repro.nvm.latency import CACHE_LINE

SIZE = 1 << 16
N_LINES = SIZE // CACHE_LINE


def make_device(tree="streamed", seed=0, **kwargs):
    device = NVMDevice(SIZE, seed=seed)
    media = device.attach_media(seed=seed, tree=tree, **kwargs)
    return device, media


def persist(device, addr, data):
    device.write(addr, data)
    device.flush(addr, len(data))
    device.fence()


def brute_root(leaves):
    """Reference dense bottom-up build."""
    crc = zlib.crc32
    lvl = leaves
    while len(lvl) > 1:
        m = (len(lvl) + FANOUT - 1) // FANOUT
        nxt = array("I", bytes(4 * m))
        for i in range(m):
            nxt[i] = crc(lvl[i * FANOUT : (i + 1) * FANOUT].tobytes())
        lvl = nxt
    return lvl[0]


class TestConstruction:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            IntegrityTree(64, mode="lazy")
        assert set(TREE_MODES) == {"streamed", "eager"}

    def test_bless_all_zero_device(self):
        tree = IntegrityTree(N_LINES)
        tree.bless_all(bytearray(SIZE))
        assert tree.root_published == brute_root(tree.leaves)
        assert all(v == ZERO_LINE_CRC for v in tree.leaves)
        assert not tree._nonzero

    def test_bless_covers_preexisting_content(self):
        """Content written before attach is committed by the root — the
        tree's coverage is total from the first instruction."""
        device = NVMDevice(SIZE, seed=0)
        persist(device, 512, b"pre-attach" * 6)
        media = device.attach_media(seed=0, tree="streamed")
        assert media.tree.scan(device._durable) == []
        assert media.tree.root_published == brute_root(media.tree.leaves)

    def test_errors_exported_from_repro_root(self):
        assert repro.IntegrityTree is IntegrityTree
        assert issubclass(repro.IntegrityTreeError, MediaError)
        assert issubclass(repro.RootMismatchError, IntegrityTreeError)

    def test_tree_requires_protection(self):
        device = NVMDevice(SIZE, seed=0)
        with pytest.raises(ValueError):
            device.attach_media(seed=0, protect=False, tree="streamed")


class TestSparseLevelBuild:
    @pytest.mark.parametrize("n", [1, 2, 15, 16, 17, 255, 256, 257, 5000])
    def test_sparse_build_matches_dense(self, n):
        import random

        rng = random.Random(n)
        tree = IntegrityTree(n)
        for _ in range(min(n, 40)):
            tree._set_leaf(rng.randrange(n), rng.randrange(1 << 32))
        assert tree._build_levels(tree.leaves)[-1][0] == brute_root(tree.leaves)

    @pytest.mark.parametrize("n", [16, 100, 257])
    def test_fully_written_build_matches_dense(self, n):
        import random

        rng = random.Random(n * 7)
        tree = IntegrityTree(n)
        for i in range(n):
            tree._set_leaf(i, rng.randrange(1 << 32))
        assert tree._build_levels(tree.leaves)[-1][0] == brute_root(tree.leaves)


class TestModes:
    def _noted(self, mode, notes):
        tree = IntegrityTree(N_LINES, mode=mode)
        tree.bless_all(bytearray(SIZE))
        for line, value in notes:
            tree.note_line(line, value)
        tree.apply_pending()
        return tree

    def test_streamed_and_eager_agree_on_root(self):
        notes = [(i * 7 % N_LINES, (i * 2654435761) & 0xFFFFFFFF)
                 for i in range(200)]
        streamed = self._noted("streamed", notes)
        eager = self._noted("eager", notes)
        assert streamed.root_published == eager.root_published
        assert streamed.leaves == eager.leaves

    def test_streamed_hashes_fewer_interior_nodes(self):
        """The point of the coalesced batches: a dirty interior node is
        re-hashed once per batch, not once per child update."""
        notes = [(i % 64, i) for i in range(512)]  # hot, clustered lines
        streamed = self._noted("streamed", notes)
        eager = self._noted("eager", notes)
        assert streamed.node_hashes < eager.node_hashes / 4
        assert streamed.batches >= 1
        assert eager.batches == 0

    def test_watermark_triggers_auto_apply(self):
        tree = IntegrityTree(N_LINES, mode="streamed", watermark=8)
        tree.bless_all(bytearray(SIZE))
        for line in range(7):
            tree.note_line(line, line + 1)
        assert len(tree.pending) == 7
        tree.note_line(7, 8)  # hits the watermark
        assert len(tree.pending) == 0
        assert tree.batches == 1

    def test_pending_is_latest_wins(self):
        tree = IntegrityTree(N_LINES, mode="streamed")
        tree.bless_all(bytearray(SIZE))
        tree.note_line(3, 111)
        tree.note_line(3, 222)
        assert tree.expected_crc(3) == 222
        tree.apply_pending()
        assert tree.expected_crc(3) == 222


class TestAdversarialReplay:
    def test_stale_replay_fools_sidecar_but_not_tree(self):
        device, media = make_device()
        line_addr = 4 * CACHE_LINE
        persist(device, line_addr, b"v1" * 32)
        snap = media.snapshot_lines([(line_addr, CACHE_LINE)])
        persist(device, line_addr, b"v2" * 32)
        replayed = media.replay_stale(snap, [4])
        assert replayed == [4]
        # internally consistent: the per-line checksum verifies clean
        assert media.sidecar.verify(4, device._durable)
        # ...but the tree's leaf kept moving with the v2 persist
        assert not media.verify_line(4)
        assert 4 in media.bad_lines()
        assert device.stats.media_stale == 1

    def test_checksum_only_misses_the_replay(self):
        """Regression pin for the failure class the tree closes: without
        a tree the consistent replay is silent."""
        device, media = make_device(tree=None)
        line_addr = 4 * CACHE_LINE
        persist(device, line_addr, b"v1" * 32)
        snap = media.snapshot_lines([(line_addr, CACHE_LINE)])
        persist(device, line_addr, b"v2" * 32)
        media.replay_stale(snap, [4])
        assert media.verify_line(4)  # silently wrong
        assert media.bad_lines() == []
        assert device.read(line_addr, 2) == b"v1"

    def test_repair_restores_tree_agreement(self):
        device, media = make_device()
        persist(device, 0, b"new" * 21 + b"!")
        snap_img = {0: b"\x00" * CACHE_LINE}
        media.replay_stale(snap_img, [0])
        assert not media.verify_line(0)
        media.repair_line(0, b"new" * 21 + b"!")
        assert media.verify_line(0)
        assert media.bad_lines() == []

    def test_replay_only_hits_snapshotted_lines(self):
        device, media = make_device()
        persist(device, 0, b"a" * 64)
        assert media.replay_stale({}, [0, 1, 2]) == []
        assert device.stats.media_stale == 0


class TestCoverageWindow:
    """Satellite: the sidecar's lazy-coverage window and how it closes."""

    def _corrupt_silently(self, device):
        # direct durable mutation: corruption no injector API blesses
        device._durable[100] ^= 0xFF

    def test_checksum_only_window_pinned(self):
        """Old behavior, pinned: a line corrupted before its first
        persist verifies clean under the lazy sidecar."""
        device, media = make_device(tree=None)
        self._corrupt_silently(device)
        assert media.verify_line(100 // CACHE_LINE)
        assert media.bad_lines() == []

    def test_tree_closes_the_window(self):
        device, media = make_device(tree="streamed")
        self._corrupt_silently(device)
        assert not media.verify_line(100 // CACHE_LINE)
        assert 100 // CACHE_LINE in media.bad_lines()

    def test_bless_on_attach_closes_it_checksum_only(self):
        device = NVMDevice(SIZE, seed=0)
        media = device.attach_media(seed=0, bless=True)
        self._corrupt_silently(device)
        assert not media.verify_line(100 // CACHE_LINE)
        assert 100 // CACHE_LINE in media.bad_lines()


class TestRecovery:
    def test_clone_recover_round_trip(self):
        device, media = make_device()
        for i in range(40):
            persist(device, i * CACHE_LINE, bytes([i + 1]) * CACHE_LINE)
        tree = media.tree
        twin = tree.clone()  # streamed clone drops the volatile interior
        assert twin._levels is None
        twin.recover(device._durable)
        tree.apply_pending()
        assert twin.root() == tree.root()
        assert twin.scan(device._durable) == []

    def test_recovery_publishes_replayed_pending(self):
        tree = IntegrityTree(N_LINES, mode="streamed", watermark=10_000)
        dur = bytearray(SIZE)
        tree.bless_all(dur)
        old_root = tree.root_published
        dur[0:64] = b"x" * 64
        tree.note_line(0, zlib.crc32(b"x" * 64))
        assert tree.root_published == old_root  # not yet applied
        tree.drop_interior()
        tree.recover(dur)
        assert tree.root_published != old_root
        assert tree.scan(dur) == []

    def test_root_mismatch_raises_typed(self):
        tree = IntegrityTree(N_LINES)
        tree.bless_all(bytearray(SIZE))
        tree.root_published ^= 0xDEAD  # persist-domain corruption
        tree.drop_interior()
        with pytest.raises(RootMismatchError):
            tree.recover()

    def test_recover_before_bless_raises(self):
        with pytest.raises(IntegrityTreeError):
            IntegrityTree(N_LINES).recover()

    def test_eager_clone_keeps_interior(self):
        device, media = make_device(tree="eager")
        persist(device, 0, b"e" * 64)
        twin = media.tree.clone()
        assert twin._levels is not None
        assert twin.root() == media.tree.root()


class TestScan:
    def test_scan_bisects_into_untouched_space(self):
        device, media = make_device()
        tree = media.tree
        device._durable[8000] = 0x5A  # corruption in never-written space
        bad = tree.scan(device._durable)
        assert bad == [8000 // CACHE_LINE]

    def test_scan_range_bounds(self):
        device, media = make_device()
        device._durable[0] = 1
        device._durable[SIZE - 1] = 1
        tree = media.tree
        assert tree.scan(device._durable, first=0, last=0) == [0]
        assert tree.scan(device._durable, first=1, last=N_LINES - 2) == []
        assert tree.scan(device._durable, first=N_LINES - 1) == [N_LINES - 1]
