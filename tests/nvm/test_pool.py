"""Unit tests for pool formatting, regions, and reopen-after-crash."""

import pytest

from repro.errors import OutOfBoundsError, PoolCorruptionError
from repro.nvm import CrashPolicy, NVMDevice, PmemPool


def make_pool(size=64 * 1024):
    dev = NVMDevice(size)
    return PmemPool.create(dev), dev


class TestLifecycle:
    def test_create_then_open(self):
        pool, dev = make_pool()
        dev.persist_all()
        reopened = PmemPool.open(dev)
        assert reopened.root_offset == 0

    def test_open_unformatted_device_fails(self):
        dev = NVMDevice(4096)
        with pytest.raises(PoolCorruptionError):
            PmemPool.open(dev)

    def test_open_wrong_size_fails(self):
        pool, dev = make_pool(8192)
        dev.persist_all()
        other = NVMDevice(4096)
        other._durable[:4096] = dev._durable[:4096]
        with pytest.raises(PoolCorruptionError):
            PmemPool.open(other)

    def test_root_offset_roundtrip(self):
        pool, dev = make_pool()
        pool.set_root_offset(1234)
        assert pool.root_offset == 1234
        reopened = PmemPool.open(dev)
        assert reopened.root_offset == 1234

    def test_root_offset_survives_crash(self):
        pool, dev = make_pool()
        pool.set_root_offset(999)
        dev.crash(CrashPolicy.DROP_ALL)
        dev.restart()
        assert PmemPool.open(dev).root_offset == 999


class TestRegions:
    def test_create_and_lookup(self):
        pool, _ = make_pool()
        r = pool.create_region("heap", 4096)
        assert pool.region("heap") is r
        assert r.size >= 4096

    def test_unknown_region_raises(self):
        pool, _ = make_pool()
        with pytest.raises(KeyError):
            pool.region("nope")

    def test_duplicate_region_rejected(self):
        pool, _ = make_pool()
        pool.create_region("a", 128)
        with pytest.raises(ValueError):
            pool.create_region("a", 128)

    def test_regions_do_not_overlap(self):
        pool, _ = make_pool()
        a = pool.create_region("a", 100)
        b = pool.create_region("b", 100)
        assert a.offset + a.size <= b.offset

    def test_regions_survive_crash_and_reopen(self):
        pool, dev = make_pool()
        a = pool.create_region("log", 1024)
        a.write_and_flush(0, b"persist me")
        dev.crash(CrashPolicy.DROP_ALL)
        dev.restart()
        reopened = PmemPool.open(dev)
        a2 = reopened.region("log")
        assert a2.offset == a.offset and a2.size == a.size
        assert a2.read(0, 10) == b"persist me"

    def test_region_or_create_reuses(self):
        pool, _ = make_pool()
        a = pool.create_region("x", 256)
        assert pool.region_or_create("x", 256) is a

    def test_pool_exhaustion(self):
        pool, _ = make_pool(size=4096)
        with pytest.raises(OutOfBoundsError):
            pool.create_region("big", 1 << 20)

    def test_region_bounds_enforced(self):
        pool, _ = make_pool()
        r = pool.create_region("r", 128)
        with pytest.raises(OutOfBoundsError):
            r.read(120, 64)

    def test_region_relative_addressing(self):
        pool, _ = make_pool()
        a = pool.create_region("a", 256)
        b = pool.create_region("b", 256)
        a.write(0, b"AAAA")
        b.write(0, b"BBBB")
        assert a.read(0, 4) == b"AAAA"
        assert b.read(0, 4) == b"BBBB"

    def test_region_copy(self):
        pool, _ = make_pool()
        r = pool.create_region("r", 512)
        r.write(0, b"source12")
        r.copy(256, 0, 8)
        assert r.read(256, 8) == b"source12"

    def test_free_bytes_decreases(self):
        pool, _ = make_pool()
        before = pool.free_bytes
        pool.create_region("r", 1024)
        assert pool.free_bytes <= before - 1024
