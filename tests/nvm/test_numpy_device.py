"""Differential sweep: the numpy-vectorized device vs both python devices.

Hypothesis searches for ANY mixed sequence of writes, copies (bulk and
chunked), flushes, fences, crashes, scheduled-crash countdowns that fire
*mid-bulk-op*, and media rot (bit flips, dead lines) on which
``NumpyNVMDevice`` diverges from the devices it must be bit-identical
to:

* ``ReferenceNVMDevice`` — every observable: reads, ``NVMStats``,
  dirty-line counts, post-crash durable bytes, typed media errors;
* the pure-python ``NVMDevice`` — additionally the overlay/crash
  fingerprints the crash-consistency checker prunes on (the reference
  device legitimately diverges there once bulk copy records exist).

This is the enforcement arm of the backend half of the invariance
contract (docs/INTERNALS.md §8).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import DeviceCrashedError, MediaError
from repro.nvm import CrashPolicy, NVMDevice, ReferenceNVMDevice
from repro.nvm.backend import HAVE_NUMPY

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

if HAVE_NUMPY:
    from repro.nvm.numpy_device import NumpyNVMDevice

DEVICE_SIZE = 1 << 14
LINE = 64
BULK_BYTES = 4096  # >= the bulk dirty-range threshold (64 lines)

POLICIES = [CrashPolicy.DROP_ALL, CrashPolicy.KEEP_ALL, CrashPolicy.RANDOM]

SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def op_sequences(draw):
    nops = draw(st.integers(2, 22))
    ops = []
    for _ in range(nops):
        kind = draw(st.sampled_from([
            "write", "copy", "bulk_copy", "flush", "flush_multi", "fence",
            "persist_all", "read", "crash", "schedule_crash", "rot",
        ]))
        if kind == "write":
            addr = draw(st.integers(0, DEVICE_SIZE - 1))
            size = draw(st.integers(1, min(256, DEVICE_SIZE - addr)))
            data = bytes(draw(st.integers(0, 255)) for _ in range(min(size, 8))) * (
                (size + 7) // 8
            )
            ops.append(("write", addr, data[:size]))
        elif kind == "copy":
            size = draw(st.integers(1, 256))
            src = draw(st.integers(0, DEVICE_SIZE - size))
            dst = draw(st.integers(0, DEVICE_SIZE - size))
            ops.append(("copy", dst, src, size, draw(st.integers(1, 4))))
        elif kind == "bulk_copy":
            nlines = BULK_BYTES // LINE
            src = draw(st.integers(0, DEVICE_SIZE // LINE - nlines)) * LINE
            dst = draw(st.integers(0, DEVICE_SIZE // LINE - nlines)) * LINE
            ops.append(("copy", dst, src, BULK_BYTES, 1))
        elif kind == "flush":
            addr = draw(st.integers(0, DEVICE_SIZE - 1))
            ops.append(("flush", addr, draw(st.integers(1, min(1024, DEVICE_SIZE - addr)))))
        elif kind == "flush_multi":
            ranges = []
            for _ in range(draw(st.integers(1, 4))):
                addr = draw(st.integers(0, DEVICE_SIZE - 1))
                ranges.append((addr, draw(st.integers(1, min(256, DEVICE_SIZE - addr)))))
            ops.append(("flush_multi", ranges))
        elif kind == "fence":
            ops.append(("fence",))
        elif kind == "persist_all":
            ops.append(("persist_all",))
        elif kind == "read":
            addr = draw(st.integers(0, DEVICE_SIZE - 1))
            ops.append(("read", addr, draw(st.integers(1, min(512, DEVICE_SIZE - addr)))))
        elif kind == "crash":
            ops.append((
                "crash",
                draw(st.sampled_from(POLICIES)),
                draw(st.floats(0.0, 1.0)),
            ))
        elif kind == "schedule_crash":
            # a countdown small enough to fire inside the very next
            # bulk/chunked op is the interesting case
            ops.append((
                "schedule_crash",
                draw(st.integers(0, 6)),
                draw(st.sampled_from(POLICIES)),
                draw(st.floats(0.0, 1.0)),
            ))
        else:
            ops.append((
                "rot",
                draw(st.integers(1, 4)),     # bit flips
                draw(st.integers(0, 1)),     # dead lines
                draw(st.integers(0, 2**16)),  # injection seed
            ))
    return ops


def _apply(dev, op):
    """One op against one device -> a comparable outcome tuple.

    Crashes and typed media errors are part of the observable surface:
    both devices must raise the same type at the same op.
    """
    kind = op[0]
    try:
        if kind == "write":
            dev.write(op[1], op[2])
        elif kind == "copy":
            dev.copy(op[1], op[2], op[3], chunks=op[4])
        elif kind == "flush":
            dev.flush(op[1], op[2])
        elif kind == "flush_multi":
            dev.flush_multi(op[1])
        elif kind == "fence":
            dev.fence()
        elif kind == "persist_all":
            dev.persist_all()
        elif kind == "read":
            return ("value", dev.read(op[1], op[2]))
        elif kind == "crash":
            dev.crash(op[1], survival_prob=op[2])
            dev.restart()
        elif kind == "schedule_crash":
            dev.schedule_crash(op[1], op[2], survival_prob=op[3])
        else:  # rot
            if dev.media is None:
                dev.attach_media(seed=op[3], protect=True)
            import random as _random

            rng = _random.Random(op[3])
            dev.media.inject_flips(op[1], rng=rng)
            if op[2]:
                dev.media.kill_lines(op[2], rng=rng)
    except DeviceCrashedError:
        # a scheduled countdown fired mid-op; power-cycle and continue
        dev.cancel_scheduled_crash()
        dev.restart()
        return ("crashed",)
    except MediaError as exc:
        return ("media", type(exc).__name__)
    return ("ok",)


def _safe_read(dev, addr, size):
    try:
        return ("value", dev.read(addr, size))
    except MediaError as exc:
        return ("media", type(exc).__name__)


@given(ops=op_sequences(), seed=st.integers(0, 2**16))
@SETTINGS
def test_numpy_device_matches_reference(ops, seed):
    vec = NumpyNVMDevice(DEVICE_SIZE, seed=seed)
    ref = ReferenceNVMDevice(DEVICE_SIZE, seed=seed)
    for i, op in enumerate(ops):
        assert _apply(vec, op) == _apply(ref, op), (i, op)
        assert vec.dirty_lines == ref.dirty_lines, (i, op)
        assert vec.stats.snapshot() == ref.stats.snapshot(), (i, op)
    # whole-device sweep, line by line so dead lines stay typed
    for addr in range(0, DEVICE_SIZE, LINE):
        assert _safe_read(vec, addr, LINE) == _safe_read(ref, addr, LINE)


@given(ops=op_sequences(), seed=st.integers(0, 2**16))
@SETTINGS
def test_numpy_device_fingerprints_match_pure(ops, seed):
    """The checker's pruning digests must not depend on the backend."""
    vec = NumpyNVMDevice(DEVICE_SIZE, seed=seed)
    pure = NVMDevice(DEVICE_SIZE, seed=seed)
    vec.fingerprint_crashes = pure.fingerprint_crashes = True
    for i, op in enumerate(ops):
        assert _apply(vec, op) == _apply(pure, op), (i, op)
        assert vec.overlay_fingerprint() == pure.overlay_fingerprint(), (i, op)
        assert vec.last_crash_fingerprint == pure.last_crash_fingerprint, (i, op)


def test_scheduled_crash_fires_mid_bulk_copy_identically():
    """The countdown decrements per charged primitive, so a bulk copy
    large enough to cross it must tear at the same internal point."""
    for countdown in range(0, 8):
        vec = NumpyNVMDevice(DEVICE_SIZE, seed=9)
        ref = ReferenceNVMDevice(DEVICE_SIZE, seed=9)
        for dev in (vec, ref):
            dev.write(0, b"\x5a" * BULK_BYTES)
            dev.persist_all()
            dev.fence()
            dev.schedule_crash(countdown, CrashPolicy.RANDOM, survival_prob=0.5)
        outcomes = []
        for dev in (vec, ref):
            try:
                dev.copy(BULK_BYTES, 0, BULK_BYTES, chunks=4)
                outcomes.append("survived")
            except DeviceCrashedError:
                outcomes.append("crashed")
        assert outcomes[0] == outcomes[1], countdown
        assert vec.durable_read(0, DEVICE_SIZE) == ref.durable_read(0, DEVICE_SIZE)
        assert vec.stats.snapshot() == ref.stats.snapshot()


def test_numpy_device_clone_durable_matches_pure():
    vec = NumpyNVMDevice(DEVICE_SIZE, seed=3)
    pure = NVMDevice(DEVICE_SIZE, seed=3)
    for dev in (vec, pure):
        dev.write(100, b"abc" * 100)
        dev.flush(100, 300)
        dev.fence()
        dev.write(5000, b"xyz" * 10)  # left dirty: must not clone
    c1, c2 = vec.clone_durable(seed=1), pure.clone_durable(seed=1)
    assert type(c1) is NumpyNVMDevice
    assert c1.read(0, DEVICE_SIZE) == c2.read(0, DEVICE_SIZE)
    assert c1.dirty_lines == c2.dirty_lines == 0
