"""Pool/heap introspection reports."""

from repro.nvm.inspect import describe_heap, describe_log, describe_pool, format_report
from repro.tx import UndoLogEngine, kamino_simple

from ..conftest import Pair, build_heap


class TestDescribePool:
    def test_regions_listed_in_offset_order(self):
        heap, _, _ = build_heap(kamino_simple)
        info = describe_pool(heap.pool)
        offsets = [r["offset"] for r in info["regions"]]
        assert offsets == sorted(offsets)
        names = {r["name"] for r in info["regions"]}
        assert {"heap", "intent_log", "backup"} <= names

    def test_root_offset_reported(self):
        heap, _, _ = build_heap(UndoLogEngine)
        with heap.transaction():
            p = heap.alloc(Pair)
            heap.set_root(p)
        assert describe_pool(heap.pool)["root_offset"] == p.oid


class TestDescribeHeap:
    def test_counts_allocations(self):
        heap, _, _ = build_heap(UndoLogEngine)
        with heap.transaction():
            for _ in range(10):
                heap.alloc(Pair)
        info = describe_heap(heap)
        assert info["allocated_bytes"] > 0
        assert info["classes"]  # at least one class in use
        cls, entry = next(iter(info["classes"].items()))
        assert entry["slots"] >= entry["free_slots"]

    def test_fresh_heap_fully_unassigned(self):
        heap, _, _ = build_heap(UndoLogEngine)
        info = describe_heap(heap)
        assert info["chunks_unassigned"] == info["chunks_total"]
        assert info["utilization"] == 0.0


class TestDescribeLog:
    def test_idle_log_fully_free(self):
        heap, engine, _ = build_heap(UndoLogEngine)
        info = describe_log(engine.log)
        assert info["free"] == info["slots"]
        assert info["non_free_durable"] == {}

    def test_pending_kamino_slot_visible(self):
        heap, engine, _ = build_heap(kamino_simple)
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 1
        info = describe_log(engine.log)
        assert info["non_free_durable"].get("COMMITTED") == 1
        heap.drain()
        assert describe_log(engine.log)["non_free_durable"] == {}


class TestFormatReport:
    def test_report_sections(self):
        heap, _, _ = build_heap(kamino_simple)
        with heap.transaction():
            heap.alloc(Pair)
        heap.drain()
        report = format_report(heap)
        assert "pool:" in report
        assert "regions:" in report
        assert "heap:" in report
        assert "intent log:" in report
        assert "backup:" in report
