"""Unit tests for the simulated NVM device: overlay, flush, crash."""

import pytest

from repro.errors import DeviceCrashedError, OutOfBoundsError
from repro.nvm import CACHE_LINE, CrashPolicy, NVMDevice


def make_device(size=4096, **kw):
    return NVMDevice(size, **kw)


class TestReadWrite:
    def test_fresh_device_reads_zero(self):
        dev = make_device()
        assert dev.read(0, 16) == b"\0" * 16

    def test_write_then_read_back(self):
        dev = make_device()
        dev.write(100, b"hello world")
        assert dev.read(100, 11) == b"hello world"

    def test_write_spanning_cache_lines(self):
        dev = make_device()
        data = bytes(range(200 % 256)) * 1
        data = bytes(i % 256 for i in range(200))
        dev.write(CACHE_LINE - 10, data)
        assert dev.read(CACHE_LINE - 10, 200) == data

    def test_read_spanning_dirty_and_clean_lines(self):
        dev = make_device()
        dev.write(0, b"A" * CACHE_LINE)  # line 0 dirty
        # line 1 untouched (zeros)
        got = dev.read(0, 2 * CACHE_LINE)
        assert got == b"A" * CACHE_LINE + b"\0" * CACHE_LINE

    def test_overwrite_within_line(self):
        dev = make_device()
        dev.write(0, b"X" * 32)
        dev.write(8, b"YY")
        assert dev.read(0, 12) == b"X" * 8 + b"YY" + b"X" * 2

    def test_out_of_bounds_read(self):
        dev = make_device(size=128)
        with pytest.raises(OutOfBoundsError):
            dev.read(120, 16)

    def test_out_of_bounds_write(self):
        dev = make_device(size=128)
        with pytest.raises(OutOfBoundsError):
            dev.write(127, b"ab")

    def test_negative_address_rejected(self):
        dev = make_device()
        with pytest.raises(OutOfBoundsError):
            dev.read(-1, 4)

    def test_zero_size_device_rejected(self):
        with pytest.raises(ValueError):
            NVMDevice(0)


class TestPersistence:
    def test_unflushed_write_is_not_durable(self):
        dev = make_device()
        dev.write(0, b"data1234")
        assert dev.durable_read(0, 8) == b"\0" * 8

    def test_flush_makes_write_durable(self):
        dev = make_device()
        dev.write(0, b"data1234")
        dev.flush(0, 8)
        assert dev.durable_read(0, 8) == b"data1234"

    def test_flush_covers_whole_line(self):
        dev = make_device()
        dev.write(0, b"a")
        dev.write(CACHE_LINE - 1, b"b")
        dev.flush(0, 1)  # one line covers both
        assert dev.durable_read(CACHE_LINE - 1, 1) == b"b"

    def test_flush_does_not_touch_other_lines(self):
        dev = make_device()
        dev.write(0, b"a")
        dev.write(CACHE_LINE, b"b")
        dev.flush(0, 1)
        assert dev.durable_read(CACHE_LINE, 1) == b"\0"

    def test_persist_all(self):
        dev = make_device()
        for i in range(10):
            dev.write(i * CACHE_LINE, b"z")
        dev.persist_all()
        assert dev.dirty_lines == 0
        for i in range(10):
            assert dev.durable_read(i * CACHE_LINE, 1) == b"z"

    def test_dirty_lines_tracking(self):
        dev = make_device()
        assert dev.dirty_lines == 0
        dev.write(0, b"a")
        dev.write(3, b"b")  # same line
        assert dev.dirty_lines == 1
        dev.write(CACHE_LINE, b"c")
        assert dev.dirty_lines == 2
        dev.flush(0, 1)
        assert dev.dirty_lines == 1


class TestCrash:
    def test_crash_drop_all_loses_unflushed(self):
        dev = make_device()
        dev.write(0, b"gone")
        dev.crash(CrashPolicy.DROP_ALL)
        dev.restart()
        assert dev.read(0, 4) == b"\0" * 4

    def test_crash_keeps_flushed(self):
        dev = make_device()
        dev.write(0, b"kept")
        dev.flush(0, 4)
        dev.write(64, b"gone")
        dev.crash(CrashPolicy.DROP_ALL)
        dev.restart()
        assert dev.read(0, 4) == b"kept"
        assert dev.read(64, 4) == b"\0" * 4

    def test_crash_keep_all(self):
        dev = make_device()
        dev.write(0, b"evicted!")
        dev.crash(CrashPolicy.KEEP_ALL)
        dev.restart()
        assert dev.read(0, 8) == b"evicted!"

    def test_crash_random_is_word_granular_and_seeded(self):
        results = set()
        for seed in range(20):
            dev = make_device(seed=seed)
            dev.write(0, b"\xff" * 64)
            dev.crash(CrashPolicy.RANDOM, survival_prob=0.5)
            dev.restart()
            got = dev.read(0, 64)
            # every 8-byte word is all-ones or all-zeros, never torn inside
            for w in range(8):
                word = got[w * 8 : (w + 1) * 8]
                assert word in (b"\xff" * 8, b"\0" * 8)
            results.add(got)
        # with 20 seeds at p=0.5 we must see more than one outcome
        assert len(results) > 1

    def test_crash_random_same_seed_deterministic(self):
        outs = []
        for _ in range(2):
            dev = make_device(seed=7)
            dev.write(0, bytes(range(64)))
            dev.crash(CrashPolicy.RANDOM, survival_prob=0.5)
            dev.restart()
            outs.append(dev.read(0, 64))
        assert outs[0] == outs[1]

    def test_access_while_crashed_raises(self):
        dev = make_device()
        dev.crash()
        with pytest.raises(DeviceCrashedError):
            dev.read(0, 1)
        with pytest.raises(DeviceCrashedError):
            dev.write(0, b"x")
        with pytest.raises(DeviceCrashedError):
            dev.fence()
        dev.restart()
        dev.write(0, b"x")  # works again


class TestCopy:
    def test_copy_moves_data(self):
        dev = make_device()
        dev.write(0, b"payload!")
        dev.copy(512, 0, 8)
        assert dev.read(512, 8) == b"payload!"

    def test_copy_sees_unflushed_source(self):
        dev = make_device()
        dev.write(0, b"fresh")
        dev.copy(256, 0, 5)
        assert dev.read(256, 5) == b"fresh"

    def test_copy_destination_needs_flush(self):
        dev = make_device()
        dev.write(0, b"abc")
        dev.flush(0, 3)
        dev.copy(256, 0, 3)
        assert dev.durable_read(256, 3) == b"\0\0\0"
        dev.flush(256, 3)
        assert dev.durable_read(256, 3) == b"abc"

    def test_copy_accounting(self):
        dev = make_device()
        before = dev.stats.snapshot()
        dev.copy(128, 0, 100)
        d = dev.stats.delta(before)
        assert d.copies == 1
        assert d.copy_bytes == 100
        assert d.loads == 0 and d.stores == 0


class TestStats:
    def test_counters_increment(self):
        dev = make_device()
        dev.write(0, b"12345678")
        dev.read(0, 8)
        dev.flush(0, 8)
        dev.fence()
        s = dev.stats
        assert s.stores == 1 and s.store_bytes == 8
        assert s.loads == 1 and s.load_bytes == 8
        assert s.flushes == 1 and s.flushed_lines == 1
        assert s.fences == 1

    def test_snapshot_delta(self):
        dev = make_device()
        dev.write(0, b"x")
        snap = dev.stats.snapshot()
        dev.write(0, b"y" * 10)
        d = dev.stats.delta(snap)
        assert d.stores == 1
        assert d.store_bytes == 10

    def test_simulated_ns_positive(self):
        from repro.nvm import NVDIMM

        dev = make_device()
        dev.write(0, b"x" * 256)
        dev.flush(0, 256)
        dev.fence()
        assert dev.stats.simulated_ns(NVDIMM) > 0
