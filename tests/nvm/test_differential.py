"""Differential rig: the optimized NVMDevice vs the naive reference.

``ReferenceNVMDevice`` re-implements every data-path internal with the
straightforward per-word loops the optimized device replaced (mask
tables, single-line fast paths, bulk dirty ranges).  Driving both with
identical seeded op/crash/recovery sequences must be indistinguishable
in every observable: read results, ``NVMStats``, dirty-line counts, and
post-crash durable bytes.  This is the enforcement arm of the
invariance contract in docs/INTERNALS.md.
"""

import random

import pytest

from repro.nvm import CrashPolicy, NVMDevice, ReferenceNVMDevice

DEVICE_SIZE = 1 << 16
LINE = 64
#: large line-aligned copies cross the bulk-range threshold (64 lines)
BULK_BYTES = 8192

POLICIES = [CrashPolicy.DROP_ALL, CrashPolicy.KEEP_ALL, CrashPolicy.RANDOM]


def _random_ops(rng: random.Random, nops: int):
    """A mixed op tape biased to exercise every fast path."""
    ops = []
    for _ in range(nops):
        kind = rng.choice(
            [
                "write",
                "write_line",
                "write_word",
                "copy",
                "copy_bulk",
                "copy_chunked",
                "flush",
                "flush_multi",
                "fence",
                "persist_all",
                "read",
                "crash",
            ]
        )
        if kind == "write":
            addr = rng.randrange(DEVICE_SIZE - 256)
            size = rng.randint(1, 256)
            ops.append(("write", addr, bytes(rng.randrange(256) for _ in range(size))))
        elif kind == "write_line":
            # exactly one whole line: the fault-in-skipping store path
            addr = rng.randrange(DEVICE_SIZE // LINE) * LINE
            ops.append(("write", addr, bytes(rng.randrange(256) for _ in range(LINE))))
        elif kind == "write_word":
            addr = rng.randrange(DEVICE_SIZE // 8) * 8
            ops.append(("write", addr, bytes(rng.randrange(256) for _ in range(8))))
        elif kind == "copy":
            size = rng.randint(1, 512)
            ops.append(
                (
                    "copy",
                    rng.randrange(DEVICE_SIZE - size),
                    rng.randrange(DEVICE_SIZE - size),
                    size,
                    1,
                )
            )
        elif kind == "copy_bulk":
            # line-aligned and >= the bulk threshold
            nlines = BULK_BYTES // LINE
            dst = rng.randrange(DEVICE_SIZE // LINE - nlines) * LINE
            src = rng.randrange(DEVICE_SIZE // LINE - nlines) * LINE
            ops.append(("copy", dst, src, BULK_BYTES, 1))
        elif kind == "copy_chunked":
            size = rng.randint(64, 512)
            ops.append(
                (
                    "copy",
                    rng.randrange(DEVICE_SIZE - size),
                    rng.randrange(DEVICE_SIZE - size),
                    size,
                    rng.randint(2, 5),
                )
            )
        elif kind == "flush":
            addr = rng.randrange(DEVICE_SIZE - 1)
            ops.append(("flush", addr, rng.randint(1, min(2048, DEVICE_SIZE - addr))))
        elif kind == "flush_multi":
            ranges = []
            for _ in range(rng.randint(1, 5)):
                addr = rng.randrange(DEVICE_SIZE - 1)
                ranges.append((addr, rng.randint(1, min(512, DEVICE_SIZE - addr))))
            ops.append(("flush_multi", ranges))
        elif kind == "fence":
            ops.append(("fence",))
        elif kind == "persist_all":
            ops.append(("persist_all",))
        elif kind == "read":
            addr = rng.randrange(DEVICE_SIZE - 512)
            ops.append(("read", addr, rng.randint(1, 512)))
        else:
            ops.append(("crash", rng.choice(POLICIES), rng.random()))
    return ops


def _drive_pair(opt: NVMDevice, ref: ReferenceNVMDevice, ops, check_every=8):
    """Apply each op to both devices, comparing observables as we go."""
    for i, op in enumerate(ops):
        kind = op[0]
        if kind == "write":
            opt.write(op[1], op[2])
            ref.write(op[1], op[2])
        elif kind == "copy":
            _k, dst, src, size, chunks = op
            opt.copy(dst, src, size, chunks=chunks)
            ref.copy(dst, src, size, chunks=chunks)
        elif kind == "flush":
            opt.flush(op[1], op[2])
            ref.flush(op[1], op[2])
        elif kind == "flush_multi":
            opt.flush_multi(op[1])
            ref.flush_multi(op[1])
        elif kind == "fence":
            opt.fence()
            ref.fence()
        elif kind == "persist_all":
            opt.persist_all()
            ref.persist_all()
        elif kind == "read":
            assert opt.read(op[1], op[2]) == ref.read(op[1], op[2])
        else:
            _k, policy, survival = op
            opt.crash(policy, survival_prob=survival)
            ref.crash(policy, survival_prob=survival)
            assert opt.durable_read(0, DEVICE_SIZE) == ref.durable_read(0, DEVICE_SIZE)
            opt.restart()
            ref.restart()
        if i % check_every == 0:
            assert opt.dirty_lines == ref.dirty_lines
            assert opt.stats.snapshot() == ref.stats.snapshot()
    assert opt.read(0, DEVICE_SIZE) == ref.read(0, DEVICE_SIZE)
    assert opt.durable_read(0, DEVICE_SIZE) == ref.durable_read(0, DEVICE_SIZE)
    assert opt.dirty_lines == ref.dirty_lines
    assert opt.stats.snapshot() == ref.stats.snapshot()


@pytest.mark.parametrize("seed", range(12))
def test_randomized_sequences_are_indistinguishable(seed):
    rng = random.Random(seed)
    ops = _random_ops(rng, nops=120)
    opt = NVMDevice(DEVICE_SIZE, seed=seed)
    ref = ReferenceNVMDevice(DEVICE_SIZE, seed=seed)
    _drive_pair(opt, ref, ops)


@pytest.mark.parametrize("seed", range(6))
def test_uncontended_lock_mode_is_equivalent(seed):
    """Lock elision changes no observable, only the lock overhead."""
    rng = random.Random(1000 + seed)
    ops = _random_ops(rng, nops=80)
    opt = NVMDevice(DEVICE_SIZE, seed=seed, lock_mode="uncontended")
    ref = ReferenceNVMDevice(DEVICE_SIZE, seed=seed)
    _drive_pair(opt, ref, ops)


@pytest.mark.parametrize("seed", range(6))
def test_coalesce_flushes_matches_reference_coalescer(seed):
    """Burst accounting survives the rewrite: both devices coalescing."""
    rng = random.Random(2000 + seed)
    ops = _random_ops(rng, nops=80)
    opt = NVMDevice(DEVICE_SIZE, seed=seed, coalesce_flushes=True)
    ref = ReferenceNVMDevice(DEVICE_SIZE, seed=seed, coalesce_flushes=True)
    _drive_pair(opt, ref, ops)


def test_bulk_range_split_by_partial_flush():
    """Flushing the middle of a bulk dirty range splits it correctly."""
    opt = NVMDevice(DEVICE_SIZE, seed=0)
    ref = ReferenceNVMDevice(DEVICE_SIZE, seed=0)
    for dev in (opt, ref):
        dev.write(0, bytes(range(256)) * 32)  # 8 KiB of source data
        dev.persist_all()
        dev.fence()
        dev.copy(BULK_BYTES, 0, BULK_BYTES)  # bulk range on the optimized device
    # flush a window in the middle of the bulk range, then scribble on
    # the remainders: the split halves must still be tracked as dirty
    for dev in (opt, ref):
        dev.flush(BULK_BYTES + 1024, 512)
        dev.fence()
        dev.write(BULK_BYTES + 64, b"\xaa" * 8)
    assert opt.dirty_lines == ref.dirty_lines
    assert opt.stats.snapshot() == ref.stats.snapshot()
    assert opt.read(0, DEVICE_SIZE) == ref.read(0, DEVICE_SIZE)
    opt.crash(CrashPolicy.DROP_ALL)
    ref.crash(CrashPolicy.DROP_ALL)
    assert opt.durable_read(0, DEVICE_SIZE) == ref.durable_read(0, DEVICE_SIZE)


def test_bulk_range_survives_random_crash_identically():
    """Same seed => same surviving torn words, even out of a bulk range."""
    opt = NVMDevice(DEVICE_SIZE, seed=42)
    ref = ReferenceNVMDevice(DEVICE_SIZE, seed=42)
    for dev in (opt, ref):
        dev.write(0, b"\x5a" * BULK_BYTES)
        dev.persist_all()
        dev.fence()
        dev.copy(BULK_BYTES, 0, BULK_BYTES)
    opt.crash(CrashPolicy.RANDOM, survival_prob=0.5)
    ref.crash(CrashPolicy.RANDOM, survival_prob=0.5)
    assert opt.durable_read(0, DEVICE_SIZE) == ref.durable_read(0, DEVICE_SIZE)
