"""NVMStats arithmetic and the latency-model cost conversion."""

import pytest

from repro.nvm import DRAM, NVDIMM, PCM_LIKE, NVMStats, profile
from repro.nvm.stats import StatsStack


class TestCounters:
    def test_reset(self):
        s = NVMStats(loads=5, store_bytes=100, fences=2)
        s.reset()
        assert s.loads == 0 and s.store_bytes == 0 and s.fences == 0

    def test_snapshot_is_independent(self):
        s = NVMStats(loads=1)
        snap = s.snapshot()
        s.loads = 10
        assert snap.loads == 1

    def test_delta(self):
        s = NVMStats(loads=10, copy_bytes=500)
        base = NVMStats(loads=4, copy_bytes=100)
        d = s.delta(base)
        assert d.loads == 6 and d.copy_bytes == 400

    def test_total_bytes(self):
        s = NVMStats(load_bytes=10, store_bytes=20, copy_bytes=30)
        assert s.total_bytes == 60


class TestCostConversion:
    def test_zero_stats_cost_zero(self):
        assert NVMStats().simulated_ns(NVDIMM) == 0

    def test_costs_scale_with_model(self):
        s = NVMStats(store_bytes=1024, flushed_lines=16, fences=1, copy_bytes=1024)
        assert s.simulated_ns(PCM_LIKE) > s.simulated_ns(NVDIMM) > 0

    def test_line_rounding(self):
        one_byte = NVMStats(load_bytes=1)
        full_line = NVMStats(load_bytes=64)
        assert one_byte.simulated_ns(NVDIMM) == full_line.simulated_ns(NVDIMM)

    def test_profile_lookup(self):
        assert profile("nvdimm") is NVDIMM
        assert profile("dram") is DRAM
        with pytest.raises(KeyError):
            profile("optane9000")

    def test_model_helpers(self):
        assert NVDIMM.copy_ns(1000) == pytest.approx(1000 * NVDIMM.byte_copy_ns)
        assert NVDIMM.flush_ns(65) == pytest.approx(2 * NVDIMM.flush_line_ns)


class TestStatsStack:
    def test_push_pop_nesting(self):
        s = NVMStats()
        stack = StatsStack(s)
        stack.push()
        s.loads += 3
        stack.push()
        s.loads += 2
        inner = stack.pop()
        outer = stack.pop()
        assert inner.loads == 2
        assert outer.loads == 5
