"""Backend selection: explicit names, env var, pinning, auto-detection."""

import pytest

from repro.nvm import NVMDevice, backend


@pytest.fixture(autouse=True)
def _unpinned(monkeypatch):
    """Each test starts from auto-detection with a clean env."""
    monkeypatch.delenv("REPRO_NVM_BACKEND", raising=False)
    prev = backend._default
    backend.set_default_backend(None)
    yield
    backend.set_default_backend(prev)


def test_available_backends_always_include_pure():
    names = backend.available_backends()
    assert "pure" in names
    assert ("numpy" in names) == backend.HAVE_NUMPY


def test_resolve_pure_and_auto():
    assert backend.resolve_backend("pure") == "pure"
    expected = "numpy" if backend.HAVE_NUMPY else "pure"
    assert backend.resolve_backend(None) == expected
    assert backend.resolve_backend("auto") == expected


def test_resolve_unknown_name_rejected():
    with pytest.raises(ValueError):
        backend.resolve_backend("cuda")


def test_resolve_numpy_without_numpy_is_an_error():
    if backend.HAVE_NUMPY:
        assert backend.resolve_backend("numpy") == "numpy"
    else:
        with pytest.raises(RuntimeError):
            backend.resolve_backend("numpy")


def test_env_var_pins_pure(monkeypatch):
    monkeypatch.setenv("REPRO_NVM_BACKEND", "pure")
    assert backend.default_backend() == "pure"
    assert backend.device_class(None) is NVMDevice


def test_env_var_auto_detects(monkeypatch):
    monkeypatch.setenv("REPRO_NVM_BACKEND", "auto")
    assert backend.default_backend() == ("numpy" if backend.HAVE_NUMPY else "pure")


def test_set_default_backend_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_NVM_BACKEND", "pure")
    backend.set_default_backend("pure")
    assert backend.default_backend() == "pure"
    backend.set_default_backend(None)
    monkeypatch.delenv("REPRO_NVM_BACKEND")
    assert backend.default_backend() == ("numpy" if backend.HAVE_NUMPY else "pure")


def test_device_class_pure_is_the_python_device():
    assert backend.device_class("pure") is NVMDevice


@pytest.mark.skipif(not backend.HAVE_NUMPY, reason="numpy not installed")
def test_device_class_numpy_is_the_vectorized_device():
    from repro.nvm.numpy_device import NumpyNVMDevice

    assert backend.device_class("numpy") is NumpyNVMDevice
    # the vectorized device subclasses the pure one: every isinstance
    # check in the stack keeps passing
    assert issubclass(NumpyNVMDevice, NVMDevice)


def test_make_device_constructs_on_the_resolved_backend():
    dev = backend.make_device(1 << 12, backend="pure", seed=7)
    assert type(dev) is NVMDevice
    dev.write(0, b"hello")
    assert dev.read(0, 5) == b"hello"
    auto = backend.make_device(1 << 12)
    assert type(auto) is backend.device_class(None)
