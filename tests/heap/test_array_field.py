"""Array field type: packing, validation, persistent round trips."""

import pytest

from repro.errors import SchemaError
from repro.heap import Array, Int64, PPtr, PersistentStruct
from repro.tx import UndoLogEngine

from ..conftest import build_heap


class Vector(PersistentStruct):
    fields = [("count", Int64()), ("values", Array(Int64(), 8)), ("ptrs", Array(PPtr(), 4))]


class TestArrayType:
    def test_size(self):
        assert Array(Int64(), 8).size == 64

    def test_pack_roundtrip(self):
        a = Array(Int64(), 3)
        assert a.unpack(a.pack([1, -2, 3])) == [1, -2, 3]

    def test_wrong_length_rejected(self):
        with pytest.raises(SchemaError):
            Array(Int64(), 3).pack([1, 2])

    def test_zero_count_rejected(self):
        with pytest.raises(SchemaError):
            Array(Int64(), 0)

    def test_non_fieldtype_element_rejected(self):
        with pytest.raises(SchemaError):
            Array(int, 3)

    def test_default_is_zeros(self):
        assert Array(Int64(), 4).default() == [0, 0, 0, 0]

    def test_accepts_any_sequence(self):
        a = Array(Int64(), 3)
        assert a.unpack(a.pack((1, 2, 3))) == [1, 2, 3]
        assert a.unpack(a.pack(range(3))) == [0, 1, 2]


class TestArrayInStruct:
    def test_persistent_roundtrip(self):
        heap, _, _ = build_heap(UndoLogEngine)
        with heap.transaction():
            v = heap.alloc(Vector)
            v.count = 3
            v.values = [10, 20, 30, 0, 0, 0, 0, 0]
            v.ptrs = [1, 2, 3, 0]
        assert v.values[:3] == [10, 20, 30]
        assert v.ptrs == [1, 2, 3, 0]

    def test_fresh_array_reads_zeros(self):
        heap, _, _ = build_heap(UndoLogEngine)
        with heap.transaction():
            v = heap.alloc(Vector)
            assert v.values == [0] * 8

    def test_array_rolls_back_on_abort(self):
        heap, _, _ = build_heap(UndoLogEngine)
        with heap.transaction():
            v = heap.alloc(Vector)
            v.values = list(range(8))
        with pytest.raises(RuntimeError):
            with heap.transaction():
                v.tx_add()
                v.values = [9] * 8
                raise RuntimeError("boom")
        assert v.values == list(range(8))
