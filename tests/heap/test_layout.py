"""Field-type pack/unpack round trips and validation."""

import pytest

from repro.errors import SchemaError
from repro.heap import Bytes, FixedStr, Float64, Int32, Int64, PPtr, UInt64
from repro.heap.layout import PNULL


class TestInt64:
    def test_roundtrip(self):
        t = Int64()
        for v in (0, 1, -1, 2**62, -(2**62)):
            assert t.unpack(t.pack(v)) == v

    def test_out_of_range(self):
        with pytest.raises(SchemaError):
            Int64().pack(2**63)

    def test_default_is_zero(self):
        assert Int64().default() == 0


class TestUInt64:
    def test_roundtrip(self):
        t = UInt64()
        assert t.unpack(t.pack(2**64 - 1)) == 2**64 - 1

    def test_negative_rejected(self):
        with pytest.raises(SchemaError):
            UInt64().pack(-1)


class TestInt32:
    def test_roundtrip(self):
        t = Int32()
        assert t.unpack(t.pack(-12345)) == -12345
        assert t.size == 4

    def test_overflow(self):
        with pytest.raises(SchemaError):
            Int32().pack(2**40)


class TestFloat64:
    def test_roundtrip(self):
        t = Float64()
        assert t.unpack(t.pack(3.14159)) == pytest.approx(3.14159)

    def test_default(self):
        assert Float64().default() == 0.0


class TestFixedStr:
    def test_roundtrip(self):
        t = FixedStr(16)
        assert t.unpack(t.pack("hi")) == "hi"

    def test_exact_fit(self):
        t = FixedStr(4)
        assert t.unpack(t.pack("abcd")) == "abcd"

    def test_too_long(self):
        with pytest.raises(SchemaError):
            FixedStr(4).pack("abcde")

    def test_unicode_counts_bytes(self):
        t = FixedStr(4)
        with pytest.raises(SchemaError):
            t.pack("ééé")  # 6 UTF-8 bytes

    def test_zero_size_rejected(self):
        with pytest.raises(SchemaError):
            FixedStr(0)

    def test_default_is_empty(self):
        assert FixedStr(8).default() == ""


class TestBytes:
    def test_roundtrip_padded(self):
        t = Bytes(8)
        assert t.unpack(t.pack(b"ab")) == b"ab" + b"\0" * 6

    def test_too_long(self):
        with pytest.raises(SchemaError):
            Bytes(2).pack(b"abc")


class TestPPtr:
    def test_roundtrip(self):
        t = PPtr()
        assert t.unpack(t.pack(0xDEAD)) == 0xDEAD

    def test_none_maps_to_null(self):
        t = PPtr()
        assert t.unpack(t.pack(None)) == PNULL

    def test_negative_rejected(self):
        with pytest.raises(SchemaError):
            PPtr().pack(-4)

    def test_default_is_null(self):
        assert PPtr().default() == PNULL
