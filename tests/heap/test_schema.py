"""Struct schemas, layout offsets, and the type registry."""

import pytest

from repro.errors import SchemaError
from repro.heap import GLOBAL_REGISTRY, Int64, FixedStr, PPtr, PersistentStruct, StructSchema


class TestStructSchema:
    def test_offsets_are_sequential(self):
        s = StructSchema("S", [("a", Int64()), ("b", FixedStr(10)), ("c", PPtr())])
        assert s.field("a").offset == 0
        assert s.field("b").offset == 8
        assert s.field("c").offset == 18
        assert s.size == 26

    def test_empty_struct_rejected(self):
        with pytest.raises(SchemaError):
            StructSchema("E", [])

    def test_duplicate_field_rejected(self):
        with pytest.raises(SchemaError):
            StructSchema("D", [("x", Int64()), ("x", Int64())])

    def test_non_fieldtype_rejected(self):
        with pytest.raises(SchemaError):
            StructSchema("B", [("x", int)])

    def test_unknown_field_lookup(self):
        s = StructSchema("S2", [("a", Int64())])
        with pytest.raises(SchemaError):
            s.field("nope")

    def test_type_id_deterministic(self):
        a = StructSchema("T", [("a", Int64())])
        b = StructSchema("T", [("a", Int64())])
        assert a.type_id == b.type_id

    def test_type_id_differs_by_layout(self):
        a = StructSchema("T", [("a", Int64())])
        b = StructSchema("T", [("a", FixedStr(8))])
        assert a.type_id != b.type_id

    def test_type_id_never_zero(self):
        s = StructSchema("T", [("a", Int64())])
        assert s.type_id != 0


class TestPersistentStructClass:
    def test_class_registration(self):
        class RegDemo(PersistentStruct):
            fields = [("n", Int64())]

        schema, cls = GLOBAL_REGISTRY.lookup(RegDemo._schema.type_id)
        assert cls is RegDemo
        assert schema.size == 8

    def test_base_class_has_no_schema(self):
        assert PersistentStruct._schema is None

    def test_descriptor_on_class_returns_descriptor(self):
        class DescDemo(PersistentStruct):
            fields = [("n", Int64())]

        # accessing via the class (no instance) must not explode
        assert DescDemo.n is not None

    def test_unknown_type_id_lookup(self):
        with pytest.raises(SchemaError):
            GLOBAL_REGISTRY.lookup(0xFFFFFFF1)
