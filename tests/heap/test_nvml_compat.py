"""The NVML macro shim: Figure 10's program runs verbatim-ish."""

import pytest

from repro.errors import TxAborted, WriteIntentError
from repro.heap import FixedStr, Int64, PersistentStruct
from repro.heap.nvml_compat import (
    D_RO,
    D_RW,
    POBJ_ROOT,
    POBJ_SET_ROOT,
    TX_ABORT,
    TX_ADD,
    TX_BEGIN,
    TX_COMMIT,
    TX_FREE,
    TX_ZALLOC,
    TX_ZALLOC_BYTES,
)
from repro.tx import UndoLogEngine, kamino_simple

from ..conftest import build_heap


class ObjectType1(PersistentStruct):
    fields = [("attr", FixedStr(255))]


class ObjectType2(PersistentStruct):
    fields = [("attr", Int64())]


@pytest.fixture(params=["undo", "kamino"])
def pop(request):
    factory = UndoLogEngine if request.param == "undo" else kamino_simple
    heap, _, _ = build_heap(factory)
    return heap


class TestFigure10:
    def test_paper_sample_transaction(self, pop):
        """The exact shape of the paper's Figure 10 listing."""
        with TX_BEGIN(pop):
            obj1 = TX_ZALLOC(pop, ObjectType1)
            obj2 = TX_ZALLOC(pop, ObjectType2)
            # declare write intents
            TX_ADD(obj1)
            TX_ADD(obj2)
            # cast & get virtual memory pointers
            obj1_p = D_RW(obj1)
            obj2_p = D_RW(obj2)
            # modify objects as needed
            obj1_p.attr = "NewValue"
            obj2_p.attr = len(obj1_p.attr)
        pop.drain()
        assert obj1.attr == "NewValue"
        assert obj2.attr == 8

    def test_tx_abort_macro(self, pop):
        with TX_BEGIN(pop):
            obj = TX_ZALLOC(pop, ObjectType2)
            TX_ADD(obj)
            obj.attr = 5
            POBJ_SET_ROOT(pop, obj)
        pop.drain()
        with pytest.raises(TxAborted):
            with TX_BEGIN(pop):
                TX_ADD(obj)
                obj.attr = 99
                TX_ABORT()
        assert obj.attr == 5

    def test_tx_free_macro(self, pop):
        with TX_BEGIN(pop):
            obj = TX_ZALLOC(pop, ObjectType2)
        used = pop.allocator.allocated_bytes
        with TX_BEGIN(pop):
            TX_FREE(obj)
        pop.drain()
        assert pop.allocator.allocated_bytes < used

    def test_tx_free_raw_pointer_rejected(self, pop):
        with pytest.raises(TypeError):
            TX_FREE(12345)

    def test_tx_zalloc_bytes(self, pop):
        with TX_BEGIN(pop):
            oid = TX_ZALLOC_BYTES(pop, 100)
        assert pop.read_blob(oid) == b"\0" * 100

    def test_early_commit(self, pop):
        with TX_BEGIN(pop):
            obj = TX_ZALLOC(pop, ObjectType2)
            TX_ADD(obj)
            obj.attr = 3
            TX_COMMIT(pop)
            # block exit after an early commit must not double-commit
        assert obj.attr == 3

    def test_root_macros(self, pop):
        with TX_BEGIN(pop):
            obj = TX_ZALLOC(pop, ObjectType2)
            TX_ADD(obj)
            obj.attr = 7
            POBJ_SET_ROOT(pop, obj)
        root = POBJ_ROOT(pop, ObjectType2)
        assert root.attr == 7


class TestReadOnlyView:
    def test_reads_pass_through(self, pop):
        with TX_BEGIN(pop):
            obj = TX_ZALLOC(pop, ObjectType2)
            TX_ADD(obj)
            obj.attr = 11
        view = D_RO(obj)
        assert view.attr == 11
        assert view.oid == obj.oid

    def test_writes_rejected(self, pop):
        with TX_BEGIN(pop):
            obj = TX_ZALLOC(pop, ObjectType2)
        view = D_RO(obj)
        with pytest.raises(AttributeError):
            view.attr = 1

    def test_write_discipline_still_enforced(self, pop):
        with TX_BEGIN(pop):
            obj = TX_ZALLOC(pop, ObjectType2)
        pop.drain()
        with pytest.raises(WriteIntentError):
            with TX_BEGIN(pop):
                D_RW(obj).attr = 1  # no TX_ADD first
