"""Allocator behaviour: size classes, rollback, frees, exhaustion, reopen."""

import pytest

from repro.errors import DoubleFreeError, InvalidPointerError, OutOfMemoryError
from repro.heap import PersistentHeap, SIZE_CLASSES, class_for
from repro.heap.object import OBJ_HEADER_SIZE
from repro.nvm import NVMDevice, PmemPool
from repro.tx import UndoLogEngine, kamino_simple

from ..conftest import Cell, Pair, build_heap


class TestClassFor:
    def test_exact_class(self):
        for c in SIZE_CLASSES:
            assert class_for(c) == c

    def test_rounds_up(self):
        assert class_for(33) == 64
        assert class_for(1) == 32

    def test_too_large(self):
        with pytest.raises(OutOfMemoryError):
            class_for(4097)


class TestAllocation:
    def test_blocks_do_not_overlap(self, undo_heap):
        heap, _, _ = undo_heap
        offs = []
        with heap.transaction():
            for _ in range(100):
                offs.append(heap.alloc(Pair).block_offset)
        sizes = {o: heap.allocator.block_size_of(o) for o in offs}
        offs.sort()
        for a, b in zip(offs, offs[1:]):
            assert a + sizes[a] <= b

    def test_fresh_object_reads_defaults(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
            assert p.key == 0
            assert p.value == ""

    def test_alloc_requires_transaction(self, undo_heap):
        heap, _, _ = undo_heap
        from repro.errors import NoActiveTransactionError

        with pytest.raises(NoActiveTransactionError):
            heap.alloc(Pair)

    def test_alloc_rolls_back_on_abort(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        before = heap.allocator.allocated_bytes
        with pytest.raises(RuntimeError):
            with heap.transaction():
                heap.alloc(Pair)
                raise RuntimeError("boom")
        heap.drain()
        assert heap.allocator.allocated_bytes == before

    def test_abort_then_realloc_reuses_slot(self, undo_heap):
        heap, _, _ = undo_heap
        with pytest.raises(RuntimeError):
            with heap.transaction():
                first = heap.alloc(Pair).block_offset
                raise RuntimeError("boom")
        with heap.transaction():
            second = heap.alloc(Pair).block_offset
        assert second == first

    def test_blob_alloc(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            oid = heap.alloc_blob(100)
            heap.write_blob(oid, b"x" * 100)
        assert heap.read_blob(oid) == b"x" * 100

    def test_blob_zero_size_rejected(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            with pytest.raises(ValueError):
                heap.alloc_blob(0)

    def test_exhaustion_raises(self):
        heap, _, _ = build_heap(
            lambda: UndoLogEngine(n_slots=4, log_data_bytes=16 * 1024),
            pool_size=2 << 20,
            heap_size=256 * 1024,
        )
        with pytest.raises(OutOfMemoryError):
            with heap.transaction():
                for _ in range(100000):
                    heap.alloc_blob(4000)

    def test_many_size_classes_coexist(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            oids = [heap.alloc_blob(n) for n in (10, 60, 120, 250, 500, 1000, 2000, 4000)]
        for oid, n in zip(oids, (10, 60, 120, 250, 500, 1000, 2000, 4000)):
            blk = oid - OBJ_HEADER_SIZE
            assert heap.allocator.block_size_of(blk) >= n + OBJ_HEADER_SIZE


class TestFree:
    def test_free_returns_space(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
        used = heap.allocator.allocated_bytes
        with heap.transaction():
            heap.free(p)
        heap.drain()
        assert heap.allocator.allocated_bytes < used

    def test_free_takes_effect_at_commit_not_before(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            p = heap.alloc(Pair)
        with heap.transaction():
            heap.free(p)
            # still allocated inside the transaction
            assert heap.allocator.is_allocated(p.block_offset)
        assert not heap.allocator.is_allocated(p.block_offset)

    def test_free_rolled_back_on_abort(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 5
        heap.drain()
        with pytest.raises(RuntimeError):
            with heap.transaction():
                heap.free(p)
                raise RuntimeError("boom")
        heap.drain()
        assert heap.allocator.is_allocated(p.block_offset)
        assert p.key == 5

    def test_double_free_same_tx_rejected(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            p = heap.alloc(Pair)
        with heap.transaction():
            heap.free(p)
            with pytest.raises(DoubleFreeError):
                heap.free(p)

    def test_double_free_across_tx_rejected(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            p = heap.alloc(Pair)
        with heap.transaction():
            heap.free(p)
        with heap.transaction():
            with pytest.raises(DoubleFreeError):
                heap.free(p)
            raise_cleanup = True

    def test_freed_slot_reused(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            p = heap.alloc(Pair)
        blk = p.block_offset
        with heap.transaction():
            heap.free(p)
        with heap.transaction():
            q = heap.alloc(Pair)
        assert q.block_offset == blk


class TestPointerValidation:
    def test_unassigned_chunk_pointer(self, undo_heap):
        heap, _, _ = undo_heap
        with pytest.raises(InvalidPointerError):
            heap.allocator.block_size_of(heap.allocator.data_off + 5 * heap.allocator.chunk_size)

    def test_misaligned_pointer(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            p = heap.alloc(Pair)
        with pytest.raises(InvalidPointerError):
            heap.allocator.block_size_of(p.block_offset + 1)

    def test_before_data_area(self, undo_heap):
        heap, _, _ = undo_heap
        with pytest.raises(InvalidPointerError):
            heap.allocator.block_size_of(0)


class TestReopen:
    def test_allocator_state_survives_reopen(self):
        heap, engine, device = build_heap(UndoLogEngine)
        with heap.transaction():
            ps = [heap.alloc(Pair) for _ in range(10)]
            for i, p in enumerate(ps):
                p.key = i
            heap.set_root(ps[0])
        device.persist_all()
        pool2 = PmemPool.open(device)
        heap2 = PersistentHeap.open(pool2, UndoLogEngine())
        assert heap2.allocator.allocated_bytes == heap.allocator.allocated_bytes
        # newly allocated blocks don't collide with recovered ones
        with heap2.transaction():
            q = heap2.alloc(Pair)
        assert q.block_offset not in {p.block_offset for p in ps}
