"""Heap facade: transactions, write-intent discipline, root, deref."""

import pytest

from repro.errors import (
    InvalidPointerError,
    NoActiveTransactionError,
    TxAborted,
    WriteIntentError,
)
from repro.heap import PNULL, PersistentHeap
from repro.nvm import PmemPool
from repro.tx import TxState, UndoLogEngine

from ..conftest import Cell, Pair, build_heap


class TestTransactionLifecycle:
    def test_commit_on_clean_exit(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction() as tx:
            p = heap.alloc(Pair)
            p.key = 10
        assert tx.state is TxState.COMMITTED
        assert p.key == 10

    def test_abort_on_exception(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 3
        heap.drain()
        with pytest.raises(ValueError):
            with heap.transaction():
                p.tx_add()
                p.key = 77
                raise ValueError("nope")
        heap.drain()
        assert p.key == 3

    def test_explicit_abort_via_txaborted(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 1
        heap.drain()
        with pytest.raises(TxAborted):
            with heap.transaction():
                p.tx_add()
                p.key = 2
                raise TxAborted()
        assert p.key == 1

    def test_flat_nesting_commits_once(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction() as outer:
            with heap.transaction() as inner:
                assert inner is outer
                p = heap.alloc(Pair)
                p.key = 5
            # inner exit must not commit yet: still able to write
            p.value = "after-inner"
        assert p.key == 5
        assert p.value == "after-inner"

    def test_nested_exception_aborts_everything(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 9
        heap.drain()
        with pytest.raises(RuntimeError):
            with heap.transaction():
                p.tx_add()
                p.key = 10
                with heap.transaction():
                    raise RuntimeError("inner boom")
        assert p.key == 9

    def test_current_tx_cleared_after_commit(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            pass
        assert heap.current_tx is None


class TestWriteIntentDiscipline:
    def test_write_without_tx_add_rejected(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
        heap.drain()
        with heap.transaction():
            with pytest.raises(WriteIntentError):
                p.key = 1
            raise_marker = True

    def test_write_outside_tx_rejected(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
        with pytest.raises(NoActiveTransactionError):
            p.key = 1

    def test_fresh_alloc_is_writable_without_explicit_add(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 42  # ALLOC intent covers the block

    def test_tx_add_enables_writes(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
        heap.drain()
        with heap.transaction():
            p.tx_add()
            p.key = 11
            p.value = "both fields"
        heap.drain()
        assert p.key == 11

    def test_reads_never_require_intent(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 2
        heap.drain()
        assert p.key == 2  # outside tx
        with heap.transaction():
            assert p.key == 2  # inside tx, read-only


class TestRootAndDeref:
    def test_root_roundtrip(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        assert heap.root() is None
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 123
            heap.set_root(p)
        r = heap.root(Pair)
        assert r.key == 123
        assert r == p

    def test_deref_null_is_none(self, undo_heap):
        heap, _, _ = undo_heap
        assert heap.deref(PNULL) is None

    def test_deref_wrong_type_rejected(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            p = heap.alloc(Pair)
        with pytest.raises(InvalidPointerError):
            heap.deref(p.oid, Cell)

    def test_deref_by_registry(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 9
        obj = heap.deref(p.oid)
        assert isinstance(obj, Pair)
        assert obj.key == 9

    def test_pointer_chase(self, any_engine_heap):
        heap, _, _ = any_engine_heap
        with heap.transaction():
            a = heap.alloc(Cell)
            b = heap.alloc(Cell)
            a.value = 1
            b.value = 2
            a.next = b.oid
            heap.set_root(a)
        heap.drain()
        a2 = heap.root(Cell)
        b2 = heap.deref(a2.next, Cell)
        assert b2.value == 2
        assert heap.deref(b2.next) is None


class TestObjectIdentity:
    def test_equality_by_oid(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            p = heap.alloc(Pair)
        q = Pair(heap, p.oid)
        assert p == q
        assert hash(p) == hash(q)

    def test_fields_dict(self, undo_heap):
        heap, _, _ = undo_heap
        with heap.transaction():
            p = heap.alloc(Pair)
            p.key = 4
            p.value = "x"
        assert p.fields_dict() == {"key": 4, "value": "x"}


class TestPersistenceAcrossReopen:
    def test_object_graph_survives_clean_reopen(self):
        heap, _, device = build_heap(UndoLogEngine)
        with heap.transaction():
            head = heap.alloc(Cell)
            head.value = 0
            prev = head
            for i in range(1, 20):
                c = heap.alloc(Cell)
                c.value = i
                prev.tx_add()
                prev.next = c.oid
                prev = c
            heap.set_root(head)
        device.persist_all()
        heap2 = PersistentHeap.open(PmemPool.open(device), UndoLogEngine())
        values = []
        node = heap2.root(Cell)
        while node is not None:
            values.append(node.value)
            node = heap2.deref(node.next)
        assert values == list(range(20))
