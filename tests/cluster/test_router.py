"""Consistent-hash placement properties: balance, minimal movement,
route stability across serialization (the shard map's wire format)."""

import collections

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import RangeRouter, ShardMap, ShardRouter, router_from_dict
from repro.errors import ClusterConfigError

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

shard_sets = st.lists(
    st.integers(0, 63), min_size=2, max_size=12, unique=True
)


class TestBalance:
    @given(shards=shard_sets)
    @SETTINGS
    def test_no_shard_hogs_the_circle(self, shards):
        """With enough virtual nodes, the hottest shard stays within a
        small constant factor of the mean (the paper-standard consistent
        hashing balance bound for vnode rings)."""
        router = ShardRouter(shards, vnodes=64)
        counts = collections.Counter(
            router.shard_for(k) for k in range(4096)
        )
        mean = 4096 / len(shards)
        assert max(counts.values()) <= 2.5 * mean
        # every shard owns *some* keys at this vnode count
        assert set(counts) == set(shards)

    def test_single_shard_owns_everything(self):
        router = ShardRouter([7])
        assert all(router.shard_for(k) == 7 for k in range(100))


class TestMinimalMovement:
    @given(shards=shard_sets, new=st.integers(64, 80))
    @SETTINGS
    def test_adding_a_shard_only_moves_keys_to_it(self, shards, new):
        """Consistent hashing's defining property: growing the ring
        never moves a key between two pre-existing shards."""
        before = ShardRouter(shards, vnodes=64)
        after = before.with_shard(new)
        for k in range(2048):
            old, cur = before.shard_for(k), after.shard_for(k)
            if cur != old:
                assert cur == new

    @given(shards=shard_sets)
    @SETTINGS
    def test_removing_a_shard_only_moves_its_keys(self, shards):
        victim = min(shards)
        before = ShardRouter(shards, vnodes=64)
        after = before.without_shard(victim)
        for k in range(2048):
            old, cur = before.shard_for(k), after.shard_for(k)
            if old != victim:
                assert cur == old

    @given(shards=shard_sets)
    @SETTINGS
    def test_movement_fraction_is_small(self, shards):
        """Adding one shard should move roughly 1/(n+1) of the keys —
        assert a generous multiple, not the exact expectation."""
        before = ShardRouter(shards, vnodes=64)
        after = before.with_shard(99)
        moved = sum(
            1 for k in range(4096)
            if before.shard_for(k) != after.shard_for(k)
        )
        assert moved <= 4096 * 3.0 / (len(shards) + 1)


class TestRouteStability:
    @given(shards=shard_sets, version=st.integers(1, 100))
    @SETTINGS
    def test_shard_map_dict_round_trip_preserves_routing(self, shards, version):
        """A shard map shipped to a client as a dict and rebuilt must
        route every key identically — otherwise a cache refresh would
        silently re-home keys."""
        assignment = {s: i % 2 for i, s in enumerate(sorted(shards))}
        original = ShardMap(assignment, version=version)
        rebuilt = ShardMap.from_dict(original.to_dict())
        assert rebuilt == original
        assert rebuilt.version == version
        for k in range(1024):
            assert rebuilt.shard_for(k) == original.shard_for(k)
            assert rebuilt.group_for(k) == original.group_for(k)

    @given(shards=shard_sets)
    @SETTINGS
    def test_router_round_trip(self, shards):
        router = ShardRouter(shards, vnodes=32)
        rebuilt = router_from_dict(router.to_dict())
        assert rebuilt == router
        assert all(
            rebuilt.shard_for(k) == router.shard_for(k) for k in range(512)
        )

    def test_range_router_round_trip(self):
        router = RangeRouter([100, 200], [0, 1, 2])
        rebuilt = router_from_dict(router.to_dict())
        assert [rebuilt.shard_for(k) for k in (0, 99, 100, 199, 200, 10**9)] \
            == [0, 0, 1, 1, 2, 2]
        assert rebuilt == router


class TestValidation:
    def test_empty_shard_set_rejected(self):
        with pytest.raises(ClusterConfigError):
            ShardRouter([])

    def test_range_bounds_must_increase(self):
        with pytest.raises(ClusterConfigError):
            RangeRouter([200, 100], [0, 1, 2])

    def test_map_router_shards_must_match_assignment(self):
        with pytest.raises(ClusterConfigError):
            ShardMap({0: 0, 1: 1}, router=ShardRouter([0, 1, 2]))

    def test_moved_bumps_version_and_keeps_routing(self):
        m1 = ShardMap({0: 0, 1: 0, 2: 1})
        m2 = m1.moved(1, 1)
        assert m2.version == m1.version + 1
        assert m2.assignment[1] == 1
        for k in range(512):
            assert m2.shard_for(k) == m1.shard_for(k)
