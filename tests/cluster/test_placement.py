"""PlacementService: versioned durable shard map, migration records,
crash-recovery, stale-map redirects, log compaction."""

import pytest

from repro.cluster import PlacementService
from repro.errors import (
    ClusterConfigError,
    ShardMigrationError,
    StaleShardMapError,
)


def make_service(groups=2, shards=2):
    return PlacementService.bootstrap(groups, shards_per_group=shards)


class TestVersioning:
    def test_bootstrap_round_robins_shards(self):
        svc = make_service(groups=2, shards=2)
        assert svc.version == 1
        assert sorted(svc.map.assignment) == [0, 1, 2, 3]
        assert svc.map.assignment == {0: 0, 1: 1, 2: 0, 3: 1}

    def test_install_requires_monotonic_version(self):
        svc = make_service()
        newer = svc.map.moved(0, 1)
        svc.install(newer)
        assert svc.version == 2
        with pytest.raises(ClusterConfigError):
            svc.install(newer)  # same version again

    def test_validate_version_redirects_stale_clients(self):
        svc = make_service()
        svc.install(svc.map.moved(0, 1))
        with pytest.raises(StaleShardMapError) as exc:
            svc.validate_version(1)
        assert exc.value.current_version == 2
        svc.validate_version(2)  # current is fine
        svc.validate_version(None)  # no cached map: no redirect


class TestMigrationRecords:
    def test_begin_advance_finish(self):
        svc = make_service()
        record = svc.begin_migration(0, dst_group=1)
        assert record.src == 0 and record.dst == 1
        svc.advance_cursor(0, 17)
        svc.set_phase(0, "catchup")
        assert svc.migrations[0].cursor == 17
        assert svc.migrations[0].phase == "catchup"
        svc.finish_migration(0)
        assert 0 not in svc.migrations
        assert svc.map.assignment[0] == 1
        assert svc.version == 2

    def test_double_begin_rejected(self):
        svc = make_service()
        svc.begin_migration(0, dst_group=1)
        with pytest.raises(ShardMigrationError):
            svc.begin_migration(0, dst_group=1)

    def test_migrating_to_the_current_owner_rejected(self):
        svc = make_service()
        with pytest.raises(ShardMigrationError):
            svc.begin_migration(0, dst_group=0)

    def test_abort_keeps_the_source_assignment(self):
        svc = make_service()
        svc.begin_migration(0, dst_group=1)
        svc.abort_migration(0)
        assert 0 not in svc.migrations
        assert svc.map.assignment[0] == 0
        assert svc.version == 1


class TestDurability:
    def test_crash_and_recover_replays_map_and_migrations(self):
        svc = make_service()
        svc.install(svc.map.moved(2, 1))
        svc.begin_migration(0, dst_group=1)
        svc.advance_cursor(0, 9)
        svc.set_phase(0, "handoff")
        before_map, before_version = svc.map, svc.version
        svc.crash_and_recover()
        assert svc.recoveries == 1
        assert svc.version == before_version
        assert svc.map == before_map
        assert svc.migrations[0].cursor == 9
        assert svc.migrations[0].phase == "handoff"

    def test_reopen_from_device_equals_live_state(self):
        svc = make_service()
        svc.begin_migration(1, dst_group=0)
        svc.advance_cursor(1, 4)
        svc.device.crash()
        svc.device.restart()
        reopened = PlacementService.open(svc.device)
        assert reopened.map == svc.map
        assert reopened.migrations[1].cursor == 4

    def test_log_compaction_preserves_state(self):
        """Thousands of cursor advances must not overflow the ring: the
        checkpoint-and-truncate compaction rewrites the live state."""
        svc = make_service()
        svc.begin_migration(0, dst_group=1)
        for cursor in range(1, 4000):
            svc.advance_cursor(0, cursor)
        assert svc.compactions > 0
        svc.crash_and_recover()
        assert svc.migrations[0].cursor == 3999
        assert svc.version == 1
