"""Sharded nemesis scenarios: seeded convergence, determinism, and the
cross-shard oracles (the full-corpus sweep in tests/faults already runs
every cluster scenario; these pin the cluster-specific behaviour)."""

import pytest

from repro.faults import CLUSTER_CORPUS, run_scenario, scenario_by_name


class TestClusterCorpus:
    def test_corpus_is_registered(self):
        names = {s.name for s in CLUSTER_CORPUS}
        assert {"rebalance_during_partition", "migrate_then_crash",
                "hot_shard_skew"} <= names
        assert all(s.groups > 1 for s in CLUSTER_CORPUS)

    def test_migrate_then_crash_resumes_and_flips_once(self):
        result = run_scenario(scenario_by_name("migrate_then_crash"), seed=0)
        assert result.ok, result.problems
        assert result.groups == 2
        assert result.coordinator_crashes == 2
        assert result.migrations == 1
        assert result.migrations_aborted == 0
        assert result.map_version == 2

    def test_rebalance_during_partition_completes_after_heal(self):
        result = run_scenario(
            scenario_by_name("rebalance_during_partition"), seed=0
        )
        assert result.ok, result.problems
        assert result.migrations == 1
        assert result.map_version == 2

    def test_hot_shard_skew_moves_the_hot_shard(self):
        result = run_scenario(scenario_by_name("hot_shard_skew"), seed=0)
        assert result.ok, result.problems
        assert result.migrations == 1

    def test_same_seed_same_outcome(self):
        scenario = scenario_by_name("migrate_then_crash")
        a = run_scenario(scenario, seed=7)
        b = run_scenario(scenario, seed=7)
        assert (a.problems, a.summary(), a.map_version, a.migrations) == (
            b.problems, b.summary(), b.map_version, b.migrations
        )

    def test_scenario_dict_round_trip_keeps_cluster_fields(self):
        scenario = scenario_by_name("hot_shard_skew")
        rebuilt = type(scenario).from_dict(scenario.to_dict())
        assert rebuilt.groups == scenario.groups
        assert rebuilt.shards_per_group == scenario.shards_per_group
        assert rebuilt.key_skew == scenario.key_skew

    @pytest.mark.cluster
    def test_deep_multi_seed_sweep(self):
        for scenario in CLUSTER_CORPUS:
            for seed in range(5):
                result = run_scenario(scenario, seed=seed)
                assert result.ok, (
                    f"{scenario.name} seed={seed}: " + "; ".join(result.problems)
                )
