"""ShardedCluster: routing, the ChainCluster-compatible surface,
single-group bit-identity, and the stale-map redirect."""

import pytest

from repro.cluster import ShardedCluster
from repro.errors import ClusterConfigError, StaleShardMapError
from repro.replication import ChainCluster, run_clients
from repro.workloads import Op, READ, UPDATE


def ops_for(keys, tag=0):
    return [Op(UPDATE, k, bytes([(k + tag) % 255 + 1]) * 32) for k in keys]


class TestSingleGroupIdentity:
    """A groups=1 cluster must behave bit-for-bit like a bare chain:
    same committed state, same counters, same latencies — the refactor's
    regression guarantee."""

    N = 40

    def _drive(self, cluster):
        streams = [
            ops_for(range(0, self.N, 2), tag=1),
            ops_for(range(1, self.N, 2), tag=2)
            + [Op(READ, k, None) for k in range(0, self.N, 4)],
        ]
        run_clients(cluster, streams)
        return cluster

    def test_bit_identical_to_bare_chain(self):
        bare = self._drive(ChainCluster(f=2, heap_mb=2, value_size=64))
        sharded = self._drive(
            ShardedCluster(groups=1, shards_per_group=2, f=2,
                           heap_mb=2, value_size=64)
        )
        group = sharded.groups[0]
        assert group.kv_states() == bare.kv_states()
        assert sharded.committed == bare.committed
        assert sharded.write_latencies_ns == bare.write_latencies_ns
        assert sharded.read_latencies_ns == bare.read_latencies_ns
        assert sharded.retransmissions == bare.retransmissions
        assert sharded.merged_tail_state() == bare.kv_states()[-1]


class TestRouting:
    def test_every_key_routes_to_its_shard_owner(self):
        cluster = ShardedCluster(groups=2, shards_per_group=2, f=1,
                                 heap_mb=2, value_size=64)
        for k in range(200):
            shard = cluster.map.shard_for(k)
            assert cluster.route(k) is cluster.groups[cluster.map.assignment[shard]]

    def test_route_counts_shard_load(self):
        cluster = ShardedCluster(groups=2, shards_per_group=2, f=1,
                                 heap_mb=2, value_size=64)
        for k in range(64):
            cluster.route(k)
        assert sum(cluster.shard_load.values()) == 64
        assert cluster.hottest_shard() in cluster.map.assignment

    def test_writes_land_only_on_the_owning_group(self):
        cluster = ShardedCluster(groups=2, shards_per_group=2, f=1,
                                 heap_mb=2, value_size=64)
        run_clients(cluster, [ops_for(range(60))])
        cluster.assert_replicas_consistent()
        cluster.assert_placement_respected()
        merged = cluster.merged_tail_state()
        assert sorted(merged) == list(range(60))

    def test_needs_at_least_one_group(self):
        with pytest.raises(ClusterConfigError):
            ShardedCluster(groups=0)


class TestStaleMapRedirect:
    def test_route_with_old_version_raises_typed_redirect(self):
        cluster = ShardedCluster(groups=2, shards_per_group=2, f=1,
                                 heap_mb=2, value_size=64)
        cluster.route(0, map_version=1)  # current: fine
        cluster.placement.install(cluster.map.moved(0, 1))
        with pytest.raises(StaleShardMapError) as exc:
            cluster.route(0, map_version=1)
        assert exc.value.current_version == 2

    def test_clients_refresh_and_complete_across_a_flip(self):
        """Closed-loop clients running through a mid-run migration must
        finish every op, refreshing their cached map on the redirect."""
        cluster = ShardedCluster(groups=2, shards_per_group=2, f=2,
                                 heap_mb=2, value_size=64)
        run_clients(cluster, [ops_for(range(40))])
        cluster.sim.schedule(50_000.0, cluster.migrate_shard, 0, 1)
        clients = run_clients(
            cluster, [ops_for(range(0, 40, 2), tag=3),
                      ops_for(range(1, 40, 2), tag=4)]
        )
        cluster.drain()
        assert all(c.done for c in clients)
        assert cluster.map_version == 2
        assert not cluster.active_migrations
        cluster.assert_placement_respected()

    def test_per_group_net_stats_partition_sums_to_totals(self):
        cluster = ShardedCluster(groups=2, shards_per_group=2, f=1,
                                 heap_mb=2, value_size=64)
        run_clients(cluster, [ops_for(range(50))])
        stats = cluster.net.stats
        g0, g1 = stats.group("g0"), stats.group("g1")
        assert g0.sent + g1.sent == stats.sent
        assert g0.delivered + g1.delivered == stats.delivered
        assert g0.sent > 0 and g1.sent > 0
