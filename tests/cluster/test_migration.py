"""Online shard migration: live moves under traffic, coordinator
crash-resume from the durable cursor, and the migration-window crash
sweeps (quick sample always; exhaustive behind --cluster)."""

import pytest

from repro.check import MigrationCrashExplorer, MigrationScenario
from repro.cluster import ShardedCluster
from repro.replication import run_clients
from repro.workloads import Op, UPDATE


def make_cluster(**kwargs):
    defaults = dict(groups=2, shards_per_group=2, f=1, heap_mb=2,
                    value_size=64)
    defaults.update(kwargs)
    return ShardedCluster(**defaults)


def load(cluster, keys, tag=0):
    run_clients(
        cluster,
        [[Op(UPDATE, k, bytes([(k + tag) % 255 + 1]) * 32) for k in keys]],
    )


class TestOnlineMigration:
    def test_migrate_while_serving_traffic(self):
        cluster = make_cluster()
        load(cluster, range(60))
        before = dict(cluster.merged_tail_state())
        migration = cluster.migrate_shard(0, dst_group=1)
        load(cluster, range(60), tag=9)  # overwrites race the copy
        cluster.drain()
        assert migration.phase == "done"
        assert not migration.report.aborted
        assert cluster.map_version == 2
        assert cluster.map.assignment[0] == 1
        cluster.assert_replicas_consistent()
        cluster.assert_placement_respected()
        after = cluster.merged_tail_state()
        assert sorted(after) == sorted(before)  # no key lost or invented

    def test_migration_report_accounts_for_every_key(self):
        cluster = make_cluster()
        load(cluster, range(60))
        shard_keys = [k for k in range(60) if cluster.map.shard_for(k) == 0]
        migration = cluster.migrate_shard(0, dst_group=1)
        cluster.drain()
        r = migration.report
        assert r.copied_keys + r.skipped_keys >= len(shard_keys)
        assert r.purged_keys == len(shard_keys)
        assert r.cursor_advances >= 1
        assert r.duration_ns > 0

    def test_quiet_cluster_migration_is_pure_copy(self):
        cluster = make_cluster()
        load(cluster, range(30))
        migration = cluster.migrate_shard(1, dst_group=0)
        cluster.drain()
        assert migration.report.parked_ops == 0
        assert migration.report.catchup_keys == 0
        cluster.assert_placement_respected()


class TestCrashResume:
    @pytest.mark.parametrize("crash_at_ns", [60_000.0, 150_000.0])
    def test_coordinator_crash_resumes_from_cursor(self, crash_at_ns):
        cluster = make_cluster()
        load(cluster, range(60))
        expected = dict(cluster.merged_tail_state())
        cluster.migrate_shard(0, dst_group=1)
        cluster.sim.schedule(crash_at_ns, cluster.crash_coordinator)
        cluster.drain()
        assert cluster.coordinator_crashes == 1
        assert not cluster.active_migrations
        assert not cluster.migration_failures
        # the resumed incarnation appears in the reports
        assert any(r.resumed for r in cluster.migration_reports)
        assert cluster.map.assignment[0] == 1
        cluster.assert_replicas_consistent()
        cluster.assert_placement_respected()
        assert cluster.merged_tail_state() == expected

    def test_crash_after_completion_is_a_no_op(self):
        """A coordinator power-fail with no migration in flight recovers
        the placement log and resumes nothing."""
        cluster = make_cluster()
        load(cluster, range(60))
        cluster.migrate_shard(0, dst_group=1)
        cluster.drain()  # migration completes undisturbed
        assert cluster.map_version == 2
        resumed = cluster.crash_coordinator()
        cluster.drain()
        assert resumed == []
        assert cluster.map_version == 2
        cluster.assert_placement_respected()

    def test_double_crash_is_idempotent(self):
        cluster = make_cluster()
        load(cluster, range(60))
        cluster.migrate_shard(0, dst_group=1)
        cluster.sim.schedule(80_000.0, cluster.crash_coordinator)
        cluster.sim.schedule(90_000.0, cluster.crash_coordinator)
        cluster.drain()
        assert cluster.coordinator_crashes == 2
        assert cluster.placement.recoveries == 2
        assert not cluster.active_migrations
        assert cluster.map.assignment[0] == 1
        cluster.assert_placement_respected()


class TestMigrationSweep:
    def test_quick_sampled_sweep_is_clean(self):
        report = MigrationCrashExplorer().explore(max_points=2, reboots=False)
        assert report.ok, "\n".join(str(f) for f in report.failures)
        assert report.states_explored >= 4

    def test_single_scenario_replays_deterministically(self):
        explorer = MigrationCrashExplorer()
        scenario = MigrationScenario(after_events=40)
        assert explorer.replay(scenario) is None
        assert explorer.replay(scenario) is None

    @pytest.mark.cluster
    def test_deep_sweep_with_reboots(self):
        """Exhaustively sampled migration-window crash exploration —
        coordinator crashes (single + double) and per-side head reboots
        at every sampled event boundary."""
        report = MigrationCrashExplorer().explore(max_points=10)
        assert report.ok, "\n".join(str(f) for f in report.failures)
        assert report.states_explored >= 40
