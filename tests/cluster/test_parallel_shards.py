"""run_sharded_parallel: correctness of the merge + worker invariance.

The parallel runner models the *uncoupled* epoch of a sharded cluster
(no migration in flight): every client op is routed by the bootstrap
shard map to exactly one group, so the groups evolve as independent
deterministic simulations.  These tests pin (a) that the merged report
is byte-identical for serial and fanned execution — the per-group seed
mix depends only on ``(seed, gid)`` — and (b) that the merge itself is
faithful: counters sum, KV states union disjointly, the makespan is the
max of the group timelines.
"""

from repro.cluster import PlacementService, run_sharded_parallel
from repro.cluster.parallel import _run_group_job
from repro.workloads import Op, UPDATE, YCSBWorkload

GROUPS = 2


def _streams(nclients=2, nrecords=24, nops=16, seed=0):
    load = [[Op(UPDATE, k, bytes([k % 255 + 1]) * 32) for k in range(nrecords)]]
    workload = YCSBWorkload("A", nrecords, 64, seed=seed + 1)
    return load + [list(workload.run_ops(nops)) for _ in range(nclients)]


def test_worker_count_invariance():
    streams = _streams()
    serial = run_sharded_parallel(streams, groups=GROUPS, workers=0, seed=3)
    fanned = run_sharded_parallel(streams, groups=GROUPS, workers=2, seed=3)
    serial.assert_matches(fanned)
    # the per-group results match too, not just the fold
    for a, b in zip(serial.groups, fanned.groups):
        assert a.gid == b.gid
        assert a.committed == b.committed
        assert a.nvm == b.nvm
        assert a.net == b.net
        assert a.state == b.state


def test_merge_is_faithful_to_the_groups():
    report = run_sharded_parallel(_streams(), groups=GROUPS, workers=0, seed=1)
    assert len(report.groups) == GROUPS
    assert report.committed == sum(g.committed for g in report.groups)
    assert report.committed > 0
    assert report.events == sum(g.events for g in report.groups)
    assert report.sim_time_ns == max(g.sim_time_ns for g in report.groups)
    assert report.nvm.stores == sum(g.nvm.stores for g in report.groups)
    assert report.nvm.flushes == sum(g.nvm.flushes for g in report.groups)
    # states are disjoint by routing, so the union preserves every key
    assert len(report.state) == sum(len(g.state) for g in report.groups)


def test_routing_respects_the_shard_map():
    """Every key lands in the group the bootstrap map owns it in."""
    placement = PlacementService.bootstrap(GROUPS, 2, vnodes=32)
    report = run_sharded_parallel(
        _streams(), groups=GROUPS, workers=0, seed=1, placement=placement
    )
    for group in report.groups:
        for key in group.state:
            assert placement.map.group_for(key) == group.gid


def test_group_job_is_deterministic():
    """The same job tuple replayed twice gives the same result — the
    property the resume/merge discipline leans on."""
    streams = _streams()
    placement = PlacementService.bootstrap(GROUPS, 2, vnodes=32)
    partitions = [[[] for _ in streams] for _ in range(GROUPS)]
    for cid, stream in enumerate(streams):
        for op in stream:
            partitions[placement.map.group_for(op.key)][cid].append(op)
    job = (0, partitions[0], 1, "kamino", 2, 128, 7)
    a, b = _run_group_job(job), _run_group_job(job)
    assert a.committed == b.committed
    assert a.sim_time_ns == b.sim_time_ns
    assert a.nvm == b.nvm
    assert a.state == b.state
