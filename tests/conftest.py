"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.heap import FixedStr, Int64, PPtr, PersistentHeap, PersistentStruct, UInt64
from repro.nvm import NVMDevice, PmemPool
from repro.runtime.registry import registry_snapshot
from repro.tx import (
    CoWEngine,
    UndoLogEngine,
    kamino_dynamic,
    kamino_finegrained,
    kamino_simple,
    nvtraverse,
)

#: the crash-consistency checker's fixtures (--check-budget,
#: assert_engine_crash_consistent) are available suite-wide
pytest_plugins = ["repro.check.pytest_plugin"]

POOL_SIZE = 8 << 20
HEAP_SIZE = 2 << 20

ENGINES = {
    "undo": UndoLogEngine,
    "cow": CoWEngine,
    "kamino-simple": kamino_simple,
    "kamino-dynamic": lambda: kamino_dynamic(alpha=0.5),
    "kamino-finegrained": lambda: kamino_finegrained(alpha=0.5, stripes=8),
    "nvtraverse": nvtraverse,
}


@pytest.fixture(autouse=True)
def _pristine_engine_registry():
    """Restore the engine registry around every test.

    Tests that register throwaway doubles or ``unregister_engine`` a
    builtin would otherwise leak the mutation into later tests whose
    parametrization or sweeps are registry-driven.  The snapshot
    force-loads the builtins (including the deferred replication extra)
    first, so restoring never erases a not-yet-loaded registration.
    """
    with registry_snapshot():
        yield


class Pair(PersistentStruct):
    """A tiny two-field struct shared by many tests."""

    fields = [("key", Int64()), ("value", FixedStr(48))]


class Cell(PersistentStruct):
    """A linked cell for pointer-chasing tests."""

    fields = [("value", Int64()), ("next", PPtr())]


def build_heap(engine_factory, pool_size=POOL_SIZE, heap_size=HEAP_SIZE, seed=0):
    """Create a fresh device + pool + heap bound to a new engine."""
    device = NVMDevice(pool_size, seed=seed)
    pool = PmemPool.create(device)
    engine = engine_factory()
    heap = PersistentHeap.create(pool, engine, heap_size=heap_size)
    return heap, engine, device


@pytest.fixture(params=sorted(ENGINES))
def any_engine_heap(request):
    """(heap, engine, device) parametrised over every recoverable engine."""
    heap, engine, device = build_heap(ENGINES[request.param])
    return heap, engine, device


@pytest.fixture
def kamino_heap():
    heap, engine, device = build_heap(kamino_simple)
    return heap, engine, device


@pytest.fixture
def undo_heap():
    heap, engine, device = build_heap(UndoLogEngine)
    return heap, engine, device
