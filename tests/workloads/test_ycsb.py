"""YCSB driver: Table 3 mixes, determinism, execution mapping."""

import collections

import pytest

from repro.tx import UndoLogEngine
from repro.kvstore import KVStore
from repro.workloads import INSERT, MIXES, READ, RMW, UPDATE, YCSBWorkload

from ..conftest import build_heap


def mix_of(name, nops=8000):
    wl = YCSBWorkload(name, nrecords=1000, value_size=64, seed=1)
    counts = collections.Counter(op.kind for op in wl.run_ops(nops))
    return {k: v / nops for k, v in counts.items()}


class TestMixes:
    def test_workload_a_half_updates(self):
        mix = mix_of("A")
        assert mix[READ] == pytest.approx(0.5, abs=0.03)
        assert mix[UPDATE] == pytest.approx(0.5, abs=0.03)

    def test_workload_b_mostly_reads(self):
        mix = mix_of("B")
        assert mix[READ] == pytest.approx(0.95, abs=0.02)
        assert mix[UPDATE] == pytest.approx(0.05, abs=0.02)

    def test_workload_c_read_only(self):
        mix = mix_of("C")
        assert mix == {READ: 1.0}

    def test_workload_d_inserts(self):
        mix = mix_of("D")
        assert mix[READ] == pytest.approx(0.95, abs=0.02)
        assert mix[INSERT] == pytest.approx(0.05, abs=0.02)

    def test_workload_f_rmw(self):
        mix = mix_of("F")
        assert mix[READ] == pytest.approx(0.5, abs=0.03)
        assert mix[RMW] == pytest.approx(0.5, abs=0.03)

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            YCSBWorkload("Z", 10)

    def test_write_fraction(self):
        assert YCSBWorkload("C", 10).write_fraction == 0.0
        assert YCSBWorkload("A", 10).write_fraction == 0.5


class TestTrace:
    def test_deterministic_per_seed(self):
        a = list(YCSBWorkload("A", 100, seed=5).run_ops(200))
        b = list(YCSBWorkload("A", 100, seed=5).run_ops(200))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(YCSBWorkload("A", 100, seed=5).run_ops(200))
        b = list(YCSBWorkload("A", 100, seed=6).run_ops(200))
        assert a != b

    def test_insert_keys_are_fresh_and_sequential(self):
        wl = YCSBWorkload("D", 100, seed=2)
        inserts = [op.key for op in wl.run_ops(2000) if op.kind == INSERT]
        assert inserts == list(range(100, 100 + len(inserts)))

    def test_d_reads_can_hit_inserted_keys(self):
        wl = YCSBWorkload("D", 100, seed=3)
        ops = list(wl.run_ops(3000))
        max_insert = max((op.key for op in ops if op.kind == INSERT), default=-1)
        reads_above = [op for op in ops if op.kind == READ and op.key >= 100]
        assert max_insert >= 100
        assert reads_above, "latest distribution never read a new key"

    def test_load_ops_cover_all_records(self):
        wl = YCSBWorkload("A", 50, seed=0)
        keys = [op.key for op in wl.load_ops()]
        assert keys == list(range(50))


class TestExecution:
    def test_trace_executes_against_store(self):
        heap, _, _ = build_heap(UndoLogEngine, pool_size=32 << 20, heap_size=12 << 20)
        kv = KVStore.create(heap, value_size=64)
        wl = YCSBWorkload("A", nrecords=100, value_size=64, seed=4)
        wl.load(kv)
        assert len(kv) == 100
        for op in wl.run_ops(300):
            wl.execute(kv, op)
        kv.drain()
        kv.tree.check_invariants()

    def test_inserts_grow_store(self):
        heap, _, _ = build_heap(UndoLogEngine, pool_size=32 << 20, heap_size=12 << 20)
        kv = KVStore.create(heap, value_size=64)
        wl = YCSBWorkload("D", nrecords=100, value_size=64, seed=4)
        wl.load(kv)
        for op in wl.run_ops(500):
            wl.execute(kv, op)
        kv.drain()
        assert len(kv) > 100


class TestWorkloadE:
    """Scan-heavy extension workload (not in the paper's Table 3)."""

    def test_mix(self):
        mix = mix_of("E")
        assert mix["scan"] == pytest.approx(0.95, abs=0.02)
        assert mix["insert"] == pytest.approx(0.05, abs=0.02)

    def test_executes_scans(self):
        from repro.kvstore import KVStore
        from ..conftest import build_heap
        from repro.tx import kamino_simple

        heap, _, _ = build_heap(kamino_simple, pool_size=32 << 20, heap_size=12 << 20)
        kv = KVStore.create(heap, value_size=64)
        wl = YCSBWorkload("E", nrecords=100, value_size=64, seed=6)
        wl.load(kv)
        for op in wl.run_ops(200):
            wl.execute(kv, op)
        kv.drain()
        kv.tree.check_invariants()

    def test_write_fraction_counts_inserts_only(self):
        assert YCSBWorkload("E", 10).write_fraction == pytest.approx(0.05)
