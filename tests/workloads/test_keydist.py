"""Key distribution generators: ranges, skew, determinism."""

import collections

import pytest

from repro.workloads import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
    make_generator,
)


class TestUniform:
    def test_in_range(self):
        g = UniformGenerator(100, seed=1)
        assert all(0 <= g.next() < 100 for _ in range(1000))

    def test_roughly_uniform(self):
        g = UniformGenerator(10, seed=2)
        counts = collections.Counter(g.next() for _ in range(10000))
        assert max(counts.values()) < 2 * min(counts.values())

    def test_invalid_nitems(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)


class TestZipfian:
    def test_in_range(self):
        g = ZipfianGenerator(1000, seed=3)
        assert all(0 <= g.next() < 1000 for _ in range(5000))

    def test_rank_zero_is_hottest(self):
        g = ZipfianGenerator(1000, seed=4)
        counts = collections.Counter(g.next() for _ in range(20000))
        assert counts[0] == max(counts.values())
        # rank 0 should dominate the median rank by a wide margin
        assert counts[0] > 20 * counts.get(500, 1)

    def test_deterministic(self):
        a = [ZipfianGenerator(100, seed=5).next() for _ in range(50)]
        b = [ZipfianGenerator(100, seed=5).next() for _ in range(50)]
        assert a == b


class TestScrambled:
    def test_in_range(self):
        g = ScrambledZipfianGenerator(1000, seed=6)
        assert all(0 <= g.next() < 1000 for _ in range(5000))

    def test_hot_keys_are_scattered(self):
        g = ScrambledZipfianGenerator(1000, seed=7)
        counts = collections.Counter(g.next() for _ in range(20000))
        hot = counts.most_common(3)
        # the hottest keys must not be adjacent ranks 0,1,2
        assert sorted(k for k, _ in hot) != [0, 1, 2]

    def test_fnv_matches_known_shape(self):
        # stability check: hashing is deterministic across runs
        assert fnv1a_64(0) == fnv1a_64(0)
        assert fnv1a_64(1) != fnv1a_64(2)


class TestLatest:
    def test_favors_recent(self):
        g = LatestGenerator(1000, seed=8)
        counts = collections.Counter(g.next() for _ in range(20000))
        assert counts[999] == max(counts.values())

    def test_advance_shifts_hotspot(self):
        g = LatestGenerator(100, seed=9)
        g.advance()
        counts = collections.Counter(g.next() for _ in range(5000))
        assert counts[100] == max(counts.values())
        assert all(0 <= k <= 100 for k in counts)


class TestFactory:
    @pytest.mark.parametrize("name", ["uniform", "zipfian", "scrambled", "latest"])
    def test_known_names(self, name):
        g = make_generator(name, 10, seed=0)
        assert 0 <= g.next() < 11

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_generator("gaussian", 10)


class TestCirclePoints:
    """The consistent-hash circle primitives used by repro.cluster."""

    def test_key_point_is_deterministic_and_64_bit(self):
        from repro.workloads import key_point

        assert key_point(7) == key_point(7)
        points = {key_point(k) for k in range(2000)}
        assert len(points) == 2000  # dense small ints do not collide
        assert all(0 <= p < (1 << 64) for p in points)

    def test_hash_point_scatters_neighbours(self):
        from repro.workloads import hash_point

        points = {
            hash_point(s, r) for s in range(32) for r in range(64)
        }
        assert len(points) == 32 * 64  # vnodes of all shards distinct
        # neighbouring vnodes of one shard land far apart on the circle
        a, b = hash_point(0, 0), hash_point(0, 1)
        assert abs(a - b) > (1 << 32)

    def test_key_point_spreads_over_the_circle(self):
        from repro.workloads import key_point

        quarter = 1 << 62
        quadrants = collections.Counter(
            key_point(k) // quarter for k in range(4000)
        )
        assert set(quadrants) == {0, 1, 2, 3}
        assert max(quadrants.values()) < 2 * min(quadrants.values())
