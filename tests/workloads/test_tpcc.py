"""TPC-C-lite: load, profile semantics, mix, atomicity."""

import pytest

from repro.kvstore import KVStore
from repro.tx import UndoLogEngine, kamino_simple
from repro.workloads import TPCCLite
from repro.workloads.tpcc import (
    _CUSTOMER,
    _DISTRICT,
    _STOCK,
    _WAREHOUSE,
    _unpack,
    k_customer,
    k_district,
    k_new_order,
    k_order,
    k_stock,
    k_warehouse,
)

from ..conftest import build_heap


@pytest.fixture
def loaded():
    heap, _, _ = build_heap(UndoLogEngine, pool_size=64 << 20, heap_size=24 << 20)
    kv = KVStore.create(heap, value_size=64)
    tpcc = TPCCLite(warehouses=1, districts=2, customers=10, items=50, seed=5)
    tpcc.load(kv)
    return tpcc, kv, heap


class TestLoad:
    def test_all_tables_populated(self, loaded):
        tpcc, kv, _ = loaded
        assert kv.get(k_warehouse(0)) is not None
        assert kv.get(k_district(0, 1)) is not None
        assert kv.get(k_customer(0, 1, 9)) is not None
        assert kv.get(k_stock(0, 49)) is not None

    def test_value_size_check(self):
        heap, _, _ = build_heap(UndoLogEngine)
        kv = KVStore.create(heap, value_size=32)
        with pytest.raises(ValueError):
            TPCCLite().load(kv)


class TestNewOrder:
    def test_increments_district_counter(self, loaded):
        tpcc, kv, _ = loaded
        o = tpcc.do_new_order(kv)
        next_o, _ = _unpack(_DISTRICT, kv.get(k_district(0, 0))) if o else (0, 0)
        # one district got its counter bumped; find the order row
        found = any(
            kv.get(k_order(0, d, o)) is not None for d in range(tpcc.districts)
        )
        assert found

    def test_updates_stock_and_customer(self, loaded):
        tpcc, kv, _ = loaded
        before = sum(
            _unpack(_STOCK, kv.get(k_stock(0, i)))[2] for i in range(tpcc.items)
        )
        tpcc.do_new_order(kv)
        after = sum(
            _unpack(_STOCK, kv.get(k_stock(0, i)))[2] for i in range(tpcc.items)
        )
        assert after > before  # order counts incremented

    def test_atomic_under_abort(self):
        heap, _, _ = build_heap(kamino_simple, pool_size=64 << 20, heap_size=24 << 20)
        kv = KVStore.create(heap, value_size=64)
        tpcc = TPCCLite(warehouses=1, districts=2, customers=10, items=50, seed=5)
        tpcc.load(kv)
        district_rows = [kv.get(k_district(0, d)) for d in range(2)]
        with pytest.raises(RuntimeError):
            with kv.heap.transaction():
                tpcc.do_new_order(kv)
                raise RuntimeError("abort whole new-order")
        kv.drain()
        assert [kv.get(k_district(0, d)) for d in range(2)] == district_rows


class TestPayment:
    def test_moves_money(self, loaded):
        tpcc, kv, _ = loaded
        (w_ytd_before,) = _unpack(_WAREHOUSE, kv.get(k_warehouse(0)))
        tpcc.do_payment(kv)
        (w_ytd_after,) = _unpack(_WAREHOUSE, kv.get(k_warehouse(0)))
        assert w_ytd_after > w_ytd_before


class TestDeliveryAndStatus:
    def test_delivery_consumes_new_orders(self, loaded):
        tpcc, kv, _ = loaded
        for _ in range(6):
            tpcc.do_new_order(kv)
        delivered = 0
        for _ in range(4):
            delivered += tpcc.do_delivery(kv)
        assert delivered > 0

    def test_order_status_after_new_order(self, loaded):
        tpcc, kv, _ = loaded
        for _ in range(20):
            tpcc.do_new_order(kv)
        results = [tpcc.do_order_status(kv) for _ in range(10)]
        assert any(r is not None for r in results)

    def test_stock_level_counts(self, loaded):
        tpcc, kv, _ = loaded
        for _ in range(5):
            tpcc.do_new_order(kv)
        low = tpcc.do_stock_level(kv)
        assert low >= 0


class TestMix:
    def test_standard_mix_proportions(self):
        heap, _, _ = build_heap(UndoLogEngine, pool_size=64 << 20, heap_size=24 << 20)
        kv = KVStore.create(heap, value_size=64)
        tpcc = TPCCLite(warehouses=1, districts=2, customers=10, items=50, seed=7)
        tpcc.load(kv)
        stats = tpcc.run(kv, 400)
        assert stats.total == 400
        assert stats.new_orders == pytest.approx(180, abs=40)
        assert stats.payments == pytest.approx(172, abs=40)
        assert stats.order_statuses > 0
        kv.tree.check_invariants()
