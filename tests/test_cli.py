"""CLI subcommands: smoke coverage via main() with small workloads."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_engine_list_parses(self):
        args = build_parser().parse_args(["ycsb", "--engines", "a, b ,c"])
        assert args.engines == "a, b ,c"

    def test_workload_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ycsb", "--workload", "Z"])


class TestCommands:
    def test_ycsb(self, capsys):
        rc = main([
            "ycsb", "--workload", "C", "--records", "60", "--ops", "80",
            "--threads", "2", "--engines", "kamino-simple",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "YCSB-C" in out and "kamino-simple" in out

    def test_ycsb_dynamic_alpha(self, capsys):
        rc = main([
            "ycsb", "--workload", "A", "--records", "60", "--ops", "80",
            "--threads", "2", "--engines", "kamino-dynamic", "--alpha", "0.3",
        ])
        assert rc == 0
        assert "kamino-dynamic" in capsys.readouterr().out

    def test_tpcc(self, capsys):
        rc = main(["tpcc", "--ops", "40", "--engines", "undo"])
        assert rc == 0
        assert "TPC-C" in capsys.readouterr().out

    def test_chain(self, capsys):
        rc = main([
            "chain", "--workload", "A", "--f", "1", "--clients", "2",
            "--records", "30", "--ops", "15",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "traditional" in out and "kamino" in out

    def test_crash(self, capsys):
        rc = main(["crash", "--engine", "undo", "--after", "200", "--policy", "drop"])
        assert rc == 0
        assert "100/100 pre-crash records intact" in capsys.readouterr().out

    def test_info(self, capsys):
        rc = main(["info", "--engine", "kamino-simple", "--mb", "32", "--records", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "regions:" in out and "backup:" in out

    def test_info_undo_has_no_backup_line(self, capsys):
        rc = main(["info", "--engine", "undo", "--mb", "32", "--records", "10"])
        assert rc == 0
        assert "backup:" not in capsys.readouterr().out

    def test_check_quick_single_engine(self, capsys):
        rc = main(["check", "--engine", "undo", "--quick", "--no-chain"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "undo" in out and "explored=" in out
        assert "all oracles satisfied" in out

    def test_cluster_quick_no_sweep(self, capsys):
        rc = main(["cluster", "--quick", "--no-sweep", "--seeds", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "map v2" in out and "online migrations" in out
        assert "migrate_then_crash" in out
        assert "all converged" in out

    def test_check_rejects_unknown_workload(self, capsys):
        rc = main(["check", "--workloads", "bogus", "--engine", "undo"])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_bench_quick_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        rc = main([
            "bench", "--quick", "--names", "fig12_hot_loop",
            "--out", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig12_hot_loop" in out
        assert out_path.exists()

    def test_bench_compare_regression_fails(self, capsys, tmp_path):
        import json

        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({
            "benchmarks": {"fig12_hot_loop": {"speedup_vs_naive": 10_000.0}}
        }))
        rc = main([
            "bench", "--quick", "--names", "fig12_hot_loop",
            "--compare", str(baseline),
        ])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestScrub:
    def test_scrub_quick_repairs_everything(self, capsys):
        rc = main(["scrub", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scrub: " in out and "repaired=" in out
        assert "every injected fault repaired" in out

    def test_scrub_no_protect_demonstrates_silent_corruption(self, capsys):
        rc = main(["scrub", "--quick", "--no-protect", "--flips", "12"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "silently corrupt" in out
        assert "scrub: " not in out  # no sidecar, nothing to scrub

    def test_nemesis_media_quick(self, capsys):
        rc = main(["nemesis", "--media", "--quick", "--seeds", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bitrot_scrub" in out and "ok" in out
