"""Nemesis fault injection: corpus convergence, determinism, the
unhardened demonstration, and repro tooling."""

import pytest

from repro.faults import (
    CORPUS,
    FaultAction,
    NemesisScenario,
    RetryPolicy,
    client_streams,
    minimize,
    repro_snippet,
    run_scenario,
    scenario_by_name,
)
from repro.replication import KAMINO, TRADITIONAL


class TestCorpusConverges:
    """Every scenario × every seed must converge under the hardened
    protocol: replicas byte-identical, acked writes durable at the tail,
    no stuck clients.  Seed count is tunable via --nemesis-seeds."""

    @pytest.mark.parametrize("name", [s.name for s in CORPUS])
    def test_scenario_converges_over_seeds(self, name, nemesis_seeds):
        scenario = scenario_by_name(name)
        for seed in range(nemesis_seeds):
            result = run_scenario(scenario, seed=seed)
            assert result.ok, (
                f"{name} seed={seed} failed:\n  " + "\n  ".join(result.problems)
            )
            assert result.completed_ops == result.total_ops

    def test_traditional_mode_also_converges(self, nemesis_seeds):
        scenario = scenario_by_name("flaky_link")
        for seed in range(nemesis_seeds):
            result = run_scenario(scenario, seed=seed, mode=TRADITIONAL)
            assert result.ok, result.problems


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        scenario = scenario_by_name("chaos_combo")
        a = run_scenario(scenario, seed=3)
        b = run_scenario(scenario, seed=3)
        assert a.problems == b.problems
        assert a.summary() == b.summary()
        assert a.net == b.net
        assert (a.retransmissions, a.timed_out, a.client_retries) == (
            b.retransmissions, b.timed_out, b.client_retries
        )

    def test_different_seeds_differ_somewhere(self):
        scenario = scenario_by_name("flaky_link")
        runs = [run_scenario(scenario, seed=s) for s in range(4)]
        nets = {(r.net.sent, r.net.dropped_fault, r.retransmissions)
                for r in runs}
        assert len(nets) > 1  # the seed actually steers the faults

    def test_client_streams_deterministic(self):
        scenario = scenario_by_name("flaky_link")
        assert client_streams(scenario, 5) == client_streams(scenario, 5)
        assert client_streams(scenario, 5) != client_streams(scenario, 6)


class TestUnhardenedFails:
    """The demonstration with teeth: retries disabled, the same scenario
    that converges when hardened must strand clients."""

    def test_flaky_link_strands_unhardened_clients(self):
        scenario = scenario_by_name("flaky_link")
        hardened = run_scenario(scenario, seed=0)
        assert hardened.ok
        bare = run_scenario(scenario, seed=0, retry=RetryPolicy.disabled())
        assert not bare.ok
        assert any("stuck" in p for p in bare.problems)

    def test_minimize_produces_smaller_failing_repro(self):
        scenario = scenario_by_name("flaky_link")
        small = minimize(scenario, seed=0, retry=RetryPolicy.disabled())
        assert small.n_clients <= scenario.n_clients
        assert small.ops_per_client <= scenario.ops_per_client
        assert len(small.actions) <= len(scenario.actions)
        # the minimized scenario still fails — it is a real repro
        replay = run_scenario(small, seed=0, retry=RetryPolicy.disabled())
        assert not replay.ok

    def test_repro_snippet_is_executable(self):
        scenario = scenario_by_name("flaky_link")
        small = minimize(scenario, seed=0, retry=RetryPolicy.disabled())
        snippet = repro_snippet(small, seed=0, hardened=False)
        assert "run_scenario" in snippet
        ns = {}
        exec(compile(snippet, "<repro>", "exec"), ns)  # replays the failure
        assert not ns["result"].ok


class TestScenarioFormat:
    def test_action_dict_roundtrip(self):
        action = FaultAction(1000.0, "flaky_link",
                             {"src": 0, "dst": 1, "drop_p": 0.3})
        assert FaultAction.from_dict(action.to_dict()) == action

    def test_scenario_dict_roundtrip(self):
        for scenario in CORPUS:
            assert NemesisScenario.from_dict(scenario.to_dict()) == scenario

    def test_unknown_scenario_name_returns_none(self):
        assert scenario_by_name("no_such_scenario") is None

    def test_describe_mentions_every_action(self):
        scenario = scenario_by_name("partition_and_heal")
        text = scenario.describe()
        for action in scenario.actions:
            assert action.verb in text


class TestExploreIntegration:
    def test_explore_nemesis_report_ok(self):
        from repro.check.chain import explore_nemesis

        report = explore_nemesis(
            mode=KAMINO,
            scenarios=[scenario_by_name("flaky_link"),
                       scenario_by_name("crash_and_replace")],
            seeds=1,
        )
        assert report.ok, report.summary()
        assert report.states_explored == 2
        assert "nemesis" in report.summary()
