"""Media-fault nemesis scenarios: protected runs converge, unprotected
runs corrupt detectably, and the demonstration tooling minimizes."""

import pytest

from repro.faults import (
    MEDIA_CORPUS,
    demonstrate_unprotected,
    minimize,
    run_scenario,
    scenario_by_name,
)


class TestProtectedCorpusConverges:
    """Bit rot, dead lines, rot + reboot: the checksum sidecar plus the
    scrubber must keep every replica chain byte-identical and every
    acked write durable."""

    @pytest.mark.parametrize("name", [s.name for s in MEDIA_CORPUS])
    def test_scenario_converges_over_seeds(self, name, nemesis_seeds):
        scenario = scenario_by_name(name)
        assert scenario.media == "protected"
        for seed in range(nemesis_seeds):
            result = run_scenario(scenario, seed=seed)
            assert result.ok, (
                f"{name} seed={seed} failed:\n  " + "\n  ".join(result.problems)
            )
            assert result.completed_ops == result.total_ops

    def test_media_runs_are_deterministic(self):
        scenario = scenario_by_name("bitrot_scrub")
        a = run_scenario(scenario, seed=1)
        b = run_scenario(scenario, seed=1)
        assert a.problems == b.problems
        assert a.summary() == b.summary()


class TestUnprotectedDemonstration:
    """The teeth: the same rot with the sidecar disabled must surface a
    silent-corruption failure, and the tooling must shrink it."""

    def test_demonstrate_unprotected_finds_and_minimizes(self):
        found = demonstrate_unprotected(
            scenarios=[scenario_by_name("bitrot_scrub")], seeds=2
        )
        assert found is not None, "unprotected bit rot converged — no teeth"
        small, seed, snippet = found
        assert small.media == "unprotected"
        # the minimized scenario is a real repro: it still fails
        verdict = run_scenario(small, seed=seed)
        assert not verdict.ok
        assert "'media': 'unprotected'" in snippet

    def test_minimize_never_drops_the_media_mode(self):
        scenario = scenario_by_name("bitrot_scrub")
        from dataclasses import replace

        bare = replace(scenario, media="unprotected")
        verdict = run_scenario(bare, seed=1)
        if verdict.ok:  # this (scenario, seed) may pass; the sweep test
            pytest.skip("seed 1 converged unprotected; covered above")
        small = minimize(bare, 1)
        assert small.media == "unprotected"
        assert not run_scenario(small, seed=1).ok
