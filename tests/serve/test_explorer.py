"""ServeCrashExplorer: the frame-log sweep and its unhardened teeth."""

from repro.serve import ServeCrashExplorer
from repro.serve.explorer import ServeScenario


class TestDurableSweep:
    def test_incr_workload_is_exactly_once(self, serve_seeds):
        for device_seed in range(serve_seeds):
            explorer = ServeCrashExplorer(
                "incr", durable=True, device_seed=device_seed
            )
            report = explorer.explore(max_points=10, max_nested_points=2)
            assert report.ok, report.summary()
            assert report.states_explored > 0
            assert report.crashes_observed > 0

    def test_transfer_workload_is_exactly_once(self, serve_seeds):
        for device_seed in range(serve_seeds):
            explorer = ServeCrashExplorer(
                "transfer", durable=True, device_seed=device_seed
            )
            report = explorer.explore(max_points=10, max_nested_points=2)
            assert report.ok, report.summary()

    def test_nested_crashes_are_covered(self):
        explorer = ServeCrashExplorer("mixed", durable=True)
        report = explorer.explore(max_points=6, max_nested_points=2)
        assert report.ok, report.summary()
        assert report.nested_explored > 0

    def test_random_survival_lotteries(self):
        explorer = ServeCrashExplorer("incr", durable=True)
        report = explorer.explore(
            max_points=6, nested=False, random_samples=1
        )
        assert report.ok, report.summary()


class TestUnhardenedTeeth:
    def test_volatile_frames_double_apply(self):
        # the sweep must FIND failures with the persistent stack off —
        # a checker that cannot catch the unprotected config is dead
        explorer = ServeCrashExplorer("incr", durable=False)
        report = explorer.explore(max_points=12, nested=False)
        assert not report.ok
        kinds = " ".join(
            problem for f in report.failures for problem in f.problems
        )
        assert "double-applied" in kinds or "!=" in kinds

    def test_failures_carry_replayable_scenarios(self):
        explorer = ServeCrashExplorer("incr", durable=False)
        report = explorer.explore(max_points=12, nested=False)
        scenario = report.failures[0].scenario
        failure, crashes = ServeCrashExplorer(
            "incr", durable=False, device_seed=scenario.device_seed
        ).replay(scenario)
        assert crashes > 0
        assert failure is not None
        assert failure.problems == report.failures[0].problems


class TestDeterminism:
    def test_count_ops_is_stable(self):
        a = ServeCrashExplorer("mixed", durable=True).count_ops()
        b = ServeCrashExplorer("mixed", durable=True).count_ops()
        assert a == b > 0

    def test_scenario_replay_is_deterministic(self):
        scenario = ServeScenario(workload="transfer", crash_after=5)
        runs = [
            ServeCrashExplorer("transfer", durable=True).replay(scenario)
            for _ in range(2)
        ]
        assert runs[0][1] == runs[1][1]  # same crash count
        assert (runs[0][0] is None) == (runs[1][0] is None)
