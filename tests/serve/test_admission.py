"""Admission control: typed rejection, queue-and-readmit, pipeline bounds."""

import pytest

from repro.errors import AdmissionRejected, ServeError
from repro.replication import KAMINO, ChainCluster
from repro.serve import AdmissionConfig, AdmissionController

_US = 1_000.0


def small_cluster(**kw):
    kw.setdefault("f", 1)
    kw.setdefault("mode", KAMINO)
    kw.setdefault("heap_mb", 2)
    kw.setdefault("value_size", 64)
    return ChainCluster(**kw)


class TestRejectPolicy:
    def test_healthy_cluster_admits(self):
        ctrl = AdmissionController(small_cluster())
        ctrl.admit()
        assert ctrl.admitted == 1

    def test_open_breaker_rejects_with_cooldown_hint(self):
        cluster = small_cluster()
        ctrl = AdmissionController(cluster)
        cluster.trip_breaker(cooldown_ns=500 * _US)
        with pytest.raises(AdmissionRejected) as exc:
            ctrl.admit()
        # the hint is the breaker's remaining cooldown, not a default
        assert 0 < exc.value.retry_after_ns <= 500 * _US
        assert ctrl.rejected_degraded == 1

    def test_closed_breaker_admits_again(self):
        cluster = small_cluster()
        ctrl = AdmissionController(cluster)
        cluster.trip_breaker()
        with pytest.raises(AdmissionRejected):
            ctrl.admit()
        cluster.close_breaker()
        ctrl.admit()
        assert ctrl.admitted == 1

    def test_unknown_policy_rejected_at_construction(self):
        with pytest.raises(ServeError):
            AdmissionController(small_cluster(), AdmissionConfig(policy="drop"))


class TestQueuePolicy:
    def config(self, **kw):
        kw.setdefault("policy", "queue")
        return AdmissionConfig(**kw)

    def test_hold_rides_out_the_cooldown(self):
        cluster = small_cluster()
        ctrl = AdmissionController(cluster, self.config())
        cluster.trip_breaker(cooldown_ns=200 * _US)
        before = cluster.sim.now
        ctrl.admit()  # parks, runs virtual time past the cooldown, readmits
        assert cluster.sim.now >= before + 200 * _US
        assert ctrl.queued == 1
        assert ctrl.readmitted == 1
        assert ctrl.admitted == 1

    def test_hold_gives_up_after_max_wait(self):
        cluster = small_cluster()
        ctrl = AdmissionController(
            cluster, self.config(max_wait_ns=100 * _US)
        )
        cluster.trip_breaker(cooldown_ns=50_000 * _US)
        with pytest.raises(AdmissionRejected):
            ctrl.admit()
        assert ctrl.shed_after_wait == 1
        assert ctrl.readmitted == 0

    def test_queue_overflow_sheds(self):
        cluster = small_cluster()
        ctrl = AdmissionController(cluster, self.config(queue_limit=0))
        cluster.trip_breaker()
        with pytest.raises(AdmissionRejected):
            ctrl.admit()
        assert ctrl.queue_overflow == 1


class TestPipelineWindow:
    def test_positions_beyond_window_are_shed(self):
        ctrl = AdmissionController(
            small_cluster(), AdmissionConfig(max_inflight=2)
        )
        ctrl.admit(batch_index=0)
        ctrl.admit(batch_index=1)
        with pytest.raises(AdmissionRejected):
            ctrl.admit(batch_index=2)
        assert ctrl.rejected_overload == 1
        assert ctrl.admitted == 2


class TestBreakerEvents:
    def test_listener_records_open_and_close_edges(self):
        cluster = small_cluster()
        ctrl = AdmissionController(cluster)
        cluster.trip_breaker()
        cluster.close_breaker()
        assert [deg for _t, deg in ctrl.breaker_events] == [True, False]
        assert ctrl.stats()["breaker_transitions"] == 2
