"""ClusterGateway: per-request pump, retries, unknown ids, stale maps."""

import pytest

from repro import ShardedCluster
from repro.errors import ClusterDegraded, ReplicationError, RequestTimeoutError
from repro.replication import KAMINO, ChainCluster, RetryPolicy
from repro.serve import ClusterGateway

_US = 1_000.0


def small_cluster(**kw):
    kw.setdefault("f", 1)
    kw.setdefault("mode", KAMINO)
    kw.setdefault("heap_mb", 2)
    kw.setdefault("value_size", 64)
    return ChainCluster(**kw)


class TestBasics:
    def test_write_then_read_round_trip(self):
        gw = ClusterGateway(small_cluster())
        gw.call_write("put", (1, b"hello"), (1,), "c0", 0)
        value = gw.call_read("get", (1,))
        assert bytes(value).rstrip(b"\x00") == b"hello"
        assert gw.stats()["writes"] == 1
        assert gw.stats()["reads"] == 1

    def test_works_over_sharded_cluster(self):
        cluster = ShardedCluster(groups=2, shards_per_group=2, f=1,
                                 heap_mb=2, value_size=64, seed=0)
        gw = ClusterGateway(cluster)
        for i, key in enumerate(range(0, 8000, 1000)):
            gw.call_write("put", (key, b"v%d" % i), (key,), "c0", i)
        for i, key in enumerate(range(0, 8000, 1000)):
            got = bytes(gw.call_read("get", (key,))).rstrip(b"\x00")
            assert got == b"v%d" % i


class TestDegradedWrites:
    def test_rejection_surfaces_immediately_without_burning_the_ladder(self):
        # the head records rejections as completed outcomes, so a
        # same-id resubmit can only replay the rejection: the gateway
        # must not waste its backoff ladder on it
        cluster = small_cluster()
        gw = ClusterGateway(cluster)
        cluster.trip_breaker(cooldown_ns=200 * _US)
        with pytest.raises(ClusterDegraded):
            gw.call_write("put", (1, b"x"), (1,), "c0", 0)
        assert gw.internal_retries == 0
        assert cluster.degraded_rejections == 1

    def test_fresh_id_succeeds_after_the_cooldown(self):
        cluster = small_cluster()
        gw = ClusterGateway(cluster)
        cluster.trip_breaker(cooldown_ns=200 * _US)
        with pytest.raises(ClusterDegraded):
            gw.call_write("put", (1, b"x"), (1,), "c0", 0)
        cluster.sim.run(until=cluster.sim.now + 300 * _US)
        # a same-id retry replays the recorded rejection...
        with pytest.raises(ClusterDegraded):
            gw.call_write("put", (1, b"x"), (1,), "c0", 0)
        assert cluster.duplicate_requests >= 1
        # ...a fresh id (what RETRY-AFTER tells the client to send) lands
        gw.call_write("put", (1, b"late"), (1,), "c0", 1)
        assert bytes(gw.call_read("get", (1,))).rstrip(b"\x00") == b"late"


class TestUnknownRids:
    def test_timeout_records_the_request_id(self):
        # head -> r1 severed and never healed: the ladder exhausts, the
        # outcome is unknown, and the id must be on the unknown list
        cluster = small_cluster(retry=RetryPolicy(max_retries=2))
        gw = ClusterGateway(cluster)
        head_id = cluster.chain[0].node_id
        next_id = cluster.chain[1].node_id
        cluster.net.cut_link(head_id, next_id)
        with pytest.raises(ReplicationError):
            gw.call_write("put", (1, b"lost?"), (1,), "c0", 7)
        assert ("c0", 7) in gw.unknown_rids
        assert gw.stats()["unknown_rids"] == 1
        assert gw.timed_out >= 1

    def test_timeouts_count_even_with_retries_disabled(self):
        cluster = small_cluster(retry=RetryPolicy.disabled())
        gw = ClusterGateway(cluster)
        head_id = cluster.chain[0].node_id
        next_id = cluster.chain[1].node_id
        cluster.net.cut_link(head_id, next_id)
        with pytest.raises(RequestTimeoutError):
            gw.call_write("put", (1, b"gone"), (1,), "c0", 0)
        assert ("c0", 0) in gw.unknown_rids


class TestStaleMap:
    def test_migration_refreshes_the_cached_map(self):
        cluster = ShardedCluster(groups=2, shards_per_group=2, f=1,
                                 heap_mb=2, value_size=64, seed=0)
        gw = ClusterGateway(cluster)
        for i, key in enumerate(range(0, 4000, 1000)):
            gw.call_write("put", (key, b"seed"), (key,), "c0", i)
        stale = gw.map_version
        cluster.migrate_shard()
        cluster.drain()
        assert cluster.map_version > stale
        # the gateway still holds the stale version: the typed redirect
        # refreshes it mid-request instead of failing the write
        for i, key in enumerate(range(0, 4000, 1000)):
            gw.call_write("put", (key, b"after"), (key,), "c1", i)
        assert gw.map_refreshes >= 1
        assert gw.map_version == cluster.map_version
        for key in range(0, 4000, 1000):
            got = bytes(gw.call_read("get", (key,))).rstrip(b"\x00")
            assert got == b"after"
