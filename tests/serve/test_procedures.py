"""Durable procedures: frame log, resume, compaction, exactly-once."""

import pytest

from repro.errors import (
    DeviceCrashedError,
    ProcedureError,
    ProcedureResumed,
)
from repro.nvm.backend import make_device
from repro.replication import KAMINO, ChainCluster
from repro.serve import ClusterGateway, ProcedureEngine, ProcedureStore
from repro.serve.procedures import DEVICE_BYTES, _as_int, _encode_int


def build(durable=True, device=None, log_bytes=None):
    cluster = ChainCluster(f=1, mode=KAMINO, heap_mb=2, value_size=64)
    gateway = ClusterGateway(cluster)
    kw = {} if log_bytes is None else {"log_bytes": log_bytes}
    store = ProcedureStore(
        device if device is not None else make_device(DEVICE_BYTES, seed=0),
        **kw,
    )
    engine = ProcedureEngine(gateway, store, durable=durable)
    return gateway, store, engine


def seed(gateway, key, value):
    gateway.call_write("put", (key, _encode_int(value)), (key,),
                       "setup", key)


def read_int(gateway, key):
    return _as_int(gateway.call_read("get", (key,)))


class TestHappyPath:
    def test_incr_runs_and_stores_its_result(self):
        gateway, store, engine = build()
        seed(gateway, 10, 100)
        assert engine.run("incr", [10, 5], pid="q0") == 105
        assert read_int(gateway, 10) == 105
        assert store.done["q0"] == 105

    def test_transfer_moves_exactly_the_amount(self):
        gateway, _store, engine = build()
        seed(gateway, 20, 100)
        seed(gateway, 21, 100)
        result = engine.run("transfer", [20, 21, 30], pid="t0")
        assert result == {"src": 70, "dst": 130}
        assert (read_int(gateway, 20), read_int(gateway, 21)) == (70, 130)

    def test_completed_pid_replays_without_reexecution(self):
        gateway, _store, engine = build()
        seed(gateway, 10, 100)
        engine.run("incr", [10, 5], pid="q0")
        with pytest.raises(ProcedureResumed) as exc:
            engine.run("incr", [10, 5], pid="q0")
        assert exc.value.result == 105
        assert read_int(gateway, 10) == 105  # not 110
        assert engine.resumed_replies == 1

    def test_unknown_procedure_is_a_typed_error(self):
        _gateway, _store, engine = build()
        with pytest.raises(ProcedureError):
            engine.run("frobnicate", [])

    def test_auto_pids_stay_clear_of_the_log_after_reopen(self):
        gateway, store, engine = build()
        seed(gateway, 10, 100)
        pid = None
        for _ in range(3):
            pid = f"p{engine._next_pid}"
            engine.run("incr", [10, 1])
        reopened = ProcedureStore.open(store.device)
        engine2 = ProcedureEngine(ClusterGateway(gateway.cluster), reopened)
        assert int(pid[1:]) < engine2._next_pid


def _store_ops_for(durable, name, args, setup):
    """Crash-point ruler for one full run: (total store-device ops,
    ops completed when the ``done`` append starts).  Scheduling the
    second number as the fail-point crashes the first op of the done
    record — every effect committed, completion not yet durable."""
    gateway, store, engine = build(durable=durable)
    for key, value in setup:
        seed(gateway, key, value)
    budget = 1_000_000
    marks = {}
    orig_finish = store.finish

    def finish(pid, result):
        marks["before_done"] = budget - store.device.scheduled_crash_remaining()
        return orig_finish(pid, result)

    store.finish = finish
    store.device.schedule_crash(budget)
    engine.run(name, list(args), pid="x0")
    remaining = store.device.scheduled_crash_remaining()
    store.device.cancel_scheduled_crash()
    return budget - remaining, marks["before_done"]


def _crash_at(durable, crash_after, name, args, setup):
    """Run one procedure with the store device failing after
    ``crash_after`` ops, recover, resume; returns (gateway, engine)."""
    device = make_device(DEVICE_BYTES, seed=0)
    gateway, store, engine = build(durable=durable, device=device)
    for key, value in setup:
        seed(gateway, key, value)
    store.device.schedule_crash(crash_after)
    with pytest.raises(DeviceCrashedError):
        engine.run(name, list(args), pid="x0")
    store.crash_and_recover()
    engine2 = ProcedureEngine(gateway, store, durable=durable)
    engine2.resume_all()
    return gateway, engine2


class TestCrashRecovery:
    SETUP = [(20, 100), (21, 100)]

    def test_durable_resume_skips_persisted_frames(self):
        _total, before_done = _store_ops_for(
            True, "transfer", (20, 21, 30), self.SETUP
        )
        # crash the first op of the done append: every frame persisted,
        # completion not durable — resume must re-execute nothing
        gateway, engine = _crash_at(
            True, before_done, "transfer", (20, 21, 30), self.SETUP
        )
        assert engine.skipped_steps == 4
        assert engine.replayed_steps == 0
        assert engine.result("x0") == {"src": 70, "dst": 130}
        assert (read_int(gateway, 20), read_int(gateway, 21)) == (70, 130)

    def test_durable_midpoint_crash_is_exactly_once(self):
        total, _ = _store_ops_for(True, "transfer", (20, 21, 30), self.SETUP)
        for point in (0, total // 3, total // 2, 2 * total // 3):
            gateway, engine = _crash_at(
                True, point, "transfer", (20, 21, 30), self.SETUP
            )
            result = engine.result("x0")
            if result is None:
                # the begin record itself tore: atomically never started
                assert (read_int(gateway, 20), read_int(gateway, 21)) \
                    == (100, 100)
            else:
                assert result == {"src": 70, "dst": 130}
                assert (read_int(gateway, 20), read_int(gateway, 21)) \
                    == (70, 130)

    def test_volatile_crash_double_applies(self):
        # the demonstration with teeth, unit-sized: with the frames in
        # volatile memory the crash rewinds to step 0 under a fresh
        # identity, and the debit/credit land a second time
        _total, before_done = _store_ops_for(
            False, "transfer", (20, 21, 30), self.SETUP
        )
        gateway, engine = _crash_at(
            False, before_done, "transfer", (20, 21, 30), self.SETUP
        )
        src, dst = read_int(gateway, 20), read_int(gateway, 21)
        assert (src, dst) != (70, 130)
        assert src < 70  # the debit landed at least twice

    def test_resume_survives_a_nested_crash(self):
        total, _ = _store_ops_for(True, "transfer", (20, 21, 30), self.SETUP)
        device = make_device(DEVICE_BYTES, seed=0)
        gateway, store, engine = build(durable=True, device=device)
        for key, value in self.SETUP:
            seed(gateway, key, value)
        store.device.schedule_crash(total // 2)
        with pytest.raises(DeviceCrashedError):
            engine.run("transfer", [20, 21, 30], pid="x0")
        store.crash_and_recover()
        store.device.schedule_crash(3)  # crash again, mid-resume
        engine2 = ProcedureEngine(gateway, store, durable=True)
        try:
            engine2.resume_all()
        except DeviceCrashedError:
            store.crash_and_recover()
            engine2 = ProcedureEngine(gateway, store, durable=True)
            engine2.resume_all()
        assert engine2.result("x0") == {"src": 70, "dst": 130}
        assert (read_int(gateway, 20), read_int(gateway, 21)) == (70, 130)


class TestCompaction:
    def test_log_compacts_and_reopens(self):
        gateway, store, engine = build(log_bytes=4096 + 2048)
        seed(gateway, 10, 0)
        for i in range(64):
            engine.run("incr", [10, 1], pid=f"c{i}")
        assert store.compactions >= 1
        assert read_int(gateway, 10) == 64
        reopened = ProcedureStore.open(store.device)
        # the replay window survives compaction: recent results replay
        assert reopened.done[f"c63"] == 64
        assert not reopened.pending

    def test_pending_stack_survives_compaction(self):
        gateway, store, engine = build(log_bytes=4096 + 2048)
        seed(gateway, 10, 0)
        seed(gateway, 20, 100)
        seed(gateway, 21, 100)
        # park a mid-flight transfer in the log, then force compactions
        store.begin("hang0", "transfer", [20, 21, 30])
        store.push_frame("hang0", 0, 100)
        for i in range(64):
            engine.run("incr", [10, 1], pid=f"c{i}")
        assert store.compactions >= 1
        reopened = ProcedureStore.open(store.device)
        assert reopened.pending["hang0"]["frames"] == [100]
