"""ReproServer: dispatch, pipelining, in-band shedding, crash recovery.

The synchronous core (``handle_batch``) carries most of the coverage;
one end-to-end test drives the real asyncio socket path with
``asyncio.run`` inside a plain pytest function (no pytest-asyncio
dependency).
"""

import asyncio
import json

import pytest

from repro.errors import AdmissionRejected
from repro.serve import AdmissionConfig, ReproServer, ServeClient
from repro.serve.procedures import _encode_int
from repro.serve.protocol import ReplyReader, encode_command


def make_server(**kw):
    kw.setdefault("groups", 2)
    kw.setdefault("shards_per_group", 2)
    kw.setdefault("f", 1)
    return ReproServer(**kw)


def _proc_result(reply):
    """Decode a PROC reply: fresh result (bulk json) or RESUMED replay."""
    if reply[0] == "bulk":
        return json.loads(reply[1])
    return json.loads(reply[1].split(" ", 1)[1])


def one(server, *argv):
    """Run a single command, return the decoded reply tuple."""
    replies, _close = server.handle_batch([list(argv)])
    reader = ReplyReader()
    reader.feed(replies[0])
    return reader.pop()


class TestDispatch:
    def test_ping_put_get_round_trip(self):
        server = make_server()
        assert one(server, b"PING") == ("simple", "PONG")
        assert one(server, b"PUT", b"17", b"hello") == ("simple", "OK")
        kind, value = one(server, b"GET", b"17")
        assert kind == "bulk"
        assert value.rstrip(b"\x00") == b"hello"

    def test_missing_key_reads_as_null(self):
        server = make_server()
        assert one(server, b"GET", b"404") == ("bulk", None)

    def test_del_removes_the_key(self):
        server = make_server()
        one(server, b"PUT", b"5", b"x")
        assert one(server, b"DEL", b"5") == ("simple", "OK")
        assert one(server, b"GET", b"5") == ("bulk", None)

    def test_quit_closes_the_connection(self):
        server = make_server()
        replies, close = server.handle_batch([[b"QUIT"]])
        assert close is True

    def test_unknown_verb_and_bad_arity_are_in_band_errors(self):
        server = make_server()
        kind, code, _msg = one(server, b"FROB")
        assert (kind, code) == ("error", "ERR")
        kind, code, msg = one(server, b"PUT", b"1")
        assert (kind, code) == ("error", "ERR")
        assert "argument" in msg
        kind, code, _msg = one(server, b"PUT", b"abc", b"v")
        assert (kind, code) == ("error", "ERR")
        assert server.protocol_errors == 3

    def test_info_reports_topology(self):
        server = make_server(groups=3)
        kind, payload = one(server, b"INFO")
        doc = json.loads(payload)
        assert doc["groups"] == 3
        assert "incr" in doc["procedures"]
        assert doc["durable"] is True


class TestPipelining:
    def test_batch_replies_match_command_order(self):
        server = make_server()
        batch = [[b"PUT", b"%d" % i, b"v%d" % i] for i in range(4)]
        batch += [[b"GET", b"%d" % i] for i in range(4)]
        replies, close = server.handle_batch(batch)
        assert not close
        reader = ReplyReader()
        reader.feed(b"".join(replies))
        for _ in range(4):
            assert reader.pop() == ("simple", "OK")
        for i in range(4):
            kind, value = reader.pop()
            assert value.rstrip(b"\x00") == b"v%d" % i

    def test_window_overflow_sheds_in_band_and_keeps_answering(self):
        server = make_server(admission=AdmissionConfig(max_inflight=2))
        batch = [[b"PUT", b"%d" % i, b"x"] for i in range(4)]
        batch.append([b"PING"])  # reads/introspection are never shed
        replies, _close = server.handle_batch(batch)
        reader = ReplyReader()
        reader.feed(b"".join(replies))
        decoded = [reader.pop() for _ in range(5)]
        assert decoded[0] == ("simple", "OK")
        assert decoded[1] == ("simple", "OK")
        assert decoded[2][0] == "error" and decoded[2][1] == "RETRY-AFTER"
        assert decoded[3][0] == "error"
        assert decoded[4] == ("simple", "PONG")
        assert server.admission.rejected_overload == 2


class TestDegradation:
    def test_open_breaker_maps_to_retry_after(self):
        server = make_server()
        server.cluster.groups[0].trip_breaker()
        server.cluster.groups[1].trip_breaker()
        kind, code, _msg = one(server, b"PUT", b"1", b"x")
        assert (kind, code) == ("error", "RETRY-AFTER")
        for group in server.cluster.groups:
            group.close_breaker()
        assert one(server, b"PUT", b"1", b"x") == ("simple", "OK")


class TestDurableProcedures:
    def test_proc_runs_and_replays_exactly_once(self):
        server = make_server()
        one(server, b"PUT", b"10", _encode_int(100))
        kind, payload = one(server, b"PROC", b"incr", b"j0", b"10", b"7")
        assert (kind, json.loads(payload)) == ("bulk", 107)
        # same pid again: the stored result, marked RESUMED
        kind, text = one(server, b"PROC", b"incr", b"j0", b"10", b"7")
        assert kind == "simple" and text.startswith("RESUMED")
        assert json.loads(text.split(" ", 1)[1]) == 107
        kind, payload = one(server, b"PROCRESULT", b"j0")
        assert json.loads(payload) == 107

    def test_crash_mid_procedure_recovers_inside_the_request(self):
        server = make_server()
        one(server, b"PUT", b"20", _encode_int(100))
        one(server, b"PUT", b"21", _encode_int(100))
        server.store.device.schedule_crash(20)
        kind, payload = one(
            server, b"PROC", b"transfer", b"x0", b"20", b"21", b"30"
        )
        if kind == "bulk":
            result = json.loads(payload)
        else:
            assert payload.startswith("RESUMED")
            result = json.loads(payload.split(" ", 1)[1])
        assert result == {"src": 70, "dst": 130}
        assert server.crashes_recovered >= 1
        kind, value = one(server, b"GET", b"20")
        assert int(value.rstrip(b"\x00")) == 70
        kind, value = one(server, b"GET", b"21")
        assert int(value.rstrip(b"\x00")) == 130

    def test_crash_verb_resumes_pending_procedures(self):
        server = make_server()
        one(server, b"PUT", b"10", _encode_int(0))
        # park a mid-flight incr in the log, as a crashed run would
        server.store.begin("hang0", "incr", ["10", "5"])
        kind, text = one(server, b"CRASH")
        assert kind == "simple" and text.startswith("RECOVERED 1")
        kind, payload = one(server, b"PROCRESULT", b"hang0")
        assert json.loads(payload) == 5

    def test_metrics_exposes_all_blocks(self):
        server = make_server()
        one(server, b"PUT", b"1", b"x")
        kind, payload = one(server, b"METRICS")
        doc = json.loads(payload)
        for block in ("server", "admission", "gateway", "procedures",
                      "cluster", "procedure_log_device", "net"):
            assert block in doc, block
        assert doc["gateway"]["writes"] >= 1
        assert doc["server"]["requests"] >= 2


class TestAsyncioEndToEnd:
    def test_socket_path_pipelines_and_recovers(self):
        async def scenario():
            server = make_server()
            host, port = await server.start()
            try:
                client = await ServeClient.connect(host, port)
                try:
                    assert await client.execute("PING") == ("simple", "PONG")
                    # pipelined burst over the real socket
                    cmds = [["PUT", i, _encode_int(i)] for i in range(6)]
                    cmds += [["GET", i] for i in range(6)]
                    replies = await client.pipeline(cmds)
                    for i, reply in enumerate(replies[6:]):
                        assert int(reply[1].rstrip(b"\x00")) == i
                    # durable procedure + kill the log mid-flight
                    server.store.device.schedule_crash(20)
                    result = _proc_result(
                        await client.proc("incr", "e2e0", 3, 9)
                    )
                    assert result == 12
                    assert server.crashes_recovered >= 1
                    # retried pid resumes instead of re-executing
                    reply = await client.proc("incr", "e2e0", 3, 9)
                    assert reply[0] == "simple"
                    assert reply[1].startswith("RESUMED")
                    assert _proc_result(reply) == 12
                    value = await client.get(3)
                    assert int(value.rstrip(b"\x00")) == 12
                    # degradation surfaces as a typed client error
                    for group in server.cluster.groups:
                        group.trip_breaker()
                    with pytest.raises(AdmissionRejected) as exc:
                        await client.put(4, b"nope")
                    assert exc.value.retry_after_ns > 0
                    for group in server.cluster.groups:
                        group.close_breaker()
                    await client.put(4, b"yes")
                    metrics = json.loads(await client.metrics())
                    assert metrics["admission"]["rejected_degraded"] >= 1
                finally:
                    await client.close()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_protocol_error_is_answered_before_close(self):
        async def scenario():
            server = make_server()
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"*nope\r\n")
                await writer.drain()
                data = await reader.read(4096)
                assert data.startswith(b"-ERR")
                writer.close()
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestRawWire:
    def test_encode_command_matches_server_expectations(self):
        server = make_server()
        from repro.serve.protocol import ProtocolReader

        reader = ProtocolReader()
        reader.feed(encode_command(["PUT", 9, b"raw"]))
        replies, _ = server.handle_batch(reader.pop_all())
        assert replies[0] == b"+OK\r\n"
