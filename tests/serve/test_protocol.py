"""Wire protocol: incremental parsing, encoding, typed error mapping."""

import pytest

from repro.errors import (
    AdmissionRejected,
    ClusterDegraded,
    ProtocolError,
    RequestTimeoutError,
    ServeError,
)
from repro.serve.protocol import (
    ProtocolReader,
    ReplyReader,
    encode_bulk,
    encode_command,
    encode_error,
    encode_integer,
    encode_simple,
    error_reply,
    raise_for_reply,
)


class TestRequestParsing:
    def test_command_round_trip(self):
        reader = ProtocolReader()
        reader.feed(encode_command(["PUT", 17, b"value"]))
        assert reader.pop() == [b"PUT", b"17", b"value"]
        assert reader.pop() is None

    def test_byte_at_a_time_feeding(self):
        payload = encode_command(["GET", 42])
        reader = ProtocolReader()
        for i in range(len(payload) - 1):
            reader.feed(payload[i:i + 1])
            assert reader.pop() is None  # never a partial command
        reader.feed(payload[-1:])
        assert reader.pop() == [b"GET", b"42"]

    def test_pipelined_batch_pops_in_order(self):
        reader = ProtocolReader()
        reader.feed(
            encode_command(["PUT", 1, b"a"])
            + encode_command(["GET", 1])
            + encode_command(["PING"])
        )
        batch = reader.pop_all()
        assert [cmd[0] for cmd in batch] == [b"PUT", b"GET", b"PING"]

    def test_inline_commands(self):
        reader = ProtocolReader()
        reader.feed(b"GET 17\r\nPING\r\n")
        assert reader.pop() == [b"GET", b"17"]
        assert reader.pop() == [b"PING"]

    def test_blank_inline_lines_are_skipped(self):
        reader = ProtocolReader()
        reader.feed(b"\r\n\r\nPING\r\n")
        assert reader.pop() == [b"PING"]

    def test_incomplete_array_leaves_buffer_intact(self):
        reader = ProtocolReader()
        payload = encode_command(["PUT", 1, b"abc"])
        reader.feed(payload[:10])
        assert reader.pop() is None
        reader.feed(payload[10:])
        assert reader.pop() == [b"PUT", b"1", b"abc"]

    def test_bad_array_header_raises(self):
        reader = ProtocolReader()
        reader.feed(b"*x\r\n")
        with pytest.raises(ProtocolError):
            reader.pop()

    def test_oversized_argument_count_raises(self):
        reader = ProtocolReader()
        reader.feed(b"*99999\r\n")
        with pytest.raises(ProtocolError):
            reader.pop()

    def test_bad_bulk_length_raises(self):
        reader = ProtocolReader()
        reader.feed(b"*1\r\n$nope\r\n")
        with pytest.raises(ProtocolError):
            reader.pop()

    def test_unterminated_bulk_raises(self):
        reader = ProtocolReader()
        reader.feed(b"*1\r\n$3\r\nabcXX")
        with pytest.raises(ProtocolError):
            reader.pop()


class TestReplyParsing:
    def test_all_reply_kinds_round_trip(self):
        reader = ReplyReader()
        reader.feed(
            encode_simple("OK")
            + encode_error("DEGRADED", "no quorum")
            + encode_integer(42)
            + encode_bulk(b"hello")
            + encode_bulk(None)
        )
        assert reader.pop() == ("simple", "OK")
        assert reader.pop() == ("error", "DEGRADED", "no quorum")
        assert reader.pop() == ("int", 42)
        assert reader.pop() == ("bulk", b"hello")
        assert reader.pop() == ("bulk", None)
        assert reader.pop() is None

    def test_split_bulk_waits_for_payload(self):
        reader = ReplyReader()
        payload = encode_bulk(b"abcdef")
        reader.feed(payload[:6])
        assert reader.pop() is None
        reader.feed(payload[6:])
        assert reader.pop() == ("bulk", b"abcdef")


class TestErrorMapping:
    def test_admission_rejected_carries_hint_both_ways(self):
        wire = error_reply(AdmissionRejected("busy", retry_after_ns=12_345.0))
        assert wire.startswith(b"-RETRY-AFTER 12345 ")
        reply = ReplyReader()
        reply.feed(wire)
        with pytest.raises(AdmissionRejected) as exc:
            raise_for_reply(reply.pop())
        assert exc.value.retry_after_ns == 12_345.0

    def test_degraded_and_timeout_round_trip(self):
        for exc_in, exc_type in [
            (ClusterDegraded("no quorum"), ClusterDegraded),
            (RequestTimeoutError("gone"), RequestTimeoutError),
        ]:
            reply = ReplyReader()
            reply.feed(error_reply(exc_in))
            with pytest.raises(exc_type):
                raise_for_reply(reply.pop())

    def test_unknown_error_code_becomes_serve_error(self):
        with pytest.raises(ServeError):
            raise_for_reply(("error", "WAT", "???"))

    def test_non_error_replies_pass_through(self):
        assert raise_for_reply(("simple", "OK")) == ("simple", "OK")
