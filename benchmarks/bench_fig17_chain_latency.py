"""Figure 17 — replicated write latency: Kamino-Tx-Chain vs traditional.

Paper: both chains tolerate two failures (traditional: 3 replicas with
undo logging everywhere; Kamino: 4 replicas, in-place updates, the only
backup at the head).  Kamino-Tx-Chain is up to 2.2× faster on
write-intensive workloads because no replica copies data in the critical
path; the price is one extra replica and one extra network hop.
"""

import statistics as st

from repro.bench import format_table
from repro.replication import KAMINO, TRADITIONAL, ChainCluster, run_clients
from repro.workloads import Op, UPDATE, YCSBWorkload

WORKLOADS = ["A", "B", "D", "F"]
F_TOLERATED = 2
NCLIENTS = 4


def run_chain(mode, workload, nrecords, nops_per_client):
    cluster = ChainCluster(f=F_TOLERATED, mode=mode, heap_mb=16, value_size=1024)
    load = [Op(UPDATE, k, bytes([k % 256]) * 64) for k in range(nrecords)]
    run_clients(cluster, [load])
    cluster.write_latencies_ns.clear()
    cluster.read_latencies_ns.clear()
    wl = YCSBWorkload(workload, nrecords=nrecords, value_size=1024, seed=7)
    streams = [list(wl.run_ops(nops_per_client)) for _ in range(NCLIENTS)]
    run_clients(cluster, streams)
    cluster.assert_replicas_consistent()
    return cluster


def run(nrecords=200, nops_per_client=100):
    rows = []
    ratios = {}
    for workload in WORKLOADS:
        lat = {}
        for mode in (KAMINO, TRADITIONAL):
            cluster = run_chain(mode, workload, nrecords, nops_per_client)
            writes = cluster.write_latencies_ns
            lat[mode] = st.mean(writes) / 1e3 if writes else 0.0
        ratios[workload] = lat[TRADITIONAL] / lat[KAMINO]
        rows.append([f"YCSB-{workload}", lat[KAMINO], lat[TRADITIONAL], ratios[workload]])
    table = format_table(
        "Figure 17: chain write latency (us), f=2",
        ["workload", "kamino-tx-chain", "chain-replication", "trad/kamino"],
        rows,
        note="paper: kamino-tx-chain up to 2.2x faster on write-intensive workloads",
    )
    return table, ratios


def check_shape(ratios):
    for workload in WORKLOADS:
        assert ratios[workload] > 1.0, (
            f"{workload}: kamino chain must have lower write latency "
            f"(ratio {ratios[workload]:.2f})"
        )
    assert ratios["A"] >= ratios["B"] * 0.9, "gap should be largest when write-heavy"


def test_fig17_chain_latency(benchmark):
    table, ratios = benchmark.pedantic(
        run, kwargs=dict(nrecords=100, nops_per_client=60), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(ratios)


if __name__ == "__main__":
    table, ratios = run()
    print(table)
    check_shape(ratios)
