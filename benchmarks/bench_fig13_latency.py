"""Figure 13 — YCSB + TPC-C latency: Kamino-Tx-Simple vs undo logging.

Paper: on write-intensive workloads Kamino-Tx is up to 2.33× faster
("cache flushes, transactional allocation and software needed for
maintaining undo-logs comprises most of the overhead"); workload C is
identical (100% reads); TPC-C improves ~40% in throughput terms.
"""

from repro.bench import format_table, replay, trace_tpcc, trace_ycsb

WORKLOADS = ["A", "B", "C", "D", "F"]
NTHREADS = 4


def run(nrecords=800, nops=1600, tpcc_ops=400):
    rows = []
    ratios = {}
    for workload in WORKLOADS:
        lat = {}
        for engine in ("kamino-simple", "undo"):
            records = trace_ycsb(engine, workload, nrecords=nrecords, nops=nops,
                                 value_size=1008)
            lat[engine] = replay(records, NTHREADS, engine, workload).mean_latency_us
        ratios[workload] = lat["undo"] / lat["kamino-simple"]
        rows.append([f"YCSB-{workload}", lat["kamino-simple"], lat["undo"], ratios[workload]])
    lat = {}
    for engine in ("kamino-simple", "undo"):
        records = trace_tpcc(engine, nops=tpcc_ops)
        lat[engine] = replay(records, NTHREADS, engine, "tpcc").mean_latency_us
    ratios["TPCC"] = lat["undo"] / lat["kamino-simple"]
    rows.append(["TPC-C", lat["kamino-simple"], lat["undo"], ratios["TPCC"]])
    table = format_table(
        "Figure 13: mean operation latency (us), 4 threads",
        ["workload", "kamino-tx", "undo-logging", "undo/kamino"],
        rows,
        note="paper: up to 2.33x faster on write-intensive; identical on C",
    )
    return table, ratios


def check_shape(ratios):
    assert ratios["A"] > 1.3, f"A ratio {ratios['A']:.2f}"
    assert ratios["F"] > 1.3
    assert ratios["TPCC"] > 1.05
    assert abs(ratios["C"] - 1.0) < 0.05, "C must be identical"
    assert ratios["B"] < ratios["A"]


def test_fig13_latency(benchmark):
    table, ratios = benchmark.pedantic(
        run, kwargs=dict(nrecords=300, nops=700, tpcc_ops=200), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(ratios)


if __name__ == "__main__":
    from repro.bench import bar_chart

    table, ratios = run()
    print(table)
    print()
    print(bar_chart("Figure 13: undo/kamino latency ratio", ratios, unit="x"))
    check_shape(ratios)
