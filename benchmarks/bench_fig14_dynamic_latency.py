"""Figure 14 — YCSB latency with partial (dynamic) backups vs full copy.

Paper: α from 10% to 90% of the data size vs the full mirror; smaller
backups cost more latency (copy-on-miss in the critical path), the full
copy is fastest, and the gap is largest for write-intensive workloads
(up to 1.5×).

The heap is sized snugly around the dataset so α is a meaningful
fraction of the *data* (the paper's α × dataSize), and the zipfian write
skew gives small backups a useful hit rate.
"""

from repro.bench import format_table, replay, trace_ycsb

WORKLOADS = ["A", "B", "D", "F"]
ALPHAS = [0.1, 0.3, 0.5, 0.7, 0.9]
NTHREADS = 4


def run(nrecords=1500, nops=6000):
    # size the heap snugly around the dataset so alpha is a meaningful
    # fraction of the data (the paper's alpha x dataSize)
    heap_mb = max(1, (nrecords * 1400) >> 20)
    rows = []
    data = {}
    for workload in WORKLOADS:
        lats = []
        for alpha in ALPHAS:
            records = trace_ycsb(
                "kamino-dynamic", workload, nrecords=nrecords, nops=nops,
                value_size=1008, heap_mb=heap_mb, alpha=alpha,
            )
            name = f"kamino-dynamic-{int(alpha * 100)}"
            lats.append(replay(records, NTHREADS, name, workload).mean_latency_us)
        records = trace_ycsb(
            "kamino-simple", workload, nrecords=nrecords, nops=nops,
            value_size=1008, heap_mb=heap_mb,
        )
        full = replay(records, NTHREADS, "kamino-simple", workload).mean_latency_us
        rows.append([f"YCSB-{workload}"] + lats + [full])
        data[workload] = (lats, full)
    table = format_table(
        "Figure 14: mean latency (us) with partial backups",
        ["workload"] + [f"{int(a*100)}%" for a in ALPHAS] + ["full-copy"],
        rows,
        note="paper: smaller backups cost latency (copy-on-miss); full copy <= 1.5x better",
    )
    return table, data


def check_shape(data):
    for workload, (lats, full) in data.items():
        # full mirror is never slower than the smallest partial backup.
        # Exception: at this scale, D's "latest" reads often land inside
        # the just-inserted object's sync window, which the full mirror
        # (absorbing every allocation) extends — a small-scale artifact
        # the paper's 10M-record runs do not see, so D gets slack.
        slack = 1.25 if workload == "D" else 1.05
        assert full <= lats[0] * slack, f"{workload}: full-copy must be fastest"
        # small backups pay the most (allow noise between adjacent alphas)
        assert lats[0] >= lats[-1] * 0.95, f"{workload}: 10% must not beat 90%"
    # write-heavy sees a larger full-vs-10% gap than read-mostly B
    gap_a = data["A"][0][0] / data["A"][1]
    gap_b = data["B"][0][0] / data["B"][1]
    assert gap_a >= gap_b * 0.9


def test_fig14_dynamic_latency(benchmark):
    table, data = benchmark.pedantic(
        run, kwargs=dict(nrecords=500, nops=2000), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(data)


if __name__ == "__main__":
    table, data = run()
    print(table)
    check_shape(data)
