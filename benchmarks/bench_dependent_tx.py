"""§7.1 "Dependent transactions" — uniform vs burst same-key writes.

Paper: 80% look-ups / 20% inserts all on the same key, with the writes
either spaced uniformly or issued as one burst.  Undo logging's average
latency is unaffected (within error); Kamino-Tx's average rises ~8% and
the hot-key writes themselves slow by over 30% in the burst case,
because each write must wait for its predecessor's backup sync.
"""

from repro.bench import TraceCollector, build_stack, format_table, replay
from repro.workloads import DependentTxWorkload, UPDATE, YCSBWorkload


def run_case(engine, spacing, nrecords, nops):
    stack = build_stack(engine, value_size=64, heap_mb=8)
    workload = DependentTxWorkload(nrecords, spacing=spacing, value_size=64, seed=2)
    workload.load(stack.kv)
    stack.device.stats.reset()
    collector = TraceCollector(stack.device, stack.engine)
    collector.run_ops(
        workload.ops(nops), lambda op: YCSBWorkload.execute(stack.kv, op)
    )
    # one client stream, as in the paper's experiment: burstiness then
    # only matters through each scheme's own lock-release rule
    result = replay(collector.records, 1, engine)
    return result.mean_latency_us, result.mean_latency_us_of(UPDATE)


def run(nrecords=500, nops=2000):
    rows = []
    data = {}
    for engine in ("undo", "kamino-simple"):
        for spacing in ("uniform", "burst"):
            avg, wavg = run_case(engine, spacing, nrecords, nops)
            rows.append([engine, spacing, avg, wavg])
            data[(engine, spacing)] = (avg, wavg)
    table = format_table(
        "Dependent transactions (sec 7.1): 80% lookup / 20% same-key writes",
        ["engine", "spacing", "avg latency us", "hot-write latency us"],
        rows,
        note="paper: undo unaffected by burstiness; kamino avg +8%, hot writes +30%",
    )
    return table, data


def check_shape(data):
    # undo: burstiness does not matter (within noise)
    u_uni, u_burst = data[("undo", "uniform")][0], data[("undo", "burst")][0]
    assert abs(u_burst - u_uni) / u_uni < 0.10, "undo must be burst-insensitive"
    # kamino: bursts hurt the hot-key writes
    k_uni_w = data[("kamino-simple", "uniform")][1]
    k_burst_w = data[("kamino-simple", "burst")][1]
    assert k_burst_w > 1.15 * k_uni_w, (
        f"kamino hot writes must slow under bursts ({k_uni_w:.2f} -> {k_burst_w:.2f})"
    )


def test_dependent_tx(benchmark):
    table, data = benchmark.pedantic(
        run, kwargs=dict(nrecords=300, nops=1200), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(data)


if __name__ == "__main__":
    table, data = run()
    print(table)
    check_shape(data)
