"""§7.1 "Dependent transactions" — uniform vs burst same-key writes.

Paper: 80% look-ups / 20% inserts all on the same key, with the writes
either spaced uniformly or issued as one burst.  Undo logging's average
latency is unaffected (within error); Kamino-Tx's average rises ~8% and
the hot-key writes themselves slow by over 30% in the burst case,
because each write must wait for its predecessor's backup sync.

Runs **online** through one ExecutionContext per case (flush coalescer
enabled): each operation executes functionally at the virtual time its
client reaches it, so a dependent write's wait for its predecessor's
backup sync is exact, not reconstructed from a serially collected
trace.  A multi-client run of the burst case shows the same hot-key
queueing compounding across clients.
"""

from repro.bench import build_stack, format_table
from repro.runtime import run_online
from repro.workloads import DependentTxWorkload, UPDATE, YCSBWorkload


def run_case(engine, spacing, nrecords, nops, nthreads=1):
    stack = build_stack(engine, value_size=64, heap_mb=8, coalesce_flushes=True)
    workload = DependentTxWorkload(nrecords, spacing=spacing, value_size=64, seed=2)
    workload.load(stack.kv)
    stack.ctx.reset()
    # one client stream, as in the paper's experiment: burstiness then
    # only matters through each scheme's own lock-release rule
    result = run_online(
        stack.ctx,
        list(workload.ops(nops)),
        lambda op: YCSBWorkload.execute(stack.kv, op),
        nthreads,
        workload=f"dependent-{spacing}",
    )
    return result.mean_latency_us, result.mean_latency_us_of(UPDATE)


def run(nrecords=500, nops=2000):
    rows = []
    data = {}
    for engine in ("undo", "kamino-simple"):
        for spacing in ("uniform", "burst"):
            avg, wavg = run_case(engine, spacing, nrecords, nops)
            rows.append([engine, spacing, avg, wavg])
            data[(engine, spacing)] = (avg, wavg)
    # the online scheduler makes multi-client hot-key contention exact:
    # under bursts, several clients' writes pile onto the same key and
    # each must wait out its predecessor's backup sync
    for engine in ("undo", "kamino-simple"):
        avg, wavg = run_case(engine, "burst", nrecords, nops, nthreads=4)
        rows.append([f"{engine} (4 clients)", "burst", avg, wavg])
        data[(engine, "burst-4c")] = (avg, wavg)
    table = format_table(
        "Dependent transactions (sec 7.1): 80% lookup / 20% same-key writes",
        ["engine", "spacing", "avg latency us", "hot-write latency us"],
        rows,
        note="paper: undo unaffected by burstiness; kamino avg +8%, hot writes +30%",
    )
    return table, data


def check_shape(data):
    # undo: burstiness does not matter (within noise)
    u_uni, u_burst = data[("undo", "uniform")][0], data[("undo", "burst")][0]
    assert abs(u_burst - u_uni) / u_uni < 0.10, "undo must be burst-insensitive"
    # kamino: bursts hurt the hot-key writes.  The penalty is the
    # predecessor's backup-sync time, which the flush coalescer
    # legitimately shortens (the mirror is contiguous, so its sync
    # drains in long bursts) — hence a 10% floor here vs the paper's
    # 30% on uncoalesced hardware.
    k_uni_w = data[("kamino-simple", "uniform")][1]
    k_burst_w = data[("kamino-simple", "burst")][1]
    assert k_burst_w > 1.10 * k_uni_w, (
        f"kamino hot writes must slow under bursts ({k_uni_w:.2f} -> {k_burst_w:.2f})"
    )
    # with more clients the hot key queues deeper still
    k_burst4_w = data[("kamino-simple", "burst-4c")][1]
    assert k_burst4_w > k_burst_w, (
        f"kamino hot writes must queue deeper with clients "
        f"({k_burst_w:.2f} -> {k_burst4_w:.2f})"
    )


def test_dependent_tx(benchmark):
    table, data = benchmark.pedantic(
        run, kwargs=dict(nrecords=300, nops=1200), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(data)


if __name__ == "__main__":
    table, data = run()
    print(table)
    check_shape(data)
