"""Ablation — NVM media speed (paper §7: "for other slower NVMs, the
benefits of Kamino-Tx would only be larger since the copying would take
longer").

Repeats the Figure 13 latency comparison on three latency profiles:
DRAM (battery-backed), NVDIMM (the paper's testbed), and a PCM/3D-XPoint
-like medium with slow asymmetric writes.  The undo/kamino latency ratio
must grow monotonically as the medium slows.
"""

from repro.bench import format_table, replay, trace_ycsb
from repro.nvm.latency import DRAM, NVDIMM, PCM_LIKE

PROFILES = [DRAM, NVDIMM, PCM_LIKE]
NTHREADS = 4


def run(nrecords=500, nops=1200):
    rows = []
    ratios = {}
    for model in PROFILES:
        lat = {}
        for engine in ("kamino-simple", "undo"):
            records = trace_ycsb(
                engine, "A", nrecords=nrecords, nops=nops, value_size=1008,
                model=model,
            )
            result = replay(records, NTHREADS, engine, "A", model=model)
            # isolate the update path: the paper's claim is about the
            # critical-path *copy*, which only write operations pay
            lat[engine] = result.mean_latency_us_of("update")
        saved = lat["undo"] - lat["kamino-simple"]
        ratios[model.name] = saved
        rows.append([model.name, lat["kamino-simple"], lat["undo"], saved])
    table = format_table(
        "Ablation: YCSB-A update latency (us) by NVM medium",
        ["medium", "kamino-tx", "undo-logging", "saved us/op"],
        rows,
        note="paper: slower media amplify the benefit of keeping copies off the critical path",
    )
    return table, ratios


def check_shape(savings):
    """The benefit — microseconds of critical path saved per update —
    must grow as the medium slows.  (The *ratio* flattens in our model
    because Kamino's own in-place write + flush also slows down; what
    copying-off-the-critical-path buys is the absolute copy time.)"""
    assert savings["dram"] < savings["nvdimm"] < savings["pcm"], (
        f"slower media must widen the saving: {savings}"
    )
    assert savings["pcm"] > 3 * savings["nvdimm"], "PCM should amplify strongly"


def test_ablation_media(benchmark):
    table, ratios = benchmark.pedantic(
        run, kwargs=dict(nrecords=300, nops=700), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(ratios)


if __name__ == "__main__":
    table, ratios = run()
    print(table)
    check_shape(ratios)
