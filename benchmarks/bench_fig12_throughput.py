"""Figure 12 — YCSB throughput: Kamino-Tx-Simple vs undo logging, 2/4/8 threads.

Paper: Kamino-Tx offers higher throughput on every workload except the
read-only C (parity), by up to 9.5×, with the gap widening as threads
scale because the baseline's log management serializes.

Measured shape (EXPERIMENTS.md): same ordering and widening gap; our
magnitude peaks lower (~2-3×) because the cost model serializes only the
log-arena copy, a deliberately conservative stand-in for NVML's log
management (DESIGN.md §1).
"""

from repro.bench import format_table, run_ycsb_matrix

WORKLOADS = ["A", "B", "C", "D", "F"]
ENGINES = ["kamino-simple", "undo"]
THREADS = [2, 4, 8]


def run(nrecords=800, nops=1600):
    results = run_ycsb_matrix(
        ENGINES, WORKLOADS, nthreads_list=THREADS, nrecords=nrecords, nops=nops,
        value_size=1008,
    )
    rows = []
    for workload in WORKLOADS:
        for n in THREADS:
            k = results[("kamino-simple", workload, n)].throughput_kops
            u = results[("undo", workload, n)].throughput_kops
            rows.append([f"YCSB-{workload}", n, k / 1e3, u / 1e3, k / u])
    table = format_table(
        "Figure 12: YCSB throughput (M ops/sec) vs threads",
        ["workload", "threads", "kamino-tx", "undo-logging", "speedup"],
        rows,
        note="paper: kamino wins everywhere but C (parity), up to 9.5x, gap grows with threads",
    )
    return table, results


def check_shape(results):
    for workload in ("A", "F"):
        ratios = []
        for n in THREADS:
            k = results[("kamino-simple", workload, n)].throughput_kops
            u = results[("undo", workload, n)].throughput_kops
            assert k > 1.2 * u, f"{workload}@{n}T: kamino must beat undo"
            ratios.append(k / u)
        assert ratios[-1] > ratios[0], f"{workload}: gap must grow with threads"
    for n in THREADS:
        k = results[("kamino-simple", "C", n)].throughput_kops
        u = results[("undo", "C", n)].throughput_kops
        assert abs(k - u) / u < 0.05, "C must be parity"


def test_fig12_throughput(benchmark):
    table, results = benchmark.pedantic(
        run, kwargs=dict(nrecords=300, nops=700), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(results)


if __name__ == "__main__":
    from repro.bench import grouped_bar_chart

    table, results = run()
    print(table)
    groups = {
        f"YCSB-{w}": {
            f"{eng}@{n}T": results[(eng, w, n)].throughput_kops / 1e3
            for n in THREADS
            for eng in ENGINES
        }
        for w in WORKLOADS
    }
    print()
    print(grouped_bar_chart("Figure 12 (M ops/sec)", groups, unit=" M"))
    check_shape(results)
