"""Figure 12 — YCSB throughput: Kamino-Tx-Simple vs undo logging, 2/4/8 threads.

Paper: Kamino-Tx offers higher throughput on every workload except the
read-only C (parity), by up to 9.5×, with the gap widening as threads
scale because the baseline's log management serializes.

Measured shape (EXPERIMENTS.md): same ordering and widening gap; our
magnitude peaks lower (~2-3×) because the cost model serializes only the
log-arena copy, a deliberately conservative stand-in for NVML's log
management (DESIGN.md §1).

This benchmark runs **online-threaded**: every cell is a fresh
multi-client simulation through one ExecutionContext (operations execute
at their true virtual times), with the device's write-combining flush
coalescer enabled.  A side-by-side on write-heavy YCSB-A quantifies the
coalescer's simulated-time win.
"""

from repro.bench import format_table, run_ycsb_matrix, run_ycsb_online

WORKLOADS = ["A", "B", "C", "D", "F"]
ENGINES = ["kamino-simple", "undo"]
THREADS = [2, 4, 8]


def run(nrecords=800, nops=1600):
    results = run_ycsb_matrix(
        ENGINES, WORKLOADS, nthreads_list=THREADS, nrecords=nrecords, nops=nops,
        value_size=1008, online=True, coalesce_flushes=True,
    )
    rows = []
    for workload in WORKLOADS:
        for n in THREADS:
            k = results[("kamino-simple", workload, n)].throughput_kops
            u = results[("undo", workload, n)].throughput_kops
            rows.append([f"YCSB-{workload}", n, k / 1e3, u / 1e3, k / u])
    table = format_table(
        "Figure 12: YCSB throughput (M ops/sec) vs threads, online + coalescing",
        ["workload", "threads", "kamino-tx", "undo-logging", "speedup"],
        rows,
        note="paper: kamino wins everywhere but C (parity), up to 9.5x, gap grows with threads",
    )
    return table, results


def run_coalescing_ablation(nrecords=800, nops=1600, nthreads=4):
    """Write-heavy YCSB-A with the flush coalescer on vs off."""
    wins = {}
    for engine in ENGINES:
        on = run_ycsb_online(
            engine, "A", nthreads, nrecords=nrecords, nops=nops,
            value_size=1008, coalesce_flushes=True,
        )
        off = run_ycsb_online(
            engine, "A", nthreads, nrecords=nrecords, nops=nops,
            value_size=1008, coalesce_flushes=False,
        )
        wins[engine] = (off.duration_ns, on.duration_ns)
    rows = [
        [eng, off / 1e6, on / 1e6, off / on]
        for eng, (off, on) in wins.items()
    ]
    table = format_table(
        f"Flush-coalescing ablation: YCSB-A, {nthreads} threads (simulated ms)",
        ["engine", "no coalescing", "coalescing", "speedup"],
        rows,
        note="adjacent dirty lines drain as one burst; durability is byte-identical",
    )
    return table, wins


def check_shape(results):
    for workload in ("A", "F"):
        ratios = []
        for n in THREADS:
            k = results[("kamino-simple", workload, n)].throughput_kops
            u = results[("undo", workload, n)].throughput_kops
            assert k > 1.2 * u, f"{workload}@{n}T: kamino must beat undo"
            ratios.append(k / u)
        assert ratios[-1] > ratios[0], f"{workload}: gap must grow with threads"
    for n in THREADS:
        k = results[("kamino-simple", "C", n)].throughput_kops
        u = results[("undo", "C", n)].throughput_kops
        assert abs(k - u) / u < 0.05, "C must be parity"


def check_coalescing_win(wins):
    for engine, (off_ns, on_ns) in wins.items():
        assert on_ns < off_ns, (
            f"{engine}: coalescing must shorten simulated time "
            f"({off_ns:.0f} -> {on_ns:.0f} ns)"
        )


def test_fig12_throughput(benchmark):
    table, results = benchmark.pedantic(
        run, kwargs=dict(nrecords=300, nops=700), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(results)


def test_fig12_coalescing_win():
    table, wins = run_coalescing_ablation(nrecords=300, nops=700)
    from conftest import record_result

    record_result(table)
    check_coalescing_win(wins)


if __name__ == "__main__":
    from repro.bench import grouped_bar_chart

    table, results = run()
    print(table)
    groups = {
        f"YCSB-{w}": {
            f"{eng}@{n}T": results[(eng, w, n)].throughput_kops / 1e3
            for n in THREADS
            for eng in ENGINES
        }
        for w in WORKLOADS
    }
    print()
    print(grouped_bar_chart("Figure 12 (M ops/sec)", groups, unit=" M"))
    check_shape(results)
    ablation, wins = run_coalescing_ablation()
    print()
    print(ablation)
    check_coalescing_win(wins)
