"""Ablation — how much of Kamino-Tx's win is the *asynchrony*?

DESIGN.md calls out the design choice at the heart of the paper: the
backup copy exists in every variant, but Kamino moves its maintenance
off the critical path.  This ablation runs the same engine in three
modes on YCSB-A:

* ``undo``          — copy-before-write in the critical path (baseline);
* ``kamino-eager``  — Kamino's data structures, but the backup is rolled
  forward *synchronously inside commit* (``eager_sync=True``): the copy
  is back on the critical path;
* ``kamino``        — the real thing, asynchronous sync.

Eager Kamino lands between the two: it already avoids undo's log-arena
data capture, but still pays the copy before commit returns.
"""

from repro.bench import TraceCollector, build_stack, format_table, replay
from repro.workloads import YCSBWorkload

NTHREADS = 4


def _trace(engine_name, nrecords, nops, **engine_kwargs):
    stack = build_stack(engine_name, value_size=1008, **engine_kwargs)
    workload = YCSBWorkload("A", nrecords, 1008, seed=3)
    workload.load(stack.kv)
    stack.device.stats.reset()
    collector = TraceCollector(stack.device, stack.engine)
    collector.run_ops(
        workload.run_ops(nops), lambda op: workload.execute(stack.kv, op)
    )
    return collector.records


def run(nrecords=500, nops=1200):
    configs = [
        ("undo", "undo", {}),
        ("kamino-eager", "kamino-simple", {"eager_sync": True}),
        ("kamino", "kamino-simple", {}),
    ]
    rows = []
    lat = {}
    for label, engine_name, kwargs in configs:
        records = _trace(engine_name, nrecords, nops, **kwargs)
        result = replay(records, NTHREADS, engine_name, "A")
        lat[label] = result.mean_latency_us
        rows.append([label, result.throughput_kops / 1e3, result.mean_latency_us])
    table = format_table(
        "Ablation: is it the backup, or the asynchrony? (YCSB-A)",
        ["configuration", "M ops/sec", "mean latency us"],
        rows,
        note="eager kamino puts the copy back on the critical path",
    )
    return table, lat


def check_shape(lat):
    assert lat["kamino"] < lat["kamino-eager"], (
        "asynchrony itself must be worth latency: "
        f"{lat['kamino']:.2f} vs eager {lat['kamino-eager']:.2f}"
    )
    assert lat["kamino-eager"] <= lat["undo"] * 1.05, (
        "even eager kamino avoids undo's log-data capture"
    )


def test_ablation_async(benchmark):
    table, lat = benchmark.pedantic(
        run, kwargs=dict(nrecords=300, nops=700), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(lat)


if __name__ == "__main__":
    table, lat = run()
    print(table)
    check_shape(lat)
