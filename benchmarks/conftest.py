"""Shared plumbing for the figure-regeneration benchmarks.

Each ``bench_*.py`` regenerates one table or figure from the paper's
evaluation: run it directly (``python benchmarks/bench_fig12_throughput.py``)
for the full-size table, or via ``pytest benchmarks/ --benchmark-only``
for a scaled-down run with shape assertions.  Tables are printed to the
terminal and appended to ``benchmarks/results.txt`` so EXPERIMENTS.md can
cite them.
"""

import os

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def record_result(table: str) -> None:
    """Print a result table and append it to the results file."""
    print("\n" + table)
    with open(RESULTS_PATH, "a", encoding="utf-8") as fh:
        fh.write(table + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """Truncate the results file once per benchmark session."""
    with open(RESULTS_PATH, "w", encoding="utf-8") as fh:
        fh.write("# Benchmark results (regenerated; see EXPERIMENTS.md)\n\n")
    yield
