"""Ablation — persistent caches / whole-system persistence (paper §2).

With eADR-style hardware, cache flushes are free and every store is
effectively durable on power loss, but "atomicity is still necessary to
protect such systems against bugs, deadlocks or live-locks ... which can
leave the data in an irrecoverable state".  The paper notes Kamino-Tx
"does not require but can reap the same benefits from such novel
hardware support".

This ablation reruns YCSB-A under the eADR latency profile: both engines
speed up because flush costs vanish, and Kamino-Tx *keeps* an advantage
— what remains of undo's overhead is the critical-path copy and log
management, which persistent caches do not remove.
"""

from repro.bench import format_table, replay, trace_ycsb
from repro.nvm.latency import EADR, NVDIMM

NTHREADS = 4


def run(nrecords=500, nops=1200):
    rows = []
    data = {}
    for model in (NVDIMM, EADR):
        lat = {}
        for engine in ("kamino-simple", "undo"):
            records = trace_ycsb(
                engine, "A", nrecords=nrecords, nops=nops, value_size=1008,
                model=model,
            )
            result = replay(records, NTHREADS, engine, "A", model=model)
            lat[engine] = result.mean_latency_us_of("update")
        rows.append([model.name, lat["kamino-simple"], lat["undo"],
                     lat["undo"] / lat["kamino-simple"]])
        data[model.name] = lat
    table = format_table(
        "Ablation: persistent caches (eADR) — YCSB-A update latency (us)",
        ["platform", "kamino-tx", "undo-logging", "undo/kamino"],
        rows,
        note="flush costs vanish for both; the copy + log management remain undo's problem",
    )
    return table, data


def check_shape(data):
    # eADR speeds both engines up ...
    assert data["eadr"]["kamino-simple"] < data["nvdimm"]["kamino-simple"]
    assert data["eadr"]["undo"] < data["nvdimm"]["undo"]
    # ... but does not erase kamino's advantage: the critical-path copy
    # and log management are not flush costs
    ratio = data["eadr"]["undo"] / data["eadr"]["kamino-simple"]
    assert ratio > 1.25, f"kamino must still win under eADR ({ratio:.2f})"


def test_ablation_eadr(benchmark):
    table, data = benchmark.pedantic(
        run, kwargs=dict(nrecords=300, nops=700), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(data)


if __name__ == "__main__":
    table, data = run()
    print(table)
    check_shape(data)
