"""Figure 1 — the motivation: logging overhead on YCSB + TPC-C.

Paper: MySQL with a 4-thread client; undo logging costs 50–250% of
throughput on write-heavy workloads, little on read-mostly B–D.

Substitution (DESIGN.md §1): our persistent B+Tree KV store stands in
for MySQL/InnoDB; ``NoLoggingEngine`` is "No Logging" (unsafe),
``UndoLogEngine`` is InnoDB-style undo logging.  The claim under test is
the *overhead ratio per workload class*, not MySQL's absolute ops/sec.
"""

import sys

from repro.bench import format_table, replay, trace_tpcc, trace_ycsb

WORKLOADS = ["A", "B", "C", "D", "F"]
ENGINES = ["nolog", "undo"]
NTHREADS = 4


def run(nrecords=800, nops=1600, tpcc_ops=400):
    rows = []
    series = {}
    for workload in WORKLOADS:
        kops = {}
        for engine in ENGINES:
            records = trace_ycsb(engine, workload, nrecords=nrecords, nops=nops,
                                 value_size=1008)
            kops[engine] = replay(records, NTHREADS, engine, workload).throughput_kops
        overhead = (kops["nolog"] / kops["undo"] - 1.0) * 100.0
        rows.append([f"YCSB-{workload}", kops["nolog"], kops["undo"], overhead])
        series[workload] = overhead
    kops = {}
    for engine in ENGINES:
        records = trace_tpcc(engine, nops=tpcc_ops)
        kops[engine] = replay(records, NTHREADS, engine, "tpcc").throughput_kops
    overhead = (kops["nolog"] / kops["undo"] - 1.0) * 100.0
    rows.append(["TPC-C", kops["nolog"], kops["undo"], overhead])
    series["TPCC"] = overhead
    table = format_table(
        "Figure 1: logging overhead, 4 clients (K ops/sec)",
        ["workload", "no-logging", "undo-logging", "overhead %"],
        rows,
        note="paper: 50-250% overhead on write-heavy; minimal on read-mostly B-D",
    )
    return table, series


def check_shape(series):
    # write-heavy workloads suffer far more than read-mostly ones
    assert series["A"] > 25.0, f"A overhead too small: {series['A']:.0f}%"
    assert series["F"] > 25.0
    assert series["TPCC"] > 25.0
    assert series["C"] < 10.0, f"read-only C should be near zero: {series['C']:.0f}%"
    assert series["B"] < series["A"]
    assert series["D"] < series["A"]


def test_fig01_motivation(benchmark, record_property):
    table, series = benchmark.pedantic(
        run, kwargs=dict(nrecords=300, nops=700, tpcc_ops=200), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(series)


if __name__ == "__main__":
    table, series = run()
    print(table)
    check_shape(series)
