"""§7.1 "Worst-case performance" — continuously updating one object.

Paper: 1–8 threads each transactionally update one object 100 K times,
with object sizes from 64 B to 4096 B.  For objects under ~1 KB,
Kamino-Tx still wins by obviating log allocation; at larger sizes both
schemes converge because the transaction time is dominated by copying
(undo's critical-path copy vs Kamino's on-demand sync forced by the
immediate dependent re-update) and both hit the memory bandwidth limit.
"""

from repro.bench import TraceCollector, build_stack, format_table, replay
from repro.workloads import WorstCaseWorkload, YCSBWorkload

# payload sizes chosen so payload + 16B object header lands on a size
# class exactly (the paper's 64B..4KB sweep)
SIZES = [64, 240, 1008, 4080]
THREADS = [1, 4, 8]


def run_case(engine, object_size, nobjects, nops):
    stack = build_stack(engine, value_size=object_size, heap_mb=8)
    workload = WorstCaseWorkload(object_size=object_size, nobjects=nobjects)
    workload.load(stack.kv)
    stack.device.stats.reset()
    collector = TraceCollector(stack.device, stack.engine)
    collector.run_ops(
        workload.ops(nops), lambda op: YCSBWorkload.execute(stack.kv, op)
    )
    return collector.records


def run(nops=800):
    rows = []
    data = {}
    for size in SIZES:
        for nthreads in THREADS:
            lat = {}
            for engine in ("kamino-simple", "undo"):
                # each thread continuously updates its own object
                records = run_case(engine, size, nobjects=nthreads, nops=nops)
                lat[engine] = replay(records, nthreads, engine).mean_latency_us
            ratio = lat["undo"] / lat["kamino-simple"]
            rows.append([size, nthreads, lat["kamino-simple"], lat["undo"], ratio])
            data[(size, nthreads)] = ratio
    table = format_table(
        "Worst case (sec 7.1): same-object updates, latency (us)",
        ["object B", "threads", "kamino-tx", "undo-logging", "undo/kamino"],
        rows,
        note="paper: kamino wins < 1KB (no log allocation); parity at larger objects",
    )
    return table, data


def check_shape(data):
    for nthreads in THREADS:
        small = data[(64, nthreads)]
        large = data[(4080, nthreads)]
        assert small > 1.05, f"64B@{nthreads}T: kamino must win ({small:.2f})"
        # convergence: the advantage shrinks as copying dominates
        assert large < small + 0.05, (
            f"@{nthreads}T: advantage must shrink with size "
            f"({small:.2f} -> {large:.2f})"
        )
        # single-thread large objects converge to parity; at 8 threads a
        # residual gap remains from queueing on the shared undo-log arena
        bound = 1.3 if nthreads == 1 else 2.0
        assert large < bound, f"4KB@{nthreads}T: expected <{bound} ({large:.2f})"


def test_worst_case(benchmark):
    table, data = benchmark.pedantic(run, kwargs=dict(nops=400), rounds=1, iterations=1)
    from conftest import record_result

    record_result(table)
    check_shape(data)


if __name__ == "__main__":
    table, data = run()
    print(table)
    check_shape(data)
