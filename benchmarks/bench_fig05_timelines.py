"""Figures 2/5/6 — mechanism timelines, rendered from live phase events.

The paper's Figure 5 contrasts *when* each scheme does its work:

* undo-like: ``lock → copy_data → edit_orig → unlock → delete_copy``,
  with the copy squarely in the critical path;
* CoW-like: ``lock → copy_data → edit_copy → copy_to_orig → unlock``,
  paying a copy on both sides of the edit;
* Kamino-Tx: ``lock → edit_orig → commit``, then ``copy_to_backup →
  unlock`` *after* the commit point — no copy before the client returns.

This benchmark runs one identical 1 KB update under each engine with the
phase recorder attached and renders the three timelines on a shared time
axis, asserting the structural claims (where the commit point falls
relative to the copying).
"""

from repro.bench import build_stack
from repro.bench.timeline import critical_path_ns, record_one_update, render_timeline

ENGINES = ["undo", "cow", "kamino-simple"]


def run():
    recorders = {}
    for engine_name in ENGINES:
        stack = build_stack(engine_name, value_size=1008, heap_mb=8)
        stack.kv.put(7, b"\x01" * 1008)  # pre-existing record to update
        stack.engine.sync_pending()
        recorders[engine_name] = record_one_update(stack, 7, b"\x02" * 1008)
    scale = max(r.total_ns for r in recorders.values())
    chart = "\n\n".join(
        render_timeline(name, recorders[name], scale_ns=scale)
        for name in ENGINES
    )
    return chart, recorders


def check_shape(recorders):
    undo, cow, kamino = (recorders[n] for n in ENGINES)
    # 1. undo and CoW copy data BEFORE their commit point
    for rec, name in ((undo, "undo"), (cow, "cow")):
        copy = next(s for s in rec.spans if s.name == "copy_data")
        assert copy.end_ns <= rec.commit_ns, f"{name}: copy must precede commit"
    # 2. kamino's only copy happens AFTER its commit point
    backup = next(s for s in kamino.spans if s.name == "copy_to_backup")
    assert backup.start_ns >= kamino.commit_ns, "kamino copy must follow commit"
    assert not any(s.name == "copy_data" for s in kamino.spans)
    # 3. the client-visible critical path is shortest for kamino
    assert critical_path_ns(kamino) < critical_path_ns(undo)
    assert critical_path_ns(kamino) < critical_path_ns(cow)
    # 4. CoW pays the extra copy_to_orig inside the critical path
    apply = next(s for s in cow.spans if s.name == "copy_to_orig")
    assert apply.duration_ns > 0
    # 5. locks release last everywhere (Safety 1: kamino's unlock is
    #    after the backup copy)
    assert kamino.spans[-1].name == "unlock_data"


def test_fig05_timelines(benchmark):
    chart, recorders = benchmark.pedantic(run, rounds=1, iterations=1)
    from conftest import record_result

    record_result("== Figures 2/5/6: mechanism timelines (1 KB update) ==\n" + chart)
    check_shape(recorders)


if __name__ == "__main__":
    chart, recorders = run()
    print(chart)
    check_shape(recorders)
