"""Figure 15 — YCSB throughput with partial (dynamic) backups vs full copy.

Paper: Kamino-Tx-Simple outperforms the dynamic variant by up to 1.5×
on write-intensive workloads, but a 50% backup costs only ~5% of
throughput on read-heavy workloads — the storage/performance trade-off
that motivates Kamino-Tx-Dynamic.
"""

from repro.bench import format_table, replay, trace_ycsb

WORKLOADS = ["A", "B", "D", "F"]
ALPHAS = [0.1, 0.3, 0.5, 0.7, 0.9]
NTHREADS = 4


def run(nrecords=1500, nops=6000):
    # size the heap snugly around the dataset so alpha is a meaningful
    # fraction of the data (the paper's alpha x dataSize)
    heap_mb = max(1, (nrecords * 1400) >> 20)
    rows = []
    data = {}
    for workload in WORKLOADS:
        kops = []
        for alpha in ALPHAS:
            records = trace_ycsb(
                "kamino-dynamic", workload, nrecords=nrecords, nops=nops,
                value_size=1008, heap_mb=heap_mb, alpha=alpha,
            )
            name = f"kamino-dynamic-{int(alpha * 100)}"
            kops.append(replay(records, NTHREADS, name, workload).throughput_kops / 1e3)
        records = trace_ycsb(
            "kamino-simple", workload, nrecords=nrecords, nops=nops,
            value_size=1008, heap_mb=heap_mb,
        )
        full = replay(records, NTHREADS, "kamino-simple", workload).throughput_kops / 1e3
        rows.append([f"YCSB-{workload}"] + kops + [full])
        data[workload] = (kops, full)
    table = format_table(
        "Figure 15: throughput (M ops/sec) with partial backups",
        ["workload"] + [f"{int(a*100)}%" for a in ALPHAS] + ["full-copy"],
        rows,
        note="paper: full copy up to 1.5x better write-heavy; 50% backup ~5% loss read-heavy",
    )
    return table, data


def check_shape(data):
    for workload, (kops, full) in data.items():
        # D gets slack at this scale: "latest" reads frequently land in
        # the just-inserted object's sync window, which the full mirror
        # (absorbing every allocation) extends — see bench_fig14's note.
        slack = 0.80 if workload == "D" else 0.95
        assert full >= kops[0] * slack, f"{workload}: full-copy must win"
    # the 50% point loses little on the read-heavy workload
    kops_b, full_b = data["B"]
    assert kops_b[2] > 0.85 * full_b, "B@50%: should be within ~15% of full copy"
    # write-heavy A suffers more at small alpha than read-heavy B
    loss_a = 1 - data["A"][0][0] / data["A"][1]
    loss_b = 1 - data["B"][0][0] / data["B"][1]
    assert loss_a >= loss_b - 0.05


def test_fig15_dynamic_throughput(benchmark):
    table, data = benchmark.pedantic(
        run, kwargs=dict(nrecords=500, nops=2000), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(data)


if __name__ == "__main__":
    table, data = run()
    print(table)
    check_shape(data)
