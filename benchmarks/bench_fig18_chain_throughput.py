"""Figure 18 — replicated throughput: Kamino-Tx-Chain vs traditional.

Paper: with 33% extra storage (f+2 replicas + the head's backup instead
of per-replica undo logs), Kamino-Tx-Chain delivers up to 2.2× higher
throughput on write-intensive workloads.  Throughput is paced by the
slowest pipeline stage, which for the traditional chain is every
replica's copy-in-the-critical-path execution.
"""

from repro.bench import format_table
from repro.replication import KAMINO, TRADITIONAL, ChainCluster, run_clients
from repro.workloads import Op, UPDATE, YCSBWorkload

WORKLOADS = ["A", "B", "D", "F"]
F_TOLERATED = 2
NCLIENTS = 8


def run_chain(mode, workload, nrecords, nops_per_client):
    cluster = ChainCluster(f=F_TOLERATED, mode=mode, heap_mb=16, value_size=1024)
    load = [Op(UPDATE, k, bytes([k % 256]) * 64) for k in range(nrecords)]
    run_clients(cluster, [load])
    start = cluster.sim.now
    wl = YCSBWorkload(workload, nrecords=nrecords, value_size=1024, seed=8)
    streams = [list(wl.run_ops(nops_per_client)) for _ in range(NCLIENTS)]
    clients = run_clients(cluster, streams)
    cluster.assert_replicas_consistent()
    total_ops = sum(c.completed for c in clients)
    duration = cluster.sim.now - start
    return total_ops / duration * 1e9 / 1e3  # K ops/sec


def run(nrecords=200, nops_per_client=100):
    rows = []
    ratios = {}
    for workload in WORKLOADS:
        kops = {
            mode: run_chain(mode, workload, nrecords, nops_per_client)
            for mode in (KAMINO, TRADITIONAL)
        }
        ratios[workload] = kops[KAMINO] / kops[TRADITIONAL]
        rows.append([f"YCSB-{workload}", kops[KAMINO], kops[TRADITIONAL], ratios[workload]])
    table = format_table(
        "Figure 18: chain throughput (K ops/sec), f=2, 8 clients",
        ["workload", "kamino-tx-chain", "chain-replication", "speedup"],
        rows,
        note="paper: up to 2.2x more throughput for 33% extra storage",
    )
    return table, ratios


def check_shape(ratios):
    # the paper's claim is for write-intensive workloads; read-dominated
    # B and D are bounded by the (identical) tail read path and sit at
    # parity, kamino paying one extra pipeline hop for writes
    assert ratios["A"] > 1.2, f"A: kamino chain must win ({ratios['A']:.2f})"
    assert ratios["F"] > 1.2, f"F: kamino chain must win ({ratios['F']:.2f})"
    for workload in ("B", "D"):
        assert ratios[workload] > 0.85, f"{workload}: must stay near parity"


def test_fig18_chain_throughput(benchmark):
    table, ratios = benchmark.pedantic(
        run, kwargs=dict(nrecords=100, nops_per_client=60), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(ratios)


if __name__ == "__main__":
    table, ratios = run()
    print(table)
    check_shape(ratios)
