"""Figure 16 — normalized throughput per dollar across backup configs.

Paper: throughput/TCO-dollar for undo logging, Kamino-Tx-Dynamic at
10–90%, and Kamino-Tx-Simple, on a write-heavy (YCSB-A) and a read-only
workload.  Kamino-Tx-Simple reaches up to 8.6× more throughput per
dollar on write-heavy work; for read-heavy workloads the dynamic variant
can be the better buy because its throughput is nearly equal at a lower
provisioned-NVM cost.
"""

from repro.bench import format_table, normalized_ops_per_dollar, replay, trace_ycsb

ALPHAS = [0.1, 0.3, 0.5, 0.7, 0.9]
NTHREADS = 8


def _throughputs(workload, nrecords, nops):
    heap_mb = max(1, (nrecords * 1400) >> 20)
    series = {}
    records = trace_ycsb("undo", workload, nrecords=nrecords, nops=nops,
                         value_size=1008, heap_mb=heap_mb)
    series["undo"] = replay(records, NTHREADS, "undo", workload).throughput_kops
    for alpha in ALPHAS:
        name = f"kamino-dynamic-{int(alpha * 100)}"
        records = trace_ycsb("kamino-dynamic", workload, nrecords=nrecords,
                             nops=nops, value_size=1008, heap_mb=heap_mb, alpha=alpha)
        series[name] = replay(records, NTHREADS, name, workload).throughput_kops
    records = trace_ycsb("kamino-simple", workload, nrecords=nrecords, nops=nops,
                         value_size=1008, heap_mb=heap_mb)
    series["kamino-simple"] = replay(
        records, NTHREADS, "kamino-simple", workload
    ).throughput_kops
    return series, heap_mb


def run(nrecords=1500, nops=6000, data_gb=100.0):
    alphas = {f"kamino-dynamic-{int(a * 100)}": a for a in ALPHAS}
    results = {}
    for label, workload in (("write-heavy (A)", "A"), ("read-only (C)", "C")):
        series, _ = _throughputs(workload, nrecords, nops)
        results[label] = normalized_ops_per_dollar(series, data_gb, alphas)
    schemes = ["undo"] + sorted(alphas) + ["kamino-simple"]
    rows = [
        [scheme] + [results[label][scheme] for label in results] for scheme in schemes
    ]
    table = format_table(
        "Figure 16: normalized ops/sec/dollar (undo = 1.0)",
        ["scheme", "write-heavy (A)", "read-only (C)"],
        rows,
        note="paper: kamino-simple up to 8.6x per dollar on write-heavy; "
        "dynamic can win per-dollar on read-heavy",
    )
    return table, results


def check_shape(results):
    wh = results["write-heavy (A)"]
    ro = results["read-only (C)"]
    # write-heavy: some kamino configuration is the clear per-dollar
    # winner, and even the 2x-storage full mirror stays competitive
    best_kamino = max(v for k, v in wh.items() if k != "undo")
    assert best_kamino > 1.2, f"write-heavy: kamino must win per dollar ({best_kamino:.2f})"
    assert wh["kamino-simple"] > 0.85, wh
    # read-only: throughput parity means storage cost decides — the full
    # mirror cannot beat a partial backup per dollar
    assert ro["kamino-simple"] <= max(v for k, v in ro.items() if "dynamic" in k) + 1e-9


def test_fig16_tco(benchmark):
    table, results = benchmark.pedantic(
        run, kwargs=dict(nrecords=400, nops=1200), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(results)


if __name__ == "__main__":
    table, results = run()
    print(table)
    check_shape(results)
