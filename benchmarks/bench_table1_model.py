"""Table 1 — the analytic cost model of the replication schemes.

Paper's table compares, per scheme: #servers, cluster storage
requirement, and dependent/independent transaction latency expressed in
``lt`` (transaction execution), ``lc`` (copying), and ``ln`` (one network
hop).  This benchmark measures all three primitives on the live system,
evaluates the formulas, and checks the measured end-to-end latencies and
storage against them.

=============================  ========  =====================  ====================
Scheme                         #servers  storage                independent latency
=============================  ========  =====================  ====================
Traditional Chain              f+1       (f+1) × dataSize       (f+1) × (lc+ln+lt)
Kamino-Tx-Chain (Amortized)    f+2       (f+2+α) × dataSize     ~(f+2) × (ln+lt)
=============================  ========  =====================  ====================

(Our chain pipelines the tail ack back to the head as one extra hop, so
the constant is f+2 hops of ln for f+1 executions; the paper's table
abstracts this as (f+1)×(ln+lt).)
"""

import statistics as st

from repro.bench import format_table
from repro.replication import KAMINO, TRADITIONAL, ChainCluster, run_clients
from repro.workloads import Op, UPDATE

F_TOLERATED = 2


def measure_primitives(cluster, nkeys=40):
    """Measured lt (+lc where applicable) per replica, and ln."""
    node = cluster.chain[1] if len(cluster.chain) > 1 else cluster.head
    costs = []
    for k in range(nkeys, nkeys + 10):
        _r, cost = node.execute("put", (k, b"x" * 64))
        costs.append(cost)
    return st.mean(costs), cluster.net.hop_latency_ns


def run(nkeys=40):
    rows = []
    measured = {}
    for mode in (TRADITIONAL, KAMINO):
        cluster = ChainCluster(f=F_TOLERATED, mode=mode, heap_mb=4, value_size=128)
        load = [Op(UPDATE, k, bytes([k + 1]) * 16) for k in range(nkeys)]
        run_clients(cluster, [load])
        # storage: formula vs measured
        data = cluster.head.heap.region.size
        n = len(cluster.chain)
        alpha = 1.0
        formula_storage = (n + (alpha if mode == KAMINO else 0)) * data
        storage = cluster.total_storage_bytes
        # independent latency: isolated writes on fresh keys
        cluster.write_latencies_ns.clear()
        ops = [Op(UPDATE, 1000 + i, bytes([i]) * 16) for i in range(20)]
        run_clients(cluster, [ops])
        lat = st.mean(cluster.write_latencies_ns)
        lt, ln = measure_primitives(cluster, nkeys)
        hops = n  # n-1 forwards + 1 tail ack
        formula_lat = n * lt + hops * ln
        rows.append([
            mode, n, storage / data, formula_storage / data,
            lat / 1e3, formula_lat / 1e3,
        ])
        measured[mode] = dict(
            servers=n, storage=storage, formula_storage=formula_storage,
            latency=lat, formula_latency=formula_lat,
        )
    table = format_table(
        "Table 1: replication cost model (f=2, alpha=1)",
        ["scheme", "servers", "storage/D", "formula", "latency us", "formula us"],
        rows,
        note="storage in multiples of dataSize; latency vs n*lt + hops*ln",
    )
    return table, measured


def check_shape(measured):
    trad = measured[TRADITIONAL]
    kam = measured[KAMINO]
    assert trad["servers"] == F_TOLERATED + 1
    assert kam["servers"] == F_TOLERATED + 2
    # storage matches the formulas exactly (regions are deterministic)
    assert abs(trad["storage"] - trad["formula_storage"]) / trad["formula_storage"] < 0.02
    assert abs(kam["storage"] - kam["formula_storage"]) / kam["formula_storage"] < 0.02
    # measured independent latency within 40% of the analytic model
    # (the model ignores queue persistence and pipelining effects)
    for m in (trad, kam):
        assert abs(m["latency"] - m["formula_latency"]) / m["formula_latency"] < 0.4, m


def test_table1_model(benchmark):
    table, measured = benchmark.pedantic(run, rounds=1, iterations=1)
    from conftest import record_result

    record_result(table)
    check_shape(measured)


if __name__ == "__main__":
    table, measured = run()
    print(table)
    check_shape(measured)
