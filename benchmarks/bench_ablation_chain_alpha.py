"""Ablation — sizing the head's backup in Kamino-Tx-Chain (§5, Table 1).

Kamino-Tx-Chain's head can run either Kamino-Tx-Simple (α = 1, full
mirror) or Kamino-Tx-Dynamic with a smaller α — Table 1's
(f+2+α) × dataSize storage row.  A smaller head backup saves cluster
storage but puts copy-on-miss back on the head's critical path for cold
objects.  With a skewed write working set the penalty is small — the
same trade-off as Figures 14/15, now measured end-to-end through the
chain.
"""

import statistics as st

from repro.bench import format_table
from repro.replication import KAMINO, ChainCluster, run_clients
from repro.workloads import Op, UPDATE, YCSBWorkload

ALPHAS = [0.1, 0.5, 1.0]
F_TOLERATED = 2
NCLIENTS = 4


def run(nrecords=150, nops_per_client=80):
    rows = []
    data = {}
    for alpha in ALPHAS:
        cluster = ChainCluster(
            f=F_TOLERATED, mode=KAMINO, heap_mb=2, value_size=1024, alpha=alpha
        )
        load = [Op(UPDATE, k, bytes([k % 255 + 1]) * 64) for k in range(nrecords)]
        run_clients(cluster, [load])
        cluster.write_latencies_ns.clear()
        workload = YCSBWorkload("A", nrecords, 1024, seed=5)
        streams = [list(workload.run_ops(nops_per_client)) for _ in range(NCLIENTS)]
        run_clients(cluster, streams)
        cluster.assert_replicas_consistent()
        lat = st.mean(cluster.write_latencies_ns) / 1e3
        storage = cluster.total_storage_bytes / cluster.head.heap.region.size
        rows.append([f"alpha={alpha}", lat, storage])
        data[alpha] = (lat, storage)
    table = format_table(
        "Ablation: Kamino-Tx-Chain head backup sizing (YCSB-A writes)",
        ["head backup", "write latency us", "storage (x dataSize)"],
        rows,
        note="Table 1: (f+2+alpha) x dataSize; smaller alpha trades head copy-on-miss",
    )
    return table, data


def check_shape(data):
    # storage follows (f+2+alpha) x dataSize
    for alpha, (_lat, storage) in data.items():
        expect = F_TOLERATED + 2 + alpha
        assert abs(storage - expect) / expect < 0.15, (
            f"alpha={alpha}: storage {storage:.2f}x vs formula {expect:.2f}x"
        )
    # the full mirror is never slower than the smallest head backup
    assert data[1.0][0] <= data[0.1][0] * 1.10, (
        f"full mirror must not lose: {data[1.0][0]:.1f} vs {data[0.1][0]:.1f}"
    )


def test_ablation_chain_alpha(benchmark):
    table, data = benchmark.pedantic(
        run, kwargs=dict(nrecords=100, nops_per_client=50), rounds=1, iterations=1
    )
    from conftest import record_result

    record_result(table)
    check_shape(data)


if __name__ == "__main__":
    table, data = run()
    print(table)
    check_shape(data)
