"""Backup strategies: the full mirror (Kamino-Tx-Simple) and the
strategy interface the dynamic variant also implements.

The backup is the other half of Kamino-Tx's bargain: transactions write
the main heap in place, and this component holds the consistent copy
used to roll back aborts/crashes and is rolled forward asynchronously
after commits.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

from ..errors import DeviceCrashedError
from ..nvm.latency import CACHE_LINE
from ..nvm.pool import PmemPool, PmemRegion
from .base import IntentKind

BACKUP_REGION = "backup"


class BackupSyncer:
    """A background thread draining an engine's deferred backup syncs.

    This is the Transaction Coordinator's "background thread which
    utilizes the information maintained by Log Manager to keep backup
    version consistent with the main version" (§6.3).  The benchmark
    harness instead pumps :meth:`~repro.tx.base.AtomicityEngine.
    sync_pending` from virtual-time events; this thread exists for
    *live* (real-thread) deployments and the threaded integration tests.

    Use as a context manager::

        with BackupSyncer(engine):
            ... transactions on other threads ...
    """

    def __init__(self, engine, poll_interval: float = 0.0005,
                 max_lag: Optional[int] = None):
        self.engine = engine
        self.poll_interval = poll_interval
        #: backlog bound for producer-side back-pressure: when set,
        #: :meth:`throttle` blocks writers while the engine's deferred
        #: sync queue is longer than this (the chain head applies the
        #: same idea in virtual time via ``ChainCluster.max_backup_lag``)
        self.max_lag = max_lag
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.synced = 0
        #: number of :meth:`throttle` calls that actually had to wait
        self.throttled = 0
        #: set when the device power-failed under the syncer; holds a
        #: human-readable summary instead of letting ``DeviceCrashedError``
        #: escape from ``stop()`` / ``__exit__`` during test teardown
        self.crash_summary: Optional[str] = None
        #: heap-relative ranges whose backup repair was still pending at
        #: the crash (``engine.pending_ranges()`` snapshot) — the work
        #: recovery's roll-forward will redo
        self.pending_repair_ranges: Tuple[Tuple[int, int], ...] = ()

    def start(self) -> "BackupSyncer":
        if self._thread is not None:
            raise RuntimeError("syncer already started")
        self._stop.clear()
        self.crash_summary = None
        self.pending_repair_ranges = ()
        self._thread = threading.Thread(target=self._run, name="backup-syncer", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                done = self.engine.sync_pending(limit=16)
            except DeviceCrashedError as exc:
                self._note_crash(exc)
                return
            self.synced += done
            if done == 0:
                self._stop.wait(self.poll_interval)

    def throttle(self, timeout: float = 10.0) -> bool:
        """Block the calling (writer) thread until the deferred backlog
        is within :attr:`max_lag` — back-pressure instead of unbounded
        lag.  Returns False if the wait timed out, the syncer stopped,
        or the device crashed (the backlog then belongs to recovery);
        True when the writer may proceed.  No-op without a bound."""
        if self.max_lag is None or self.engine.pending_count <= self.max_lag:
            return True
        self.throttled += 1
        deadline = time.monotonic() + timeout
        while self.engine.pending_count > self.max_lag:
            if self._stop.is_set() or self.crashed:
                return False
            if time.monotonic() >= deadline:
                return False
            time.sleep(self.poll_interval)
        return True

    def _note_crash(self, exc: BaseException) -> None:
        ranges = tuple(getattr(self.engine, "pending_ranges", lambda: ())())
        self.pending_repair_ranges = ranges
        detail = ""
        if ranges:
            shown = ", ".join(f"[{off}, {off + size})" for off, size in ranges[:4])
            more = f" (+{len(ranges) - 4} more)" if len(ranges) > 4 else ""
            detail = f"; pending repair ranges: {shown}{more}"
        self.crash_summary = (
            f"device crashed under backup syncer ({exc}); "
            f"{self.engine.pending_count} sync task(s) left for recovery{detail}"
        )

    def stop(self, drain: bool = True) -> None:
        """Stop the thread; by default drain remaining work first.

        If the device crashed mid-run (a fail-point fired on another
        thread, or the syncer itself hit one), the drain is skipped and
        the crash is recorded in :attr:`crash_summary` rather than
        raised — the pending roll-forwards now belong to crash recovery,
        and ``with BackupSyncer(...):`` blocks in crash tests must not
        explode out of ``__exit__`` during teardown.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if not drain:
            return
        device = getattr(self.engine, "heap_region", None)
        device = device.pool.device if device is not None else None
        if device is not None and device.crashed:
            if self.crash_summary is None:
                self._note_crash(DeviceCrashedError("device crashed before drain"))
            return
        try:
            self.synced += self.engine.sync_pending()
        except DeviceCrashedError as exc:
            self._note_crash(exc)

    @property
    def crashed(self) -> bool:
        """True if the device power-failed while this syncer was live."""
        return self.crash_summary is not None

    def __enter__(self) -> "BackupSyncer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


class BackupStrategy(ABC):
    """What a Kamino engine needs from its backup copy.

    Offsets are heap-region-relative; implementations map them to their
    own storage (identity for the full mirror, slot lookup for the
    dynamic partial backup).
    """

    @abstractmethod
    def attach(self, pool: PmemPool, heap_region: PmemRegion, fresh: bool) -> None:
        """Reserve/reopen backing regions; seed the mirror when fresh."""

    @abstractmethod
    def ensure_copy(self, offset: int, size: int) -> None:
        """Guarantee a consistent copy of ``[offset, offset+size)`` exists
        *before* the caller modifies the main heap in place.

        Free for the full mirror (the invariant always holds); for the
        dynamic backup a miss costs a critical-path copy — the price the
        paper pays for (1+α)× instead of 2× storage.
        """

    @abstractmethod
    def absorb(self, offset: int, size: int) -> None:
        """Roll the backup forward: copy main → backup (post-commit)."""

    def absorb_entries(self, entries: Sequence) -> None:
        """Drain one committed transaction's intent entries in order.

        The default processes entries one at a time — exactly the
        historical sync loop.  Strategies override this to
        interval-coalesce adjacent ranges into bulk device operations;
        any override must keep :class:`~repro.nvm.stats.NVMStats` and
        durable bytes bit-identical to this loop (the sync-coalescing
        equivalence tests hold them to it).
        """
        for entry in entries:
            if entry.kind is IntentKind.FREE:
                self.on_free_synced(entry.offset, entry.size)
            else:
                self.absorb(entry.offset, entry.size)

    @abstractmethod
    def restore(self, offset: int, size: int) -> None:
        """Roll the main heap back: copy backup → main (abort/recovery)."""

    def on_free_synced(self, offset: int, size: int) -> None:
        """A freed block's commit has fully synced; drop any copy of it."""

    def pin(self, offset: int) -> None:
        """Forbid eviction of the copy at ``offset`` (object is locked)."""

    def unpin(self, offset: int) -> None:
        """Allow eviction again (lock released, backup consistent)."""

    @property
    @abstractmethod
    def storage_bytes(self) -> int:
        """Provisioned NVM the strategy consumes (for the TCO model)."""


class FullBackup(BackupStrategy):
    """A byte-for-byte mirror of the heap region (Kamino-Tx-Simple).

    Storage requirement: 2 × dataSize.  ``ensure_copy`` is a no-op — the
    mirror is consistent for every object whose lock is free, which is
    exactly the paper's invariant.
    """

    def __init__(self):
        self.region: Optional[PmemRegion] = None
        self.heap_region: Optional[PmemRegion] = None

    def attach(self, pool: PmemPool, heap_region: PmemRegion, fresh: bool) -> None:
        self.heap_region = heap_region
        self.region = pool.region_or_create(BACKUP_REGION, heap_region.size)
        if fresh:
            # seed the mirror with the freshly formatted heap image
            device = pool.device
            device.copy(self.region.offset, heap_region.offset, heap_region.size)
            device.flush(self.region.offset, heap_region.size)
            device.fence()

    def ensure_copy(self, offset: int, size: int) -> None:
        """No-op: the mirror always holds a consistent copy."""

    def absorb(self, offset: int, size: int) -> None:
        device = self.region.pool.device
        device.copy(self.region.offset + offset, self.heap_region.offset + offset, size)
        self.region.flush(offset, size)

    def absorb_entries(self, entries: Sequence) -> None:
        """Interval-coalescing drain: runs of exactly-adjacent entries
        become one bulk ``device.copy``.

        The mirror is offset-identity, so entries whose heap ranges abut
        are abutting in the backup too.  A run is extended only while the
        boundary between members is cache-line aligned: then no line is
        shared between members, and flushing each member's range in the
        original order pops exactly the lines the uncoalesced loop would
        have popped — every ``NVMStats`` counter (``copies`` via the
        device's ``chunks`` accounting, ``flushes`` via ``flush_multi``,
        ``flushed_lines``, ``flush_bursts``) stays bit-identical.
        """
        device = self.region.pool.device
        backup_off = self.region.offset
        heap_off = self.heap_region.offset
        run: List[Tuple[int, int]] = []
        run_end = 0

        def drain_run() -> None:
            start = run[0][0]
            device.copy(
                backup_off + start, heap_off + start, run_end - start, chunks=len(run)
            )
            device.flush_multi([(backup_off + o, s) for o, s in run])
            run.clear()

        for entry in entries:
            if entry.kind is IntentKind.FREE:
                if run:
                    drain_run()
                self.on_free_synced(entry.offset, entry.size)
                continue
            offset, size = entry.offset, entry.size
            if run and offset == run_end and offset % CACHE_LINE == 0:
                run.append((offset, size))
                run_end = offset + size
            else:
                if run:
                    drain_run()
                run.append((offset, size))
                run_end = offset + size
        if run:
            drain_run()

    def restore(self, offset: int, size: int) -> None:
        device = self.region.pool.device
        device.copy(self.heap_region.offset + offset, self.region.offset + offset, size)
        self.heap_region.flush(offset, size)

    @property
    def storage_bytes(self) -> int:
        return self.region.size if self.region else 0

    # -- test hooks ---------------------------------------------------------

    def mirror_equals_main(self, offset: int, size: int) -> bool:
        """True if backup and main agree on the given range (tests)."""
        return self.region.read(offset, size) == self.heap_region.read(offset, size)
