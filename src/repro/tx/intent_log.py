"""The Log Manager: persistent intent logs (paper §3, §6.2, Figure 11).

Kamino-Tx's log is deliberately tiny: it records *which* ranges a
transaction intends to modify (addresses and sizes), never the data
itself — that is the whole trick that keeps copying off the critical
path.  The same log structure also serves the undo and CoW baselines,
which additionally store old/new data in a per-slot data area.

Layout of the ``intent_log`` region::

    [region header 64B]
    [slot 0][slot 1]...[slot N-1]

    slot := [slot header 64B][entry 0..max_entries-1][data area]

Each entry is 32 bytes (two per cache line) and self-checksummed — with
the owning txid folded into the check — so a torn entry, or a stale one
left by the slot's previous owner, is detectable; the slot header's
durable ``n_entries`` count
gates recovery, and is only flushed together with the entries it counts
(:meth:`TxLog.make_durable`) — one flush per declared batch, matching
the paper's "fine-grained logging of fixed-size write intents with
minimum number of cache flushes".

Slot states form the commit protocol:

* ``FREE → RUNNING`` at begin;
* ``RUNNING → COMMITTED`` is the durable commit point;
* ``RUNNING/ABORTED`` at crash means roll back;
* ``→ FREE`` once post-commit work (backup sync / log discard) is done.
"""

from __future__ import annotations

import struct
import threading
from enum import IntEnum
from typing import Iterator, List, NamedTuple, Optional

from ..errors import LogFullError, PoolCorruptionError, TxError
from ..nvm.pool import PmemPool, PmemRegion
from .base import IntentKind

LOG_REGION = "intent_log"

LOG_MAGIC = 0x4C4F474D  # "LOGM"

_REGION_HDR_FMT = "<IIQQQQ"  # magic, checksum, n_slots, max_entries, data_bytes, reserved
_REGION_HDR_SIZE = struct.calcsize(_REGION_HDR_FMT)

_SLOT_HDR_FMT = "<IIQQQ"  # magic, state, txid, n_entries, reserved
_SLOT_HDR_SIZE = 64  # padded to one cache line
_SLOT_HDR = struct.Struct(_SLOT_HDR_FMT)
_SLOT_HDR_PAD = b"\0" * (_SLOT_HDR_SIZE - _SLOT_HDR.size)

ENTRY_SIZE = 32
_ENTRY_FMT = "<QIHHQQ"  # offset, size, kind, flags, data_off, check
_ENTRY = struct.Struct(_ENTRY_FMT)


class SlotState(IntEnum):
    FREE = 0
    RUNNING = 1
    COMMITTED = 2
    ABORTED = 3


class IntentEntry(NamedTuple):
    """One durable write intent."""

    offset: int
    size: int
    kind: IntentKind
    data_off: int  # slot-data-area offset of captured bytes (undo/CoW), or 0


def _entry_check(offset: int, size: int, kind: int, data_off: int, txid: int) -> int:
    """Cheap self-check so a torn (partially persisted) entry is detectable.

    The owning transaction's id is folded in (never stored) so a *stale*
    entry — durably valid, but written by the slot's previous owner — is
    rejected exactly like a torn one when checked against the header's
    txid.  Without this, a reused slot whose new header write tears under
    word-granular crash resolution (new ``state`` word survives, old
    ``txid``/``n_entries`` words remain) would resurrect the previous,
    already-committed transaction's intents and roll them back over
    committed data.
    """
    return (
        offset * 0x9E3779B97F4A7C15
        + size * 0x100000001B3
        + kind
        + data_off
        + txid * 0xC2B2AE3D27D4EB4F
        + 1
    ) & ((1 << 64) - 1)


class TxLog:
    """Volatile handle to one persistent log slot, owned by one transaction."""

    def __init__(self, manager: "LogManager", index: int, txid: int):
        self.manager = manager
        self.index = index
        self.txid = txid
        self.entries: List[IntentEntry] = []
        self._durable_entries = 0
        self._state = SlotState.RUNNING
        self._data_used = 0
        # the slot is lazily materialised: a read-only transaction that
        # never declares an intent touches NVM zero times (NVML likewise
        # builds its undo log only at the first TX_ADD)
        self._touched_nvm = False
        # slot geometry is fixed for the handle's lifetime; computing it
        # once here keeps append/make_durable off the property + method
        # chain (these two sit on every transaction's critical path)
        self._base = manager.slot_offset(index)
        self._entries_base = self._base + _SLOT_HDR_SIZE
        self.data_base = self._entries_base + manager.max_entries * ENTRY_SIZE

    # -- geometry ------------------------------------------------------------

    def _entry_off(self, i: int) -> int:
        return self._entries_base + i * ENTRY_SIZE

    # -- building ----------------------------------------------------------------

    def append(self, offset: int, size: int, kind: IntentKind, data_off: int = 0) -> None:
        """Record a write intent (volatile until :meth:`make_durable`)."""
        if len(self.entries) >= self.manager.max_entries:
            raise LogFullError(
                f"transaction exceeds {self.manager.max_entries} write intents"
            )
        entry = IntentEntry(offset, size, kind, data_off)
        raw = _ENTRY.pack(
            offset,
            size,
            kind.value,
            0,
            data_off,
            _entry_check(offset, size, kind.value, data_off, self.txid),
        )
        self.manager.region.write(
            self._entries_base + len(self.entries) * ENTRY_SIZE, raw
        )
        self.entries.append(entry)

    def reserve_data(self, nbytes: int) -> int:
        """Reserve ``nbytes`` of the slot data area; returns region offset."""
        if self._data_used + nbytes > self.manager.data_bytes:
            raise LogFullError(
                f"transaction exceeds {self.manager.data_bytes} bytes of log data"
            )
        off = self.data_base + self._data_used
        self._data_used += nbytes
        return off

    @property
    def dirty(self) -> bool:
        return len(self.entries) > self._durable_entries

    def make_durable(self) -> None:
        """Flush pending entries + header count; one flush+fence per batch."""
        n = len(self.entries)
        if n <= self._durable_entries:
            return
        region = self.manager.region
        first = self._entries_base + self._durable_entries * ENTRY_SIZE
        region.flush(first, (n - self._durable_entries) * ENTRY_SIZE)
        self._write_header()
        region.flush(self._base, _SLOT_HDR_SIZE)
        region.pool.device.fence()
        self._durable_entries = n
        self._touched_nvm = True

    def _write_header(self) -> None:
        raw = _SLOT_HDR.pack(
            LOG_MAGIC, int(self._state), self.txid, len(self.entries), 0
        )
        self.manager.region.write(self._base, raw + _SLOT_HDR_PAD)

    # -- state transitions -----------------------------------------------------------

    @property
    def state(self) -> SlotState:
        return self._state

    def set_state(self, state: SlotState) -> None:
        """Durably record a state transition (the commit/abort record)."""
        self._state = state
        self._write_header()
        region = self.manager.region
        region.flush(self._base, _SLOT_HDR_SIZE)
        region.pool.device.fence()
        self._touched_nvm = True

    def release(self) -> None:
        """Mark the slot FREE (durable) and return it to the free pool.

        A slot that never reached NVM (read-only transaction) is still
        durably FREE from its previous release, so nothing is written.
        """
        if self._touched_nvm:
            self.set_state(SlotState.FREE)
        self.manager._release_slot(self.index)


class RecoveredLog(NamedTuple):
    """A non-FREE slot found during crash recovery."""

    index: int
    state: SlotState
    txid: int
    entries: List[IntentEntry]


class LogManager:
    """Allocates, persists, and scans intent-log slots.

    Args:
        region: the persistent region backing the log.
        n_slots: concurrent transaction capacity (begin blocks when the
            syncer falls this far behind — natural backpressure).
        max_entries: write intents per transaction.
        data_bytes: per-slot capture area for undo/CoW engines (0 for
            Kamino, whose log stores addresses only).
    """

    def __init__(
        self,
        region: PmemRegion,
        n_slots: int = 64,
        max_entries: int = 128,
        data_bytes: int = 0,
    ):
        self.region = region
        self.n_slots = n_slots
        self.max_entries = max_entries
        self.data_bytes = data_bytes
        self._mutex = threading.Lock()
        self._free_cond = threading.Condition(self._mutex)
        self._free: List[int] = list(range(n_slots - 1, -1, -1))

    def set_mode(self, mode: str) -> None:
        """Elide (or restore) the slot-pool mutex; see
        :meth:`repro.tx.locks.ObjectLockTable.set_mode`."""
        from .locks import _PLAIN_SYNC

        if mode == "uncontended":
            self._mutex = _PLAIN_SYNC  # type: ignore[assignment]
            self._free_cond = _PLAIN_SYNC  # type: ignore[assignment]
        elif mode == "locked":
            self._mutex = threading.Lock()
            self._free_cond = threading.Condition(self._mutex)
        else:
            raise ValueError(f"unknown lock mode '{mode}'")

    # -- sizing ----------------------------------------------------------------

    @staticmethod
    def required_size(n_slots: int, max_entries: int, data_bytes: int = 0) -> int:
        slot = _SLOT_HDR_SIZE + max_entries * ENTRY_SIZE + data_bytes
        slot = (slot + 63) // 64 * 64
        return 64 + n_slots * slot

    def slot_size(self) -> int:
        slot = _SLOT_HDR_SIZE + self.max_entries * ENTRY_SIZE + self.data_bytes
        return (slot + 63) // 64 * 64

    def slot_offset(self, index: int) -> int:
        return 64 + index * self.slot_size()

    # -- lifecycle ------------------------------------------------------------------

    def format(self) -> None:
        """Initialise a fresh region; all slots are FREE (state 0 = zeroed)."""
        hdr = struct.pack(
            _REGION_HDR_FMT,
            LOG_MAGIC,
            self._config_checksum(),
            self.n_slots,
            self.max_entries,
            self.data_bytes,
            0,
        )
        self.region.write_and_flush(0, hdr)

    def open(self) -> None:
        """Validate the header and adopt the persisted geometry."""
        raw = self.region.read(0, _REGION_HDR_SIZE)
        magic, checksum, n_slots, max_entries, data_bytes, _ = struct.unpack(
            _REGION_HDR_FMT, raw
        )
        if magic != LOG_MAGIC:
            raise PoolCorruptionError("intent log region has no valid header")
        self.n_slots = n_slots
        self.max_entries = max_entries
        self.data_bytes = data_bytes
        if checksum != self._config_checksum():
            raise PoolCorruptionError("intent log header checksum mismatch")
        with self._mutex:
            self._free = list(range(n_slots - 1, -1, -1))

    def _config_checksum(self) -> int:
        return (
            self.n_slots * 2654435761 + self.max_entries * 40503 + self.data_bytes
        ) & 0xFFFFFFFF

    # -- slot pool ----------------------------------------------------------------------

    def acquire(self, txid: int, timeout: float = 10.0) -> TxLog:
        """Grab a FREE slot for a new transaction (blocks if none free)."""
        with self._free_cond:
            if not self._free_cond.wait_for(lambda: bool(self._free), timeout=timeout):
                raise TxError("no free intent-log slots (syncer stalled?)")
            index = self._free.pop()
        return TxLog(self, index, txid)

    def _release_slot(self, index: int) -> None:
        with self._free_cond:
            self._free.append(index)
            self._free_cond.notify()

    @property
    def free_slots(self) -> int:
        with self._mutex:
            return len(self._free)

    # -- recovery ----------------------------------------------------------------------------

    def scan(self) -> List[RecoveredLog]:
        """Read every non-FREE slot from durable state (crash recovery).

        Entries beyond the durable ``n_entries`` count are ignored; an
        entry whose self-check fails (torn write of the entry itself,
        possible under adversarial cache eviction before the batch flush)
        terminates the scan of that slot — data writes covered by it can
        never have happened, because intents are made durable before the
        stores they cover.

        Entry checks are bound to the header's ``txid``, which also
        defuses slot reuse: ``make_durable`` flushes each entry batch
        *before* the header store, so whenever the state word durably
        reads non-FREE the new owner's entries are already durable from
        entry 0 — any resolution of the torn header (old or new txid /
        ``n_entries``) therefore validates at most a prefix of exactly
        one transaction's entries, never a mix and never a stale tail.
        """
        found: List[RecoveredLog] = []
        for index in range(self.n_slots):
            base = self.slot_offset(index)
            raw = self.region.read(base, _SLOT_HDR_SIZE)
            magic, state_v, txid, n_entries, _ = struct.unpack(
                _SLOT_HDR_FMT, raw[: struct.calcsize(_SLOT_HDR_FMT)]
            )
            if magic != LOG_MAGIC or state_v == int(SlotState.FREE):
                continue
            try:
                state = SlotState(state_v)
            except ValueError:
                continue  # torn header word: never reached RUNNING durably
            entries: List[IntentEntry] = []
            n_entries = min(n_entries, self.max_entries)
            for i in range(n_entries):
                eraw = self.region.read(base + _SLOT_HDR_SIZE + i * ENTRY_SIZE, ENTRY_SIZE)
                off, size, kind_v, _flags, data_off, check = struct.unpack(_ENTRY_FMT, eraw)
                if check != _entry_check(off, size, kind_v, data_off, txid) or size == 0:
                    break
                entries.append(IntentEntry(off, size, IntentKind(kind_v), data_off))
            found.append(RecoveredLog(index, state, txid, entries))
        return found

    def free_slot_by_index(self, index: int) -> None:
        """Durably mark a recovered slot FREE (end of its recovery)."""
        base = self.slot_offset(index)
        raw = struct.pack(_SLOT_HDR_FMT, LOG_MAGIC, int(SlotState.FREE), 0, 0, 0)
        self.region.write(base, raw.ljust(_SLOT_HDR_SIZE, b"\0"))
        self.region.flush(base, _SLOT_HDR_SIZE)
        self.region.pool.device.fence()
