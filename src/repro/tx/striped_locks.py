"""Striped object-lock table: the fine-grained concurrency fast path.

The baseline :class:`~repro.tx.locks.ObjectLockTable` guards *every*
offset's entry with one global mutex/condition — correct, but every
acquire and release serialises through it, which is exactly the
software cost *Persistent HyTM via Fast Path Fine-Grained Locking*
(PAPERS.md) attributes the global-lock slowdown to.  This table keeps
the identical locking *logic* (reader/writer entries, ``pending_sync``
deferral, on-demand sync resolution) but shards the entries over N
independent stripes, each with its own mutex, condition, and stats —
two transactions touching different stripes never contend on table
internals.

Three properties make the sharding safe and testable:

* **Stripe-count invariance** — an offset's entry lives in exactly one
  stripe and every operation on it takes only that stripe's mutex, so
  the observable lock behaviour (grants, waits, pending deferral, stats
  counters) is bit-identical for any stripe count, including 1 (which
  degenerates to the global table).  The property suite
  (``tests/property/test_finegrained_locks.py``) sweeps this.
* **Deadlock-avoiding ordered acquisition** — a transaction that needs
  several locks at once acquires them through
  :meth:`acquire_write_many`, which sorts the batch into canonical
  (ascending-offset) order.  All multi-lock holders climb the same
  global order, so the waits-for graph cannot contain a cycle.
  Single-lock incremental acquisition (the heap's ``TX_ADD`` path)
  keeps the baseline's timeout escape.
* **No cross-stripe operations** — no table method ever holds two
  stripe mutexes, so the stripes themselves cannot deadlock.

Stats follow the :class:`~repro.nvm.stats.NVMStats` snapshot/delta
idiom so drivers can account lock-table contention exactly like device
traffic (the contended-workload driver reports both side by side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from .locks import LockStats, ObjectLockTable

#: 2^64 / phi — spreads consecutive block offsets across stripes
_GOLDEN_64 = 0x9E3779B97F4A7C15
_MASK_64 = (1 << 64) - 1


@dataclass(slots=True)
class LockTableStats:
    """Aggregated lock-table counters, NVMStats-style.

    ``snapshot()``/``delta()`` mirror :class:`~repro.nvm.stats.NVMStats`
    so benchmark code can bracket a run with the same idiom it already
    uses for device counters.  ``hottest_stripe_acquires`` exposes the
    balance of the sharding (a pathological hash would concentrate
    traffic on one stripe and reintroduce the global bottleneck).
    """

    write_acquires: int = 0
    read_acquires: int = 0
    dependent_waits: int = 0
    conflict_waits: int = 0
    on_demand_syncs: int = 0
    stripes: int = 1
    hottest_stripe_acquires: int = 0

    def snapshot(self) -> "LockTableStats":
        return LockTableStats(
            self.write_acquires,
            self.read_acquires,
            self.dependent_waits,
            self.conflict_waits,
            self.on_demand_syncs,
            self.stripes,
            self.hottest_stripe_acquires,
        )

    def delta(self, since: "LockTableStats") -> "LockTableStats":
        return LockTableStats(
            self.write_acquires - since.write_acquires,
            self.read_acquires - since.read_acquires,
            self.dependent_waits - since.dependent_waits,
            self.conflict_waits - since.conflict_waits,
            self.on_demand_syncs - since.on_demand_syncs,
            self.stripes,
            self.hottest_stripe_acquires,
        )


class StripedLockTable:
    """Drop-in for :class:`ObjectLockTable` sharded over N stripes.

    Args:
        nstripes: number of independent stripes (mutex + entries each).
        resolver: on-demand sync callback, as in the baseline table.
        timeout: per-acquisition deadlock-escape timeout in seconds.
    """

    def __init__(
        self,
        nstripes: int = 16,
        resolver: Optional[Callable[[int], None]] = None,
        timeout: float = 10.0,
    ):
        if nstripes < 1:
            raise ValueError("nstripes must be at least 1")
        self.nstripes = nstripes
        self._tables = [
            ObjectLockTable(resolver=resolver, timeout=timeout)
            for _ in range(nstripes)
        ]

    def _stripe(self, offset: int) -> ObjectLockTable:
        # golden-ratio mix of the block index (offsets are >=32-byte
        # block starts) so dense neighbouring blocks spread evenly
        return self._tables[(((offset >> 5) * _GOLDEN_64) & _MASK_64) % self.nstripes]

    # -- configuration (propagated to every stripe) ---------------------------

    def set_resolver(self, resolver: Optional[Callable[[int], None]]) -> None:
        for table in self._tables:
            table.set_resolver(resolver)

    def set_mode(self, mode: str) -> None:
        for table in self._tables:
            table.set_mode(mode)

    # -- acquisition -----------------------------------------------------------

    def acquire_write(self, txid: int, offset: int) -> None:
        self._stripe(offset).acquire_write(txid, offset)

    def acquire_read(self, txid: int, offset: int) -> None:
        self._stripe(offset).acquire_read(txid, offset)

    def acquire_write_many(self, txid: int, offsets: Iterable[int]) -> None:
        """Take several write locks in canonical (ascending) order.

        Every multi-lock acquirer climbs the same global offset order,
        so no waits-for cycle can form regardless of which stripes the
        offsets hash to — the deadlock-avoidance discipline of the
        fine-grained engine family.
        """
        for offset in sorted(set(offsets)):
            self.acquire_write(txid, offset)

    # -- release ------------------------------------------------------------------

    def release_read(self, txid: int, offset: int) -> None:
        self._stripe(offset).release_read(txid, offset)

    def release_write(self, txid: int, offset: int) -> None:
        self._stripe(offset).release_write(txid, offset)

    def release_write_many(self, txid: int, offsets: Iterable[int]) -> None:
        for offset in sorted(set(offsets)):
            self.release_write(txid, offset)

    def mark_pending(self, txid: int, offset: int) -> None:
        self._stripe(offset).mark_pending(txid, offset)

    def release_pending(self, offset: int) -> None:
        self._stripe(offset).release_pending(offset)

    def force_pending(self, offset: int) -> None:
        self._stripe(offset).force_pending(offset)

    # -- introspection ----------------------------------------------------------------

    def is_pending(self, offset: int) -> bool:
        return self._stripe(offset).is_pending(offset)

    def is_locked(self, offset: int) -> bool:
        return self._stripe(offset).is_locked(offset)

    def holder(self, offset: int) -> Optional[int]:
        return self._stripe(offset).holder(offset)

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables)

    # -- stats ---------------------------------------------------------------------------

    @property
    def stats(self) -> LockStats:
        """Aggregate counters, shape-compatible with the baseline table."""
        total = LockStats()
        for table in self._tables:
            s = table.stats
            total.write_acquires += s.write_acquires
            total.read_acquires += s.read_acquires
            total.dependent_waits += s.dependent_waits
            total.conflict_waits += s.conflict_waits
            total.on_demand_syncs += s.on_demand_syncs
        return total

    def stats_snapshot(self) -> LockTableStats:
        """Current counters in the NVMStats snapshot/delta idiom."""
        agg = self.stats
        hottest = max(
            (t.stats.write_acquires + t.stats.read_acquires for t in self._tables),
            default=0,
        )
        return LockTableStats(
            write_acquires=agg.write_acquires,
            read_acquires=agg.read_acquires,
            dependent_waits=agg.dependent_waits,
            conflict_waits=agg.conflict_waits,
            on_demand_syncs=agg.on_demand_syncs,
            stripes=self.nstripes,
            hottest_stripe_acquires=hottest,
        )
