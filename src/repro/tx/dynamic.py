"""Kamino-Tx-Dynamic: a partial, LRU-managed backup region (paper §4).

Instead of mirroring the whole heap (2 × dataSize), the dynamic backup
holds copies of only the most frequently *modified* objects in a region
of ``α × dataSize`` (α ∈ (0, 1]), for a total storage requirement of
(1+α) × dataSize.  The structure follows Figure 7:

* a **persistent look-up table** mapping heap offsets to backup slots —
  our implementation is a flat array of self-checksummed 32-byte entries
  (word-atomic state transitions, no transactions needed: the table *is*
  part of the atomicity machinery);
* a **volatile LRU queue** choosing eviction victims;
* objects currently locked by transactions are **pinned** ("locked
  objects are never evicted to ensure safety, that is pending objects
  are never candidates for eviction", §6.4).

A write to an object with no copy pays a critical-path copy-on-miss;
hits proceed exactly like Kamino-Tx-Simple.  Applications with skewed
write working sets therefore get close to full-backup latency at a
fraction of the storage — the trade-off Figures 14–16 quantify.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from ..errors import HeapError, PoolCorruptionError, RecoveryError
from ..nvm.latency import CACHE_LINE
from ..nvm.pool import PmemPool, PmemRegion
from ..runtime.registry import EngineCapabilities, register_engine
from .backup import BackupStrategy
from .base import IntentKind
from .kamino import KaminoEngine

DYN_BACKUP_REGION = "dyn_backup"
DYN_LOOKUP_REGION = "dyn_lookup"

_SLOT_CLASSES = (32, 64, 128, 256, 512, 1024, 2048, 4096)

_ENTRY_SIZE = 32
_ENTRY_FMT = "<QQQQ"  # heap_off, backup_off, size(low32)|slot_size(high32), state_check

_STATE_VALID = 0xD15C0
_STATE_EMPTY = 0


def _entry_state(heap_off: int, backup_off: int, sizes: int) -> int:
    """Self-checking VALID marker: detects torn entry writes at recovery."""
    mix = (heap_off * 0x9E3779B97F4A7C15 + backup_off * 0x100000001B3 + sizes) & 0xFFFFFFFFFF
    return (_STATE_VALID << 40) | mix


class _LookupTable:
    """The persistent hash/array mapping heap offsets to backup slots.

    A flat array is sufficient (and simpler to make crash-consistent than
    chained buckets): the volatile index on top gives O(1) lookups, and
    recovery rebuilds it with one linear scan.
    """

    def __init__(self, region: PmemRegion):
        self.region = region
        self.capacity = region.size // _ENTRY_SIZE
        self._free_indices: List[int] = list(range(self.capacity - 1, -1, -1))
        #: heap_off -> (index, backup_off, size, slot_size)
        self.index: Dict[int, Tuple[int, int, int, int]] = {}

    def scan(self) -> None:
        """Rebuild the volatile index from persistent entries (reopen)."""
        self._free_indices = []
        self.index = {}
        for i in range(self.capacity):
            raw = self.region.read(i * _ENTRY_SIZE, _ENTRY_SIZE)
            heap_off, backup_off, sizes, state = struct.unpack(_ENTRY_FMT, raw)
            if state == _STATE_EMPTY or state != _entry_state(heap_off, backup_off, sizes):
                self._free_indices.append(i)
                continue
            size = sizes & 0xFFFFFFFF
            slot_size = sizes >> 32
            self.index[heap_off] = (i, backup_off, size, slot_size)
        self._free_indices.reverse()

    def insert(self, heap_off: int, backup_off: int, size: int, slot_size: int) -> int:
        if not self._free_indices:
            raise HeapError("dynamic backup lookup table full")
        i = self._free_indices.pop()
        sizes = (slot_size << 32) | size
        raw = struct.pack(
            _ENTRY_FMT, heap_off, backup_off, sizes, _entry_state(heap_off, backup_off, sizes)
        )
        self.region.write(i * _ENTRY_SIZE, raw)
        self.region.flush(i * _ENTRY_SIZE, _ENTRY_SIZE)
        self.region.pool.device.fence()
        self.index[heap_off] = (i, backup_off, size, slot_size)
        return i

    def remove(self, heap_off: int) -> Tuple[int, int]:
        """Tombstone the entry; returns (backup_off, slot_size) to recycle."""
        i, backup_off, _size, slot_size = self.index.pop(heap_off)
        # zero the state word (word-atomic) — the entry is dead
        self.region.write(i * _ENTRY_SIZE + 24, struct.pack("<Q", _STATE_EMPTY))
        self.region.flush(i * _ENTRY_SIZE + 24, 8)
        self.region.pool.device.fence()
        self._free_indices.append(i)
        return backup_off, slot_size

    def get(self, heap_off: int) -> Optional[Tuple[int, int, int, int]]:
        return self.index.get(heap_off)


class DynamicBackup(BackupStrategy):
    """α-sized partial backup with LRU replacement; see module docstring.

    Args:
        alpha: backup capacity as a fraction of the heap region size.
        lookup_entries: persistent look-up table capacity; defaults to
            one entry per 128 bytes of backup space, enough for the
            smallest objects to fill the region.
    """

    def __init__(self, alpha: float = 0.5, lookup_entries: Optional[int] = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._lookup_entries = lookup_entries
        self.region: Optional[PmemRegion] = None
        self.lookup: Optional[_LookupTable] = None
        self.heap_region: Optional[PmemRegion] = None
        self._bump = 0
        self._free_slots: Dict[int, List[int]] = {c: [] for c in _SLOT_CLASSES}
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        self._pinned: Dict[int, int] = {}  # offset -> pin count
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- attach -----------------------------------------------------------------

    def attach(self, pool: PmemPool, heap_region: PmemRegion, fresh: bool) -> None:
        self.heap_region = heap_region
        cap = max(4096, int(self.alpha * heap_region.size))
        entries = self._lookup_entries or max(64, cap // 128)
        self.region = pool.region_or_create(DYN_BACKUP_REGION, cap)
        lookup_region = pool.region_or_create(DYN_LOOKUP_REGION, entries * _ENTRY_SIZE)
        self.lookup = _LookupTable(lookup_region)
        if not fresh:
            self.lookup.scan()
            self._rebuild_slots()
        # LRU starts cold either way; pins are rebuilt by the lock table

    def _rebuild_slots(self) -> None:
        """Recompute bump pointer and free lists from surviving entries."""
        used = sorted(
            (backup_off, slot_size)
            for (_i, backup_off, _size, slot_size) in self.lookup.index.values()
        )
        self._bump = 0
        self._free_slots = {c: [] for c in _SLOT_CLASSES}
        for backup_off, slot_size in used:
            # gaps below the bump line become free slots of unknown class —
            # conservatively skipped; the bump line moves past them
            self._bump = max(self._bump, backup_off + slot_size)
        for heap_off in self.lookup.index:
            self._lru[heap_off] = None

    # -- slot management ------------------------------------------------------------

    @staticmethod
    def _slot_class(size: int) -> int:
        for c in _SLOT_CLASSES:
            if size <= c:
                return c
        raise HeapError(f"object of {size} bytes exceeds largest backup slot")

    def _alloc_slot(self, size: int) -> Tuple[int, int]:
        """Find a backup slot: free list, then bump space, then eviction."""
        cls = self._slot_class(size)
        if self._free_slots[cls]:
            return self._free_slots[cls].pop(), cls
        if self._bump + cls <= self.region.size:
            off = self._bump
            self._bump += cls
            return off, cls
        victim = self._pick_victim(cls)
        backup_off, slot_size = self.lookup.remove(victim)
        self._lru.pop(victim, None)
        self.evictions += 1
        if slot_size == cls:
            return backup_off, cls
        # recycle a larger slot with internal waste; smaller ones go to
        # their class free list and we retry
        if slot_size > cls:
            return backup_off, slot_size
        self._free_slots[slot_size].append(backup_off)
        return self._alloc_slot(size)

    def _pick_victim(self, needed_cls: int) -> int:
        """Least-recently-updated unpinned entry, preferring fitting slots."""
        fallback = None
        for heap_off in self._lru:
            if heap_off in self._pinned:
                continue
            slot_size = self.lookup.index[heap_off][3]
            if slot_size >= needed_cls:
                return heap_off
            if fallback is None:
                fallback = heap_off
        if fallback is not None:
            return fallback
        raise HeapError(
            "dynamic backup exhausted: every copy is pinned by a live "
            "transaction; increase alpha"
        )

    # -- BackupStrategy -------------------------------------------------------------

    def ensure_copy(self, offset: int, size: int) -> None:
        entry = self.lookup.get(offset)
        if entry is not None:
            self.hits += 1
            self._lru.move_to_end(offset)
            return
        self.misses += 1
        self._insert_copy(offset, size)

    def _insert_copy(self, offset: int, size: int) -> Tuple[int, int, int, int]:
        if not self.lookup._free_indices:
            # the lookup table is the scarce resource: evict to free a row
            victim = self._pick_victim(self._slot_class(size))
            v_off, v_slot = self.lookup.remove(victim)
            self._lru.pop(victim, None)
            self.evictions += 1
            self._free_slots.setdefault(v_slot, []).append(v_off)
        backup_off, slot_size = self._alloc_slot(size)
        device = self.region.pool.device
        device.copy(self.region.offset + backup_off, self.heap_region.offset + offset, size)
        self.region.flush(backup_off, size)
        device.fence()
        i = self.lookup.insert(offset, backup_off, size, slot_size)
        self._lru[offset] = None
        self._lru.move_to_end(offset)
        return (i, backup_off, size, slot_size)

    def absorb_entries(self, entries) -> None:
        """Sync-drain with batched flushes.

        Backup slots are scattered, so the copies cannot interval-merge
        like the full mirror's; instead consecutive absorbs defer their
        backup-region flushes into one ``flush_multi`` call.  Deferral is
        only legal while the pending ranges are pairwise line-disjoint
        (two sub-line slots sharing a cache line must flush in program
        order or ``flushed_lines`` drifts), and drains before any FREE
        bookkeeping so the tombstone's flush+fence ordering is untouched.
        """
        device = self.region.pool.device
        pending = []  # region-relative (backup_off, size)
        pending_lines = set()

        def drain() -> None:
            self.region.flush_multi(pending)
            pending.clear()
            pending_lines.clear()

        for entry in entries:
            if entry.kind is IntentKind.FREE:
                if pending:
                    drain()
                self.on_free_synced(entry.offset, entry.size)
                continue
            hit = self.lookup.get(entry.offset)
            if hit is None:
                # no cached copy — same skip as absorb()
                continue
            _i, backup_off, _esize, _slot = hit
            size = entry.size
            lines = range(
                backup_off // CACHE_LINE, (backup_off + size - 1) // CACHE_LINE + 1
            )
            if any(line in pending_lines for line in lines):
                drain()
            device.copy(
                self.region.offset + backup_off,
                self.heap_region.offset + entry.offset,
                size,
            )
            pending.append((backup_off, size))
            pending_lines.update(lines)
            self._lru.move_to_end(entry.offset)
        if pending:
            drain()

    def absorb(self, offset: int, size: int) -> None:
        entry = self.lookup.get(offset)
        if entry is None:
            # No cached copy (a freshly allocated block, or an entry
            # dropped by a committed free): nothing to roll forward.  A
            # later WRITE intent will copy-on-miss, so skipping keeps the
            # α budget for objects that are actually re-modified.
            return
        _i, backup_off, esize, _slot = entry
        device = self.region.pool.device
        device.copy(self.region.offset + backup_off, self.heap_region.offset + offset, size)
        self.region.flush(backup_off, size)
        self._lru.move_to_end(offset)

    def restore(self, offset: int, size: int) -> None:
        entry = self.lookup.get(offset)
        if entry is None:
            raise RecoveryError(
                f"no backup copy for offset {offset}: rollback impossible "
                f"(pinning invariant violated)"
            )
        _i, backup_off, _esize, _slot = entry
        device = self.region.pool.device
        device.copy(self.heap_region.offset + offset, self.region.offset + backup_off, size)
        self.heap_region.flush(offset, size)

    def on_free_synced(self, offset: int, size: int) -> None:
        entry = self.lookup.get(offset)
        if entry is None:
            return
        backup_off, slot_size = self.lookup.remove(offset)
        self._lru.pop(offset, None)
        self._free_slots.setdefault(slot_size, []).append(backup_off)

    def pin(self, offset: int) -> None:
        self._pinned[offset] = self._pinned.get(offset, 0) + 1

    def unpin(self, offset: int) -> None:
        count = self._pinned.get(offset, 0)
        if count <= 1:
            self._pinned.pop(offset, None)
        else:
            self._pinned[offset] = count - 1

    @property
    def storage_bytes(self) -> int:
        total = self.region.size if self.region else 0
        if self.lookup is not None:
            total += self.lookup.region.size
        return total

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@register_engine(
    "kamino-dynamic",
    capabilities=EngineCapabilities(
        description="atomic in-place updates, alpha-sized LRU partial backup (copy-on-miss)",
        copies_in_critical_path=False,
        has_backup=True,
        locks_released_after_sync=True,
        cost_profile="kamino",
        options=("alpha",),
    ),
)
def kamino_dynamic(alpha: float = 0.5, **kwargs) -> KaminoEngine:
    """Kamino-Tx-Dynamic: in-place updates with an α-sized partial backup."""
    engine = KaminoEngine(backup=DynamicBackup(alpha=alpha), **kwargs)
    engine.name = f"kamino-dynamic-{int(alpha * 100)}"
    return engine
