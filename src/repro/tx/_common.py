"""Shared plumbing for engines built on the lock table + intent log.

Every concrete scheme (undo, CoW, no-logging, Kamino simple/dynamic)
acquires the same object-level locks and — except no-logging — records
the same intent-log entries; they differ only in *what data is copied,
where, and when*.  Factoring the common motions here keeps each engine
file focused on exactly that difference, which mirrors how the paper's
implementation swaps atomicity schemes under an unchanged NVML surface.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TxError
from ..nvm.pool import PmemPool, PmemRegion
from .base import AtomicityEngine, IntentKind, Transaction
from .intent_log import LOG_REGION, LogManager, TxLog
from .locks import ObjectLockTable


class LockingLogEngine(AtomicityEngine):
    """Base for engines using the lock table and (optionally) the log.

    Subclasses set ``uses_log`` and ``log_data_bytes`` and implement the
    abstract scheme methods of :class:`AtomicityEngine`.
    """

    uses_log: bool = True
    #: per-slot capture area (0 = address-only log, the Kamino case)
    log_data_bytes: int = 0

    def __init__(
        self,
        n_slots: int = 64,
        max_entries: int = 256,
        lock_timeout: float = 10.0,
    ):
        self.n_slots = n_slots
        self.max_entries = max_entries
        self.locks = ObjectLockTable(timeout=lock_timeout)
        self.pool: Optional[PmemPool] = None
        self.heap_region: Optional[PmemRegion] = None
        self.log: Optional[LogManager] = None
        #: optional callback fired at named protocol phases (used by the
        #: Figure 2/5/6 timeline regenerator); signature: hook(phase_name)
        self.phase_hook = None

    def _phase(self, name: str) -> None:
        hook = self.phase_hook
        if hook is not None:
            hook(name)

    def set_lock_mode(self, mode: str) -> None:
        """Propagate the driver's lock mode (see the device's
        ``lock_mode``) to the lock table and log-slot pool.  Call only
        after :meth:`attach` so the log manager exists; ``"uncontended"``
        is sound only for single-threaded drivers."""
        self.locks.set_mode(mode)
        if self.log is not None:
            self.log.set_mode(mode)

    # -- attach ---------------------------------------------------------------

    def attach(self, pool: PmemPool, heap_region: PmemRegion) -> None:
        self.pool = pool
        self.heap_region = heap_region
        fresh = True
        if self.uses_log:
            size = LogManager.required_size(
                self.n_slots, self.max_entries, self.log_data_bytes
            )
            fresh = not pool.has_region(LOG_REGION)
            region = pool.region_or_create(LOG_REGION, size)
            self.log = LogManager(
                region, self.n_slots, self.max_entries, self.log_data_bytes
            )
            if fresh:
                self.log.format()
            else:
                self.log.open()
        self._attach_extra(fresh=fresh)

    def _attach_extra(self, fresh: bool) -> None:
        """Hook for subclasses to reserve additional regions.

        ``fresh`` is True on the create path, False on reopen.
        """

    # -- transaction plumbing ----------------------------------------------------

    def begin(self) -> Transaction:
        tx = Transaction(self)
        if self.uses_log:
            tx.engine_state["log"] = self.log.acquire(tx.txid)
        return tx

    def _txlog(self, tx: Transaction) -> TxLog:
        return tx.engine_state["log"]

    def on_read(self, tx: Transaction, offset: int, size: int) -> None:
        self.locks.acquire_read(tx.txid, offset)
        tx.read_set.add(offset)

    def before_data_write(self, tx: Transaction) -> None:
        if self.uses_log:
            self._txlog(tx).make_durable()

    def _record_intent(
        self, tx: Transaction, offset: int, size: int, kind: IntentKind, data_off: int = 0
    ) -> None:
        """Lock the range and append the intent to tx + log."""
        if size <= 0:
            raise TxError(f"write intent must have positive size, got {size}")
        self.locks.acquire_write(tx.txid, offset)
        tx.intents.append((offset, size, kind))
        tx.write_set.add(offset)
        if self.uses_log:
            self._txlog(tx).append(offset, size, kind, data_off)

    # -- lock release helpers --------------------------------------------------------

    def _release_reads(self, tx: Transaction) -> None:
        for off in tx.read_set - tx.write_set:
            self.locks.release_read(tx.txid, off)

    def _release_writes(self, tx: Transaction) -> None:
        for off in tx.write_set:
            self.locks.release_write(tx.txid, off)

    def _release_all(self, tx: Transaction) -> None:
        self._release_reads(tx)
        self._release_writes(tx)

    # -- data-range helpers ------------------------------------------------------------

    def _flush_modified_ranges(self, tx: Transaction) -> None:
        """Flush every in-place-modified range, then fence (commit step 1)."""
        region = self.heap_region
        ranges = [(off, size) for off, size, kind in tx.intents if kind is not IntentKind.FREE]
        if ranges:
            region.flush_multi(ranges)
            region.pool.device.fence()
