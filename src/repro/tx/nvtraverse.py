"""NVTraverse-style engine: defer persistence until the "destination".

*NVTraverse* (PAPERS.md) observes that in a traversal data structure the
path walked to reach a modification site does not need to be persisted
— only the final ("destination") writes do, and they can all be flushed
together right before the linearisation point.  This engine encodes
that discipline on top of the Kamino machinery:

* **Traversal phase** (``begin`` → ``commit``): every write lands in a
  *volatile DRAM shadow buffer*; the intent log slot is acquired but
  never materialised (the log's lazy-NVM contract), the full-mirror
  backup needs no copy-on-miss, and locks are volatile.  The phase
  therefore performs **zero NVM stores, flushes, fences, or copies** —
  only loads (to seed shadows and serve reads).
* **Destination phase** (``commit``): the entire intent set is appended
  and made durable in one batch (fence 1), the shadows are applied to
  the main heap in place and flushed together (fence 2), and the slot
  is durably marked ``COMMITTED`` (fence 3) — the linearisation point.
  Exactly three fences per update transaction, independent of how many
  objects the traversal touched.
* **Abort** discards the shadows and releases locks — zero NVM traffic
  (the log slot was never touched, so ``release`` skips the FREE write).

Correctness argument, encoded as oracles in ``tests/tx/test_nvtraverse.py``
and swept by CrashExplorer:

1. A crash before fence 1 leaves the slot durably FREE and the main
   heap untouched → recovery ignores it (atomicity: nothing happened).
2. A crash between fence 1 and fence 3 finds a durable ``RUNNING``
   slot; the main heap holds an arbitrary prefix of the destination
   stores, but the full mirror still holds every pre-transaction byte
   (it is only rolled forward *after* commit), so the inherited Kamino
   rollback restores exactly the pre-transaction state.
3. After fence 3 the inherited roll-forward path syncs the mirror —
   the same idempotent machinery as ``kamino-simple``.

The backup must be the :class:`~repro.tx.backup.FullBackup` mirror: a
dynamic backup's copy-on-miss would reintroduce critical-path NVM
copies during traversal, violating the store-free oracle.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import LogFullError
from ..runtime.registry import EngineCapabilities, register_engine
from .backup import FullBackup
from .base import IntentKind, Transaction
from .intent_log import SlotState
from .kamino import KaminoEngine, _SyncTask


class _ShadowBuffer:
    """Volatile DRAM staging buffer with the region read/write surface.

    The heap only ever calls ``.write(off, data)`` / ``.read(off, size)``
    on a translation target, so a plain bytearray wrapper is a drop-in —
    and, unlike the CoW engine's log-region shadows, costs no NVM ops.
    """

    __slots__ = ("buf",)

    def __init__(self, data: bytes):
        self.buf = bytearray(data)

    def write(self, offset: int, data: bytes) -> None:
        self.buf[offset : offset + len(data)] = data

    def read(self, offset: int, size: int) -> bytes:
        return bytes(self.buf[offset : offset + size])


class NVTraverseEngine(KaminoEngine):
    """Traversal-deferred persistence over the full-mirror Kamino base."""

    name = "nvtraverse"
    translates_reads = True

    def __init__(self, **kwargs):
        backup = kwargs.pop("backup", None)
        super().__init__(backup=backup if backup is not None else FullBackup(), **kwargs)

    # -- shadow bookkeeping -----------------------------------------------------

    @staticmethod
    def _shadows(tx: Transaction) -> Dict[int, "_ShadowBuffer"]:
        return tx.engine_state.setdefault("shadows", {})

    def _find_shadow(
        self, tx: Transaction, offset: int, size: int
    ) -> Optional[Tuple["_ShadowBuffer", int]]:
        for ioff, shadow in self._shadows(tx).items():
            if ioff <= offset and offset + size <= ioff + len(shadow.buf):
                return shadow, offset - ioff
        return None

    # -- traversal phase: volatile only -------------------------------------------

    def on_add(self, tx: Transaction, offset: int, size: int, kind: IntentKind) -> None:
        if len(tx.intents) >= self.max_entries:
            # fail where the base engine would (its log.append overflows here)
            raise LogFullError(
                f"transaction exceeds {self.max_entries} intents "
                f"(log slot capacity)"
            )
        self._phase("lock_data")
        self.locks.acquire_write(tx.txid, offset)
        if kind is IntentKind.WRITE:
            # full mirror: consistent for unlocked objects, no copy needed
            self.backup.ensure_copy(offset, size)
        self.backup.pin(offset)
        tx.intents.append((offset, size, kind))
        tx.write_set.add(offset)
        if kind is IntentKind.FREE:
            return
        shadows = self._shadows(tx)
        if offset not in shadows:
            if kind is IntentKind.WRITE:
                # seed from the current main bytes (loads are allowed
                # during traversal; stores are not)
                shadows[offset] = _ShadowBuffer(self.heap_region.read(offset, size))
            else:  # ALLOC starts zeroed, like a fresh block
                shadows[offset] = _ShadowBuffer(bytes(size))

    def before_data_write(self, tx: Transaction) -> None:
        # the base flushes the intent batch before the first in-place
        # store; here stores go to volatile shadows, so nothing to do
        pass

    def translate_write(
        self, tx: Optional[Transaction], offset: int, size: int
    ) -> Optional[Tuple["_ShadowBuffer", int]]:
        if tx is None:
            return None
        return self._find_shadow(tx, offset, size)

    def translate_read(
        self, tx: Optional[Transaction], offset: int, size: int
    ) -> Optional[Tuple["_ShadowBuffer", int]]:
        if tx is None:
            return None
        return self._find_shadow(tx, offset, size)

    # -- destination phase ---------------------------------------------------------

    def commit(self, tx: Transaction) -> None:
        log = self._txlog(tx)
        if not tx.intents and not tx.deferred_frees:
            # read-only: the slot was never materialised, release is free
            log.release()
            self._release_reads(tx)
            return
        self._apply_deferred_frees(tx)
        # destination reached: publish the whole intent set in one batch
        for offset, size, kind in tx.intents:
            log.append(offset, size, kind, 0)
        log.make_durable()  # fence 1: intents durable before any main store
        self._phase("log_intents")
        shadows = self._shadows(tx)
        region = self.heap_region
        for offset, size, kind in tx.intents:
            if kind is IntentKind.FREE:
                continue
            shadow = shadows.get(offset)
            if shadow is not None:
                region.write(offset, bytes(shadow.buf))
        self._phase("edit_orig")
        self._flush_modified_ranges(tx)  # fence 2: destination stores durable
        self._phase("flush_data")
        log.set_state(SlotState.COMMITTED)  # fence 3: linearisation point
        self._phase("commit_record")
        for off in sorted(tx.write_set):
            self.locks.mark_pending(tx.txid, off)
        self._release_reads(tx)
        task = _SyncTask(log, list(log.entries), set(tx.write_set))
        self._queue.append(task)
        if self.eager_sync:
            self.sync_pending()

    def abort(self, tx: Transaction) -> None:
        # the main heap and the log slot were never touched during
        # traversal: dropping the volatile shadows IS the rollback
        log = self._txlog(tx)
        log.release()  # lazy slot: no NVM write happens here
        for off in tx.write_set:
            self.backup.unpin(off)
        self._release_all(tx)


@register_engine(
    "nvtraverse",
    capabilities=EngineCapabilities(
        description=(
            "traversal-deferred persistence: volatile shadows during the "
            "walk, one batched flush+commit at the destination, full mirror"
        ),
        copies_in_critical_path=False,
        has_backup=True,
        locks_released_after_sync=True,
        cost_profile="nvtraverse",
    ),
)
def nvtraverse(**kwargs) -> NVTraverseEngine:
    """NVTraverse-style destination-only persistence engine."""
    return NVTraverseEngine(**kwargs)
