"""Copy-on-write engine: the second baseline family (Figure 2, middle).

``TX_ADD`` copies the object into a private shadow **in the critical
path**; all edits go to the shadow; commit durably records the redo
decision and then copies every shadow back over the original — also in
the critical path, before locks release (Figure 5's ``copy_to_orig``).
Aborts are cheap ("simply deleting the copy is enough") and a crash
before the commit record leaves the original bytes untouched.

Recovery: a ``COMMITTED`` slot re-applies its shadows (roll forward,
idempotent); ``RUNNING``/``ABORTED`` slots are discarded.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..nvm.pool import PmemRegion
from ..runtime.registry import EngineCapabilities, register_engine
from .base import IntentKind, RecoveryReport, Transaction
from ._common import LockingLogEngine
from .intent_log import SlotState


@register_engine(
    "cow",
    capabilities=EngineCapabilities(
        description="copy-on-write shadows, redo-applied at commit",
        copies_in_critical_path=True,
        cost_profile="cow",
    ),
)
class CoWEngine(LockingLogEngine):
    """Copy-on-write / redo-style baseline; see module docstring."""

    name = "cow"
    copies_in_critical_path = True
    uses_log = True

    def __init__(
        self,
        n_slots: int = 64,
        max_entries: int = 256,
        log_data_bytes: int = 64 * 1024,
        lock_timeout: float = 10.0,
    ):
        super().__init__(n_slots, max_entries, lock_timeout)
        self.log_data_bytes = log_data_bytes

    # -- shadow bookkeeping -----------------------------------------------------

    @staticmethod
    def _shadows(tx: Transaction) -> Dict[int, Tuple[int, int]]:
        """tx-private map: intent offset -> (size, shadow region offset)."""
        return tx.engine_state.setdefault("shadows", {})

    def _find_shadow(self, tx: Transaction, offset: int, size: int) -> Optional[int]:
        """Shadow address covering ``[offset, offset+size)``, if any."""
        for ioff, (isize, shadow_off) in self._shadows(tx).items():
            if ioff <= offset and offset + size <= ioff + isize:
                return shadow_off + (offset - ioff)
        return None

    # -- intents --------------------------------------------------------------------

    def on_add(self, tx: Transaction, offset: int, size: int, kind: IntentKind) -> None:
        if kind is IntentKind.FREE:
            self._record_intent(tx, offset, size, kind, 0)
            return
        self._phase("lock_data")
        log = self._txlog(tx)
        shadow_off = log.reserve_data(size)
        device = self.log.region.pool.device
        if kind is IntentKind.WRITE:
            # critical-path copy of the current contents into the shadow
            device.copy(
                self.log.region.offset + shadow_off,
                self.heap_region.offset + offset,
                size,
            )
        else:  # ALLOC: the shadow starts as zeroes, like a fresh block
            self.log.region.write(shadow_off, b"\0" * size)
        self.log.region.flush(shadow_off, size)
        device.fence()
        self._phase("copy_data")
        self._record_intent(tx, offset, size, kind, shadow_off)
        self._shadows(tx)[offset] = (size, shadow_off)

    # -- translation: edits and reads hit the shadow ------------------------------------

    translates_reads = True

    def translate_write(
        self, tx: Optional[Transaction], offset: int, size: int
    ) -> Optional[Tuple[PmemRegion, int]]:
        if tx is None:
            return None
        shadow = self._find_shadow(tx, offset, size)
        if shadow is None:
            return None
        return (self.log.region, shadow)

    def translate_read(
        self, tx: Optional[Transaction], offset: int, size: int
    ) -> Optional[Tuple[PmemRegion, int]]:
        return self.translate_write(tx, offset, size)

    # -- outcomes ------------------------------------------------------------------------

    def commit(self, tx: Transaction) -> None:
        log = self._txlog(tx)
        self._apply_deferred_frees(tx)
        # make shadows + intents durable, then the redo decision
        for offset, size, kind in tx.intents:
            if kind is IntentKind.FREE:
                continue
            _size, shadow_off = self._shadows(tx)[offset]
            self.log.region.flush(shadow_off, size)
        log.make_durable()
        self._phase("edit_copy")
        log.set_state(SlotState.COMMITTED)
        self._phase("commit_record")
        # apply shadows to the originals — still the critical path
        device = self.heap_region.pool.device
        for offset, size, kind in tx.intents:
            if kind is IntentKind.FREE:
                continue
            _size, shadow_off = self._shadows(tx)[offset]
            device.copy(
                self.heap_region.offset + offset,
                self.log.region.offset + shadow_off,
                size,
            )
            self.heap_region.flush(offset, size)
        device.fence()
        self._phase("copy_to_orig")
        log.release()
        self._phase("delete_copy")
        self._release_all(tx)
        self._phase("unlock_data")

    def abort(self, tx: Transaction) -> None:
        # the originals were never touched: discard the shadows
        log = self._txlog(tx)
        log.release()
        self._release_all(tx)

    # -- recovery ----------------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        report = RecoveryReport()
        device = self.heap_region.pool.device
        for rec in self.log.scan():
            if rec.state is SlotState.COMMITTED:
                for entry in rec.entries:
                    if entry.kind is IntentKind.FREE:
                        continue
                    device.copy(
                        self.heap_region.offset + entry.offset,
                        self.log.region.offset + entry.data_off,
                        entry.size,
                    )
                    self.heap_region.flush(entry.offset, entry.size)
                    report.restored_ranges.append((entry.offset, entry.size))
                device.fence()
                report.rolled_forward += 1
            else:
                report.rolled_back += 1
            self.log.free_slot_by_index(rec.index)
        return report
