"""Kamino-Tx: atomic in-place updates with an asynchronous backup.

This is the paper's primary contribution (§3).  The critical path of a
transaction contains **no data copying**:

1. ``TX_ADD`` takes the object lock and appends a 32-byte address-only
   intent entry (plus, for the dynamic backup only, a copy-on-miss).
2. Stores modify the main heap in place; the intent batch is flushed
   once before the first store.
3. Commit flushes the modified ranges, then durably marks the log slot
   ``COMMITTED`` — that is the commit point.
4. The modified objects are copied to the backup *after* commit, off the
   critical path; write locks are held (``pending``) until then, which
   is what delays *dependent* transactions (Safety 1).
5. Abort copies the untouched backup values over the main heap
   (Safety 2), then releases everything.

Crash recovery replays this decision per surviving log slot: COMMITTED
slots roll the backup forward; RUNNING/ABORTED slots roll the main heap
back.  Both directions are idempotent, so a crash during recovery is
handled by running recovery again.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional, Set, Tuple

from ..errors import BothCopiesLostError, IntegrityError
from ..nvm.pool import PmemPool, PmemRegion
from ..runtime.registry import EngineCapabilities, register_engine
from .base import IntentKind, RecoveryReport, Transaction
from .backup import BackupStrategy, FullBackup
from ._common import LockingLogEngine
from .intent_log import IntentEntry, SlotState, TxLog


class _SyncTask:
    """A committed transaction awaiting its backup roll-forward."""

    __slots__ = ("log", "entries", "write_offsets")

    def __init__(self, log: TxLog, entries: List[IntentEntry], write_offsets: Set[int]):
        self.log = log
        self.entries = entries
        self.write_offsets = write_offsets


class KaminoEngine(LockingLogEngine):
    """The Kamino-Tx Transaction Coordinator + Log Manager glue.

    Parametrised by a :class:`~repro.tx.backup.BackupStrategy`:
    :class:`~repro.tx.backup.FullBackup` gives Kamino-Tx-Simple,
    :class:`~repro.tx.dynamic.DynamicBackup` gives Kamino-Tx-Dynamic.

    Args:
        backup: the backup strategy (defaults to a full mirror).
        eager_sync: when True, the backup is rolled forward synchronously
            inside commit — a degenerate mode used by tests and by the
            analytic worst-case experiments; the normal mode defers sync
            to :meth:`sync_pending` (a background thread or the
            simulator's async events).
        coalesce_sync: drain each committed transaction's backup sync
            through the strategy's interval-coalescing
            :meth:`~repro.tx.backup.BackupStrategy.absorb_entries` path
            (adjacent pending ranges become one bulk ``device.copy``).
            Simulated results — durable bytes, ``NVMStats``, virtual
            time — are bit-identical either way; ``False`` keeps the
            historical entry-at-a-time loop, which the equivalence tests
            and the wall-clock harness's naive baseline use.
    """

    name = "kamino"
    copies_in_critical_path = False
    uses_log = True
    log_data_bytes = 0

    def __init__(
        self,
        backup: Optional[BackupStrategy] = None,
        n_slots: int = 64,
        max_entries: int = 256,
        lock_timeout: float = 10.0,
        eager_sync: bool = False,
        lazy_recovery: bool = False,
        coalesce_sync: bool = True,
    ):
        super().__init__(n_slots, max_entries, lock_timeout)
        self.backup = backup if backup is not None else FullBackup()
        self.eager_sync = eager_sync
        self.lazy_recovery = lazy_recovery
        self.coalesce_sync = coalesce_sync
        self._queue: Deque[_SyncTask] = deque()
        self._sync_mutex = threading.Lock()
        self.locks.set_resolver(self._resolve_pending)

    # -- attach -----------------------------------------------------------------

    def _attach_extra(self, fresh: bool) -> None:
        self.backup.attach(self.pool, self.heap_region, fresh)

    # -- begin (with backpressure) ------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction, helping the syncer if the log is full.

        When every slot is held by committed-but-unsynced transactions,
        the beginning transaction drains some sync work itself — the
        backpressure a saturated coordinator applies in a real system.
        """
        if self.log is not None and self.log.free_slots == 0:
            self.sync_pending(limit=max(1, self.n_slots // 4))
        return super().begin()

    # -- intents ------------------------------------------------------------------

    def on_add(self, tx: Transaction, offset: int, size: int, kind: IntentKind) -> None:
        # Lock first: acquiring may block on (or resolve) a pending sync,
        # after which the backup is consistent for this object.
        self._phase("lock_data")
        self.locks.acquire_write(tx.txid, offset)
        if kind is IntentKind.WRITE:
            # full backup: no-op; dynamic backup: copy-on-miss
            self.backup.ensure_copy(offset, size)
        self.backup.pin(offset)
        tx.intents.append((offset, size, kind))
        tx.write_set.add(offset)
        self._txlog(tx).append(offset, size, kind, 0)

    # -- outcomes -------------------------------------------------------------------

    def commit(self, tx: Transaction) -> None:
        log = self._txlog(tx)
        if not tx.intents and not tx.deferred_frees:
            # read-only: nothing durable happened, nothing to sync
            log.release()
            self._release_reads(tx)
            return
        self._apply_deferred_frees(tx)
        log.make_durable()
        self._phase("edit_orig")
        self._flush_modified_ranges(tx)
        self._phase("flush_data")
        log.set_state(SlotState.COMMITTED)  # durable commit point
        self._phase("commit_record")
        for off in tx.write_set:
            self.locks.mark_pending(tx.txid, off)
        self._release_reads(tx)
        task = _SyncTask(log, list(log.entries), set(tx.write_set))
        self._queue.append(task)
        if self.eager_sync:
            self.sync_pending()

    def abort(self, tx: Transaction) -> None:
        log = self._txlog(tx)
        log.set_state(SlotState.ABORTED)
        device = self.heap_region.pool.device
        restored = False
        for offset, size, kind in tx.intents:
            if kind is IntentKind.WRITE:
                self.backup.restore(offset, size)
                restored = True
        if restored:
            device.fence()
        log.release()
        for off in tx.write_set:
            self.backup.unpin(off)
        self._release_all(tx)

    # -- asynchronous backup sync ----------------------------------------------------

    def sync_pending(self, limit: Optional[int] = None) -> int:
        """Roll forward up to ``limit`` committed transactions.

        This is the Transaction Coordinator's background duty; in a
        deployment it runs on a dedicated thread, in the simulator it is
        scheduled as deferred events, and a dependent transaction may run
        it on demand from the lock table's resolver.
        """
        done = 0
        with self._sync_mutex:
            while self._queue and (limit is None or done < limit):
                task = self._queue.popleft()
                self._sync_task(task)
                done += 1
        return done

    def _sync_task(self, task: _SyncTask) -> None:
        device = self.heap_region.pool.device
        if self.coalesce_sync:
            self.backup.absorb_entries(task.entries)
        else:
            for entry in task.entries:
                if entry.kind is IntentKind.FREE:
                    self.backup.on_free_synced(entry.offset, entry.size)
                else:
                    self.backup.absorb(entry.offset, entry.size)
        device.fence()
        self._phase("copy_to_backup")
        task.log.release()
        for off in task.write_offsets:
            self.backup.unpin(off)
            self.locks.release_pending(off)
        self._phase("unlock_data")

    def _resolve_pending(self, offset: int) -> None:
        """On-demand sync: a dependent transaction hit a pending object.

        Processes the queue in order until the offset's sync has landed —
        the paper's "copied in the critical path if not already copied
        asynchronously" case.
        """
        with self._sync_mutex:
            while self._queue:
                task = self._queue.popleft()
                self._sync_task(task)
                if offset in task.write_offsets:
                    return

    @property
    def pending_count(self) -> int:
        return len(self._queue)

    def pending_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Heap-relative ranges whose backup roll-forward is still queued.

        Inside these ranges the backup holds *pre-commit* bytes — the
        scrubber must not use it to "repair" main, and a crash summary
        reports them as the repairs a restarted syncer will perform.
        """
        out: List[Tuple[int, int]] = []
        for task in list(self._queue):
            for entry in task.entries:
                if entry.kind is IntentKind.FREE:
                    continue
                out.append((entry.offset, entry.size))
        return tuple(out)

    # -- recovery ----------------------------------------------------------------------

    def recover(self, lazy: Optional[bool] = None) -> RecoveryReport:
        """Scan intent logs; roll back incomplete work, roll forward
        committed work (paper §3, Log Manager uses (1)/(2) by state).

        Rollbacks run first so a dynamic backup never evicts an entry a
        later rollback still needs.

        With ``lazy`` (or the engine's ``lazy_recovery`` flag), committed
        slots are *not* synced during recovery: the main heap is already
        correct, so their backup roll-forward is re-queued for the
        background syncer, and the affected objects are re-locked as
        *pending* — §6.2's "write intents are enough to recover the lock
        information needed".  Recovery time then does not grow with the
        sync backlog at the crash.
        """
        if lazy is None:
            lazy = self.lazy_recovery
        report = RecoveryReport()
        device = self.heap_region.pool.device
        records = self.log.scan()
        if getattr(device, "media", None) is not None:
            self._verify_recovery_sources(device, records)
        for rec in records:
            if rec.state is SlotState.COMMITTED:
                continue
            for entry in rec.entries:
                if entry.kind is IntentKind.WRITE:
                    self.backup.restore(entry.offset, entry.size)
                    report.restored_ranges.append((entry.offset, entry.size))
            device.fence()
            self.log.free_slot_by_index(rec.index)
            report.rolled_back += 1
        for rec in records:
            if rec.state is not SlotState.COMMITTED:
                continue
            if lazy:
                self._requeue_committed(rec, report)
                continue
            if self.coalesce_sync:
                self.backup.absorb_entries(rec.entries)
            else:
                for entry in rec.entries:
                    if entry.kind is IntentKind.FREE:
                        self.backup.on_free_synced(entry.offset, entry.size)
                    else:
                        self.backup.absorb(entry.offset, entry.size)
            device.fence()
            self.log.free_slot_by_index(rec.index)
            report.rolled_forward += 1
        return report

    def _verify_recovery_sources(self, device, records) -> None:
        """Checksum-verify every line recovery is about to copy *from*.

        Rollback copies backup→main, roll-forward copies main→backup;
        blindly replaying either from a decayed source would launder
        media corruption into "recovered" state.  A corrupt rollback
        source raises :class:`IntegrityError` (the backup can still be
        rebuilt from a peer); a corrupt roll-forward source raises
        :class:`BothCopiesLostError` (the backup is stale for committed
        data, so no local copy is good).
        """
        from ..integrity.scrub import verify_ranges

        heap = self.heap_region
        mirror = getattr(self.backup, "region", None)
        if mirror is not None and mirror.size != heap.size:
            mirror = None  # not a full offset-identity mirror
        back_ranges: List[Tuple[int, int]] = []
        main_ranges: List[Tuple[int, int]] = []
        for rec in records:
            if rec.state is SlotState.COMMITTED:
                for entry in rec.entries:
                    if entry.kind is not IntentKind.FREE:
                        main_ranges.append((heap.offset + entry.offset, entry.size))
            elif mirror is not None:
                for entry in rec.entries:
                    if entry.kind is IntentKind.WRITE:
                        back_ranges.append((mirror.offset + entry.offset, entry.size))
        bad = verify_ranges(device, back_ranges)
        if bad:
            raise IntegrityError(
                f"recovery rollback source (backup) failed checksum on "
                f"{len(bad)} line(s): {bad[:8]}",
                lines=bad,
            )
        bad = verify_ranges(device, main_ranges)
        if bad:
            raise BothCopiesLostError(
                f"recovery roll-forward source (main) failed checksum on "
                f"{len(bad)} line(s) of committed data; backup is stale: {bad[:8]}",
                lines=bad,
            )

    def _requeue_committed(self, rec, report: RecoveryReport) -> None:
        """Rebuild the sync task + pending locks for a committed slot."""
        log = TxLog(self.log, rec.index, rec.txid)
        log._state = SlotState.COMMITTED
        log.entries = list(rec.entries)
        log._durable_entries = len(rec.entries)
        log._touched_nvm = True
        # the slot stays occupied until its sync lands; remove it from
        # the free pool the LogManager rebuilt at open()
        with self.log._free_cond:
            if rec.index in self.log._free:
                self.log._free.remove(rec.index)
        write_offsets = set()
        for entry in rec.entries:
            write_offsets.add(entry.offset)
            self.backup.pin(entry.offset)
            self.locks.force_pending(entry.offset)
        self._queue.append(_SyncTask(log, list(rec.entries), write_offsets))
        report.rolled_forward += 1


@register_engine(
    "kamino-simple",
    capabilities=EngineCapabilities(
        description="atomic in-place updates, full heap mirror synced off the critical path",
        copies_in_critical_path=False,
        has_backup=True,
        locks_released_after_sync=True,
        cost_profile="kamino",
    ),
)
def kamino_simple(**kwargs) -> KaminoEngine:
    """Kamino-Tx-Simple: in-place updates with a full heap mirror."""
    engine = KaminoEngine(backup=FullBackup(), **kwargs)
    engine.name = "kamino-simple"
    return engine
