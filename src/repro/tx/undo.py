"""Undo-logging engine: the paper's baseline (unmodified Intel NVML).

``TX_ADD`` copies the object's *current* bytes into the log's data area
**in the critical path** — exactly the overhead Kamino-Tx eliminates.
Commit point: the slot's durable transition to FREE after the modified
data is flushed (NVML discards the undo log to commit).  Any non-FREE
slot found at recovery is an incomplete transaction and is rolled back
from its captured undo data.
"""

from __future__ import annotations

from ..errors import TxError
from ..runtime.registry import EngineCapabilities, register_engine
from .base import IntentKind, RecoveryReport, Transaction
from ._common import LockingLogEngine


@register_engine(
    "undo",
    capabilities=EngineCapabilities(
        description="NVML-style undo logging: old bytes captured in the critical path",
        copies_in_critical_path=True,
        cost_profile="undo",
    ),
)
class UndoLogEngine(LockingLogEngine):
    """NVML-style undo logging; see module docstring."""

    name = "undo"
    copies_in_critical_path = True
    uses_log = True

    def __init__(
        self,
        n_slots: int = 64,
        max_entries: int = 256,
        log_data_bytes: int = 64 * 1024,
        lock_timeout: float = 10.0,
    ):
        super().__init__(n_slots, max_entries, lock_timeout)
        self.log_data_bytes = log_data_bytes

    # -- intents -----------------------------------------------------------------

    def on_add(self, tx: Transaction, offset: int, size: int, kind: IntentKind) -> None:
        if kind is IntentKind.WRITE:
            # critical-path copy: allocate log space, copy old data, flush
            self._phase("lock_data")
            log = self._txlog(tx)
            data_off = log.reserve_data(size)
            log_region = self.log.region
            device = log_region.pool.device
            device.copy(
                log_region.offset + data_off, self.heap_region.offset + offset, size
            )
            log_region.flush(data_off, size)
            device.fence()
            self._phase("copy_data")
            self._record_intent(tx, offset, size, kind, data_off)
        else:
            # fresh allocations and frees capture no old data
            self._record_intent(tx, offset, size, kind, 0)

    # -- outcomes -------------------------------------------------------------------

    def commit(self, tx: Transaction) -> None:
        log = self._txlog(tx)
        self._apply_deferred_frees(tx)
        log.make_durable()
        self._phase("edit_orig")
        self._flush_modified_ranges(tx)
        self._phase("flush_data")
        # durable FREE is the commit point: the undo data is discarded
        log.release()
        self._phase("delete_copy")
        self._release_all(tx)
        self._phase("unlock_data")

    def abort(self, tx: Transaction) -> None:
        log = self._txlog(tx)
        device = self.heap_region.pool.device
        restored = False
        for entry in log.entries:
            if entry.kind is not IntentKind.WRITE:
                continue
            device.copy(
                self.heap_region.offset + entry.offset,
                self.log.region.offset + entry.data_off,
                entry.size,
            )
            self.heap_region.flush(entry.offset, entry.size)
            restored = True
        if restored:
            device.fence()
        log.release()
        self._release_all(tx)

    # -- recovery ------------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        report = RecoveryReport()
        device = self.heap_region.pool.device
        for rec in self.log.scan():
            for entry in rec.entries:
                if entry.kind is not IntentKind.WRITE:
                    continue
                device.copy(
                    self.heap_region.offset + entry.offset,
                    self.log.region.offset + entry.data_off,
                    entry.size,
                )
                self.heap_region.flush(entry.offset, entry.size)
                report.restored_ranges.append((entry.offset, entry.size))
            device.fence()
            self.log.free_slot_by_index(rec.index)
            report.rolled_back += 1
        return report


@register_engine(
    "nolog",
    capabilities=EngineCapabilities(
        description="in-place writes with no atomicity (crash-unsafe cost floor)",
        copies_in_critical_path=False,
        recoverable=False,
        cost_profile="nolog",
    ),
)
class NoLoggingEngine(LockingLogEngine):
    """Unsafe baseline for the Figure 1 motivation: no atomicity at all.

    Writes go in place with no captured state, so aborts are impossible
    and a crash mid-transaction leaves a torn heap.  Only suitable for
    measuring the raw cost floor of the data path.
    """

    name = "nolog"
    copies_in_critical_path = False
    uses_log = False

    def on_add(self, tx: Transaction, offset: int, size: int, kind: IntentKind) -> None:
        if size <= 0:
            raise TxError(f"write intent must have positive size, got {size}")
        self.locks.acquire_write(tx.txid, offset)
        tx.intents.append((offset, size, kind))
        tx.write_set.add(offset)

    def commit(self, tx: Transaction) -> None:
        self._apply_deferred_frees(tx)
        self._flush_modified_ranges(tx)
        self._release_all(tx)

    def abort(self, tx: Transaction) -> None:
        raise TxError("the no-logging engine cannot roll back; aborts are unsupported")

    def recover(self) -> RecoveryReport:
        return RecoveryReport()
