"""Volatile object-level reader-writer locks with deferred release.

Kamino-Tx's safety argument (§3, Safety 1 & 2) rests on the Transaction
Coordinator holding each object's lock until the main and backup copies
agree on that object.  This lock table implements that discipline:

* write locks are taken when a write intent is declared (``TX_ADD``);
* read locks are taken on transactional reads;
* at commit, a Kamino engine marks its write locks *pending* instead of
  releasing them — the lock is only released once the asynchronous
  backup sync for that object completes;
* a later transaction that touches a pending object is a **dependent
  transaction**; it either waits for the syncer or triggers an on-demand
  sync (the "copy in the critical path if not already copied" case).

Locks are deliberately volatile (the paper keeps them in DRAM, §3):
after a crash they are rebuilt from the persistent intent logs during
recovery.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from ..errors import LockTimeoutError


@dataclass
class LockStats:
    """Counters describing contention, exposed to benchmarks."""

    write_acquires: int = 0
    read_acquires: int = 0
    dependent_waits: int = 0  # acquisitions that found the object pending
    conflict_waits: int = 0  # acquisitions that found an active holder
    on_demand_syncs: int = 0  # pending conflicts resolved synchronously


@dataclass(slots=True)
class _Entry:
    writer: Optional[int] = None  # holding txid
    readers: Set[int] = field(default_factory=set)
    pending_sync: bool = False  # writer committed, backup not yet caught up


class _PlainSync:
    """Drop-in for the table's lock/condition when the driver guarantees
    a single thread (``lock_mode="uncontended"``).

    Enter/exit and notify are no-ops; a wait can never be satisfied by
    another thread, so it just burns its timeout and lets the caller's
    deadline logic raise the same :class:`LockTimeoutError` the locked
    mode would eventually raise.  The locking *logic* (entries, pending
    flags, stats) is untouched — only the thread-synchronisation cost is
    elided, exactly like the device's uncontended mode.
    """

    __slots__ = ()

    def __enter__(self) -> "_PlainSync":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def acquire(self) -> None:
        pass

    def release(self) -> None:
        pass

    def notify(self, n: int = 1) -> None:
        pass

    def notify_all(self) -> None:
        pass

    def wait(self, timeout: Optional[float] = None) -> bool:
        if timeout:
            import time

            time.sleep(timeout)
        return False

    def wait_for(self, predicate, timeout: Optional[float] = None) -> bool:
        result = predicate()
        if not result and timeout:
            import time

            time.sleep(timeout)
            result = predicate()
        return result


_PLAIN_SYNC = _PlainSync()


class ObjectLockTable:
    """Per-offset reader-writer locks keyed by range start offset.

    Args:
        resolver: optional callable ``resolver(offset) -> None`` invoked
            when an acquisition hits a *pending* lock; it must complete
            the backup sync for that offset (on-demand sync).  When no
            resolver is installed the acquirer blocks until a background
            syncer releases the lock.
        timeout: seconds to wait on a conflicting holder before raising
            :class:`~repro.errors.LockTimeoutError` (deadlock escape).
    """

    def __init__(self, resolver: Optional[Callable[[int], None]] = None, timeout: float = 10.0):
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._entries: Dict[int, _Entry] = {}
        self._resolver = resolver
        self._timeout = timeout
        self.stats = LockStats()

    def set_resolver(self, resolver: Optional[Callable[[int], None]]) -> None:
        self._resolver = resolver

    def set_mode(self, mode: str) -> None:
        """Switch thread-synchronisation on (``"locked"``) or off
        (``"uncontended"``, single-threaded drivers only).  Lock *logic*
        and stats are identical in both modes."""
        if mode == "uncontended":
            self._mutex = _PLAIN_SYNC  # type: ignore[assignment]
            self._cond = _PLAIN_SYNC  # type: ignore[assignment]
        elif mode == "locked":
            self._mutex = threading.Lock()
            self._cond = threading.Condition(self._mutex)
        else:
            raise ValueError(f"unknown lock mode '{mode}'")

    # -- acquisition ---------------------------------------------------------

    def acquire_write(self, txid: int, offset: int) -> None:
        """Take the exclusive lock on ``offset`` for ``txid``.

        Reentrant for the same transaction and upgrades a sole read lock.
        Blocks (or resolves on demand) while the object is pending sync.
        """
        deadline = None
        with self._cond:
            self.stats.write_acquires += 1
            entry = self._entries.get(offset)
            if entry is None:
                # uncontested claim: the dominant case by far
                self._entries[offset] = _Entry(writer=txid)
                return
            if entry.writer == txid and not entry.pending_sync:
                return  # reentrant
            while True:
                entry = self._entries.get(offset)
                if entry is None:
                    self._entries[offset] = _Entry(writer=txid)
                    return
                if entry.writer == txid and not entry.pending_sync:
                    return  # reentrant
                other_readers = entry.readers - {txid}
                if entry.pending_sync:
                    self.stats.dependent_waits += 1
                    if self._resolver is not None:
                        self.stats.on_demand_syncs += 1
                        self._run_resolver(offset)
                        continue
                elif entry.writer is None and not other_readers:
                    # sole reader (or free): upgrade / claim
                    entry.readers.discard(txid)
                    entry.writer = txid
                    return
                else:
                    self.stats.conflict_waits += 1
                deadline = self._wait(deadline, offset)

    def acquire_read(self, txid: int, offset: int) -> None:
        """Take a shared lock on ``offset`` for ``txid``."""
        deadline = None
        with self._cond:
            self.stats.read_acquires += 1
            entry = self._entries.get(offset)
            if entry is None:
                # uncontested claim: the dominant case by far
                self._entries[offset] = _Entry(readers={txid})
                return
            if entry.writer == txid:
                return  # writer may read
            if not entry.pending_sync and entry.writer is None:
                entry.readers.add(txid)
                return
            while True:
                entry = self._entries.get(offset)
                if entry is None:
                    self._entries[offset] = _Entry(readers={txid})
                    return
                if entry.writer == txid:
                    return  # writer may read
                if entry.pending_sync:
                    self.stats.dependent_waits += 1
                    if self._resolver is not None:
                        self.stats.on_demand_syncs += 1
                        self._run_resolver(offset)
                        continue
                elif entry.writer is None:
                    entry.readers.add(txid)
                    return
                else:
                    self.stats.conflict_waits += 1
                deadline = self._wait(deadline, offset)

    def _run_resolver(self, offset: int) -> None:
        """Invoke the on-demand sync outside the table mutex."""
        resolver = self._resolver
        self._cond.release()
        try:
            resolver(offset)
        finally:
            self._cond.acquire()

    def _wait(self, deadline: Optional[float], offset: int) -> float:
        import time

        now = time.monotonic()
        if deadline is None:
            deadline = now + self._timeout
        if now >= deadline:
            raise LockTimeoutError(f"timed out waiting for lock on offset {offset}")
        self._cond.wait(timeout=min(0.05, deadline - now))
        return deadline

    def acquire_write_many(self, txid: int, offsets) -> None:
        """Take several write locks in canonical (ascending) order.

        The deadlock-avoidance discipline shared with
        :class:`~repro.tx.striped_locks.StripedLockTable`: every
        multi-lock acquirer climbs the same global offset order, so the
        waits-for graph cannot contain a cycle.
        """
        for offset in sorted(set(offsets)):
            self.acquire_write(txid, offset)

    # -- release ---------------------------------------------------------------

    def release_write_many(self, txid: int, offsets) -> None:
        for offset in sorted(set(offsets)):
            self.release_write(txid, offset)

    def release_read(self, txid: int, offset: int) -> None:
        with self._cond:
            entry = self._entries.get(offset)
            if entry is None:
                return
            entry.readers.discard(txid)
            self._gc(offset, entry)
            self._cond.notify_all()

    def release_write(self, txid: int, offset: int) -> None:
        """Fully release a write lock (undo/CoW engines at tx end)."""
        with self._cond:
            entry = self._entries.get(offset)
            if entry is None or entry.writer != txid:
                return
            entry.writer = None
            entry.pending_sync = False
            self._gc(offset, entry)
            self._cond.notify_all()

    def mark_pending(self, txid: int, offset: int) -> None:
        """Keep the write lock held after commit until the sync lands."""
        with self._cond:
            entry = self._entries.get(offset)
            if entry is not None and entry.writer == txid:
                entry.pending_sync = True

    def release_pending(self, offset: int) -> None:
        """Release a pending lock once the backup is consistent."""
        with self._cond:
            entry = self._entries.get(offset)
            if entry is None or not entry.pending_sync:
                return
            entry.writer = None
            entry.pending_sync = False
            self._gc(offset, entry)
            self._cond.notify_all()

    def force_pending(self, offset: int) -> None:
        """Recreate a pending lock during crash recovery (no owner tx)."""
        with self._cond:
            self._entries[offset] = _Entry(writer=-1, pending_sync=True)

    def _gc(self, offset: int, entry: _Entry) -> None:
        if entry.writer is None and not entry.readers and not entry.pending_sync:
            self._entries.pop(offset, None)

    # -- introspection -----------------------------------------------------------

    def is_pending(self, offset: int) -> bool:
        with self._mutex:
            entry = self._entries.get(offset)
            return bool(entry and entry.pending_sync)

    def is_locked(self, offset: int) -> bool:
        with self._mutex:
            entry = self._entries.get(offset)
            return bool(entry and (entry.writer is not None or entry.readers))

    def holder(self, offset: int) -> Optional[int]:
        with self._mutex:
            entry = self._entries.get(offset)
            return entry.writer if entry else None

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)
