"""Atomicity engines: undo, copy-on-write, no-logging, and Kamino-Tx."""

from .backup import BACKUP_REGION, BackupStrategy, BackupSyncer, FullBackup
from .base import (
    AtomicityEngine,
    IntentKind,
    RecoveryReport,
    Transaction,
    TxState,
    run_transaction,
)
from .cow import CoWEngine
from .dynamic import DynamicBackup, kamino_dynamic
from .intent_log import ENTRY_SIZE, IntentEntry, LogManager, SlotState, TxLog
from .kamino import KaminoEngine, kamino_simple
from .locks import LockStats, ObjectLockTable
from .recovery import reopen_after_crash, verify_backup_consistency
from .undo import NoLoggingEngine, UndoLogEngine

__all__ = [
    "AtomicityEngine",
    "BACKUP_REGION",
    "BackupStrategy",
    "BackupSyncer",
    "CoWEngine",
    "DynamicBackup",
    "ENTRY_SIZE",
    "FullBackup",
    "IntentEntry",
    "IntentKind",
    "KaminoEngine",
    "LockStats",
    "LogManager",
    "NoLoggingEngine",
    "ObjectLockTable",
    "RecoveryReport",
    "SlotState",
    "Transaction",
    "TxLog",
    "TxState",
    "UndoLogEngine",
    "kamino_dynamic",
    "kamino_simple",
    "reopen_after_crash",
    "run_transaction",
    "verify_backup_consistency",
]

ENGINE_FACTORIES = {
    "nolog": NoLoggingEngine,
    "undo": UndoLogEngine,
    "cow": CoWEngine,
    "kamino-simple": kamino_simple,
    "kamino-dynamic": kamino_dynamic,
}


def make_engine(name: str, **kwargs) -> AtomicityEngine:
    """Build an engine by its benchmark name (see ``ENGINE_FACTORIES``)."""
    try:
        factory = ENGINE_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine '{name}'; choose from {sorted(ENGINE_FACTORIES)}"
        ) from None
    return factory(**kwargs)
