"""Atomicity engines: undo, copy-on-write, no-logging, and Kamino-Tx.

Engines self-register with :mod:`repro.runtime.registry` via the
``@register_engine`` decorator; importing this package pulls in every
builtin module, which is how the registry's lazy loader materialises
them.  :func:`make_engine` and ``ENGINE_FACTORIES`` are re-exported here
for compatibility — the registry is the single source of truth.
"""

from ..runtime.registry import make_engine, registered_engines
from .backup import BACKUP_REGION, BackupStrategy, BackupSyncer, FullBackup
from .base import (
    AtomicityEngine,
    IntentKind,
    RecoveryReport,
    Transaction,
    TxState,
    run_transaction,
)
from .cow import CoWEngine
from .dynamic import DynamicBackup, kamino_dynamic
from .finegrained import FineGrainedKaminoEngine, kamino_finegrained
from .intent_log import ENTRY_SIZE, IntentEntry, LogManager, SlotState, TxLog
from .kamino import KaminoEngine, kamino_simple
from .locks import LockStats, ObjectLockTable
from .nvtraverse import NVTraverseEngine, nvtraverse
from .recovery import reopen_after_crash, verify_backup_consistency
from .striped_locks import LockTableStats, StripedLockTable
from .undo import NoLoggingEngine, UndoLogEngine

__all__ = [
    "AtomicityEngine",
    "BACKUP_REGION",
    "BackupStrategy",
    "BackupSyncer",
    "CoWEngine",
    "DynamicBackup",
    "ENGINE_FACTORIES",
    "ENTRY_SIZE",
    "FineGrainedKaminoEngine",
    "FullBackup",
    "IntentEntry",
    "IntentKind",
    "KaminoEngine",
    "LockStats",
    "LockTableStats",
    "LogManager",
    "NVTraverseEngine",
    "NoLoggingEngine",
    "ObjectLockTable",
    "RecoveryReport",
    "SlotState",
    "StripedLockTable",
    "Transaction",
    "TxLog",
    "TxState",
    "UndoLogEngine",
    "kamino_dynamic",
    "kamino_finegrained",
    "kamino_simple",
    "nvtraverse",
    "make_engine",
    "reopen_after_crash",
    "run_transaction",
    "verify_backup_consistency",
]

def __getattr__(name):
    """Legacy view of the registry (name -> factory), computed on demand.

    A static snapshot would miss registrations the registry defers past
    the bootstrap import (the replication package's in-place engine).
    Prefer :func:`repro.runtime.registry.registered_engines`, which also
    carries each engine's capabilities.
    """
    if name == "ENGINE_FACTORIES":
        return {info.name: info.factory for info in registered_engines().values()}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
