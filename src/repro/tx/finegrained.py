"""Kamino-Tx with fine-grained (striped) object locking.

The baseline Kamino engines are already *logically* fine-grained — the
lock table holds one entry per object offset — but every entry shares a
single mutex/condition, so concurrent clients serialise through the
table even when their write sets are disjoint.  This engine swaps in a
:class:`~repro.tx.striped_locks.StripedLockTable` over the dynamic
(α-sized) backup: disjoint transactions take disjoint stripe mutexes
and proceed truly in parallel, the *Persistent HyTM fast-path
fine-grained locking* design point (PAPERS.md).

Everything durable is inherited unchanged from
:class:`~repro.tx.kamino.KaminoEngine`: the intent log, the in-place
stores, the commit record, the asynchronous backup sync, and recovery.
Locks are volatile, so under a single uncontended client this engine is
**bit-identical** to ``kamino-dynamic`` — same durable bytes, same
``NVMStats``, same crash fingerprints — which the differential test
(``tests/tx/test_finegrained_differential.py``) pins.  The win is pure
software-serialisation cost, modelled by the ``kamino-finegrained``
cost profile and measured by the contended-YCSB battery.

Deadlock discipline: incremental single-lock acquisition keeps the
baseline's timeout escape; any batch acquisition goes through the
table's canonical ascending-offset order
(:meth:`~repro.tx.striped_locks.StripedLockTable.acquire_write_many`),
and the commit/sync paths touch offsets in sorted order so pending
marks and releases follow the same global order.
"""

from __future__ import annotations

from ..runtime.registry import EngineCapabilities, register_engine
from .base import Transaction
from .dynamic import DynamicBackup
from .intent_log import SlotState
from .kamino import KaminoEngine, _SyncTask
from .striped_locks import LockTableStats, StripedLockTable


class FineGrainedKaminoEngine(KaminoEngine):
    """Kamino-Tx-Dynamic with a striped per-object lock table.

    Args:
        alpha: backup capacity fraction (as in ``kamino-dynamic``).
        stripes: number of independent lock-table stripes.
        Remaining keyword arguments are forwarded to
        :class:`~repro.tx.kamino.KaminoEngine`.
    """

    name = "kamino-finegrained"

    def __init__(self, alpha: float = 0.5, stripes: int = 16, **kwargs):
        backup = kwargs.pop("backup", None)
        if backup is None:
            backup = DynamicBackup(alpha=alpha)
        lock_timeout = kwargs.get("lock_timeout", 10.0)
        super().__init__(backup=backup, **kwargs)
        self.stripes = stripes
        self.locks = StripedLockTable(stripes, timeout=lock_timeout)
        self.locks.set_resolver(self._resolve_pending)

    def commit(self, tx: Transaction) -> None:
        """Identical to the base commit except lock-table traffic follows
        the canonical ascending-offset order (sorted write set)."""
        log = self._txlog(tx)
        if not tx.intents and not tx.deferred_frees:
            log.release()
            self._release_reads(tx)
            return
        self._apply_deferred_frees(tx)
        log.make_durable()
        self._phase("edit_orig")
        self._flush_modified_ranges(tx)
        self._phase("flush_data")
        log.set_state(SlotState.COMMITTED)  # durable commit point
        self._phase("commit_record")
        for off in sorted(tx.write_set):
            self.locks.mark_pending(tx.txid, off)
        self._release_reads(tx)
        task = _SyncTask(log, list(log.entries), set(tx.write_set))
        self._queue.append(task)
        if self.eager_sync:
            self.sync_pending()

    def _release_reads(self, tx: Transaction) -> None:
        for off in sorted(tx.read_set - tx.write_set):
            self.locks.release_read(tx.txid, off)

    def _release_writes(self, tx: Transaction) -> None:
        for off in sorted(tx.write_set):
            self.locks.release_write(tx.txid, off)

    def lock_stats(self) -> LockTableStats:
        """Aggregated striped lock-table counters (NVMStats idiom)."""
        return self.locks.stats_snapshot()


@register_engine(
    "kamino-finegrained",
    capabilities=EngineCapabilities(
        description=(
            "kamino-dynamic with a striped per-object lock table: disjoint "
            "write sets never serialise on lock-table internals"
        ),
        copies_in_critical_path=False,
        has_backup=True,
        locks_released_after_sync=True,
        cost_profile="kamino-finegrained",
        options=("alpha", "stripes"),
    ),
)
def kamino_finegrained(
    alpha: float = 0.5, stripes: int = 16, **kwargs
) -> FineGrainedKaminoEngine:
    """Kamino-Tx with fine-grained striped locking over an α-sized backup."""
    return FineGrainedKaminoEngine(alpha=alpha, stripes=stripes, **kwargs)
