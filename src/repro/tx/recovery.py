"""Recovery driver and consistency checking utilities.

Engines own their recovery logic (:meth:`AtomicityEngine.recover`); this
module provides the orchestration used by operators and tests: reopening
a crashed pool end-to-end, and verifying the Kamino invariant that main
and backup agree wherever no transaction is in flight.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import RecoveryError
from ..nvm.device import NVMDevice
from ..nvm.pool import PmemPool
from .base import AtomicityEngine, RecoveryReport


def reopen_after_crash(device: NVMDevice, engine_factory: Callable[[], AtomicityEngine]):
    """Restart a crashed device and reopen its heap, running recovery.

    Returns ``(heap, engine, report)``; ``engine_factory`` must build an
    engine configured identically to the one in use before the crash
    (same scheme and α — just as a real system restarts with the same
    binary and config).
    """
    from ..heap.heap import PersistentHeap

    if device.crashed:
        device.restart()
    pool = PmemPool.open(device)
    engine = engine_factory()
    heap = PersistentHeap.open(pool, engine)
    report = getattr(engine, "last_recovery_report", None)
    if report is None:
        # PersistentHeap.open already ran recover(); run again (idempotent)
        # to obtain a report object for callers that want one.
        report = engine.recover()
    return heap, engine, report


def verify_backup_consistency(heap, sample_every: int = 1) -> None:
    """Assert main == backup across the heap region (Kamino invariant).

    Only valid while no transactions are in flight and the sync queue is
    drained.  For the dynamic backup, each cached entry is checked
    against its main-heap bytes.  Raises :class:`RecoveryError` on any
    divergence — this is the workhorse of the property-based crash tests.
    """
    engine = heap.engine
    backup = getattr(engine, "backup", None)
    if backup is None:
        return  # engine has no backup to be consistent with
    if engine.pending_count:
        raise RecoveryError("verify called with pending sync work")
    from .backup import FullBackup

    if isinstance(backup, FullBackup):
        step = 4096 * max(1, sample_every)
        for off in range(0, heap.region.size, step):
            size = min(4096, heap.region.size - off)
            if backup.region.read(off, size) != heap.region.read(off, size):
                raise RecoveryError(f"backup diverges from main at offset {off}")
        return
    # dynamic backup: validate every cached copy
    for heap_off, (_i, backup_off, size, _slot) in backup.lookup.index.items():
        main = heap.region.read(heap_off, size)
        copy = backup.region.read(backup_off, size)
        if main != copy:
            raise RecoveryError(
                f"dynamic backup copy of offset {heap_off} diverges from main"
            )
