"""Recovery driver and consistency checking utilities.

Engines own their recovery logic (:meth:`AtomicityEngine.recover`); this
module provides the orchestration used by operators and tests: reopening
a crashed pool end-to-end, and verifying the Kamino invariant that main
and backup agree wherever no transaction is in flight.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import RecoveryError
from ..nvm.device import NVMDevice
from ..nvm.pool import PmemPool
from .base import AtomicityEngine, RecoveryReport


def reopen_after_crash(device: NVMDevice, engine_factory: Callable[[], AtomicityEngine]):
    """Restart a crashed device and reopen its heap, running recovery.

    Returns ``(heap, engine, report)``; ``engine_factory`` must build an
    engine configured identically to the one in use before the crash
    (same scheme and α — just as a real system restarts with the same
    binary and config).

    When a protected :class:`~repro.integrity.model.MediaFaultModel` is
    attached to the device, recovery checksum-verifies the lines it is
    about to copy from (inside :meth:`KaminoEngine.recover`, raising
    typed :class:`~repro.errors.MediaError`\\ s rather than replaying
    corrupt bytes) and a full scrub pass runs right after the heap
    opens; its report is stashed as ``engine.last_scrub_report``.
    """
    from ..heap.heap import PersistentHeap

    if device.crashed:
        device.restart()
    pool = PmemPool.open(device)
    engine = engine_factory()
    media = getattr(device, "media", None)
    if media is not None:
        pool.load_quarantine(media)
        if media.tree is not None:
            # land on a verifiable integrity tree before any recovery
            # copy consults it: replay the pending leaf log, rebuild the
            # (volatile) interior, and check the rebuilt root against
            # the published root — raises RootMismatchError rather than
            # proceeding with a tree it cannot verify.
            media.tree.recover(device._durable)
    heap = PersistentHeap.open(pool, engine)
    report = getattr(engine, "last_recovery_report", None)
    if report is None:
        # PersistentHeap.open already ran recover(); run again (idempotent)
        # to obtain a report object for callers that want one.
        report = engine.recover()
    if media is not None and media.protected:
        from ..integrity.scrub import Scrubber

        engine.last_scrub_report = Scrubber(
            device, pool=pool, engine=engine
        ).scrub_once()
    return heap, engine, report


def verify_backup_consistency(heap, sample_every: int = 1) -> None:
    """Assert main == backup over all *live* heap bytes (Kamino invariant).

    Only valid while no transactions are in flight and the sync queue is
    drained.  The full mirror is compared over the allocator metadata and
    every allocated block (:meth:`SlabAllocator.live_ranges`) — free
    space is exempt, because rolling back a crashed allocation restores
    only the bitmap word, legitimately leaving the never-allocated
    block's torn contents behind in main.  For the dynamic backup, each
    cached entry is checked against its main-heap bytes.  Raises
    :class:`RecoveryError` on any divergence — this is the workhorse of
    the property-based crash tests and the crash checker's backup oracle.
    """
    engine = heap.engine
    backup = getattr(engine, "backup", None)
    if backup is None:
        return  # engine has no backup to be consistent with
    if engine.pending_count:
        raise RecoveryError("verify called with pending sync work")
    from .backup import FullBackup

    if isinstance(backup, FullBackup):
        allocator = getattr(heap, "allocator", None)
        ranges = (
            allocator.live_ranges()
            if allocator is not None
            else [(0, heap.region.size)]
        )
        step = 4096 * max(1, sample_every)
        for start, length in ranges:
            for off in range(start, start + length, step):
                size = min(4096, start + length - off)
                if backup.region.read(off, size) != heap.region.read(off, size):
                    raise RecoveryError(f"backup diverges from main at offset {off}")
        return
    # dynamic backup: validate every cached copy
    for heap_off, (_i, backup_off, size, _slot) in backup.lookup.index.items():
        main = heap.region.read(heap_off, size)
        copy = backup.region.read(backup_off, size)
        if main != copy:
            raise RecoveryError(
                f"dynamic backup copy of offset {heap_off} diverges from main"
            )
