"""Transaction core: the engine interface every atomicity scheme implements.

The paper's implementation hooks Intel NVML's transactional primitives
(Table 2): ``TX_BEGIN``, ``TX_ADD`` (declare write intent), ``TX_ZALLOC``,
``TX_FREE``, ``TX_COMMIT``, ``TX_ABORT``.  This module defines the same
hook surface as an abstract :class:`AtomicityEngine`; the undo-logging
baseline, the copy-on-write baseline, and the two Kamino-Tx engines are
drop-in implementations, so the heap, data structures, and workloads above
them are byte-for-byte identical across schemes — exactly the experimental
methodology of the paper.

Engines operate on *ranges* ``(offset, size)`` of the heap region rather
than typed objects: allocator metadata words, object headers, and object
payloads all participate in atomicity uniformly ("allocations and
deallocations are simply treated as modifications to persistent metadata
objects", §6.1).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from enum import Enum
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import TxAborted, TxError
from ..nvm.pool import PmemPool, PmemRegion


class IntentKind(Enum):
    """What a declared write intent means for rollback/roll-forward.

    ``WRITE`` — an in-place modification of existing bytes; rollback must
    restore the old contents, roll-forward must propagate the new ones.
    ``ALLOC`` — a freshly allocated block; its *contents* need no undo
    data (rollback is handled by undoing the allocator bitmap write, which
    is itself a ``WRITE`` intent), but roll-forward must still propagate
    the initialised contents to the backup.
    ``FREE`` — a block freed by this transaction; the actual bitmap clear
    is applied at commit time as a ``WRITE``.
    """

    WRITE = 1
    ALLOC = 2
    FREE = 3


class TxState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """A single atomic unit of work against one heap.

    Created by :meth:`AtomicityEngine.begin`; applications normally use
    the heap's context-manager API instead of touching this directly.
    """

    _ids = itertools.count(1)

    def __init__(self, engine: "AtomicityEngine"):
        self.engine = engine
        self.txid: int = next(Transaction._ids)
        self.state: TxState = TxState.ACTIVE
        self.depth: int = 1  # flat nesting, NVML-style
        #: ordered write intents: (offset, size, kind)
        self.intents: List[Tuple[int, int, IntentKind]] = []
        #: offsets (range starts) this transaction write-locked
        self.write_set: Set[int] = set()
        #: offsets this transaction read-locked
        self.read_set: Set[int] = set()
        #: blocks scheduled for deallocation at commit: (block_off, size)
        self.deferred_frees: List[Tuple[int, int]] = []
        #: callbacks run after a successful commit (volatile bookkeeping)
        self.on_commit: List[Callable[[], None]] = []
        #: callbacks run after an abort (volatile bookkeeping rollback)
        self.on_abort: List[Callable[[], None]] = []
        #: scratch area engines may hang per-transaction state on
        self.engine_state: Dict[str, object] = {}

    # -- intent declaration --------------------------------------------------

    def add(self, offset: int, size: int, kind: IntentKind = IntentKind.WRITE) -> None:
        """Declare a write intent for ``[offset, offset+size)`` (TX_ADD)."""
        self._require_active()
        self.engine.on_add(self, offset, size, kind)

    def note_read(self, offset: int, size: int) -> None:
        """Declare a read of ``[offset, offset+size)`` (isolation only)."""
        self._require_active()
        self.engine.on_read(self, offset, size)

    def has_intent(self, offset: int) -> bool:
        """True if a write intent starting at ``offset`` was declared."""
        return offset in self.write_set

    def covers_write(self, offset: int, size: int) -> bool:
        """True if ``[offset, offset+size)`` lies inside a declared intent."""
        for ioff, isize, _kind in self.intents:
            if ioff <= offset and offset + size <= ioff + isize:
                return True
        return False

    # -- outcome ---------------------------------------------------------------

    def commit(self) -> None:
        """Commit (outermost level of a flat-nested transaction)."""
        self._require_active()
        if self.depth > 1:
            self.depth -= 1
            return
        self.engine.commit(self)
        self.state = TxState.COMMITTED
        for cb in self.on_commit:
            cb()
        hook = getattr(self.engine, "trace_hook", None)
        if hook is not None:
            hook(self)

    def abort(self) -> None:
        """Abort and roll back; raises :class:`TxAborted` on nested abort."""
        self._require_active()
        self.engine.abort(self)
        self.state = TxState.ABORTED
        # reverse order: later volatile changes undone first, like a log
        for cb in reversed(self.on_abort):
            cb()

    def _require_active(self) -> None:
        if self.state is not TxState.ACTIVE:
            raise TxError(f"transaction {self.txid} is {self.state.value}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tx {self.txid} {self.state.value} intents={len(self.intents)}>"


class AtomicityEngine(ABC):
    """Interface between the persistent heap and an atomicity scheme.

    Lifecycle: construct → :meth:`attach` (reserve regions on the pool;
    also the reopen path) → optionally :meth:`recover` → serve
    transactions.  ``sync_pending`` drains any asynchronous work the
    scheme defers off the critical path (a no-op for critical-path
    schemes like undo logging).
    """

    #: short identifier used in benchmark output
    name: str = "abstract"

    #: True if the scheme copies data in the transaction's critical path
    copies_in_critical_path: bool = True

    #: optional callback invoked with each committed Transaction — the
    #: benchmark harness uses it to capture read/write sets
    trace_hook = None

    @abstractmethod
    def attach(self, pool: PmemPool, heap_region: PmemRegion) -> None:
        """Bind to ``pool``, reserving/reopening the engine's regions."""

    @abstractmethod
    def begin(self) -> Transaction:
        """Start a transaction."""

    @abstractmethod
    def on_add(self, tx: Transaction, offset: int, size: int, kind: IntentKind) -> None:
        """Handle a declared write intent (lock + scheme-specific capture)."""

    def on_read(self, tx: Transaction, offset: int, size: int) -> None:
        """Handle a declared read (shared lock); default: no isolation."""

    def before_data_write(self, tx: Transaction) -> None:
        """Called before each in-place store of ``tx``.

        Kamino engines use this to make freshly appended intent-log
        entries durable before the data they cover is modified, batching
        to one flush per add-batch ("minimum number of cache flushes",
        §6.2).  Default: nothing.
        """

    def translate_write(
        self, tx: Optional[Transaction], offset: int, size: int
    ) -> Optional[Tuple[object, int]]:
        """Redirect a store; ``None`` means write the heap in place.

        Copy-on-write engines return ``(region, shadow_offset)`` so edits
        land in the transaction's private copy (Figure 2, middle column).
        In-place engines (undo, Kamino) keep the default.
        """
        return None

    #: True only for engines whose ``translate_read`` can return non-None;
    #: lets the heap's per-load hot path skip the virtual call entirely
    #: for in-place engines (undo, Kamino)
    translates_reads = False

    def translate_read(
        self, tx: Optional[Transaction], offset: int, size: int
    ) -> Optional[Tuple[object, int]]:
        """Redirect a load so a transaction observes its own shadow writes.

        ``None`` means read the heap in place (the default for in-place
        engines and for reads outside any transaction).
        """
        return None

    @abstractmethod
    def commit(self, tx: Transaction) -> None:
        """Make ``tx`` durable and atomic; apply deferred frees."""

    @abstractmethod
    def abort(self, tx: Transaction) -> None:
        """Roll the heap back to the state before ``tx`` started."""

    @abstractmethod
    def recover(self) -> "RecoveryReport":
        """Repair the heap after a crash using persistent log state."""

    def sync_pending(self, limit: Optional[int] = None) -> int:
        """Drain up to ``limit`` units of deferred (off-critical-path) work.

        Returns the number of work items processed.  Engines that do all
        work in the critical path return 0.
        """
        return 0

    @property
    def pending_count(self) -> int:
        """Deferred work items not yet drained."""
        return 0

    def pending_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Heap-relative ``(offset, size)`` ranges whose backup copy is
        stale (committed but not yet synced).  The scrubber must not
        "repair" main from the backup inside these ranges, and the crash
        summary reports them as pending repairs.  Engines with no
        deferred mirror work have none."""
        return ()

    def register_free_handler(self, fn: Callable[["Transaction", int, int], None]) -> None:
        """Install the allocator callback used to apply deferred frees.

        The heap calls this at attach time; engines invoke the handler at
        commit for every ``TX_FREE``'d block (the bitmap clear becomes an
        ordinary transactional write just before the commit record).
        """
        self._free_handler = fn

    def _apply_deferred_frees(self, tx: Transaction) -> None:
        handler = getattr(self, "_free_handler", None)
        if handler is None:
            if tx.deferred_frees:
                raise TxError("deferred frees present but no free handler installed")
            return
        for block_off, size in tx.deferred_frees:
            handler(tx, block_off, size)


class RecoveryReport:
    """Outcome of crash recovery, for tests and operator logging."""

    def __init__(self):
        self.rolled_forward: int = 0
        self.rolled_back: int = 0
        self.incomplete: int = 0
        self.restored_ranges: List[Tuple[int, int]] = []

    def __repr__(self) -> str:
        return (
            f"<Recovery forward={self.rolled_forward} back={self.rolled_back} "
            f"incomplete={self.incomplete}>"
        )


def run_transaction(engine: AtomicityEngine, body: Callable[[Transaction], None]) -> Transaction:
    """Execute ``body`` inside a transaction, committing on success.

    Any exception aborts the transaction;  :class:`TxAborted` is swallowed
    (an intentional abort), everything else propagates after rollback.
    """
    tx = engine.begin()
    try:
        body(tx)
    except TxAborted:
        if tx.state is TxState.ACTIVE:
            tx.abort()
        return tx
    except BaseException:
        if tx.state is TxState.ACTIVE:
            tx.abort()
        raise
    if tx.state is TxState.ACTIVE:
        tx.commit()
    return tx
