"""Simulated message-passing network for the replication layer.

Point-to-point links with configurable one-way latency (the ``ln`` of
Table 1), FIFO ordering per link, and failure injection for the
chain-repair and nemesis tests.  Delivery is an event on the shared
:class:`~repro.sim.events.EventSimulator`, so replica processing
interleaves deterministically with client activity.

Fault surface (all deterministic under a seeded RNG):

* fail-stopped nodes and cut links (the original §5.2 model);
* per-link :class:`LinkFaultPolicy` — probabilistic drop, duplication,
  reordering, latency jitter, and payload corruption.  Corruption is
  *detected*, not silently delivered: every message under an active
  policy carries a checksum, the receiving side verifies it, and a
  mismatch is counted and dropped (the sender learns via timeouts,
  exactly like a real CRC-protected transport);
* named partitions (node groups that cannot cross-talk) and per-node
  delivery slow-down, both heal-able — the verbs the
  :class:`~repro.faults.nemesis.Nemesis` scheduler composes.

All counters live in an :class:`NetStats` with the same
``snapshot()``/``delta()`` contract as
:class:`~repro.nvm.stats.NVMStats`, so oracles can assert over exactly
the window they injected faults into.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .events import EventSimulator

#: default one-way hop latency: ~2 µs, RDMA-class (paper: 32 Gbps IB)
DEFAULT_HOP_NS = 2_000.0


@dataclass(frozen=True)
class LinkFaultPolicy:
    """Probabilistic faults applied to one directed link (or as the
    network-wide default).  Probabilities are independent per message;
    all draws come from the network's seeded RNG, so a run is exactly
    replayable from its seed.

    ``reorder_p`` delays the picked message by a uniform draw from
    ``[jitter_min_ns, jitter_max_ns]`` *on top of* any base jitter,
    letting it overtake later sends on the same link (the FIFO
    guarantee is intentionally broken for it).
    """

    drop_p: float = 0.0
    dup_p: float = 0.0
    reorder_p: float = 0.0
    corrupt_p: float = 0.0
    jitter_min_ns: float = 0.0
    jitter_max_ns: float = 0.0

    @property
    def active(self) -> bool:
        return (
            self.drop_p > 0.0
            or self.dup_p > 0.0
            or self.reorder_p > 0.0
            or self.corrupt_p > 0.0
            or self.jitter_max_ns > 0.0
        )


@dataclass(slots=True)
class NetStats:
    """Message counters, NVMStats-style (``snapshot()`` / ``delta()``).

    ``dropped_link`` — cut links and partitions; ``dropped_node`` — the
    destination is fail-stopped or unregistered; ``dropped_fault`` — a
    fault policy dropped or corrupted the message in flight.

    ``groups`` partitions every counter by the *shard group* the message
    belonged to, for networks shared by many chain groups (see
    :meth:`SimNetwork.assign_group`).  A message is charged to its
    source node's group (destination's when the source has none), so
    per-group drop counters aggregate back to the totals instead of
    double- or under-counting when N groups share one transport.
    ``snapshot()``/``delta()`` carry the partition along, window-style.
    """

    sent: int = 0
    delivered: int = 0
    dropped_link: int = 0
    dropped_node: int = 0
    dropped_fault: int = 0
    corrupted: int = 0
    duplicated: int = 0
    reordered: int = 0
    groups: Dict[str, "NetStats"] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        """Total messages that never reached a handler."""
        return self.dropped_link + self.dropped_node + self.dropped_fault

    def group(self, name: str) -> "NetStats":
        """The counters charged to one group (zeros if never seen)."""
        return self.groups.get(name, NetStats())

    def reset(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped_link = 0
        self.dropped_node = 0
        self.dropped_fault = 0
        self.corrupted = 0
        self.duplicated = 0
        self.reordered = 0
        self.groups = {}

    def snapshot(self) -> "NetStats":
        return NetStats(
            self.sent,
            self.delivered,
            self.dropped_link,
            self.dropped_node,
            self.dropped_fault,
            self.corrupted,
            self.duplicated,
            self.reordered,
            {name: g.snapshot() for name, g in self.groups.items()},
        )

    def delta(self, since: "NetStats") -> "NetStats":
        return NetStats(
            self.sent - since.sent,
            self.delivered - since.delivered,
            self.dropped_link - since.dropped_link,
            self.dropped_node - since.dropped_node,
            self.dropped_fault - since.dropped_fault,
            self.corrupted - since.corrupted,
            self.duplicated - since.duplicated,
            self.reordered - since.reordered,
            {
                name: g.delta(since.groups.get(name, NetStats()))
                for name, g in self.groups.items()
            },
        )


def message_checksum(msg: Any) -> int:
    """CRC32 over the message's canonical text form.

    The protocol messages are frozen dataclasses of ints, strings, and
    bytes, so ``repr`` is a stable serialization; a transport flipping
    payload bits flips the checksum with overwhelming probability."""
    return zlib.crc32(repr(msg).encode("utf-8", "backslashreplace"))


class SimNetwork:
    """Routes messages between named nodes over the event simulator."""

    def __init__(
        self,
        sim: EventSimulator,
        hop_latency_ns: float = DEFAULT_HOP_NS,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.hop_latency_ns = hop_latency_ns
        self.rng = rng if rng is not None else random.Random(0)
        self._handlers: Dict[str, Callable[[str, Any], None]] = {}
        self._down: Set[str] = set()
        self._cut_links: Set[Tuple[str, str]] = set()
        self._policies: Dict[Tuple[str, str], LinkFaultPolicy] = {}
        self._default_policy: Optional[LinkFaultPolicy] = None
        self._node_delay_ns: Dict[str, float] = {}
        self._groups: List[Set[str]] = []
        #: node -> shard-group label for per-group stats partitioning
        self._node_group: Dict[str, str] = {}
        self.stats = NetStats()

    # -- legacy counter views --------------------------------------------------

    @property
    def sent(self) -> int:
        return self.stats.sent

    @property
    def delivered(self) -> int:
        return self.stats.delivered

    @property
    def dropped(self) -> int:
        return self.stats.dropped

    # -- membership -----------------------------------------------------------

    def register(self, node_id: str, handler: Callable[[str, Any], None]) -> None:
        """Attach a node; ``handler(src, msg)`` runs at delivery time."""
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    def assign_group(self, node_id: str, group: str) -> None:
        """Label a node with a shard group so its traffic is partitioned
        into ``stats.groups[group]``.  A node keeps its label across
        fail/revive; reassigning overwrites."""
        self._node_group[node_id] = group

    def group_of(self, node_id: str) -> Optional[str]:
        return self._node_group.get(node_id)

    def _count(self, counter: str, src: str, dst: str) -> None:
        """Bump a counter on the totals and on the owning group's
        partition (source's group, destination's as the fallback)."""
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        group = self._node_group.get(src) or self._node_group.get(dst)
        if group is not None:
            gstats = self.stats.groups.get(group)
            if gstats is None:
                gstats = self.stats.groups[group] = NetStats()
            setattr(gstats, counter, getattr(gstats, counter) + 1)

    # -- failure injection -------------------------------------------------------

    def fail_node(self, node_id: str) -> None:
        """Fail-stop: the node receives nothing until revived."""
        self._down.add(node_id)

    def revive_node(self, node_id: str) -> None:
        self._down.discard(node_id)

    def cut_link(self, src: str, dst: str) -> None:
        """Drop all traffic src→dst (one direction)."""
        self._cut_links.add((src, dst))

    def heal_link(self, src: str, dst: str) -> None:
        self._cut_links.discard((src, dst))

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down

    # -- fault policies ----------------------------------------------------------

    def set_link_policy(self, src: str, dst: str, policy: LinkFaultPolicy) -> None:
        """Apply ``policy`` to the directed link src→dst."""
        self._policies[(src, dst)] = policy

    def clear_link_policy(self, src: str, dst: str) -> None:
        self._policies.pop((src, dst), None)

    def set_default_policy(self, policy: Optional[LinkFaultPolicy]) -> None:
        """Policy for every link without a per-link entry (storms)."""
        self._default_policy = policy

    def set_node_delay(self, node_id: str, extra_ns: float) -> None:
        """Slow node: add ``extra_ns`` to every delivery to or from it."""
        if extra_ns <= 0:
            self._node_delay_ns.pop(node_id, None)
        else:
            self._node_delay_ns[node_id] = extra_ns

    def partition(self, groups: List[List[str]]) -> None:
        """Nodes in different groups cannot exchange messages.  Nodes in
        no group (e.g. a spare joining later) are unrestricted."""
        self._groups = [set(g) for g in groups]

    def heal_partition(self) -> None:
        self._groups = []

    def clear_faults(self) -> None:
        """Remove every injected fault: policies, partitions, slow nodes,
        and cut links.  Fail-stopped nodes stay down (they are topology,
        not link noise — revive them explicitly)."""
        self._policies.clear()
        self._default_policy = None
        self._node_delay_ns.clear()
        self._groups = []
        self._cut_links.clear()

    def _policy_for(self, src: str, dst: str) -> Optional[LinkFaultPolicy]:
        policy = self._policies.get((src, dst), self._default_policy)
        if policy is not None and policy.active:
            return policy
        return None

    def _partitioned(self, src: str, dst: str) -> bool:
        if not self._groups:
            return False
        src_group = next((g for g in self._groups if src in g), None)
        dst_group = next((g for g in self._groups if dst in g), None)
        return (
            src_group is not None
            and dst_group is not None
            and src_group is not dst_group
        )

    # -- transport ------------------------------------------------------------------

    def send(self, src: str, dst: str, msg: Any, extra_delay_ns: float = 0.0) -> None:
        """One-way send; silently dropped if the destination is down, the
        link is cut/partitioned, or a fault policy eats it (the sender
        learns via timeouts, as in reality)."""
        self._count("sent", src, dst)
        if (src, dst) in self._cut_links or self._partitioned(src, dst):
            self._count("dropped_link", src, dst)
            return
        delay = self.hop_latency_ns + extra_delay_ns
        delay += self._node_delay_ns.get(src, 0.0) + self._node_delay_ns.get(dst, 0.0)
        policy = self._policy_for(src, dst)
        if policy is None:
            self.sim.schedule(delay, self._deliver, src, dst, msg, None)
            return
        rng = self.rng
        if policy.drop_p > 0.0 and rng.random() < policy.drop_p:
            self._count("dropped_fault", src, dst)
            return
        if policy.jitter_max_ns > 0.0:
            delay += rng.uniform(policy.jitter_min_ns, policy.jitter_max_ns)
        checksum = message_checksum(msg)
        if policy.corrupt_p > 0.0 and rng.random() < policy.corrupt_p:
            # bits flipped in flight: the payload no longer matches the
            # checksum the sender stamped
            checksum ^= 0xDEADBEEF
        if policy.reorder_p > 0.0 and rng.random() < policy.reorder_p:
            self._count("reordered", src, dst)
            delay += rng.uniform(policy.jitter_min_ns, policy.jitter_max_ns or self.hop_latency_ns * 4)
        self.sim.schedule(delay, self._deliver, src, dst, msg, checksum)
        if policy.dup_p > 0.0 and rng.random() < policy.dup_p:
            self._count("duplicated", src, dst)
            dup_delay = delay + rng.uniform(0.0, policy.jitter_max_ns or self.hop_latency_ns * 2)
            self.sim.schedule(dup_delay, self._deliver, src, dst, msg, checksum)

    def _deliver(self, src: str, dst: str, msg: Any, checksum: Optional[int]) -> None:
        if (src, dst) in self._cut_links or self._partitioned(src, dst):
            self._count("dropped_link", src, dst)
            return
        if dst in self._down:
            self._count("dropped_node", src, dst)
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self._count("dropped_node", src, dst)
            return
        if checksum is not None and checksum != message_checksum(msg):
            # checksum mismatch: corrupted in flight, receiver discards
            self._count("corrupted", src, dst)
            self._count("dropped_fault", src, dst)
            return
        self._count("delivered", src, dst)
        handler(src, msg)
