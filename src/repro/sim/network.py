"""Simulated message-passing network for the replication layer.

Point-to-point links with configurable one-way latency (the ``ln`` of
Table 1), FIFO ordering per link, and failure injection (drops and
partitions) for the chain-repair tests.  Delivery is an event on the
shared :class:`~repro.sim.events.EventSimulator`, so replica processing
interleaves deterministically with client activity.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set, Tuple

from .events import EventSimulator

#: default one-way hop latency: ~2 µs, RDMA-class (paper: 32 Gbps IB)
DEFAULT_HOP_NS = 2_000.0


class SimNetwork:
    """Routes messages between named nodes over the event simulator."""

    def __init__(self, sim: EventSimulator, hop_latency_ns: float = DEFAULT_HOP_NS):
        self.sim = sim
        self.hop_latency_ns = hop_latency_ns
        self._handlers: Dict[str, Callable[[str, Any], None]] = {}
        self._down: Set[str] = set()
        self._cut_links: Set[Tuple[str, str]] = set()
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    # -- membership -----------------------------------------------------------

    def register(self, node_id: str, handler: Callable[[str, Any], None]) -> None:
        """Attach a node; ``handler(src, msg)`` runs at delivery time."""
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    # -- failure injection -------------------------------------------------------

    def fail_node(self, node_id: str) -> None:
        """Fail-stop: the node receives nothing until revived."""
        self._down.add(node_id)

    def revive_node(self, node_id: str) -> None:
        self._down.discard(node_id)

    def cut_link(self, src: str, dst: str) -> None:
        """Drop all traffic src→dst (one direction)."""
        self._cut_links.add((src, dst))

    def heal_link(self, src: str, dst: str) -> None:
        self._cut_links.discard((src, dst))

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down

    # -- transport ------------------------------------------------------------------

    def send(self, src: str, dst: str, msg: Any, extra_delay_ns: float = 0.0) -> None:
        """One-way send; silently dropped if the destination is down or
        the link is cut (the sender learns via timeouts, as in reality)."""
        self.sent += 1
        if (src, dst) in self._cut_links:
            self.dropped += 1
            return
        self.sim.schedule(self.hop_latency_ns + extra_delay_ns, self._deliver, src, dst, msg)

    def _deliver(self, src: str, dst: str, msg: Any) -> None:
        if dst in self._down or (src, dst) in self._cut_links:
            self.dropped += 1
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.dropped += 1
            return
        self.delivered += 1
        handler(src, msg)
