"""A deterministic discrete-event simulator.

Used by the benchmark harness (replaying transaction cost traces under
N concurrent clients) and by the replication layer (message-passing
replica state machines).  Determinism: events at equal timestamps fire
in scheduling order (a monotonic sequence number breaks ties), so every
run with the same inputs produces identical timelines.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: Tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class _FloatClock:
    """Default standalone time source (duck-typed like ``SimClock``)."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0


class EventSimulator:
    """Priority-queue event loop over virtual nanoseconds.

    ``clock`` may be any object with a writable ``now`` attribute —
    typically a :class:`repro.runtime.clock.SimClock` shared with an
    execution context, so inline cost charging and scheduled events
    observe the same virtual time.  Without one, the simulator keeps a
    private clock (the original behaviour).
    """

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else _FloatClock()
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @now.setter
    def now(self, time_ns: float) -> None:
        self.clock.now = time_ns

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` ``delay`` ns from now; returns the event."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn`` at an absolute virtual time >= now."""
        return self.schedule(max(0.0, time - self.now), fn, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue (optionally bounded by time or event count).

        Returns the number of events processed.
        """
        # Local bindings: this loop dispatches every event of a
        # simulation, so attribute and property lookups are hoisted out.
        queue = self._queue
        heappop = heapq.heappop
        clock = self.clock
        processed = 0
        if until is None and max_events is None:
            while queue:
                event = heappop(queue)
                if event.cancelled:
                    continue
                now = event.time
                clock.now = now
                event.fn(*event.args)
                processed += 1
                # coalesce the same-timestamp batch: everything already
                # due *now* (including events the callback just scheduled
                # at zero delay) pops in seq order right here.  The clock
                # store stays per-event — a callback may have advanced the
                # shared clock inline, and the contract is that each event
                # observes its own scheduled time.
                while queue and queue[0].time == now:
                    event = heappop(queue)
                    if event.cancelled:
                        continue
                    clock.now = now
                    event.fn(*event.args)
                    processed += 1
            self._processed += processed
            return processed
        while queue:
            if max_events is not None and processed >= max_events:
                break
            event = queue[0]
            if until is not None and event.time > until:
                break
            heappop(queue)
            if event.cancelled:
                continue
            clock.now = event.time
            event.fn(*event.args)
            processed += 1
        if until is not None and (not queue or queue[0].time > until):
            clock.now = max(clock.now, until)
        self._processed += processed
        return processed

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def processed(self) -> int:
        return self._processed
