"""Shared-resource models for the replay simulator.

Two first-order contention effects dominate the paper's multi-thread
results:

* **Memory bandwidth** — every byte moved to or from NVM, whether on or
  off the critical path, passes through a shared channel.  Undo logging
  moves ~2× the bytes of Kamino *inside* transactions, so it saturates
  first as threads scale (Figure 12's widening gap).
* **Log management serialization** — NVML's undo log requires allocating,
  indexing, and freeing log entries through shared allocator state;
  Kamino's fixed-size, per-thread intent entries need almost none of
  that.  The paper attributes most of the baseline's overhead to "cache
  flushes, transactional allocation and software needed for maintaining
  undo-logs" (§7.1); we model it as a serialized per-intent cost.

Both are FIFO servers in virtual time: a request arriving at ``t``
completes at ``max(t, server_free) + service``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ServerSnapshot:
    """Immutable view of a :class:`FIFOServer`'s accumulated state."""

    name: str
    free_at: float
    busy_ns: float
    requests: int


class FIFOServer:
    """A single FIFO queueing server over virtual nanoseconds.

    Follows the runtime's uniform accounting contract: ``reset()``
    returns the server to its just-constructed state, ``snapshot()``
    yields an immutable copy — so an
    :class:`~repro.runtime.context.ExecutionContext` can zero every
    counter between benchmark runs and prove nothing leaked.
    """

    def __init__(self, name: str):
        self.name = name
        self._free_at = 0.0
        self.busy_ns = 0.0
        self.requests = 0

    def request(self, arrival: float, service_ns: float) -> float:
        """Enqueue ``service_ns`` of work at ``arrival``; returns the
        completion time."""
        if service_ns < 0:
            raise ValueError("service time cannot be negative")
        start = max(arrival, self._free_at)
        self._free_at = start + service_ns
        self.busy_ns += service_ns
        self.requests += 1
        return self._free_at

    def utilization(self, horizon_ns: float) -> float:
        return self.busy_ns / horizon_ns if horizon_ns > 0 else 0.0

    def reset(self) -> None:
        self._free_at = 0.0
        self.busy_ns = 0.0
        self.requests = 0

    def snapshot(self) -> ServerSnapshot:
        return ServerSnapshot(
            name=self.name,
            free_at=self._free_at,
            busy_ns=self.busy_ns,
            requests=self.requests,
        )


class BandwidthResource(FIFOServer):
    """Shared NVM channel; service time = bytes / bandwidth."""

    def __init__(self, bandwidth_gbps: float):
        super().__init__("nvm-bandwidth")
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_gbps = bandwidth_gbps
        # GB/s == bytes/ns
        self._ns_per_byte = 1.0 / bandwidth_gbps

    def transfer(self, arrival: float, nbytes: float) -> float:
        """Move ``nbytes`` through the channel; returns completion time."""
        return self.request(arrival, nbytes * self._ns_per_byte)


@dataclass
class EngineCostModel:
    """Per-engine serialized software overheads (see module docstring).

    Attributes:
        serial_ns_per_intent: serialized log-management cost per declared
            write intent (allocation + indexing + deallocation of a log
            entry).  High for undo/CoW (variable-size data log entries
            through shared allocator state), near zero for Kamino
            (fixed-size entries in per-thread scratchpads, §6.2).
        locks_released_after_sync: True when write locks are held until
            the asynchronous backup sync lands (the Kamino schemes), so a
            dependent transaction's wait extends past commit.
    """

    serial_ns_per_intent: float = 0.0
    locks_released_after_sync: bool = False
    #: when True, the bytes captured into the log (undo data / CoW
    #: shadows) are copied through *shared* log-arena state: the copy's
    #: device time is already in the critical path, but it additionally
    #: holds the log mutex, so concurrent transactions queue behind it
    serial_includes_copy: bool = False
    #: per-intent software cost that is NOT serialized — it runs on the
    #: client's own timeline (per-stripe lock work, volatile shadow
    #: bookkeeping).  The fine-grained family trades serialized cost for
    #: local cost: same single-client latency, no cross-client queueing.
    local_ns_per_intent: float = 0.0
    #: serialized cost per *read-lock* acquisition.  The global lock
    #: table guards read acquires with the same single mutex as writes,
    #: so a traversal's read set queues on the table too — every
    #: global-table engine carries the same constant here, which keeps
    #: read-only workloads at throughput parity across them.
    serial_ns_per_read_lock: float = 0.0
    #: non-serialized counterpart for read locks (striped tables).
    local_ns_per_read_lock: float = 0.0


#: Calibrated against the paper's single-thread latency ratios; the
#: undo/CoW value reflects NVML's measured log-management overhead.
ENGINE_COST_MODELS = {
    "nolog": EngineCostModel(serial_ns_per_intent=0.0),
    # undo/CoW share the global ObjectLockTable with kamino, so their
    # read acquires pass through the same serialized table mutex and
    # carry the same 40 ns; their 900 ns per *write* intent (log-arena
    # allocation) is untouched — that is what the calibration pinned.
    "undo": EngineCostModel(
        serial_ns_per_intent=900.0,
        serial_ns_per_read_lock=40.0,
        serial_includes_copy=True,
    ),
    "cow": EngineCostModel(
        serial_ns_per_intent=900.0,
        serial_ns_per_read_lock=40.0,
        serial_includes_copy=True,
    ),
    "kamino": EngineCostModel(
        serial_ns_per_intent=40.0,
        serial_ns_per_read_lock=40.0,
        locks_released_after_sync=True,
    ),
    # striped lock table: only the slot-pool handoff stays serialized
    # (8 ns); the remaining 32 ns of per-lock-op work happens on the
    # stripe the client hashed to, concurrently with other clients.  The
    # split sums to the kamino profile's 40 ns, so single-client latency
    # is identical and the gap only opens under contention.
    "kamino-finegrained": EngineCostModel(
        serial_ns_per_intent=8.0,
        local_ns_per_intent=32.0,
        serial_ns_per_read_lock=8.0,
        local_ns_per_read_lock=32.0,
        locks_released_after_sync=True,
    ),
    # traversal-deferred persistence batches the intent publication at
    # the destination, but it keeps the global lock table, so its
    # serialized software matches the kamino profile.
    "nvtraverse": EngineCostModel(
        serial_ns_per_intent=40.0,
        serial_ns_per_read_lock=40.0,
        locks_released_after_sync=True,
    ),
}


def cost_model_for(engine_name: str) -> EngineCostModel:
    """Look up the cost model for an engine.

    The engine registry is authoritative: a registered engine's
    ``cost_profile`` capability selects a row of the calibrated table
    above, so adding an engine never touches this module.  Names that
    resolve to no registration (ad-hoc test doubles) fall back to the
    historical prefix matching.
    """
    from ..runtime.registry import find_registered

    info = find_registered(engine_name)
    if info is not None and info.capabilities.cost_profile in ENGINE_COST_MODELS:
        return ENGINE_COST_MODELS[info.capabilities.cost_profile]
    if engine_name.startswith("kamino"):
        return ENGINE_COST_MODELS["kamino"]
    for key, model in ENGINE_COST_MODELS.items():
        if engine_name.startswith(key):
            return model
    return EngineCostModel()
