"""Failure injectors shared by crash and replication tests.

Small composable helpers that arm the failure modes the paper's recovery
protocols must survive: device power-failure at a chosen operation and
the "run until the armed fail-point fires" idiom.  Systematic crash-point
*enumeration* (sweeps, pruning, nested crashes, oracles) lives in
:mod:`repro.check`, which subsumed the hand-rolled sweep generator that
used to live here.
"""

from __future__ import annotations

from typing import Callable

from ..errors import DeviceCrashedError
from ..nvm.device import CrashPolicy, NVMDevice


def crash_points(run: Callable[[NVMDevice], None], device_factory: Callable[[], NVMDevice],
                 max_points: int = 10_000) -> int:
    """Count the device operations a workload performs.

    Run the workload once against a fresh device with an unreachable
    fail-point armed, then read back how many ops ticked — the sweep
    bound for exhaustive crash-point tests.
    """
    device = device_factory()
    device.schedule_crash(max_points, CrashPolicy.DROP_ALL)
    try:
        run(device)
    except DeviceCrashedError:
        raise RuntimeError("workload hit the sweep bound; raise max_points") from None
    remaining = device.scheduled_crash_remaining()
    device.cancel_scheduled_crash()
    if remaining is None:
        raise RuntimeError("workload hit the sweep bound; raise max_points")
    return max_points - remaining


def run_until_crash(fn: Callable[[], None]) -> bool:
    """Execute ``fn``; returns True if a scheduled crash fired inside."""
    try:
        fn()
        return False
    except DeviceCrashedError:
        return True
