"""Deterministic simulation: events, shared resources, network, failures."""

from .events import Event, EventSimulator
from .failure import crash_points, run_until_crash
from .network import (
    DEFAULT_HOP_NS,
    LinkFaultPolicy,
    NetStats,
    SimNetwork,
    message_checksum,
)
from .resources import (
    ENGINE_COST_MODELS,
    BandwidthResource,
    EngineCostModel,
    FIFOServer,
    ServerSnapshot,
    cost_model_for,
)

__all__ = [
    "BandwidthResource",
    "DEFAULT_HOP_NS",
    "ENGINE_COST_MODELS",
    "EngineCostModel",
    "Event",
    "EventSimulator",
    "FIFOServer",
    "LinkFaultPolicy",
    "NetStats",
    "ServerSnapshot",
    "SimNetwork",
    "cost_model_for",
    "crash_points",
    "message_checksum",
    "run_until_crash",
]
