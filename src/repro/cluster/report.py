"""Typed reports produced by the cluster layer.

Kept dependency-free (dataclasses only) so the package root can
re-export them without dragging the simulator in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MigrationReport:
    """What one online shard migration did, phase by phase.

    ``resumed`` is True when the migration was reconstructed from the
    placement service's durable cursor after a coordinator crash; the
    pre-cursor prefix is then re-verified conservatively (the volatile
    dirty-key set died with the coordinator).
    """

    shard: int
    src_group: int
    dst_group: int
    #: keys moved by the bulk copy (cursor-ordered, chunked)
    copied_keys: int = 0
    #: keys whose source/destination bytes already matched (value-diff)
    skipped_keys: int = 0
    #: keys re-copied by catch-up rounds (dirtied under traffic)
    catchup_keys: int = 0
    #: client writes parked during the hand-off window and replayed
    #: into the destination at the flip, in FIFO order
    parked_ops: int = 0
    #: durable cursor advances logged at the placement service
    cursor_advances: int = 0
    #: copy attempts that came back with a typed error and were retried
    retries: int = 0
    #: keys deleted from the source group after the flip
    purged_keys: int = 0
    resumed: bool = False
    aborted: bool = False
    started_at_ns: float = 0.0
    finished_at_ns: Optional[float] = None
    #: terminal phase: "done" or "aborted"
    phase: str = "copy"

    @property
    def duration_ns(self) -> Optional[float]:
        if self.finished_at_ns is None:
            return None
        return self.finished_at_ns - self.started_at_ns

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "src_group": self.src_group,
            "dst_group": self.dst_group,
            "copied_keys": self.copied_keys,
            "skipped_keys": self.skipped_keys,
            "catchup_keys": self.catchup_keys,
            "parked_ops": self.parked_ops,
            "cursor_advances": self.cursor_advances,
            "retries": self.retries,
            "purged_keys": self.purged_keys,
            "resumed": self.resumed,
            "aborted": self.aborted,
            "phase": self.phase,
        }

    def describe(self) -> str:
        tag = "resumed " if self.resumed else ""
        return (
            f"{tag}migration shard {self.shard}: g{self.src_group} -> "
            f"g{self.dst_group} [{self.phase}] copied={self.copied_keys} "
            f"catchup={self.catchup_keys} parked={self.parked_ops}"
        )


@dataclass
class ClusterReport:
    """One `repro cluster` run, rendered by the CLI."""

    groups: int
    shards: int
    map_version: int
    committed: int
    failed: int
    client_retries: int
    map_refreshes: int
    migrations: List[MigrationReport] = field(default_factory=list)
    #: shard id -> routed operations (hot-shard detection input)
    shard_load: Dict[int, int] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems
