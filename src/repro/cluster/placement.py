"""The placement service: durable, versioned ownership of the shard map.

Plays the role the membership manager plays for one chain, but for the
cluster: it owns the authoritative :class:`~repro.cluster.router.ShardMap`
and the in-progress migration records, and it persists both.  The log
lives in a :class:`~repro.kvstore.ring.PersistentRing` on the service's
own little pool, so the coordinator gets exactly the crash story the
replicas already have: every transition is appended (flushed and fenced
by the ring) *before* it takes effect, and recovery is a replay.

Three record types, JSON payloads in the ring:

* ``map`` — a full shard map (installed versions only, monotonic);
* ``mig`` — the complete state of one in-flight migration (src, dst,
  phase, bulk-copy cursor).  Re-logged on every durable transition, so
  replay keeps only the latest per shard;
* ``mig_end`` — the migration for a shard finished or aborted.

The ring is append-only from the service's point of view; when it runs
low the service compacts by draining and re-appending one snapshot
(current map + active migrations) — the classic checkpoint-and-truncate.

Client version discipline mirrors the chain's ``viewID`` (§5.3): a
request built against an older map version gets a typed
:class:`~repro.errors.StaleShardMapError` carrying the current version,
and re-routes after refreshing — the cluster analogue of
:class:`~repro.errors.StaleViewError`.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..errors import (
    ClusterConfigError,
    ShardMigrationError,
    StaleShardMapError,
)
from ..kvstore.ring import PersistentRing
from ..nvm.backend import make_device
from ..nvm.device import NVMDevice
from ..nvm.pool import PmemPool
from ..replication.membership import MembershipManager
from .router import ShardMap

LOG_REGION = "placement_log"
LOG_BYTES = 64 * 1024
DEVICE_BYTES = 1 << 20
_COMPACT_HEADROOM = 4096

#: phases a migration record may be durably parked in
MIGRATION_PHASES = ("copy", "catchup", "handoff")


class MigrationRecord:
    """Durable state of one in-flight shard migration."""

    __slots__ = ("shard", "src", "dst", "phase", "cursor")

    def __init__(self, shard: int, src: int, dst: int,
                 phase: str = "copy", cursor: Optional[int] = None):
        self.shard = shard
        self.src = src
        self.dst = dst
        self.phase = phase
        #: last key (exclusive upper bound) the bulk copy has durably
        #: confirmed at the destination; resume restarts here
        self.cursor = cursor

    def to_dict(self) -> dict:
        return {
            "shard": self.shard, "src": self.src, "dst": self.dst,
            "phase": self.phase, "cursor": self.cursor,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MigrationRecord":
        return cls(d["shard"], d["src"], d["dst"], d["phase"], d["cursor"])


class PlacementService:
    """Authoritative, durable shard map + migration ledger."""

    def __init__(self, shard_map: ShardMap, device: Optional[NVMDevice] = None,
                 log_bytes: int = LOG_BYTES, _replay: bool = False):
        self.device = device if device is not None else make_device(DEVICE_BYTES, seed=0)
        if _replay:
            self.pool = PmemPool.open(self.device)
            self.ring = PersistentRing.open(self.pool.region(LOG_REGION))
        else:
            self.pool = PmemPool.create(self.device)
            self.ring = PersistentRing.create(
                self.pool.create_region(LOG_REGION, log_bytes)
            )
        self.map = shard_map
        self.migrations: Dict[int, MigrationRecord] = {}
        #: group liveness/ordering, reusing the chain's membership
        #: machinery — each shard group is one "member" of the cluster
        self.membership = MembershipManager(
            [f"g{g}" for g in shard_map.groups]
        )
        self.recoveries = 0
        self.compactions = 0
        if not _replay:
            self._log({"t": "map", "map": shard_map.to_dict()})

    # -- bootstrap / recovery ------------------------------------------------

    @classmethod
    def bootstrap(cls, groups: int, shards_per_group: int = 2,
                  vnodes: int = 32, device: Optional[NVMDevice] = None,
                  ) -> "PlacementService":
        """Round-robin initial placement: shard s -> group s mod groups."""
        if groups < 1 or shards_per_group < 1:
            raise ClusterConfigError("need at least one group and one shard")
        nshards = groups * shards_per_group
        assignment = {s: s % groups for s in range(nshards)}
        return cls(ShardMap(assignment, version=1, vnodes=vnodes), device=device)

    @classmethod
    def open(cls, device: NVMDevice) -> "PlacementService":
        """Rebuild the service from its durable log (coordinator reboot)."""
        svc = cls.__new__(cls)
        svc.device = device
        svc.pool = PmemPool.open(device)
        svc.ring = PersistentRing.open(svc.pool.region(LOG_REGION))
        svc.map = None  # type: ignore[assignment]
        svc.migrations = {}
        svc.recoveries = 0
        svc.compactions = 0
        for payload in svc.ring.peek_all():
            rec = json.loads(payload.decode("utf-8"))
            if rec["t"] == "map":
                svc.map = ShardMap.from_dict(rec["map"])
            elif rec["t"] == "mig":
                mig = MigrationRecord.from_dict(rec)
                svc.migrations[mig.shard] = mig
            elif rec["t"] == "mig_end":
                svc.migrations.pop(rec["shard"], None)
        if svc.map is None:
            raise ClusterConfigError("placement log holds no shard map")
        svc.membership = MembershipManager([f"g{g}" for g in svc.map.groups])
        return svc

    def crash_and_recover(self) -> "PlacementService":
        """Coordinator power-fail: volatile state dies, the log survives.

        Re-reads everything from the device (in place, so holders of
        this service keep their reference) and counts the recovery.
        """
        self.device.crash()
        self.device.restart()
        reborn = PlacementService.open(self.device)
        self.pool = reborn.pool
        self.ring = reborn.ring
        self.map = reborn.map
        self.migrations = reborn.migrations
        self.membership = reborn.membership
        self.recoveries += 1
        return self

    # -- version discipline --------------------------------------------------

    @property
    def version(self) -> int:
        return self.map.version

    def validate_version(self, cached: Optional[int]) -> None:
        """Reject requests routed with an older map (typed redirect)."""
        if cached is not None and cached < self.map.version:
            raise StaleShardMapError(
                f"request routed with shard map v{cached}, current is "
                f"v{self.map.version}",
                current_version=self.map.version,
            )

    # -- transitions ----------------------------------------------------------

    def install(self, new_map: ShardMap) -> None:
        """Durably adopt ``new_map``; versions are strictly monotonic."""
        if new_map.version <= self.map.version:
            raise ClusterConfigError(
                f"map version must advance: v{new_map.version} <= "
                f"v{self.map.version}"
            )
        self._log({"t": "map", "map": new_map.to_dict()})
        self.map = new_map

    def begin_migration(self, shard: int, dst_group: int) -> MigrationRecord:
        if shard not in self.map.assignment:
            raise ShardMigrationError(f"shard {shard} is not in the map")
        if shard in self.migrations:
            raise ShardMigrationError(f"shard {shard} is already migrating")
        src = self.map.assignment[shard]
        if src == dst_group:
            raise ShardMigrationError(
                f"shard {shard} already lives on group {dst_group}"
            )
        if dst_group not in self.map.groups:
            raise ShardMigrationError(f"group {dst_group} is not in the cluster")
        rec = MigrationRecord(shard, src, dst_group)
        self._log({"t": "mig", **rec.to_dict()})
        self.migrations[shard] = rec
        return rec

    def advance_cursor(self, shard: int, cursor: int) -> None:
        """Durably record bulk-copy progress (resume point)."""
        rec = self._active(shard)
        rec.cursor = cursor
        self._log({"t": "mig", **rec.to_dict()})

    def set_phase(self, shard: int, phase: str) -> None:
        if phase not in MIGRATION_PHASES:
            raise ShardMigrationError(f"unknown migration phase '{phase}'")
        rec = self._active(shard)
        rec.phase = phase
        self._log({"t": "mig", **rec.to_dict()})

    def finish_migration(self, shard: int) -> ShardMap:
        """The flip: one durable transition installs the moved map and
        retires the migration record.  After this, the destination owns
        the shard for every request carrying the new version."""
        rec = self._active(shard)
        new_map = self.map.moved(shard, rec.dst)
        self._log({"t": "map", "map": new_map.to_dict()})
        self._log({"t": "mig_end", "shard": shard})
        self.map = new_map
        del self.migrations[shard]
        return new_map

    def abort_migration(self, shard: int) -> None:
        """Give up: the source keeps the shard, the record is retired."""
        self._active(shard)
        self._log({"t": "mig_end", "shard": shard})
        del self.migrations[shard]

    def _active(self, shard: int) -> MigrationRecord:
        rec = self.migrations.get(shard)
        if rec is None:
            raise ShardMigrationError(f"shard {shard} is not migrating")
        return rec

    # -- the durable log ------------------------------------------------------

    def _log(self, record: dict) -> None:
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        if self.ring.free_bytes < len(payload) + _COMPACT_HEADROOM:
            self._compact()
        self.ring.append(payload)

    def _compact(self) -> None:
        """Checkpoint-and-truncate: drop history, keep current state."""
        self.compactions += 1
        self.ring.drain()
        self.ring.append(
            json.dumps({"t": "map", "map": self.map.to_dict()},
                       sort_keys=True).encode("utf-8")
        )
        for rec in self.migrations.values():
            self.ring.append(
                json.dumps({"t": "mig", **rec.to_dict()},
                           sort_keys=True).encode("utf-8")
            )
