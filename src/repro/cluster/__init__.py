"""Sharded multi-group cluster: placement, routing, online migration.

Light members (:class:`ShardRouter`, :class:`RangeRouter`,
:class:`ShardMap`, the report types) import eagerly; the heavy ones
(:class:`ShardedCluster`, :class:`PlacementService`,
:class:`ShardMigration`) drag in the simulator and NVM stack, so they
load lazily on first attribute access — the package root can re-export
the whole family without paying for an import of :mod:`repro.cluster`.
"""

from .report import ClusterReport, MigrationReport
from .router import RangeRouter, ShardMap, ShardRouter, router_from_dict

_LAZY = {
    "PlacementService": "placement",
    "MigrationRecord": "placement",
    "ShardMigration": "migrate",
    "ShardedCluster": "sharded",
    "GroupRunResult": "parallel",
    "ShardedRunReport": "parallel",
    "run_sharded_parallel": "parallel",
}

__all__ = [
    "ClusterReport",
    "GroupRunResult",
    "MigrationRecord",
    "MigrationReport",
    "PlacementService",
    "RangeRouter",
    "ShardMap",
    "ShardMigration",
    "ShardRouter",
    "ShardedCluster",
    "ShardedRunReport",
    "router_from_dict",
    "run_sharded_parallel",
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
