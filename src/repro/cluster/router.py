"""Shard placement: consistent-hash (and range) routing over shard groups.

The sharded cluster splits the key space into **shards** (the unit of
placement and migration) and assigns each shard to a **group** (one
chain-replicated :class:`~repro.replication.chain.ChainCluster`).  Two
indirections, on purpose:

* key -> shard is *stable* (consistent hashing over a 64-bit circle
  with virtual nodes, or explicit ranges) — adding or removing a shard
  moves only the keys on the affected arcs;
* shard -> group is a tiny versioned table (:class:`ShardMap`) — a
  rebalance rewrites one entry and bumps the version, and clients with
  a stale cached version get a typed
  :class:`~repro.errors.StaleShardMapError` redirect.

Routers and maps are immutable; mutation helpers return new instances,
so a version is a value that can be durably logged and replayed.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import ClusterConfigError
from ..workloads.keydist import hash_point, key_point

DEFAULT_VNODES = 64


class ShardRouter:
    """key -> shard via consistent hashing with virtual nodes.

    Each shard owns ``vnodes`` points on the 64-bit circle
    (:func:`~repro.workloads.keydist.hash_point`); a key belongs to the
    shard owning the first point clockwise of
    :func:`~repro.workloads.keydist.key_point`.  With v virtual nodes
    per shard the expected max/mean load ratio is 1 + O(1/sqrt(v)).
    """

    kind = "hash"

    def __init__(self, shard_ids: Iterable[int], vnodes: int = DEFAULT_VNODES):
        ids = sorted({int(s) for s in shard_ids})
        if not ids:
            raise ClusterConfigError("router needs at least one shard")
        if vnodes < 1:
            raise ClusterConfigError("vnodes must be positive")
        self.shard_ids: Tuple[int, ...] = tuple(ids)
        self.vnodes = vnodes
        ring: List[Tuple[int, int]] = []
        for sid in ids:
            for replica in range(vnodes):
                ring.append((hash_point(sid, replica), sid))
        ring.sort()
        self._points = [p for p, _ in ring]
        self._owners = [s for _, s in ring]

    def shard_for(self, key: Any) -> int:
        idx = bisect_right(self._points, key_point(int(key))) % len(self._points)
        return self._owners[idx]

    # -- immutable mutation -------------------------------------------------

    def with_shard(self, shard_id: int) -> "ShardRouter":
        if shard_id in self.shard_ids:
            raise ClusterConfigError(f"shard {shard_id} already placed")
        return ShardRouter(self.shard_ids + (shard_id,), self.vnodes)

    def without_shard(self, shard_id: int) -> "ShardRouter":
        if shard_id not in self.shard_ids:
            raise ClusterConfigError(f"shard {shard_id} is not placed")
        if len(self.shard_ids) == 1:
            raise ClusterConfigError("cannot remove the last shard")
        return ShardRouter(
            tuple(s for s in self.shard_ids if s != shard_id), self.vnodes
        )

    # -- wire form ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "shards": list(self.shard_ids),
            "vnodes": self.vnodes,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ShardRouter":
        return cls(d["shards"], vnodes=int(d.get("vnodes", DEFAULT_VNODES)))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardRouter)
            and other.shard_ids == self.shard_ids
            and other.vnodes == self.vnodes
        )

    def __hash__(self) -> int:  # pragma: no cover - dict-key convenience
        return hash((self.shard_ids, self.vnodes))


class RangeRouter:
    """key -> shard via explicit split points (optional range placement).

    ``bounds`` must be strictly increasing; shard ``i`` owns
    ``[bounds[i-1], bounds[i])`` with the first and last shards open at
    the ends.  Useful when the workload's key space is dense integers
    and scan locality matters more than uniform spread.
    """

    kind = "range"

    def __init__(self, bounds: Iterable[int], shard_ids: Iterable[int]):
        self.bounds: Tuple[int, ...] = tuple(int(b) for b in bounds)
        self.shard_ids: Tuple[int, ...] = tuple(int(s) for s in shard_ids)
        if len(self.shard_ids) != len(self.bounds) + 1:
            raise ClusterConfigError(
                f"{len(self.bounds)} bounds need {len(self.bounds) + 1} shards, "
                f"got {len(self.shard_ids)}"
            )
        if len(set(self.shard_ids)) != len(self.shard_ids):
            raise ClusterConfigError("duplicate shard ids")
        if any(b >= a for b, a in zip(self.bounds, self.bounds[1:])):
            raise ClusterConfigError("bounds must be strictly increasing")

    def shard_for(self, key: Any) -> int:
        return self.shard_ids[bisect_right(self.bounds, int(key))]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "shards": list(self.shard_ids),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RangeRouter":
        return cls(d["bounds"], d["shards"])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangeRouter)
            and other.bounds == self.bounds
            and other.shard_ids == self.shard_ids
        )

    def __hash__(self) -> int:  # pragma: no cover - dict-key convenience
        return hash((self.bounds, self.shard_ids))


def router_from_dict(d: Mapping[str, Any]):
    kind = d.get("kind", "hash")
    if kind == "hash":
        return ShardRouter.from_dict(d)
    if kind == "range":
        return RangeRouter.from_dict(d)
    raise ClusterConfigError(f"unknown router kind '{kind}'")


class ShardMap:
    """The versioned shard -> group assignment (plus its router).

    This is the record the placement service owns durably: a rebalance
    produces a *new* map (``moved``) with ``version + 1``, mirroring how
    :class:`~repro.replication.membership.MembershipManager` bumps its
    ``view_id`` per chain reconfiguration.
    """

    def __init__(
        self,
        assignment: Mapping[int, int],
        version: int = 1,
        router: Optional[Any] = None,
        vnodes: int = DEFAULT_VNODES,
    ):
        if not assignment:
            raise ClusterConfigError("shard map cannot be empty")
        self.assignment: Dict[int, int] = {
            int(s): int(g) for s, g in assignment.items()
        }
        self.version = int(version)
        self.router = (
            router
            if router is not None
            else ShardRouter(self.assignment.keys(), vnodes=vnodes)
        )
        placed = set(self.router.shard_ids)
        if placed != set(self.assignment):
            raise ClusterConfigError(
                f"router places shards {sorted(placed)} but the assignment "
                f"covers {sorted(self.assignment)}"
            )

    # -- lookups ------------------------------------------------------------

    @property
    def groups(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.assignment.values())))

    def shards_of(self, group: int) -> Tuple[int, ...]:
        return tuple(
            sorted(s for s, g in self.assignment.items() if g == int(group))
        )

    def shard_for(self, key: Any) -> int:
        return self.router.shard_for(key)

    def group_for(self, key: Any) -> int:
        return self.assignment[self.router.shard_for(key)]

    # -- immutable mutation -------------------------------------------------

    def moved(self, shard: int, group: int) -> "ShardMap":
        """The next map version with ``shard`` reassigned to ``group``."""
        if shard not in self.assignment:
            raise ClusterConfigError(f"shard {shard} is not in the map")
        assignment = dict(self.assignment)
        assignment[int(shard)] = int(group)
        return ShardMap(assignment, version=self.version + 1, router=self.router)

    # -- wire form ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "assignment": {str(s): g for s, g in sorted(self.assignment.items())},
            "router": self.router.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ShardMap":
        assignment = {int(s): int(g) for s, g in d["assignment"].items()}
        return cls(
            assignment,
            version=int(d.get("version", 1)),
            router=router_from_dict(d["router"]) if "router" in d else None,
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardMap)
            and other.version == self.version
            and other.assignment == self.assignment
            and other.router == self.router
        )

    def __hash__(self) -> int:  # pragma: no cover - dict-key convenience
        return hash((self.version, tuple(sorted(self.assignment.items()))))
