"""Process-parallel simulation of independent shard groups.

A :class:`~repro.cluster.sharded.ShardedCluster` shares one event
timeline across its groups so migrations and the nemesis can couple
them.  But the steady-state case — no migration in flight, every client
op routed by the shard map to exactly one group — has *zero* cross-group
traffic: each group's chain evolves as an independent deterministic
simulation.  This module exploits that: it partitions the client op
streams by owning group (the same consistent-hash
:class:`~repro.cluster.router.ShardMap` the live cluster would use),
simulates each group as its own single-chain cluster in a worker
process, and merges the results deterministically:

* per-group committed/aborted/retransmission counters sum;
* per-replica :class:`~repro.nvm.stats.NVMStats` fold through
  :func:`repro.parallel.merge_nvm_stats` in (group, replica) order;
* transport :class:`~repro.sim.network.NetStats` fold per group tag;
* logical KV states union (disjoint by construction — the map routed
  each key to exactly one group);
* the cluster's simulated makespan is the **max** of the group
  timelines (they run concurrently in simulated time too).

Because each group job is seeded purely by ``(seed, gid)`` and the fold
walks groups in id order, the merged report is byte-identical for 1 or
N workers — the invariance `tests/cluster/test_parallel_shards.py`
pins.  The trade: this models an *uncoupled* epoch (between
migrations), which is exactly when fanning out is sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..nvm.stats import NVMStats
from ..parallel import fan_out, merge_net_stats, merge_nvm_stats
from ..replication.chain import KAMINO
from ..sim.network import NetStats
from .placement import PlacementService


@dataclass
class GroupRunResult:
    """What one shard group's worker simulation produced."""

    gid: int
    committed: int = 0
    aborted: int = 0
    retransmissions: int = 0
    sim_time_ns: float = 0.0
    events: int = 0
    nvm: NVMStats = field(default_factory=NVMStats)
    net: NetStats = field(default_factory=NetStats)
    state: Dict[int, bytes] = field(default_factory=dict)


@dataclass
class ShardedRunReport:
    """Deterministic merge of every group's result (group-id order)."""

    groups: List[GroupRunResult] = field(default_factory=list)
    committed: int = 0
    aborted: int = 0
    retransmissions: int = 0
    sim_time_ns: float = 0.0
    events: int = 0
    nvm: NVMStats = field(default_factory=NVMStats)
    net: NetStats = field(default_factory=NetStats)
    state: Dict[int, bytes] = field(default_factory=dict)

    def assert_matches(self, other: "ShardedRunReport") -> None:
        """Byte-level equality oracle for worker-count invariance."""
        assert self.committed == other.committed, "committed diverged"
        assert self.aborted == other.aborted, "aborted diverged"
        assert self.retransmissions == other.retransmissions, "retx diverged"
        assert self.sim_time_ns == other.sim_time_ns, "sim time diverged"
        assert self.events == other.events, "event counts diverged"
        assert self.nvm == other.nvm, "merged NVMStats diverged"
        assert self.net == other.net, "merged NetStats diverged"
        assert self.state == other.state, "merged KV state diverged"


def _run_group_job(job) -> GroupRunResult:
    """Simulate one shard group to quiescence (module-level: pickles).

    A fresh single-chain cluster is built from plain parameters; the
    seed mixes the run seed with the group id so every group's RNG
    stream is fixed regardless of which process runs it.
    """
    (gid, streams, f, mode, heap_mb, value_size, seed) = job
    # local import: keep module import light for the router-only users
    from ..replication.chain import ChainCluster
    from ..replication.client import run_clients

    cluster = ChainCluster(
        f=f, mode=mode, heap_mb=heap_mb, value_size=value_size,
        seed=seed * 1_000_003 + gid,
    )
    if any(streams):
        run_clients(cluster, [s for s in streams if s])
    cluster.drain()
    cluster.assert_replicas_consistent()
    result = GroupRunResult(
        gid=gid,
        committed=cluster.committed,
        aborted=cluster.aborted,
        retransmissions=cluster.retransmissions,
        sim_time_ns=cluster.sim.now,
        events=cluster.sim.processed,
        nvm=merge_nvm_stats(
            node.device.stats.snapshot() for node in cluster.chain
        ),
        net=cluster.net.stats.snapshot(),
        state=cluster.kv_states()[0],
    )
    return result


def run_sharded_parallel(
    streams: Sequence[Sequence],
    groups: int = 2,
    shards_per_group: int = 2,
    f: int = 1,
    mode: str = KAMINO,
    heap_mb: int = 2,
    value_size: int = 128,
    seed: int = 0,
    vnodes: int = 32,
    workers: int = 0,
    placement: Optional[PlacementService] = None,
) -> ShardedRunReport:
    """Partition ``streams`` by shard group and simulate the groups in
    parallel; returns the deterministically merged report.

    ``streams`` are per-client :class:`~repro.workloads.ycsb.Op` lists
    (the same shape :func:`~repro.replication.client.run_clients`
    takes).  Each op is routed by the bootstrap shard map — the worker
    count never changes which group owns a key, so the merge is
    byte-identical for ``workers=0`` and ``workers=N``.
    """
    if placement is None:
        placement = PlacementService.bootstrap(groups, shards_per_group, vnodes=vnodes)
    shard_map = placement.map
    # per-group, per-client partitions preserving each client's op order
    partitions: List[List[List]] = [
        [[] for _ in streams] for _ in range(groups)
    ]
    for cid, stream in enumerate(streams):
        for op in stream:
            partitions[shard_map.group_for(op.key)][cid].append(op)
    jobs = [
        (gid, partitions[gid], f, mode, heap_mb, value_size, seed)
        for gid in range(groups)
    ]
    results = fan_out(_run_group_job, jobs, workers)

    report = ShardedRunReport(groups=results)
    for result in results:  # gid order == job order (ordered fan-out)
        report.committed += result.committed
        report.aborted += result.aborted
        report.retransmissions += result.retransmissions
        report.sim_time_ns = max(report.sim_time_ns, result.sim_time_ns)
        report.events += result.events
        report.state.update(result.state)
    report.nvm = merge_nvm_stats(result.nvm for result in results)
    report.net = merge_net_stats(result.net for result in results)
    return report
