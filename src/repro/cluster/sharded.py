"""The sharded cluster: N chain groups behind one consistent-hash router.

One :class:`~repro.runtime.context.ExecutionContext` (clock, RNG,
resource registry) and one :class:`~repro.sim.network.SimNetwork` are
shared by every group, so cross-group schedules interleave on a single
deterministic timeline and the nemesis can cut links inside one group
while another keeps committing.  Node ids are prefixed ``g<i>:`` and
registered to per-group partitions of the transport's statistics.

The client surface is duck-compatible with
:class:`~repro.replication.chain.ChainCluster` (``route`` /
``submit_write`` / ``submit_read`` / ``drain`` / ``sim`` / ``retry`` /
``net``), which is what lets :class:`~repro.replication.client.
ChainClient`, the nemesis runner, and the crash explorer drive either
one unchanged.  A ``groups=1`` cluster routes every key to its single
group and is behaviourally identical to a bare chain (regression-tested
bit-for-bit on committed state and latencies).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ClusterConfigError, ShardMigrationError
from ..nvm.latency import NVDIMM, LatencyModel
from ..runtime.context import ExecutionContext
from ..sim.network import DEFAULT_HOP_NS, SimNetwork
from ..replication.chain import KAMINO, ChainCluster, RetryPolicy
from .migrate import ShardMigration
from .placement import PlacementService
from .report import MigrationReport
from .router import ShardMap

#: the transport-stats partition name of group ``i`` is ``g<i>``
def group_tag(gid: int) -> str:
    return f"g{gid}"


class ShardedCluster:
    """Multiple chain groups, one shard map, online migration."""

    def __init__(
        self,
        groups: int = 2,
        shards_per_group: int = 2,
        f: int = 2,
        mode: str = KAMINO,
        heap_mb: int = 2,
        value_size: int = 128,
        alpha: float = 1.0,
        hop_ns: float = DEFAULT_HOP_NS,
        model: LatencyModel = NVDIMM,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        vnodes: int = 32,
        runtime: Optional[ExecutionContext] = None,
        placement: Optional[PlacementService] = None,
    ):
        if groups < 1:
            raise ClusterConfigError("need at least one group")
        self.runtime = (
            runtime if runtime is not None else ExecutionContext(model=model, seed=seed)
        )
        self.sim = self.runtime.events
        self.net = SimNetwork(self.sim, hop_latency_ns=hop_ns, rng=self.runtime.rng)
        self.retry = retry if retry is not None else RetryPolicy()
        self.mode = mode
        self.groups: List[ChainCluster] = []
        for gid in range(groups):
            group = ChainCluster(
                f=f, mode=mode, heap_mb=heap_mb, value_size=value_size,
                alpha=alpha, sim=self.sim, hop_ns=hop_ns, model=model,
                runtime=self.runtime, retry=self.retry,
                net=self.net, node_prefix=f"{group_tag(gid)}:",
            )
            for node in group.chain:
                self.net.assign_group(node.node_id, group_tag(gid))
            self.groups.append(group)
        self.placement = (
            placement
            if placement is not None
            else PlacementService.bootstrap(groups, shards_per_group, vnodes=vnodes)
        )
        if len(self.placement.map.groups) > groups:
            raise ClusterConfigError(
                "placement references more groups than were built"
            )
        self._migrations: Dict[int, ShardMigration] = {}
        self.migration_reports: List[MigrationReport] = []
        self.migration_failures: List[str] = []
        self.coordinator_crashes = 0
        self._migration_seq = 0
        #: shard id -> operations routed there (hot-shard detection)
        self.shard_load: Dict[int, int] = {
            s: 0 for s in self.placement.map.assignment
        }

    # -- shard map ------------------------------------------------------------

    @property
    def map(self) -> ShardMap:
        return self.placement.map

    @property
    def map_version(self) -> int:
        return self.placement.version

    @property
    def n_shards(self) -> int:
        return len(self.map.assignment)

    # -- routing --------------------------------------------------------------

    def route(self, key: Any, map_version: Optional[int] = None):
        """Per-key submission target.

        Version-checks first (stale cached maps get the typed redirect),
        then resolves key -> shard -> group; a shard mid-migration
        resolves to its :class:`~repro.cluster.migrate.ShardMigration`,
        which taps/parks the write according to its phase.
        """
        self.placement.validate_version(map_version)
        shard = self.map.shard_for(key)
        self.shard_load[shard] = self.shard_load.get(shard, 0) + 1
        migration = self._migrations.get(shard)
        if migration is not None:
            return migration
        return self.groups[self.map.assignment[shard]]

    def group_for_key(self, key: Any) -> ChainCluster:
        return self.groups[self.map.group_for(key)]

    # -- ChainCluster-compatible client surface --------------------------------

    def submit_write(self, proc: str, args: Tuple[Any, ...],
                     keys: Sequence[Any],
                     callback: Optional[Callable[[Any, float], None]] = None,
                     client_id: Optional[str] = None,
                     request_id: Optional[int] = None) -> None:
        target = self.route(keys[0] if keys else args[0])
        target.submit_write(proc, args, keys, callback,
                            client_id=client_id, request_id=request_id)

    def submit_read(self, proc: str, args: Tuple[Any, ...],
                    callback: Optional[Callable[[Any, float], None]] = None,
                    ) -> None:
        self.route(args[0]).submit_read(proc, args, callback)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def drain(self) -> None:
        """Run the shared simulator dry, flush every head's backup
        backlog, and keep pumping while migrations are still working."""
        guard = 0
        while True:
            self.sim.run()
            for group in self.groups:
                while group.head.engine.pending_count:
                    group.head.engine.sync_pending()
            guard += 1
            if (not self._migrations and not self.sim.pending) or guard > 64:
                break

    @property
    def degraded(self) -> bool:
        return any(group.degraded for group in self.groups)

    def retry_after_ns(self) -> Optional[float]:
        """Admission-control hint aggregated over the groups: the
        longest remaining cooldown of any degraded group (writes for
        any key may land there), ``None`` when every group is healthy."""
        hints = [g.retry_after_ns() for g in self.groups]
        hints = [h for h in hints if h is not None]
        return max(hints) if hints else None

    def add_degradation_listener(
        self, listener: Callable[[ChainCluster, bool], None]
    ) -> None:
        """Register a breaker-transition listener on every group (the
        serving layer's queue-and-readmit hook)."""
        for group in self.groups:
            group.add_degradation_listener(listener)

    def trip_breaker(self, group: int = 0,
                     cooldown_ns: Optional[float] = None) -> None:
        self.groups[group].trip_breaker(cooldown_ns)

    def close_breaker(self, group: int = 0) -> None:
        self.groups[group].close_breaker()

    # -- migration -------------------------------------------------------------

    def hottest_shard(self) -> int:
        return max(self.shard_load, key=lambda s: (self.shard_load[s], -s))

    def least_loaded_group(self, exclude: Optional[int] = None) -> int:
        """Group carrying the least routed traffic (ties: fewest shards,
        then lowest id) — the natural destination for a hot shard."""
        load = {gid: 0 for gid in range(len(self.groups))}
        for shard, gid in self.map.assignment.items():
            load[gid] += self.shard_load.get(shard, 0)
        candidates = [g for g in load if g != exclude]
        return min(
            candidates,
            key=lambda g: (load[g], len(self.map.shards_of(g)), g),
        )

    def migrate_shard(self, shard: Any = "hottest",
                      dst_group: Optional[int] = None) -> ShardMigration:
        """Start moving ``shard`` (or the hottest one) while serving."""
        if shard == "hottest":
            shard = self.hottest_shard()
        elif shard == "coldest":
            shard = min(self.shard_load, key=lambda s: (self.shard_load[s], s))
        shard = int(shard)
        if dst_group is None:
            dst_group = self.least_loaded_group(
                exclude=self.map.assignment.get(shard)
            )
        if not (0 <= dst_group < len(self.groups)):
            raise ShardMigrationError(f"no group {dst_group} in this cluster")
        record = self.placement.begin_migration(shard, dst_group)
        self._migration_seq += 1
        migration = ShardMigration(self, record, incarnation=self._migration_seq)
        self._migrations[shard] = migration
        migration.start()
        return migration

    def resume_migrations(self) -> List[ShardMigration]:
        """Reconstruct in-flight migrations from the durable records
        (used after :meth:`crash_coordinator`)."""
        resumed = []
        for shard, record in sorted(self.placement.migrations.items()):
            if shard in self._migrations:
                continue
            self._migration_seq += 1
            migration = ShardMigration(self, record, resumed=True,
                                       incarnation=self._migration_seq)
            self._migrations[shard] = migration
            migration.start()
            resumed.append(migration)
        return resumed

    def crash_coordinator(self) -> List[ShardMigration]:
        """Power-fail the migration coordinator mid-flight: volatile
        migration state (dirty sets, parked ops, scheduled chunks) dies;
        the placement log survives; recovery replays it and resumes
        every in-flight migration from its durable cursor."""
        self.coordinator_crashes += 1
        for migration in self._migrations.values():
            migration.cancel()
        self._migrations.clear()
        self.placement.crash_and_recover()
        return self.resume_migrations()

    def _migration_finished(self, migration: ShardMigration) -> None:
        self._migrations.pop(migration.shard, None)
        self.migration_reports.append(migration.report)

    def _migration_aborted(self, migration: ShardMigration, why: str) -> None:
        if migration.shard in self.placement.migrations:
            self.placement.abort_migration(migration.shard)
        self._migrations.pop(migration.shard, None)
        self.migration_reports.append(migration.report)
        self.migration_failures.append(f"shard {migration.shard}: {why}")

    @property
    def active_migrations(self) -> Tuple[int, ...]:
        return tuple(sorted(self._migrations))

    # -- aggregated metrics ------------------------------------------------------

    def _sum(self, attr: str) -> int:
        return sum(getattr(group, attr) for group in self.groups)

    @property
    def committed(self) -> int:
        return self._sum("committed")

    @property
    def aborted(self) -> int:
        return self._sum("aborted")

    @property
    def retransmissions(self) -> int:
        return self._sum("retransmissions")

    @property
    def timed_out(self) -> int:
        return self._sum("timed_out")

    @property
    def degraded_rejections(self) -> int:
        return self._sum("degraded_rejections")

    @property
    def degraded_readmissions(self) -> int:
        return self._sum("degraded_readmissions")

    @property
    def duplicate_requests(self) -> int:
        return self._sum("duplicate_requests")

    @property
    def backpressure_stalls(self) -> int:
        return self._sum("backpressure_stalls")

    @property
    def dependent_queued(self) -> int:
        return self._sum("dependent_queued")

    @property
    def write_latencies_ns(self) -> List[float]:
        out: List[float] = []
        for group in self.groups:
            out.extend(group.write_latencies_ns)
        return out

    @property
    def read_latencies_ns(self) -> List[float]:
        out: List[float] = []
        for group in self.groups:
            out.extend(group.read_latencies_ns)
        return out

    @property
    def total_storage_bytes(self) -> int:
        return self._sum("total_storage_bytes")

    # -- verification -------------------------------------------------------------

    def group_kv_states(self) -> List[List[Dict[int, bytes]]]:
        return [group.kv_states() for group in self.groups]

    def assert_replicas_consistent(self) -> None:
        """Every group's replicas converge (per-group chain invariant)."""
        for gid, group in enumerate(self.groups):
            try:
                group.assert_replicas_consistent()
            except AssertionError as exc:
                raise AssertionError(f"group {gid}: {exc}") from exc

    def assert_placement_respected(self) -> None:
        """With no migration in flight, every key lives only on the
        group its shard is assigned to (migrated-away copies purged)."""
        if self._migrations:
            raise AssertionError(
                f"migrations still active for shards {self.active_migrations}"
            )
        for gid, group in enumerate(self.groups):
            for key, _ptr in group.tail.kv.tree.items():
                owner = self.map.group_for(key)
                if owner != gid:
                    raise AssertionError(
                        f"key {key} found on group {gid} but its shard "
                        f"{self.map.shard_for(key)} is assigned to group {owner}"
                    )

    def merged_tail_state(self) -> Dict[int, bytes]:
        """The cluster's logical contents: each group's tail restricted
        to the shards it owns (the durability oracle's view)."""
        merged: Dict[int, bytes] = {}
        for gid, group in enumerate(self.groups):
            tail = group.tail
            for key, ptr in tail.kv.tree.items():
                if self.map.group_for(key) == gid:
                    merged[key] = tail.heap.read_blob(ptr)
        return merged
