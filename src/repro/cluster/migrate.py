"""Online shard migration: move a shard between groups under traffic.

The protocol is the head's BackupSyncer story lifted to the cluster
level — incremental state transfer with a durable resume point:

1. **copy** — walk the shard's keys in sorted order, pushing them into
   the destination chain in small chunks.  Each chunk is confirmed by
   destination tail acks before the placement service durably advances
   the *migration cursor*; a coordinator crash resumes from the cursor
   instead of restarting (or corrupting).
2. **catchup** — writes keep flowing to the source during the copy; the
   router taps them into a dirty-key set.  Catch-up rounds re-copy
   dirty keys (value-diff: keys whose bytes already match are skipped)
   until the set is empty or the round budget is spent.
3. **handoff** — new writes to the shard *park* (clients see nothing;
   their op simply completes after the flip) while the final dirty
   keys drain.  Reads still serve from the source, which is quiescent
   for this shard by construction.
4. **flip** — one placement-service transition installs the moved map
   (version bump).  Parked writes replay into the destination in FIFO
   order *synchronously inside the flip*, before any later client
   event, so no post-flip write can be reordered ahead of a parked
   one.  The source's copies are then purged via ordinary deletes down
   its chain.

Crash-consistency argument: every acknowledged client write is either
(a) committed at the source before the flip — the bulk copy or a
catch-up/handoff round moves it, and the durable cursor plus the
conservative resume re-diff make that true across coordinator crashes
— or (b) replayed/committed at the destination at or after the flip.
Parked-but-unreplayed writes at a crash were never acknowledged, so
client retry (same ``client_id``/``request_id``, absorbed by the
destination's dedup table) preserves exactly-once.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import ReplicationError
from .report import MigrationReport

#: keys per bulk-copy chunk (one durable cursor advance each)
CHUNK_KEYS = 8
#: pause between chunks — the knob that makes the copy *online* instead
#: of a stop-the-world burst in simulated time
CHUNK_GAP_NS = 25_000.0
#: back-off before retrying a copy op the destination rejected
RETRY_GAP_NS = 200_000.0
#: catch-up rounds before the migration forces the hand-off window
MAX_CATCHUP_ROUNDS = 4
#: rejected-copy retry budget; exhausting it aborts the migration
#: (the source keeps the shard — aborting is always safe)
RETRY_BUDGET = 128


class ShardMigration:
    """Coordinator for one shard's move.  The cluster's router returns
    this object for keys in the migrating shard, so it sits on the
    client write path (that is how the dirty set and the hand-off
    parking work); its own copy traffic enters the destination chain as
    ordinary deduplicated writes under the migrator's ``client_id``.
    """

    def __init__(self, cluster, record, resumed: bool = False,
                 incarnation: int = 0):
        self.cluster = cluster
        self.sim = cluster.sim
        self.record = record
        self.shard = record.shard
        self.src = cluster.groups[record.src]
        self.dst = cluster.groups[record.dst]
        self.phase = "copy"
        self.cancelled = False
        #: keys written through the router while the copy runs
        self.dirty: set = set()
        #: client writes held during the hand-off window (FIFO)
        self.parked: List[Tuple] = []
        self._pending: List[int] = []
        self._rid = 0
        # the incarnation number keeps a resumed coordinator's
        # (client_id, request_id) space disjoint from its crashed
        # predecessor's — otherwise a resumed copy-put could be absorbed
        # by the destination's dedup table as a "duplicate" of a
        # pre-crash put and never execute
        self._client_id = f"mig:s{self.shard}.i{incarnation}"
        self._rounds = 0
        self._retry_budget = RETRY_BUDGET
        self.report = MigrationReport(
            shard=self.shard, src_group=record.src, dst_group=record.dst,
            resumed=resumed, started_at_ns=self.sim.now,
        )
        self.on_done: Optional[Callable[[MigrationReport], None]] = None

    # -- client write path (via ShardedCluster.route) ------------------------

    def submit_write(self, proc: str, args: Tuple[Any, ...],
                     keys: Sequence[Any],
                     callback: Optional[Callable[[Any, float], None]] = None,
                     client_id: Optional[str] = None,
                     request_id: Optional[int] = None) -> None:
        if self.phase == "handoff":
            self.parked.append((proc, args, keys, callback, client_id, request_id))
            self.report.parked_ops += 1
            return
        for k in keys:
            self.dirty.add(k)
        self.src.submit_write(proc, args, keys, callback,
                              client_id=client_id, request_id=request_id)

    def submit_read(self, proc: str, args: Tuple[Any, ...],
                    callback: Optional[Callable[[Any, float], None]] = None,
                    ) -> None:
        # the source stays read-authoritative until the flip; during
        # hand-off no writes land anywhere, so it cannot be stale
        self.src.submit_read(proc, args, callback)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        owned = self._owned_src_keys()
        if self.report.resumed and self.record.phase != "copy":
            # bulk copy had durably finished: everything is re-verified
            # by value-diff (the dirty set died with the coordinator)
            self.dirty.update(owned)
            self._pending = []
        elif self.report.resumed:
            cursor = self.record.cursor or 0
            self.dirty.update(k for k in owned if k < cursor)
            self._pending = [k for k in owned if k >= cursor]
        else:
            self._pending = list(owned)
        self.phase = "copy"
        self.sim.schedule(0.0, self._next_chunk)

    def cancel(self) -> None:
        """Coordinator crash: volatile state (dirty set, parked ops,
        scheduled chunks) is gone.  Parked clients were never acked, so
        their own timers resubmit through the post-recovery router."""
        self.cancelled = True

    # -- bulk copy ------------------------------------------------------------

    def _next_chunk(self) -> None:
        if self.cancelled:
            return
        if not self._pending:
            self._begin_catchup()
            return
        chunk = self._pending[:CHUNK_KEYS]
        del self._pending[:len(chunk)]
        self._dispatch(
            chunk,
            diff=self.report.resumed,
            counter="copied_keys",
            done=lambda last=chunk[-1]: self._chunk_done(last),
        )

    def _chunk_done(self, last_key: int) -> None:
        if self.cancelled:
            return
        # the chunk's tail acks are in: everything below last_key + 1 is
        # durably at the destination, so the resume point may advance
        self.cluster.placement.advance_cursor(self.shard, last_key + 1)
        self.record.cursor = last_key + 1
        self.report.cursor_advances += 1
        self.sim.schedule(CHUNK_GAP_NS, self._next_chunk)

    # -- catch-up --------------------------------------------------------------

    def _begin_catchup(self) -> None:
        if self.phase != "catchup":
            self.phase = "catchup"
            self.cluster.placement.set_phase(self.shard, "catchup")
        self._catchup_round()

    def _catchup_round(self) -> None:
        if self.cancelled:
            return
        self._rounds += 1
        batch = sorted(self.dirty)
        self.dirty = set()
        if not batch or self._rounds > MAX_CATCHUP_ROUNDS:
            self._begin_handoff(batch)
            return
        self._dispatch(
            batch, diff=True, counter="catchup_keys",
            done=lambda: self.sim.schedule(CHUNK_GAP_NS, self._catchup_round),
        )

    # -- hand-off + flip ---------------------------------------------------------

    def _begin_handoff(self, leftover: List[int]) -> None:
        self.phase = "handoff"
        self.cluster.placement.set_phase(self.shard, "handoff")
        final = sorted(set(leftover) | self.dirty)
        self.dirty = set()
        self._dispatch(final, diff=True, counter="catchup_keys", done=self._flip)

    def _flip(self) -> None:
        if self.cancelled:
            return
        self.phase = "done"
        self.report.phase = "done"
        self.cluster.placement.finish_migration(self.shard)
        self.cluster._migration_finished(self)
        # replay the hand-off window synchronously, before any later
        # client event can submit against the new map version
        parked, self.parked = self.parked, []
        for proc, args, keys, callback, client_id, request_id in parked:
            self.dst.submit_write(proc, args, keys, callback,
                                  client_id=client_id, request_id=request_id)
        # purge the source's copies through its own chain so all of its
        # replicas converge on not-owning the shard
        self._purge(self._owned_src_keys())
        self.report.finished_at_ns = self.sim.now
        if self.on_done is not None:
            self.on_done(self.report)

    def _purge(self, keys: List[int]) -> None:
        # paced like the copy: a large shard's worth of deletes in one
        # simulated instant would exhaust the source chain's intent-log
        # slots before its syncer can recycle them
        for key in keys[:CHUNK_KEYS]:
            self._rid += 1
            self.src.submit_write(
                "delete", (key,), [key], None,
                client_id=self._client_id, request_id=self._rid,
            )
            self.report.purged_keys += 1
        rest = keys[CHUNK_KEYS:]
        if rest:
            self.sim.schedule(CHUNK_GAP_NS, self._purge, rest)

    def _abort(self, why: str) -> None:
        if self.cancelled or self.phase == "done":
            return
        self.phase = "aborted"
        self.report.phase = "aborted"
        self.report.aborted = True
        self.report.finished_at_ns = self.sim.now
        parked, self.parked = self.parked, []
        self.cluster._migration_aborted(self, why)
        # un-park into the source, which still owns the shard
        for proc, args, keys, callback, client_id, request_id in parked:
            self.src.submit_write(proc, args, keys, callback,
                                  client_id=client_id, request_id=request_id)
        if self.on_done is not None:
            self.on_done(self.report)

    # -- copy machinery -----------------------------------------------------------

    def _dispatch(self, keys: List[int], diff: bool, counter: str,
                  done: Callable[[], None]) -> None:
        """Push ``keys`` into the destination; call ``done`` once every
        one of them is tail-acked there (or skipped by the value-diff).

        Batches larger than ``CHUNK_KEYS`` self-pace: a resumed re-diff
        or a big catch-up round would otherwise flood the destination
        chain's intent-log slots in one simulated instant.
        """
        chunk = keys[:CHUNK_KEYS]
        rest = keys[CHUNK_KEYS:]
        if rest:
            def after():
                self.sim.schedule(
                    CHUNK_GAP_NS, self._guarded,
                    lambda: self._dispatch(rest, diff, counter, done),
                )
        else:
            after = done
        state = {"outstanding": 0}
        for key in chunk:
            value = self.src.head.kv.get(key)
            if value is None:
                continue  # deleted while queued; nothing to move
            if diff and self.dst.head.kv.get(key) == value:
                self.report.skipped_keys += 1
                continue
            state["outstanding"] += 1
            self._put(key, value, state, counter, after)
        if state["outstanding"] == 0:
            self.sim.schedule(0.0, self._guarded, after)

    def _put(self, key: int, value: bytes, state: dict, counter: str,
             done: Callable[[], None]) -> None:
        self._rid += 1

        def on_ack(result, _latency, key=key):
            if self.cancelled or self.phase == "aborted":
                return
            if isinstance(result, ReplicationError):
                self.report.retries += 1
                self._retry_budget -= 1
                if self._retry_budget <= 0:
                    self._abort(f"copy of key {key} kept failing: {result}")
                    return
                # re-read at retry time: the source may have moved on
                self.sim.schedule(RETRY_GAP_NS, self._retry, key, state,
                                  counter, done)
                return
            setattr(self.report, counter, getattr(self.report, counter) + 1)
            state["outstanding"] -= 1
            if state["outstanding"] == 0:
                done()

        self.dst.submit_write("put", (key, value), [key], on_ack,
                              client_id=self._client_id, request_id=self._rid)

    def _retry(self, key: int, state: dict, counter: str,
               done: Callable[[], None]) -> None:
        if self.cancelled or self.phase == "aborted":
            return
        value = self.src.head.kv.get(key)
        if value is None:
            state["outstanding"] -= 1
            if state["outstanding"] == 0:
                done()
            return
        self._put(key, value, state, counter, done)

    def _guarded(self, fn: Callable[[], None]) -> None:
        if not self.cancelled and self.phase != "aborted":
            fn()

    # -- helpers --------------------------------------------------------------------

    def _owned_src_keys(self) -> List[int]:
        shard_for = self.cluster.map.shard_for
        return sorted(
            k for k, _ptr in self.src.head.kv.tree.items()
            if shard_for(k) == self.shard
        )
