"""Systematic crash sweep over the durable-procedure frame log.

The serving layer's correctness claim is the persistent-stack paper's:
a server crash at *any* instant — including between a step's effects
and its frame persist, during the ``begin``/``done`` records, or again
during recovery itself — loses no committed step and applies no step
twice.  :class:`ServeCrashExplorer` makes that mechanically testable
the same way :class:`~repro.check.CrashExplorer` does for the engines:

1. run a fixed procedure workload once with a fail-point budget armed
   on the procedure log's device and count its mutating operations;
2. re-run with the fail-point at every such operation (sampled under a
   budget), power-failing the log mid-append — DROP_ALL for the
   worst-case torn tail, RANDOM lotteries for partial-line survival;
3. recover (``crash_and_recover`` + ``resume_all``), optionally arming
   a *second* fail-point so the crash lands inside recovery, then let
   the client retry every interrupted call;
4. judge the recovered world with exactly-once oracles: every
   procedure's stored result equals the sequential spec, re-submitting
   any pid replays (never re-executes), and the cluster's final values
   match the spec — a lost step shows up low, a double-applied step
   shows up high.

Sweeping with ``durable=False`` (volatile frame stacks, fresh dedup
incarnation per recovery) demonstrates the unhardened failure mode the
ring exists to prevent: crash points where an increment lands twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..errors import DeviceCrashedError, ProcedureResumed
from ..nvm.backend import make_device
from ..nvm.device import CrashPolicy
from ..parallel import fan_out
from .gateway import ClusterGateway
from .procedures import (
    DEVICE_BYTES,
    ProcedureEngine,
    ProcedureStore,
    _as_int,
    _encode_int,
)

#: crash-point counting budget (mirrors repro.check.explorer.OP_BUDGET)
OP_BUDGET = 1_000_000

#: give up if one call crashes more often than this (a stuck recovery)
_MAX_CRASHES_PER_CALL = 6


def _sample_points(lo: int, hi: int, limit: Optional[int]) -> List[int]:
    """All integers lo..hi, or an evenly spaced sample hitting both ends."""
    n = hi - lo + 1
    if n <= 0:
        return []
    if limit is None or n <= limit:
        return list(range(lo, hi + 1))
    if limit == 1:
        return [lo]
    step = (n - 1) / (limit - 1)
    return sorted({lo + round(i * step) for i in range(limit)})


# ---------------------------------------------------------------------------
# The workload specs (pure, so the oracle is a closed-form replay)
# ---------------------------------------------------------------------------


def _workload_calls(workload: str) -> List[Tuple[str, str, List[int]]]:
    calls: List[Tuple[str, str, List[int]]] = []
    if workload in ("incr", "mixed"):
        # two hot keys, four counters with distinct deltas: a lost or
        # doubled write step shifts a final value by a unique amount
        for i in range(4):
            calls.append(("incr", f"q{i}", [10 + (i % 2), i + 1]))
    if workload in ("transfer", "mixed"):
        calls.append(("transfer", "t0", [20, 21, 30]))
        calls.append(("transfer", "t1", [21, 20, 10]))
    if not calls:
        raise ValueError(f"unknown workload '{workload}'")
    return calls


def _initial_state(workload: str) -> Dict[int, int]:
    if workload in ("transfer", "mixed"):
        return {20: 100, 21: 100}
    return {}


def _expected(workload: str) -> Tuple[Dict[int, int], Dict[str, object]]:
    """Sequential-spec final key values and per-procedure results."""
    state = dict(_initial_state(workload))
    results: Dict[str, object] = {}
    for name, pid, args in _workload_calls(workload):
        if name == "incr":
            key, delta = args
            state[key] = state.get(key, 0) + delta
            results[pid] = state[key]
        else:
            src, dst, amount = args
            state[src] = state.get(src, 0) - amount
            state[dst] = state.get(dst, 0) + amount
            results[pid] = {"src": state[src], "dst": state[dst]}
    return state, results


# ---------------------------------------------------------------------------
# Scenarios / reporting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeScenario:
    """One deterministic replay: crash the procedure log after
    ``crash_after`` mutating device operations (optionally again after
    ``nested_after`` operations of the first recovery)."""

    workload: str = "mixed"
    crash_after: int = 1
    policy: str = "drop_all"
    survival: float = 0.5
    device_seed: int = 0
    nested_after: Optional[int] = None
    durable: bool = True

    def crash_policy(self) -> CrashPolicy:
        return CrashPolicy(self.policy)

    def describe(self) -> str:
        nested = (
            f", nested crash after {self.nested_after} recovery op(s)"
            if self.nested_after is not None else ""
        )
        stack = "durable" if self.durable else "VOLATILE"
        return (
            f"workload '{self.workload}' ({stack} stack), power-fail the "
            f"procedure log after {self.crash_after} mutating device "
            f"op(s) [{self.policy}]{nested}, then recover, resume and "
            f"retry every interrupted call"
        )


@dataclass
class ServeFailure:
    scenario: ServeScenario
    problems: Tuple[str, ...]

    def __str__(self) -> str:
        lines = "\n  ".join(self.problems)
        return f"{self.scenario.describe()} ->\n  {lines}"


@dataclass
class ServeReport:
    workload: str
    durable: bool
    n_ops: int
    states_explored: int = 0
    nested_explored: int = 0
    not_fired: int = 0
    crashes_observed: int = 0
    failures: List[ServeFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        stack = "durable" if self.durable else "volatile"
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"serve-crash sweep [{stack} stack, workload "
            f"'{self.workload}']: {self.states_explored} crash point(s) "
            f"of {self.n_ops} (+{self.nested_explored} nested, "
            f"{self.crashes_observed} crashes observed) -> {verdict}"
        )


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------


class ServeCrashExplorer:
    """Sweep every frame-persist crash point of a procedure workload."""

    def __init__(self, workload: str = "mixed", durable: bool = True,
                 device_seed: int = 0, groups: int = 2,
                 shards_per_group: int = 2):
        _workload_calls(workload)  # validate early
        self.workload = workload
        self.durable = durable
        self.device_seed = device_seed
        self.groups = groups
        self.shards_per_group = shards_per_group

    # -- harness ---------------------------------------------------------------

    def _build(self, device_seed: int) -> ProcedureEngine:
        from ..cluster import ShardedCluster

        cluster = ShardedCluster(
            groups=self.groups, shards_per_group=self.shards_per_group,
            f=1, heap_mb=2, value_size=64, seed=0,
        )
        device = make_device(DEVICE_BYTES, seed=device_seed)
        store = ProcedureStore(device)
        gateway = ClusterGateway(cluster)
        engine = ProcedureEngine(gateway, store, durable=self.durable)
        self._setup(engine)
        return engine

    def _setup(self, engine: ProcedureEngine) -> None:
        for j, (key, value) in enumerate(
            sorted(_initial_state(self.workload).items())
        ):
            engine.gateway.call_write(
                "put", (key, _encode_int(value)), (key,),
                client_id="setup", request_id=j,
            )

    def count_ops(self) -> int:
        """Mutating procedure-log device ops of one clean workload run."""
        engine = self._build(self.device_seed)
        device = engine.store.device
        device.schedule_crash(OP_BUDGET, CrashPolicy.DROP_ALL)
        for name, pid, args in _workload_calls(self.workload):
            engine.run(name, args, pid=pid)
        remaining = device.scheduled_crash_remaining()
        device.cancel_scheduled_crash()
        assert remaining is not None
        return OP_BUDGET - remaining

    # -- one replay ------------------------------------------------------------

    def replay(self, scenario: ServeScenario
               ) -> Tuple[Optional[ServeFailure], int]:
        """Run one scenario; returns ``(failure_or_None, crashes_seen)``.

        ``crashes_seen == 0`` means the fail-point never fired (the
        sweep records it but judges nothing)."""
        engine = self._build(scenario.device_seed)
        device = engine.store.device
        device.schedule_crash(
            scenario.crash_after, scenario.crash_policy(), scenario.survival
        )
        crashes = 0
        for name, pid, args in _workload_calls(scenario.workload):
            for _attempt in range(_MAX_CRASHES_PER_CALL):
                try:
                    engine.run(name, args, pid=pid)
                    break
                except ProcedureResumed:
                    break  # recovery already completed this pid
                except DeviceCrashedError:
                    crashes += 1
                    ok = self._recover(engine, scenario, nested=crashes == 1)
                    if not ok:
                        return ServeFailure(scenario, (
                            "recovery did not converge (repeated crashes)",
                        )), crashes
            else:
                return ServeFailure(scenario, (
                    f"call {pid} never completed after "
                    f"{_MAX_CRASHES_PER_CALL} crash/recover rounds",
                )), crashes
        device.cancel_scheduled_crash()
        if crashes == 0:
            return None, 0
        problems = self._judge(engine, scenario)
        if problems:
            return ServeFailure(scenario, tuple(problems)), crashes
        return None, crashes

    def _recover(self, engine: ProcedureEngine, scenario: ServeScenario,
                 nested: bool) -> bool:
        """Replay the log and resume; optionally crash again inside the
        resume (the nested case) and recover from that too."""
        armed = scenario.nested_after if nested else None
        for _round in range(_MAX_CRASHES_PER_CALL):
            engine.store.crash_and_recover()
            if armed is not None:
                engine.store.device.schedule_crash(
                    armed, scenario.crash_policy(), scenario.survival
                )
                armed = None
            try:
                engine.resume_all()
                return True
            except DeviceCrashedError:
                continue
        return False

    def _judge(self, engine: ProcedureEngine,
               scenario: ServeScenario) -> List[str]:
        expected_state, expected_results = _expected(scenario.workload)
        problems: List[str] = []
        done = engine._done_map()
        for name, pid, args in _workload_calls(scenario.workload):
            if pid not in done:
                problems.append(f"procedure {pid} has no stored result")
                continue
            got = done[pid]
            want = expected_results[pid]
            if got != want:
                problems.append(
                    f"procedure {pid} result {got!r} != spec {want!r}"
                )
            # exactly-once delivery: a retried pid must replay, never
            # re-execute
            try:
                engine.run(name, args, pid=pid)
                problems.append(
                    f"procedure {pid} re-submission re-executed instead "
                    f"of replaying the stored result"
                )
            except ProcedureResumed as exc:
                if exc.result != want:
                    problems.append(
                        f"procedure {pid} replayed {exc.result!r} != "
                        f"spec {want!r}"
                    )
            except DeviceCrashedError:
                problems.append(f"procedure {pid} re-submission crashed")
        for key, want in sorted(expected_state.items()):
            got = _as_int(engine.gateway.call_read("get", (key,)))
            if got != want:
                kind = "double-applied" if got > want else "lost"
                problems.append(
                    f"key {key}: expected {want}, found {got} "
                    f"({kind} step effects)"
                )
        return problems

    # -- the sweep -------------------------------------------------------------

    def explore(self, max_points: Optional[int] = None, nested: bool = True,
                max_nested_points: Optional[int] = 3, random_samples: int = 0,
                workers: int = 0) -> ServeReport:
        """Deterministic sweep: every (sampled) crash point with the
        worst-case DROP_ALL policy, optional RANDOM survival lotteries,
        then nested crashes during the first recovery."""
        n_ops = self.count_ops()
        report = ServeReport(self.workload, self.durable, n_ops)
        base = ServeScenario(
            workload=self.workload, durable=self.durable,
            device_seed=self.device_seed,
        )
        scenarios = [
            replace(base, crash_after=point)
            for point in _sample_points(1, n_ops, max_points)
        ]
        for r in range(random_samples):
            scenarios += [
                replace(base, crash_after=point, policy="random",
                        device_seed=self.device_seed + 101 + r)
                for point in _sample_points(1, n_ops, max_points)
            ]
        if nested:
            nested_points = _sample_points(
                1, n_ops,
                max_nested_points if max_nested_points is not None else None,
            )
            scenarios += [
                replace(base, crash_after=point, nested_after=after)
                for point in nested_points
                for after in (1, 3)
            ]
        results = self._replay_many(scenarios, workers)
        for scenario, (failure, crashes) in zip(scenarios, results):
            if crashes == 0:
                report.not_fired += 1
                continue
            report.states_explored += 1
            if scenario.nested_after is not None and crashes >= 2:
                report.nested_explored += 1
            report.crashes_observed += crashes
            if failure is not None:
                report.failures.append(failure)
        return report

    def _replay_many(self, scenarios: List[ServeScenario], workers: int):
        jobs = [
            (scenario, self.groups, self.shards_per_group)
            for scenario in scenarios
        ]
        if workers and workers != 1 and len(jobs) > 1:
            return fan_out(_serve_replay_job, jobs, workers)
        return [_serve_replay_job(job) for job in jobs]


def _serve_replay_job(job) -> Tuple[Optional[ServeFailure], int]:
    """One replay, module-level so it pickles for the process pool."""
    scenario, groups, shards_per_group = job
    explorer = ServeCrashExplorer(
        workload=scenario.workload, durable=scenario.durable,
        device_seed=scenario.device_seed, groups=groups,
        shards_per_group=shards_per_group,
    )
    return explorer.replay(scenario)
