"""The RESP-like wire protocol: grammar, incremental parser, encoders.

Requests are RESP2-style arrays of bulk strings —

    *2\\r\\n$3\\r\\nGET\\r\\n$2\\r\\n17\\r\\n

— or, for hand-driven sessions, inline commands (``GET 17\\r\\n``,
tokens split on whitespace).  Replies use the RESP2 type prefixes:

    ``+`` simple string   ``+OK``, ``+PONG``, ``+RESUMED <json>``
    ``-`` typed error     ``-ERR ...``, ``-RETRY-AFTER <ns> ...``,
                          ``-DEGRADED ...``, ``-TIMEOUT ...``
    ``$`` bulk string     ``$5\\r\\nhello\\r\\n`` (``$-1\\r\\n`` = nil)
    ``:`` integer         ``:42``

The error *code* is the first token of the error line; ``RETRY-AFTER``
carries the server's back-off hint in nanoseconds as its second token.
See docs/SERVING.md for the full command table.

Both sides are incremental: feed bytes as they arrive, pop complete
commands/replies as they become available — per-connection pipelining
falls out of parsing greedily and replying in order.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..errors import (
    AdmissionRejected,
    ClusterDegraded,
    ProtocolError,
    RequestTimeoutError,
    ServeError,
)

CRLF = b"\r\n"

#: parser safety bounds — a malformed length cannot balloon the buffer
MAX_BULK = 1 << 20
MAX_ARGS = 1024
MAX_INLINE = 1 << 16


# ---------------------------------------------------------------------------
# Encoding (both directions)
# ---------------------------------------------------------------------------


def encode_command(args: List[Union[bytes, str, int]]) -> bytes:
    """Encode one client command as a RESP array of bulk strings."""
    if not args:
        raise ProtocolError("empty command")
    out = [b"*%d" % len(args), CRLF]
    for arg in args:
        if isinstance(arg, str):
            arg = arg.encode("utf-8")
        elif isinstance(arg, int):
            arg = str(arg).encode("ascii")
        out += [b"$%d" % len(arg), CRLF, arg, CRLF]
    return b"".join(out)


def encode_simple(text: str) -> bytes:
    return b"+" + text.encode("utf-8") + CRLF


def encode_error(code: str, message: str) -> bytes:
    flat = message.replace("\r", " ").replace("\n", " ")
    return b"-" + f"{code} {flat}".encode("utf-8") + CRLF


def encode_bulk(payload: Optional[bytes]) -> bytes:
    if payload is None:
        return b"$-1" + CRLF
    return b"$%d" % len(payload) + CRLF + bytes(payload) + CRLF


def encode_integer(n: int) -> bytes:
    return b":%d" % n + CRLF


def error_reply(exc: Exception) -> bytes:
    """Map a typed serving/cluster error onto the wire."""
    if isinstance(exc, AdmissionRejected):
        return encode_error(
            "RETRY-AFTER", f"{int(exc.retry_after_ns)} {exc}"
        )
    if isinstance(exc, ClusterDegraded):
        return encode_error("DEGRADED", str(exc))
    if isinstance(exc, RequestTimeoutError):
        return encode_error("TIMEOUT", f"outcome unknown: {exc}")
    return encode_error("ERR", str(exc))


# ---------------------------------------------------------------------------
# Request parsing (server side)
# ---------------------------------------------------------------------------


class ProtocolReader:
    """Incremental request parser: feed bytes, pop complete commands."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf += data

    def pop(self) -> Optional[List[bytes]]:
        """One complete command (list of argument byte-strings), or
        ``None`` if the buffer holds only a partial command."""
        while True:
            if not self._buf:
                return None
            if self._buf[:1] == b"*":
                return self._pop_array()
            cmd = self._pop_inline()
            if cmd is None:
                return None
            if cmd:  # bare CRLF keep-alives are skipped
                return cmd

    def pop_all(self) -> List[List[bytes]]:
        """Every complete command currently buffered (the pipeline)."""
        out = []
        while True:
            cmd = self.pop()
            if cmd is None:
                return out
            out.append(cmd)

    # -- internals -------------------------------------------------------------

    def _take_line(self) -> Optional[bytes]:
        idx = self._buf.find(CRLF)
        if idx < 0:
            if len(self._buf) > MAX_INLINE:
                raise ProtocolError("unterminated line exceeds limit")
            return None
        line = bytes(self._buf[:idx])
        del self._buf[: idx + 2]
        return line

    def _pop_inline(self) -> Optional[List[bytes]]:
        line = self._take_line()
        if line is None:
            return None
        return line.split()

    def _pop_array(self) -> Optional[List[bytes]]:
        # parse against a scratch copy: an incomplete command must leave
        # the buffer untouched for the next feed
        view = bytes(self._buf)
        pos = view.find(CRLF)
        if pos < 0:
            return None
        try:
            nargs = int(view[1:pos])
        except ValueError:
            raise ProtocolError(f"bad array header {view[:pos]!r}") from None
        if not (0 < nargs <= MAX_ARGS):
            raise ProtocolError(f"bad argument count {nargs}")
        cursor = pos + 2
        args: List[bytes] = []
        for _ in range(nargs):
            if cursor >= len(view):
                return None
            if view[cursor:cursor + 1] != b"$":
                raise ProtocolError("expected bulk string in array")
            end = view.find(CRLF, cursor)
            if end < 0:
                return None
            try:
                length = int(view[cursor + 1:end])
            except ValueError:
                raise ProtocolError(
                    f"bad bulk length {view[cursor:end]!r}"
                ) from None
            if not (0 <= length <= MAX_BULK):
                raise ProtocolError(f"bad bulk length {length}")
            start = end + 2
            if len(view) < start + length + 2:
                return None
            if view[start + length:start + length + 2] != CRLF:
                raise ProtocolError("bulk string not CRLF-terminated")
            args.append(view[start:start + length])
            cursor = start + length + 2
        del self._buf[:cursor]
        return args


# ---------------------------------------------------------------------------
# Reply parsing (client side)
# ---------------------------------------------------------------------------

#: decoded replies: ("simple", str) / ("error", code, message) /
#: ("bulk", bytes | None) / ("int", int)
Reply = Tuple


class ReplyReader:
    """Incremental reply parser for the test/bench client."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf += data

    def pop(self) -> Optional[Reply]:
        if not self._buf:
            return None
        kind = self._buf[:1]
        idx = self._buf.find(CRLF)
        if idx < 0:
            return None
        line = bytes(self._buf[1:idx])
        if kind == b"+":
            del self._buf[: idx + 2]
            return ("simple", line.decode("utf-8"))
        if kind == b"-":
            del self._buf[: idx + 2]
            code, _, rest = line.decode("utf-8").partition(" ")
            return ("error", code, rest)
        if kind == b":":
            del self._buf[: idx + 2]
            return ("int", int(line))
        if kind == b"$":
            length = int(line)
            if length < 0:
                del self._buf[: idx + 2]
                return ("bulk", None)
            start = idx + 2
            if len(self._buf) < start + length + 2:
                return None
            payload = bytes(self._buf[start:start + length])
            del self._buf[: start + length + 2]
            return ("bulk", payload)
        raise ProtocolError(f"unknown reply type {kind!r}")

    def pop_all(self) -> List[Reply]:
        out = []
        while True:
            reply = self.pop()
            if reply is None:
                return out
            out.append(reply)


def raise_for_reply(reply: Reply) -> Reply:
    """Convert an ``("error", code, message)`` reply into its typed
    exception; pass anything else through."""
    if reply[0] != "error":
        return reply
    code, message = reply[1], reply[2]
    if code == "RETRY-AFTER":
        ns, _, rest = message.partition(" ")
        try:
            hint = float(ns)
        except ValueError:
            hint, rest = 0.0, message
        raise AdmissionRejected(rest, retry_after_ns=hint)
    if code == "DEGRADED":
        raise ClusterDegraded(message)
    if code == "TIMEOUT":
        raise RequestTimeoutError(message)
    raise ServeError(f"{code} {message}")
