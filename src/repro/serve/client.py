"""Asyncio client for the serving layer (tests, smoke, bench).

Thin by design: encodes commands (:func:`encode_command`), decodes
replies (:class:`ReplyReader`), and exposes the two shapes the harness
needs — one request/one reply (:meth:`ServeClient.execute`, raising
typed errors) and a pipelined burst (:meth:`ServeClient.pipeline`,
returning decoded replies in order, errors included in-band so a
partially-shed burst is observable reply by reply).
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Union

from .protocol import Reply, ReplyReader, encode_command, raise_for_reply

Arg = Union[bytes, str, int]


class ServeClient:
    """One connection to a :class:`~repro.serve.server.ReproServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._replies = ReplyReader()

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- request shapes --------------------------------------------------------

    async def execute(self, *args: Arg) -> Reply:
        """One command, one decoded reply; typed errors are raised."""
        replies = await self.pipeline([list(args)])
        return raise_for_reply(replies[0])

    async def pipeline(self, commands: List[List[Arg]]) -> List[Reply]:
        """Send every command in one write, read replies in order.

        Error replies stay in-band as ``("error", code, message)``
        tuples — a shed command must not mask the commands behind it.
        """
        payload = b"".join(encode_command(cmd) for cmd in commands)
        self._writer.write(payload)
        await self._writer.drain()
        out: List[Reply] = []
        while len(out) < len(commands):
            reply = self._replies.pop()
            if reply is not None:
                out.append(reply)
                continue
            data = await self._reader.read(65536)
            if not data:
                raise ConnectionError(
                    f"server closed with {len(commands) - len(out)} "
                    f"replies outstanding"
                )
            self._replies.feed(data)
        return out

    # -- conveniences ----------------------------------------------------------

    async def put(self, key: int, value: bytes) -> None:
        await self.execute("PUT", key, value)

    async def get(self, key: int) -> Optional[bytes]:
        reply = await self.execute("GET", key)
        return reply[1]

    async def proc(self, name: str, pid: str, *args: Arg) -> Reply:
        return await self.execute("PROC", name, pid, *args)

    async def metrics(self) -> bytes:
        reply = await self.execute("METRICS")
        return reply[1]
