"""Durable server-side procedures: persistent-stack continuations in NVM.

*Execution of NVRAM Programs with Persistent Stack* (PAPERS.md) keeps a
program's continuation state in NVM so a crash resumes it rather than
restarting it.  This module is that idea grafted onto the serving
layer: a :class:`DurableProcedure` is a short server-side program —
read-modify-write, a cross-shard batch — expressed as a sequence of
*steps*, and the engine persists one *frame* (the step's binding) into
an NVM ring after each step completes.  The ring rides the same
crash-atomic append discipline the replicas' input queues use
(:class:`~repro.kvstore.ring.PersistentRing`: write, flush, fence, then
advance the durable produce word), so a frame either exists completely
or not at all; the step's *effects* ride the cluster's transaction
engines like any other client write.

Crash story (what :class:`~repro.serve.explorer.ServeCrashExplorer`
sweeps):

* A step whose frame persisted is **never re-executed** — resume skips
  straight past it and every value it bound is back in scope.
* A step whose frame did not persist re-executes from its persisted
  inputs.  Its effects are exactly-once anyway: every effect is
  submitted under ``client_id="proc:<pid>"`` and a request id derived
  from ``(step, effect index)``, so the head's dedup table absorbs the
  replay of anything the first execution already committed, and the
  re-computed values are identical because a step may only depend on
  ``args`` and earlier frames (reads bind in their own step, writes
  consume frames — never both against the same key in one step).
* A completed procedure's result is kept (bounded) in the log, so a
  client retrying a finished pid gets the stored result back as a typed
  :class:`~repro.errors.ProcedureResumed` instead of a re-execution.

``durable=False`` is the deliberately unhardened configuration:
``begin``/``done`` records still hit the log (the server knows *which*
procedures were in flight) but the frame stacks stay in volatile
memory, and the resume identity is lost with them — each recovery gets
a fresh dedup incarnation and restarts interrupted procedures from
step 0.  The explorer demonstrates this double-applies committed
effects, exactly the failure the persistent stack exists to rule out.
"""

from __future__ import annotations

import json
import re
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ProcedureError, ProcedureResumed
from ..kvstore.ring import PersistentRing
from ..nvm.backend import make_device
from ..nvm.device import NVMDevice
from ..nvm.pool import PmemPool
from .gateway import ClusterGateway

LOG_REGION = "procedure_log"
LOG_BYTES = 96 * 1024
DEVICE_BYTES = 1 << 20
_COMPACT_HEADROOM = 4096

#: completed results kept in the log for exactly-once replay to
#: retrying clients; older ones age out at the next compaction
KEEP_DONE = 64

#: request-id stride per step: effect k of step i is request id
#: ``i * EFFECT_STRIDE + k`` under the procedure's client id
EFFECT_STRIDE = 64

_AUTO_PID = re.compile(r"^p(\d+)$")


# ---------------------------------------------------------------------------
# Procedure definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DurableProcedure:
    """A named sequence of steps; each step binds one JSON frame."""

    name: str
    #: ``(step_name, fn)`` — ``fn(ctx)`` returns the frame to persist
    steps: Tuple[Tuple[str, Callable[["ProcedureContext"], Any]], ...]


#: the global registry ``repro serve`` exposes; engines copy it at
#: construction so tests can register without leaking across instances
PROCEDURES: Dict[str, DurableProcedure] = {}


def register_procedure(
    name: str,
    steps: Sequence[Tuple[str, Callable[["ProcedureContext"], Any]]],
) -> DurableProcedure:
    proc = DurableProcedure(name, tuple(steps))
    PROCEDURES[name] = proc
    return proc


def _as_int(raw: Optional[bytes]) -> int:
    """Decode a cluster value as an integer (values come back padded to
    the store's value size; an absent key reads as zero)."""
    text = bytes(raw).rstrip(b"\x00") if raw else b""
    return int(text) if text else 0


def _encode_int(n: int) -> bytes:
    """Fixed-width decimal encoding for integer values.  Values
    overwrite their slot in place, so a shorter write must not leave
    stale digits of the previous value behind it."""
    return b"%019d" % n


# incr(key, delta): the canonical read-modify-write.  The read binds in
# its own frame so a re-executed write step recomputes the same value.

def _incr_read(ctx: "ProcedureContext") -> int:
    return _as_int(ctx.read(int(ctx.args[0])))


def _incr_write(ctx: "ProcedureContext") -> int:
    new = int(ctx.frames[0]) + int(ctx.args[1])
    ctx.write(int(ctx.args[0]), _encode_int(new))
    return new


register_procedure("incr", [("read", _incr_read), ("write", _incr_write)])


# transfer(src, dst, amount): the cross-shard batch — both reads bind
# before either write, and each write is its own step so a crash
# between them resumes with the debit already deduplicated.

def _transfer_read_src(ctx: "ProcedureContext") -> int:
    return _as_int(ctx.read(int(ctx.args[0])))


def _transfer_read_dst(ctx: "ProcedureContext") -> int:
    return _as_int(ctx.read(int(ctx.args[1])))


def _transfer_debit(ctx: "ProcedureContext") -> int:
    new_src = int(ctx.frames[0]) - int(ctx.args[2])
    ctx.write(int(ctx.args[0]), _encode_int(new_src))
    return new_src


def _transfer_credit(ctx: "ProcedureContext") -> Dict[str, int]:
    new_dst = int(ctx.frames[1]) + int(ctx.args[2])
    ctx.write(int(ctx.args[1]), _encode_int(new_dst))
    return {"src": int(ctx.frames[2]), "dst": new_dst}


register_procedure("transfer", [
    ("read_src", _transfer_read_src),
    ("read_dst", _transfer_read_dst),
    ("debit", _transfer_debit),
    ("credit", _transfer_credit),
])


class ProcedureContext:
    """What a step sees: its arguments, every persisted frame before it,
    and effect primitives with exactly-once identities."""

    __slots__ = ("engine", "pid", "args", "frames", "step", "_effects")

    def __init__(self, engine: "ProcedureEngine", pid: str,
                 args: Sequence[Any], frames: Sequence[Any], step: int):
        self.engine = engine
        self.pid = pid
        self.args = tuple(args)
        self.frames = tuple(frames)
        self.step = step
        self._effects = 0

    def read(self, key: int) -> Optional[bytes]:
        """Linearizable cluster read (no dedup identity needed: reads
        re-execute freely because their frame is the only effect)."""
        return self.engine.gateway.call_read("get", (key,))

    def write(self, key: int, value: bytes) -> Any:
        """Effectful cluster write under this step's dedup identity."""
        if self._effects >= EFFECT_STRIDE:
            raise ProcedureError(
                f"step {self.step} of {self.pid} exceeded {EFFECT_STRIDE} effects"
            )
        request_id = self.step * EFFECT_STRIDE + self._effects
        self._effects += 1
        return self.engine.gateway.call_write(
            "put", (key, bytes(value)), (key,),
            client_id=self.engine.client_tag(self.pid),
            request_id=request_id,
        )


# ---------------------------------------------------------------------------
# The durable frame log
# ---------------------------------------------------------------------------


class ProcedureStore:
    """Frame stack + result log in an NVM ring (one little pool).

    Three record types, JSON payloads, mirroring the placement service's
    checkpoint-and-truncate log:

    * ``begin`` — a procedure started (name + args);
    * ``frame`` — step ``step`` of ``pid`` bound ``bind``;
    * ``done`` — ``pid`` completed with ``result`` (retires its frames
      at the next compaction, keeps the result for replay).
    """

    def __init__(self, device: Optional[NVMDevice] = None,
                 log_bytes: int = LOG_BYTES, _replay: bool = False):
        self.device = device if device is not None else make_device(
            DEVICE_BYTES, seed=0
        )
        if _replay:
            self.pool = PmemPool.open(self.device)
            self.ring = PersistentRing.open(self.pool.region(LOG_REGION))
        else:
            self.pool = PmemPool.create(self.device)
            self.ring = PersistentRing.create(
                self.pool.create_region(LOG_REGION, log_bytes)
            )
        #: pid -> {"name", "args", "frames"} for procedures mid-flight
        self.pending: Dict[str, dict] = {}
        #: pid -> result, insertion-ordered so replay eviction is FIFO
        self.done: "OrderedDict[str, Any]" = OrderedDict()
        self.recoveries = 0
        self.compactions = 0

    @classmethod
    def open(cls, device: NVMDevice) -> "ProcedureStore":
        """Rebuild the store from its durable log (server reboot)."""
        store = cls(device=device, _replay=True)
        for payload in store.ring.peek_all():
            rec = json.loads(payload.decode("utf-8"))
            if rec["t"] == "begin":
                store.pending[rec["pid"]] = {
                    "name": rec["name"], "args": list(rec["args"]), "frames": [],
                }
            elif rec["t"] == "frame":
                entry = store.pending.get(rec["pid"])
                # a frame below the current height is a compaction
                # re-append; a frame for a finished pid is stale history
                if entry is not None and rec["step"] == len(entry["frames"]):
                    entry["frames"].append(rec["bind"])
            elif rec["t"] == "done":
                store.pending.pop(rec["pid"], None)
                store.done[rec["pid"]] = rec["result"]
        return store

    def begin(self, pid: str, name: str, args: Sequence[Any]) -> None:
        self._log({"t": "begin", "pid": pid, "name": name, "args": list(args)})
        self.pending[pid] = {"name": name, "args": list(args), "frames": []}

    def push_frame(self, pid: str, step: int, bind: Any) -> None:
        """The frame-persist boundary: the append is flushed and fenced
        before the durable produce word advances, so the frame is all
        there or not there — the crash points the explorer sweeps."""
        self._log({"t": "frame", "pid": pid, "step": step, "bind": bind})
        self.pending[pid]["frames"].append(bind)

    def finish(self, pid: str, result: Any) -> None:
        self._log({"t": "done", "pid": pid, "result": result})
        self.pending.pop(pid, None)
        self.done[pid] = result
        while len(self.done) > KEEP_DONE:
            self.done.popitem(last=False)

    def crash_and_recover(self) -> "ProcedureStore":
        """Server power-fail: volatile state dies, the ring survives.

        Safe whether the device already crashed (a scheduled fail-point
        fired mid-append) or is being failed deliberately.  Rebuilds in
        place so holders of this store keep their reference.
        """
        if not self.device.crashed:
            self.device.crash()
        self.device.restart()
        reborn = ProcedureStore.open(self.device)
        self.pool = reborn.pool
        self.ring = reborn.ring
        self.pending = reborn.pending
        self.done = reborn.done
        self.recoveries += 1
        return self

    def _log(self, record: dict) -> None:
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        if self.ring.free_bytes < len(payload) + _COMPACT_HEADROOM:
            self._compact()
        self.ring.append(payload)

    def _compact(self) -> None:
        """Checkpoint-and-truncate: keep pending stacks and the bounded
        replay window, drop everything already both finished and aged."""
        self.compactions += 1
        self.ring.drain()
        for pid, entry in self.pending.items():
            self.ring.append(json.dumps(
                {"t": "begin", "pid": pid, "name": entry["name"],
                 "args": entry["args"]}, sort_keys=True).encode("utf-8"))
            for step, bind in enumerate(entry["frames"]):
                self.ring.append(json.dumps(
                    {"t": "frame", "pid": pid, "step": step, "bind": bind},
                    sort_keys=True).encode("utf-8"))
        for pid, result in self.done.items():
            self.ring.append(json.dumps(
                {"t": "done", "pid": pid, "result": result},
                sort_keys=True).encode("utf-8"))


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ProcedureEngine:
    """Runs procedures against the cluster, persisting frames per step."""

    def __init__(self, gateway: ClusterGateway,
                 store: Optional[ProcedureStore] = None, durable: bool = True,
                 registry: Optional[Dict[str, DurableProcedure]] = None):
        self.gateway = gateway
        self.store = store if store is not None else ProcedureStore()
        self.durable = durable
        self.registry = dict(PROCEDURES) if registry is None else dict(registry)
        self.started = 0
        self.completed = 0
        self.resumes = 0
        self.resumed_replies = 0
        self.skipped_steps = 0
        self.replayed_steps = 0
        self._next_pid = 0
        self._bump_pid_floor()

    # -- identity --------------------------------------------------------------

    def client_tag(self, pid: str) -> str:
        """The dedup identity a procedure's effects are submitted under.

        Durable mode reuses the bare pid across crashes — the persistent
        stack is exactly what entitles a resumed execution to the
        original identity.  The unhardened volatile mode cannot know
        which ids a lost execution used, so each recovery incarnation
        gets a fresh identity (and with it, double-application)."""
        if self.durable:
            return f"proc:{pid}"
        return f"proc:{pid}:i{self.store.recoveries}"

    def _bump_pid_floor(self) -> None:
        """Keep auto-assigned pids clear of everything in the log."""
        for pid in list(self.store.pending) + list(self.store.done):
            m = _AUTO_PID.match(pid)
            if m is not None:
                self._next_pid = max(self._next_pid, int(m.group(1)) + 1)

    # -- execution -------------------------------------------------------------

    def _pending_map(self) -> Dict[str, dict]:
        return self.store.pending

    def _done_map(self) -> Dict[str, Any]:
        return self.store.done

    def result(self, pid: str) -> Optional[Any]:
        """The stored result of a completed pid (None if unknown)."""
        return self._done_map().get(pid)

    def run(self, name: str, args: Sequence[Any],
            pid: Optional[str] = None) -> Any:
        """Run (or resume) procedure ``name``; returns the result.

        A pid that already completed raises
        :class:`~repro.errors.ProcedureResumed` carrying the stored
        result — the exactly-once reply for a retrying client.  A pid
        still pending (a crashed execution) resumes from its last
        persisted frame.
        """
        if pid is None:
            pid = f"p{self._next_pid}"
            self._next_pid += 1
        done = self._done_map()
        if pid in done:
            self.resumed_replies += 1
            raise ProcedureResumed(
                f"procedure {pid} already completed; replaying stored result",
                pid=pid, result=done[pid],
            )
        pending = self._pending_map()
        if pid not in pending:
            if name not in self.registry:
                raise ProcedureError(f"unknown procedure '{name}'")
            self.store.begin(pid, name, list(args))
            self.started += 1
        return self._drive(pid)

    def resume_all(self) -> List[Tuple[str, Any]]:
        """Drive every pending procedure to completion (post-recovery).

        Returns ``(pid, result)`` pairs in pid order.  Frames persisted
        before the crash are skipped; only the interrupted step (and
        later ones) re-execute, and their committed effects are absorbed
        by the cluster's dedup."""
        out: List[Tuple[str, Any]] = []
        for pid in sorted(self._pending_map(), key=_pid_order):
            self.resumes += 1
            self.skipped_steps += len(self._pending_map()[pid]["frames"])
            out.append((pid, self._drive(pid, resuming=True)))
        return out

    def _drive(self, pid: str, resuming: bool = False) -> Any:
        entry = self._pending_map()[pid]
        proc = self.registry.get(entry["name"])
        if proc is None:
            raise ProcedureError(
                f"procedure '{entry['name']}' (pid {pid}) is not registered"
            )
        frames = entry["frames"]
        for step in range(len(frames), len(proc.steps)):
            ctx = ProcedureContext(self, pid, entry["args"], list(frames), step)
            bind = proc.steps[step][1](ctx)
            if resuming:
                self.replayed_steps += 1
            if self.durable:
                self.store.push_frame(pid, step, bind)
            else:
                # unhardened: the frame exists only in memory — a crash
                # rewinds this procedure to step 0 with a fresh identity
                frames.append(bind)
        result = frames[-1] if frames else None
        self.store.finish(pid, result)
        self.completed += 1
        return result

    # -- metrics ---------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "started": self.started,
            "completed": self.completed,
            "resumes": self.resumes,
            "resumed_replies": self.resumed_replies,
            "skipped_steps": self.skipped_steps,
            "replayed_steps": self.replayed_steps,
            "pending": len(self._pending_map()),
            "recoveries": self.store.recoveries,
            "compactions": self.store.compactions,
        }


def _pid_order(pid: str):
    m = _AUTO_PID.match(pid)
    return (0, int(m.group(1)), pid) if m else (1, 0, pid)
