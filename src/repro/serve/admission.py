"""Admission control: the front door's load-shedding brain.

Converts the cluster's health signals — the chain circuit breaker /
write-quorum loss behind :attr:`ChainCluster.degraded`, and the bounded
pipeline window — into one of two outcomes *before* a request touches
the cluster:

* **reject** (the default): a typed
  :class:`~repro.errors.AdmissionRejected` carrying ``retry_after_ns``
  (the aggregated :meth:`retry_after_ns` hint), surfaced on the wire as
  ``-RETRY-AFTER`` so well-behaved clients back off for exactly the
  breaker's remaining cooldown instead of hammering it;
* **queue**: the request is parked (bounded by ``queue_limit``) and the
  simulator is run forward until the breaker closes — the server-side
  queue-and-readmit path.  Breaker transitions also arrive via
  :meth:`ChainCluster.add_degradation_listener`, so the controller's
  counters record every open/close edge it lived through.

Pipelined bursts are additionally bounded by ``max_inflight``: commands
beyond the window in one batch are shed with the same typed error (a
hint of one cluster round-trip), which keeps one greedy connection from
starving the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import AdmissionRejected, ServeError


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for :class:`AdmissionController`."""

    #: pipeline window: mutating commands admitted per batch
    max_inflight: int = 64
    #: concurrent holders of the queue-and-readmit path
    queue_limit: int = 16
    #: "reject" (typed RETRY-AFTER) or "queue" (park until the breaker
    #: closes, bounded by ``max_wait_ns``)
    policy: str = "reject"
    #: give up on a queued request after this much virtual waiting
    max_wait_ns: float = 50_000_000.0
    #: retry hint when the cluster offers none (overload shedding)
    default_retry_after_ns: float = 400_000.0


class AdmissionController:
    """Gate requests against cluster degradation and pipeline bounds."""

    def __init__(self, cluster, config: Optional[AdmissionConfig] = None):
        self.cluster = cluster
        self.config = config if config is not None else AdmissionConfig()
        if self.config.policy not in ("reject", "queue"):
            raise ServeError(
                f"unknown admission policy '{self.config.policy}'"
            )
        self.queued_now = 0
        # counters (the METRICS endpoint's admission block)
        self.admitted = 0
        self.rejected_degraded = 0
        self.rejected_overload = 0
        self.queued = 0
        self.readmitted = 0
        self.queue_overflow = 0
        self.shed_after_wait = 0
        #: (virtual time, degraded?) breaker transitions observed
        self.breaker_events: List[Tuple[float, bool]] = []
        if hasattr(cluster, "add_degradation_listener"):
            cluster.add_degradation_listener(self._on_breaker)

    # -- signals ---------------------------------------------------------------

    def _on_breaker(self, _group, degraded: bool) -> None:
        self.breaker_events.append((self.cluster.sim.now, bool(degraded)))

    def retry_after_hint(self) -> float:
        hint = None
        if hasattr(self.cluster, "retry_after_ns"):
            hint = self.cluster.retry_after_ns()
        if hint is None or hint <= 0.0:
            hint = self.config.default_retry_after_ns
        return hint

    # -- the gate --------------------------------------------------------------

    def admit(self, batch_index: int = 0) -> None:
        """Admit one mutating command, or raise
        :class:`~repro.errors.AdmissionRejected`.

        ``batch_index`` is the command's position in its pipelined
        batch; positions at or beyond ``max_inflight`` are shed
        outright (the bounded pipeline window).
        """
        if batch_index >= self.config.max_inflight:
            self.rejected_overload += 1
            raise AdmissionRejected(
                f"pipeline window full ({self.config.max_inflight} in flight)",
                retry_after_ns=self.config.default_retry_after_ns,
            )
        if getattr(self.cluster, "degraded", False):
            if self.config.policy == "queue":
                self._hold()
            else:
                self.rejected_degraded += 1
                raise AdmissionRejected(
                    "cluster degraded (circuit breaker open or below "
                    "write quorum)",
                    retry_after_ns=self.retry_after_hint(),
                )
        self.admitted += 1

    def _hold(self) -> None:
        """The queue-and-readmit path: park (bounded), run virtual time
        forward past the breaker's cooldown, then readmit."""
        if self.queued_now >= self.config.queue_limit:
            self.queue_overflow += 1
            raise AdmissionRejected(
                f"admission queue full ({self.config.queue_limit} parked)",
                retry_after_ns=self.retry_after_hint(),
            )
        self.queued += 1
        self.queued_now += 1
        waited = 0.0
        sim = self.cluster.sim
        try:
            while getattr(self.cluster, "degraded", False):
                hint = self.retry_after_hint()
                if waited + hint > self.config.max_wait_ns:
                    self.shed_after_wait += 1
                    raise AdmissionRejected(
                        f"still degraded after {waited:.0f}ns parked",
                        retry_after_ns=hint,
                    )
                # run the shared simulator to the readmit horizon: heals,
                # breaker cooldowns and listener callbacks all fire here
                sim.run(until=sim.now + hint)
                waited += hint
            self.readmitted += 1
        finally:
            self.queued_now -= 1

    # -- metrics ---------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "policy": self.config.policy,
            "admitted": self.admitted,
            "rejected_degraded": self.rejected_degraded,
            "rejected_overload": self.rejected_overload,
            "queued": self.queued,
            "readmitted": self.readmitted,
            "queue_overflow": self.queue_overflow,
            "shed_after_wait": self.shed_after_wait,
            "breaker_transitions": len(self.breaker_events),
        }
