"""The serving layer: asyncio front door over the simulated cluster.

``repro serve`` boots :class:`ReproServer` — a real TCP server speaking
a RESP-like protocol (:mod:`repro.serve.protocol`) — in front of a
:class:`~repro.cluster.ShardedCluster` running in virtual time.  The
pieces:

* :class:`ClusterGateway` — bridges real-time requests into the
  event simulator with ChainClient-style internal retries;
* :class:`AdmissionController` — converts cluster degradation and
  pipeline overload into typed ``RETRY-AFTER`` rejections or bounded
  queue-and-readmit;
* :class:`ProcedureEngine` / :class:`ProcedureStore` — durable
  server-side procedures whose frame stacks persist per step in an NVM
  ring, so a crash resumes the continuation exactly-once;
* :class:`ServeCrashExplorer` — sweeps every frame-persist crash
  point (including nested crashes during recovery) against
  exactly-once oracles;
* :class:`ServeClient` — the asyncio client used by tests, the smoke
  gate and the served-throughput benchmark.

See docs/SERVING.md for the protocol grammar, admission states and the
durable-procedure lifecycle.
"""

from .admission import AdmissionConfig, AdmissionController
from .client import ServeClient
from .explorer import (
    ServeCrashExplorer,
    ServeFailure,
    ServeReport,
    ServeScenario,
)
from .gateway import ClusterGateway
from .procedures import (
    PROCEDURES,
    DurableProcedure,
    ProcedureContext,
    ProcedureEngine,
    ProcedureStore,
    register_procedure,
)
from .protocol import (
    ProtocolReader,
    ReplyReader,
    encode_command,
    encode_error,
    encode_simple,
    error_reply,
    raise_for_reply,
)
from .server import ReproServer

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ClusterGateway",
    "DurableProcedure",
    "PROCEDURES",
    "ProcedureContext",
    "ProcedureEngine",
    "ProcedureStore",
    "ProtocolReader",
    "ReplyReader",
    "ReproServer",
    "ServeClient",
    "ServeCrashExplorer",
    "ServeFailure",
    "ServeReport",
    "ServeScenario",
    "encode_command",
    "encode_error",
    "encode_simple",
    "error_reply",
    "raise_for_reply",
    "register_procedure",
]
