"""The production front door: an asyncio server over the simulated cluster.

``repro serve`` boots this server on a real TCP socket.  Connections
speak the RESP-like grammar (:mod:`repro.serve.protocol`); each batch
of pipelined commands is admitted (:mod:`repro.serve.admission`),
executed against the :class:`~repro.cluster.ShardedCluster` through the
virtual-time gateway (:mod:`repro.serve.gateway`), and answered in
order.  ``PROC`` commands run :class:`DurableProcedure` programs whose
frame stacks persist in the NVM procedure log — a crash mid-procedure
(simulated by power-failing the log's device) is recovered *inside the
request*: the server replays the log, resumes the continuation, and
still answers the command exactly-once.

Command table (full grammar in docs/SERVING.md):

    PING                        +PONG
    PUT <key> <value>           +OK
    DEL <key>                   +OK
    RMW <key> <value>           +OK     (read-modify-write builtin)
    GET <key>                   $<value> | $-1
    PROC <name> <pid> <args..>  $<json result> | +RESUMED <json>
    PROCRESULT <pid>            $<json> | $-1
    CRASH                       +RECOVERED <n resumed>   (test hook)
    METRICS                     $<json>  (device/net/admission/procedure)
    INFO                        $<json>  (topology + address)
    QUIT                        +BYE, then close
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, is_dataclass
from typing import Any, List, Optional, Tuple

from ..errors import (
    DeviceCrashedError,
    ProcedureError,
    ProcedureResumed,
    ProtocolError,
    ReproError,
)
from ..replication.chain import RetryPolicy
from .admission import AdmissionConfig, AdmissionController
from .gateway import ClusterGateway
from .procedures import ProcedureEngine, ProcedureStore
from .protocol import (
    ProtocolReader,
    encode_bulk,
    encode_error,
    encode_simple,
    error_reply,
)

#: mutating verbs pass through admission control; reads and
#: introspection do not (sheddable work is what holds NVM bandwidth)
_MUTATING = frozenset({b"PUT", b"DEL", b"RMW", b"PROC"})


class ReproServer:
    """Asyncio front end over a ``ShardedCluster`` (built on demand)."""

    def __init__(self, cluster=None, host: str = "127.0.0.1", port: int = 0,
                 *, groups: int = 2, shards_per_group: int = 2, f: int = 1,
                 seed: int = 0, retry: Optional[RetryPolicy] = None,
                 admission: Optional[AdmissionConfig] = None,
                 store: Optional[ProcedureStore] = None, durable: bool = True):
        if cluster is None:
            from ..cluster import ShardedCluster

            cluster = ShardedCluster(
                groups=groups, shards_per_group=shards_per_group, f=f,
                heap_mb=2, value_size=64, seed=seed,
            )
        self.cluster = cluster
        self.host = host
        self.port = port
        self.gateway = ClusterGateway(cluster, retry=retry)
        self.admission = AdmissionController(cluster, admission)
        self.store = store if store is not None else ProcedureStore()
        self.procedures = ProcedureEngine(self.gateway, self.store,
                                          durable=durable)
        self.connections_opened = 0
        self.connections_closed = 0
        self.requests = 0
        self.protocol_errors = 0
        self.crashes_recovered = 0
        self._session_seq = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # drain live connection handlers: on 3.10/3.11 wait_closed()
        # does not wait for them, and letting asyncio.run cancel them
        # mid-teardown leaks "exception never retrieved" noise
        if self._conn_tasks:
            await asyncio.gather(*tuple(self._conn_tasks),
                                 return_exceptions=True)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- connection lifecycle --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.connections_opened += 1
        self._session_seq += 1
        session = f"conn{self._session_seq}"
        parser = ProtocolReader()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    parser.feed(data)
                    batch = parser.pop_all()
                except ProtocolError as exc:
                    self.protocol_errors += 1
                    writer.write(encode_error("ERR", str(exc)))
                    await writer.drain()
                    break
                if not batch:
                    continue
                replies, close = self.handle_batch(batch, session=session)
                writer.write(b"".join(replies))
                await writer.drain()
                if close:
                    break
        finally:
            self.connections_closed += 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- request execution (synchronous core; tests drive this directly) -------

    def handle_batch(self, batch: List[List[bytes]],
                     session: str = "conn0") -> Tuple[List[bytes], bool]:
        """Process one pipelined batch in order; replies match command
        order one-to-one.  Returns ``(replies, close_connection)``."""
        replies: List[bytes] = []
        inflight = 0
        for cmd in batch:
            reply, close = self.handle_command(cmd, session=session,
                                               batch_index=inflight)
            if cmd and cmd[0].upper() in _MUTATING:
                inflight += 1
            replies.append(reply)
            if close:
                return replies, True
        return replies, False

    def handle_command(self, argv: List[bytes], session: str = "conn0",
                       batch_index: int = 0) -> Tuple[bytes, bool]:
        self.requests += 1
        try:
            return self._dispatch(argv, session, batch_index)
        except ProtocolError as exc:
            self.protocol_errors += 1
            return error_reply(exc), False
        except ProcedureResumed as exc:
            # the exactly-once replay path: a retried pid gets its
            # original result, marked so the client can tell
            return encode_simple(
                "RESUMED " + json.dumps(exc.result, sort_keys=True)
            ), False
        except ReproError as exc:
            return error_reply(exc), False

    def _dispatch(self, argv: List[bytes], session: str,
                  batch_index: int) -> Tuple[bytes, bool]:
        if not argv:
            raise ProtocolError("empty command")
        verb = argv[0].upper()
        if verb in _MUTATING:
            self.admission.admit(batch_index)
        if verb == b"PING":
            return encode_simple("PONG"), False
        if verb == b"QUIT":
            return encode_simple("BYE"), True
        if verb in (b"PUT", b"RMW"):
            key, value = self._key(argv, 3), bytes(argv[2])
            proc = "put" if verb == b"PUT" else "rmw_const"
            self.gateway.call_write(proc, (key, value), (key,),
                                    client_id=session,
                                    request_id=self.requests)
            return encode_simple("OK"), False
        if verb == b"DEL":
            key = self._key(argv, 2)
            self.gateway.call_write("delete", (key,), (key,),
                                    client_id=session,
                                    request_id=self.requests)
            return encode_simple("OK"), False
        if verb == b"GET":
            key = self._key(argv, 2)
            value = self.gateway.call_read("get", (key,))
            return encode_bulk(None if value is None else bytes(value)), False
        if verb == b"PROC":
            if len(argv) < 3:
                raise ProtocolError("PROC needs <name> <pid> [args...]")
            name = argv[1].decode("utf-8")
            pid = argv[2].decode("utf-8")
            args = [a.decode("utf-8") for a in argv[3:]]
            result = self._run_procedure(name, args, pid)
            return encode_bulk(
                json.dumps(result, sort_keys=True).encode("utf-8")
            ), False
        if verb == b"PROCRESULT":
            if len(argv) != 2:
                raise ProtocolError("PROCRESULT needs <pid>")
            pid = argv[1].decode("utf-8")
            result = self.procedures.result(pid)
            if result is None and pid not in self.procedures._done_map():
                return encode_bulk(None), False
            return encode_bulk(
                json.dumps(result, sort_keys=True).encode("utf-8")
            ), False
        if verb == b"CRASH":
            resumed = self.crash_and_resume()
            return encode_simple(f"RECOVERED {len(resumed)}"), False
        if verb == b"METRICS":
            return encode_bulk(
                json.dumps(self.metrics(), sort_keys=True).encode("utf-8")
            ), False
        if verb == b"INFO":
            return encode_bulk(
                json.dumps(self.info(), sort_keys=True).encode("utf-8")
            ), False
        raise ProtocolError(f"unknown command {verb.decode('utf-8', 'replace')}")

    @staticmethod
    def _key(argv: List[bytes], arity: int) -> int:
        if len(argv) != arity:
            raise ProtocolError(
                f"{argv[0].decode('utf-8', 'replace')} needs {arity - 1} "
                f"argument(s)"
            )
        try:
            return int(argv[1])
        except ValueError:
            raise ProtocolError(f"key {argv[1]!r} is not an integer") from None

    # -- durable procedures ----------------------------------------------------

    def _run_procedure(self, name: str, args: List[str], pid: str) -> Any:
        """Run a procedure; a crash of the procedure log mid-run is
        recovered in place and the command still answers exactly-once."""
        try:
            return self.procedures.run(name, args, pid=pid)
        except DeviceCrashedError:
            self.crash_and_resume()
            stored = self.procedures.result(pid)
            if stored is not None or pid in self.procedures._done_map():
                raise ProcedureResumed(
                    f"procedure {pid} completed across a crash",
                    pid=pid, result=stored,
                ) from None
            # the begin record itself was torn away: run it afresh
            return self.procedures.run(name, args, pid=pid)

    def crash_and_resume(self) -> List[Tuple[str, Any]]:
        """Power-fail the procedure log, replay it, resume continuations."""
        self.store.crash_and_recover()
        resumed = self.procedures.resume_all()
        self.crashes_recovered += 1
        return resumed

    # -- introspection ---------------------------------------------------------

    def metrics(self) -> dict:
        cluster = self.cluster
        doc = {
            "server": {
                "connections_opened": self.connections_opened,
                "connections_closed": self.connections_closed,
                "requests": self.requests,
                "protocol_errors": self.protocol_errors,
                "crashes_recovered": self.crashes_recovered,
            },
            "admission": self.admission.stats(),
            "gateway": self.gateway.stats(),
            "procedures": self.procedures.stats(),
            "cluster": {
                "sim_now_ns": cluster.sim.now,
                "degraded": bool(getattr(cluster, "degraded", False)),
                "committed": getattr(cluster, "committed", 0),
                "aborted": getattr(cluster, "aborted", 0),
                "retransmissions": getattr(cluster, "retransmissions", 0),
                "timed_out": getattr(cluster, "timed_out", 0),
                "degraded_rejections": getattr(
                    cluster, "degraded_rejections", 0
                ),
                "degraded_readmissions": getattr(
                    cluster, "degraded_readmissions", 0
                ),
                "backpressure_stalls": getattr(
                    cluster, "backpressure_stalls", 0
                ),
                "duplicate_requests": getattr(
                    cluster, "duplicate_requests", 0
                ),
            },
        }
        device_stats = getattr(self.store.device, "stats", None)
        if is_dataclass(device_stats):
            doc["procedure_log_device"] = asdict(device_stats)
        net = getattr(self.cluster, "net", None)
        net_stats = getattr(net, "stats", None)
        if is_dataclass(net_stats):
            doc["net"] = asdict(net_stats)
        return doc

    def info(self) -> dict:
        groups = getattr(self.cluster, "groups", None)
        return {
            "address": list(self.address) if self.address else None,
            "groups": len(groups) if isinstance(groups, list) else 1,
            "map_version": getattr(self.cluster, "map_version", None),
            "procedures": sorted(self.procedures.registry),
            "durable": self.procedures.durable,
        }
