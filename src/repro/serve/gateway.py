"""Synchronous gateway between the serving layer and the simulated cluster.

The asyncio server (":mod:`repro.serve.server`") accepts real sockets in
real time, but the cluster it fronts lives in virtual time on one
:class:`~repro.sim.events.EventSimulator`.  The gateway is the bridge:
each request is submitted to the cluster, the simulator is pumped to
resolution, and the (virtual-time) result comes back synchronously —
the same closed-loop discipline :func:`repro.replication.run_clients`
uses, packaged per request instead of per stream.

Internal retries mirror :class:`~repro.replication.client.ChainClient`
exactly: a per-request timer with capped exponential backoff
(:class:`~repro.replication.chain.RetryPolicy`), resubmission under the
same ``(client_id, request_id)`` so the head's dedup table absorbs
duplicates, and stale shard maps refreshed on the typed redirect.  A
request whose outcome is unknown (timeout) lands in
:attr:`ClusterGateway.unknown_rids` before the retry — the serving
layer's own record that a reply may still be in flight for that id.
One deliberate asymmetry: a :class:`~repro.errors.ClusterDegraded`
rejection is surfaced immediately instead of retried — the head records
rejections as completed outcomes, so a same-id resubmit can only replay
the rejection; riding out degradation belongs to the admission
controller (queue-and-readmit) or the remote client (``RETRY-AFTER``).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Set, Tuple

from ..errors import (
    ClusterDegraded,
    ReplicationError,
    RequestTimeoutError,
    StaleShardMapError,
)
from ..replication.chain import RetryPolicy

#: resolution guard: one drain normally resolves a request outright, but
#: a request parked on a degraded queue resolves only after later events
#: (a heal, a breaker close) land — keep pumping while the sim has work
_PUMP_GUARD = 256


class ClusterGateway:
    """Per-server request runner over a ``ChainCluster``-compatible target."""

    def __init__(self, cluster, retry: Optional[RetryPolicy] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.retry = retry if retry is not None else getattr(
            cluster, "retry", None
        ) or RetryPolicy()
        self.map_version: Optional[int] = getattr(cluster, "map_version", None)
        # metrics
        self.reads = 0
        self.writes = 0
        self.internal_retries = 0
        self.map_refreshes = 0
        self.timed_out = 0
        #: (client_id, request_id) pairs whose outcome was unknown at
        #: least once — the ids the dedup table protects on retry
        self.unknown_rids: Set[Tuple[str, int]] = set()

    # -- submission ------------------------------------------------------------

    def call_write(self, proc: str, args: Tuple[Any, ...], keys: Sequence[Any],
                   client_id: str, request_id: int) -> Any:
        """Submit one write and pump the simulator to its resolution.

        Returns the committed result; raises the typed
        :class:`~repro.errors.ReplicationError` once internal retries
        are exhausted (``RequestTimeoutError`` means outcome unknown —
        the caller may retry under the same id, which the head's dedup
        makes exactly-once).
        """
        self.writes += 1
        st = {"done": False, "result": None, "attempt": 0, "timer": None}

        def resolve(result: Any) -> None:
            if st["done"]:
                return
            st["done"] = True
            st["result"] = result
            timer = st["timer"]
            if timer is not None:
                timer.cancel()
                st["timer"] = None

        def retry_later(err: Any) -> None:
            if not self.retry.enabled or st["attempt"] >= self.retry.max_retries:
                resolve(err)
                return
            delay = self.retry.timeout_for(st["attempt"])
            st["attempt"] += 1
            self.internal_retries += 1
            self.sim.schedule(delay, submit)

        def on_reply(result: Any, _latency: float) -> None:
            if st["done"]:
                return  # a late reply after we already resolved: first wins
            timer = st["timer"]
            if timer is not None:
                timer.cancel()
                st["timer"] = None
            if isinstance(result, RequestTimeoutError):
                # the head gave up: outcome unknown.  Retrying the same
                # id is safe (dedup + idempotent procedures).
                self.unknown_rids.add((client_id, request_id))
                retry_later(result)
                return
            if isinstance(result, StaleShardMapError):
                self.map_version = result.current_version
                self.map_refreshes += 1
                submit()
                return
            if isinstance(result, ClusterDegraded):
                # a pre-admission rejection is a *known* outcome, and the
                # head records it in its dedup table — resubmitting the
                # same id can only replay the rejection.  Surface it now;
                # backing off and retrying (under a fresh id) is the
                # admission controller's / client's job.
                resolve(result)
                return
            if isinstance(result, ReplicationError):
                retry_later(result)
                return
            resolve(result)

        def on_timeout() -> None:
            st["timer"] = None
            if st["done"]:
                return
            # our own timer fired before any reply: the request may
            # still land, so its id is unknown from here on
            self.unknown_rids.add((client_id, request_id))
            if st["attempt"] >= self.retry.max_retries:
                resolve(RequestTimeoutError(
                    f"gateway gave up on {proc} {client_id}/{request_id} "
                    f"after {st['attempt']} attempts"
                ))
                return
            st["attempt"] += 1
            self.internal_retries += 1
            submit()

        def submit() -> None:
            if st["done"]:
                return
            old = st["timer"]
            if old is not None:
                old.cancel()
            try:
                target = self.cluster.route(
                    keys[0] if keys else args[0], self.map_version
                )
            except StaleShardMapError as exc:
                self.map_version = exc.current_version
                self.map_refreshes += 1
                target = self.cluster.route(
                    keys[0] if keys else args[0], self.map_version
                )
            target.submit_write(proc, args, keys, on_reply,
                                client_id=client_id, request_id=request_id)
            if self.retry.enabled and not st["done"]:
                st["timer"] = self.sim.schedule(
                    self.retry.timeout_for(st["attempt"]), on_timeout
                )

        submit()
        self._pump(st)
        if not st["done"]:
            # simulator ran dry with the request unresolved: with retries
            # disabled a dropped message is simply lost
            self.unknown_rids.add((client_id, request_id))
            self.timed_out += 1
            raise RequestTimeoutError(
                f"{proc} {client_id}/{request_id} never resolved "
                f"(simulator dry; retries "
                f"{'enabled' if self.retry.enabled else 'disabled'})"
            )
        result = st["result"]
        if isinstance(result, ReplicationError):
            if isinstance(result, RequestTimeoutError):
                self.timed_out += 1
            raise result
        return result

    def call_read(self, proc: str, args: Tuple[Any, ...]) -> Any:
        """Linearizable read via the routed group's tail, with the same
        backoff ladder against transient degradation."""
        self.reads += 1
        st = {"done": False, "result": None, "attempt": 0, "timer": None}

        def on_reply(result: Any, _latency: float) -> None:
            if st["done"]:
                return
            if isinstance(result, ReplicationError):
                if self.retry.enabled and st["attempt"] < self.retry.max_retries:
                    delay = self.retry.timeout_for(st["attempt"])
                    st["attempt"] += 1
                    self.internal_retries += 1
                    self.sim.schedule(delay, submit)
                    return
            st["done"] = True
            st["result"] = result

        def submit() -> None:
            if st["done"]:
                return
            try:
                target = self.cluster.route(args[0], self.map_version)
            except StaleShardMapError as exc:
                self.map_version = exc.current_version
                self.map_refreshes += 1
                target = self.cluster.route(args[0], self.map_version)
            target.submit_read(proc, args, on_reply)

        submit()
        self._pump(st)
        if not st["done"]:
            self.timed_out += 1
            raise ClusterDegraded(f"read {proc}{args} never resolved")
        result = st["result"]
        if isinstance(result, ReplicationError):
            raise result
        return result

    # -- the pump --------------------------------------------------------------

    def _pump(self, st: dict) -> None:
        """Run the cluster's virtual time forward until the request
        resolves or nothing can resolve it (simulator dry)."""
        guard = 0
        while not st["done"] and guard < _PUMP_GUARD:
            self.cluster.drain()
            if st["done"] or not self.sim.pending:
                return
            guard += 1

    # -- metrics ---------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "internal_retries": self.internal_retries,
            "map_refreshes": self.map_refreshes,
            "timed_out": self.timed_out,
            "unknown_rids": len(self.unknown_rids),
        }
