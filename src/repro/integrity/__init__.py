"""Media-fault tolerance: checksummed pool integrity, scrub-and-repair.

The crash machinery (PR 3/4) models fail-stop; this package models the
failure class *below* it — the bytes themselves decaying — and turns the
Kamino backup mirror into a detect/repair/degrade loop:

* :class:`MediaFaultModel` — seeded latent bit flips, stuck-at bits, and
  dead lines injected into a device's durable data
  (``device.attach_media()``);
* :class:`ChecksumSidecar` — per-line CRC metadata maintained by the
  device's flush/fence paths;
* :class:`IntegrityTree` — persistent Merkle tree over the line CRCs
  with streamed (coalesced) or eager update propagation; its published
  root binds every line together, catching the consistent multi-line /
  stale-CRC corruption the per-line sidecar cannot see;
* :class:`Scrubber` — periodic verify-and-repair over the pool, using
  commit records and backup-sync lag to pick the authoritative copy,
  quarantining dead lines via the pool's spare-line table, and degrading
  to typed errors when every copy is gone.

See ``docs/INTEGRITY.md`` for the fault model, the scrub/repair state
machine, and the authority rules.
"""

from .checksum import ChecksumSidecar
from .model import MediaFaultModel
from .scrub import ScrubReport, Scrubber, verify_ranges
from .tree import FANOUT, TREE_MODES, IntegrityTree

__all__ = [
    "ChecksumSidecar",
    "FANOUT",
    "IntegrityTree",
    "MediaFaultModel",
    "ScrubReport",
    "Scrubber",
    "TREE_MODES",
    "verify_ranges",
]
