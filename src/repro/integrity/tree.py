"""Persistent integrity tree over pool cache lines.

The :class:`ChecksumSidecar` (PR 5) verifies each line against the CRC
recorded at its last legitimate persist.  That catches *random* rot but
is blind to **consistent** corruption: an adversary (or a buggy firmware
path) that replays a stale line together with its matching stale CRC
verifies clean line-by-line.  The only defence is a value that binds all
lines together — a Merkle/integrity tree whose root commits to every
leaf at once.

Layout
------
Leaves are the per-line CRC32s the sidecar already computes; interior
nodes are CRC32 over the packed little-endian words of their
``FANOUT`` children; the root is the single node of the top level.
Everything is fixed-geometry over the whole device, so a line index maps
to its leaf directly and node updates are pure arithmetic.

Persistence and crash consistency
---------------------------------
The tree is controller metadata, like the sidecar: it lives out-of-band
and survives crashes (the simulated DIMM controller owns it), but we
still model which parts are *persist-domain* and which are volatile
cache so the crash-consistency argument is honest:

* persist domain — the leaf CRC array, the published root, the pending
  update log, and the epoch counter;
* volatile cache — every interior level.

Updates arrive from the device's persist path (``note_lines``).  In
``streamed`` mode they are appended to the pending log (latest write per
line wins) and interior propagation is deferred: :meth:`apply_pending`
re-hashes each dirty interior node **once** per batch no matter how many
of its children changed, then publishes the new root and bumps the
epoch.  This is the coalesced-update scheme of *Streamlining Integrity
Tree Updates for Secure Persistent NVM* (see PAPERS.md) adapted to the
simulator.  In ``eager`` mode every noted line re-hashes its root-to-leaf
path immediately — the classic baseline the streamed mode is measured
against.

Recovery replays the persist-domain state: :meth:`recover` folds the
pending log into the leaves, rebuilds the interior cache bottom-up, and
checks the rebuilt root against the published root — any mismatch is a
:class:`~repro.errors.RootMismatchError`, never a silently wrong tree.
Because a leaf and its log entry carry the same value (the log is
idempotent, latest-wins), recovery lands on a verifiable tree from any
prefix of applied updates.

Verification (:meth:`verify_line`, :meth:`scan`) checks durable bytes
against the *expected* leaf — pending log first, then the leaf array —
so a stale-CRC replay that fools the sidecar still mismatches the tree.
"""

from __future__ import annotations

import zlib
from array import array
from typing import Dict, Iterable, List, Optional

from ..errors import IntegrityTreeError, RootMismatchError
from ..nvm.latency import CACHE_LINE

__all__ = ["IntegrityTree", "TREE_MODES", "FANOUT", "ZERO_LINE_CRC"]

_LINE_SHIFT = CACHE_LINE.bit_length() - 1

#: Children per interior node.  16 keeps the tree shallow (a 128 Ki-line
#: pool is 5 levels) while a node re-hash stays one small crc32 call.
FANOUT = 16
_FAN_SHIFT = 4

#: CRC of an all-zero cache line — the leaf value of never-written lines.
ZERO_LINE_CRC = zlib.crc32(b"\x00" * CACHE_LINE)

TREE_MODES = ("streamed", "eager")

#: Pending-log size that triggers an automatic batch apply in streamed
#: mode.  Large enough to coalesce a burst of fences, small enough that
#: replaying the log at recovery is trivial.
DEFAULT_WATERMARK = 256

# Chunk (in lines) used by the bless/scan bulk paths: 64 lines = 4 KiB,
# the sweet spot for bytes.count() zero-run detection.
_CHUNK_LINES = 64


class IntegrityTree:
    """Fixed-geometry CRC Merkle tree over a device's cache lines.

    Parameters
    ----------
    n_lines:
        Number of cache lines covered (``device.size // CACHE_LINE``).
    mode:
        ``"streamed"`` (default) defers interior propagation into
        coalesced batches; ``"eager"`` re-hashes the root-to-leaf path on
        every noted line.
    watermark:
        Pending-log length that triggers an automatic
        :meth:`apply_pending` in streamed mode.
    """

    def __init__(
        self,
        n_lines: int,
        *,
        mode: str = "streamed",
        watermark: int = DEFAULT_WATERMARK,
    ) -> None:
        if mode not in TREE_MODES:
            raise ValueError(f"unknown tree mode {mode!r}; expected {TREE_MODES}")
        if n_lines <= 0:
            raise ValueError("integrity tree needs at least one line")
        self.n_lines = n_lines
        self.mode = mode
        self.watermark = max(1, int(watermark))
        # Persist domain -------------------------------------------------
        # A never-written line is all zeros, so its leaf starts at the
        # zero-line CRC (the invariant the sparse level builder leans on).
        self.leaves = array("I", [ZERO_LINE_CRC]) * n_lines
        self.pending: Dict[int, int] = {}
        self.epoch = 0
        self.root_published = 0
        # Volatile interior cache ----------------------------------------
        self._levels: Optional[List[array]] = None
        # Leaves whose value differs from the zero-line CRC; lets scan()
        # skip untouched space with bulk zero checks.
        self._nonzero: set = set()
        # Maintenance counters (reported by the bench cell / CLI).
        self.leaf_updates = 0
        self.node_hashes = 0
        self.batches = 0
        self.pending_peak = 0
        self._blessed = False

    # -- construction ----------------------------------------------------

    def bless_all(self, durable) -> None:
        """(Re)build every leaf from the device's durable bytes.

        Called once at attach time so coverage is total from the first
        instruction — closing the sidecar's lazy-coverage window where a
        line corrupted before its first persist verified clean.  All-zero
        devices (media attached before pool format) take a fast path.
        """
        n = self.n_lines
        nonzero = self._nonzero
        nonzero.clear()
        blob = bytes(durable[: n << _LINE_SHIFT])
        zero_leaf = ZERO_LINE_CRC
        crc = zlib.crc32
        step = _CHUNK_LINES << _LINE_SHIFT
        super_step = step << 8  # 1 MiB: zero runs skip in large strides
        out = array("I", [zero_leaf]) * n
        for sstart in range(0, len(blob), super_step):
            send = min(sstart + super_step, len(blob))
            if blob.count(0, sstart, send) == send - sstart:
                continue
            for start in range(sstart, send, step):
                end = min(start + step, send)
                if blob.count(0, start, end) == end - start:
                    continue
                for base in range(start, end, CACHE_LINE):
                    value = crc(blob[base : base + CACHE_LINE])
                    line = base >> _LINE_SHIFT
                    out[line] = value
                    if value != zero_leaf:
                        nonzero.add(line)
        self.leaves = out
        leaves = self.leaves
        self.pending.clear()
        self._levels = None
        self._levels = self._build_levels(leaves)
        self.root_published = self._levels[-1][0]
        self.epoch += 1
        self._blessed = True

    def _build_levels(self, leaves: array) -> List[array]:
        """Rebuild the interior cache bottom-up, sparsely.

        Every level of a mostly-untouched pool is one default value (the
        hash chain rooted at :data:`ZERO_LINE_CRC`) except above the
        leaves in ``self._nonzero`` — so each level is materialized as a
        C-speed array repeat of its default node, then only the parents
        of exceptional children (plus a short tail node) are re-hashed.
        Cost is O(touched · depth), not O(n_lines), and degrades to the
        dense rebuild when every leaf was written.
        """
        crc = zlib.crc32
        levels = [leaves]
        lvl = leaves
        default = ZERO_LINE_CRC
        exceptions = self._nonzero
        while len(lvl) > 1:
            n = len(lvl)
            m = (n + FANOUT - 1) >> _FAN_SHIFT
            full_default = crc((array("I", [default]) * FANOUT).tobytes())
            nxt = array("I", [full_default]) * m
            dirty = {i >> _FAN_SHIFT for i in exceptions}
            tail = n - ((m - 1) << _FAN_SHIFT)
            if tail != FANOUT:
                dirty.add(m - 1)
            next_exceptions = set()
            for p in dirty:
                value = crc(lvl[p << _FAN_SHIFT : (p + 1) << _FAN_SHIFT].tobytes())
                nxt[p] = value
                if value != full_default:
                    next_exceptions.add(p)
            levels.append(nxt)
            lvl = nxt
            default = full_default
            exceptions = next_exceptions
        return levels

    def _require_levels(self) -> List[array]:
        if self._levels is None:
            self._levels = self._build_levels(self.leaves)
        return self._levels

    # -- update path (device persist hooks) -------------------------------

    def note_line(self, line: int, crc_value: int) -> None:
        """Record that ``line`` persisted with CRC ``crc_value``."""
        self.leaf_updates += 1
        if self.mode == "eager":
            self._set_leaf(line, crc_value)
            self._bubble(line)
            return
        self.pending[line] = crc_value
        if len(self.pending) > self.pending_peak:
            self.pending_peak = len(self.pending)
        if len(self.pending) >= self.watermark:
            self.apply_pending()

    def note_lines(self, lines: Iterable[int], crcs: Dict[int, int]) -> None:
        """Bulk form of :meth:`note_line` fed by the sidecar's CRC map."""
        for line in lines:
            value = crcs.get(line)
            if value is None:
                continue
            self.note_line(line, value)

    def _set_leaf(self, line: int, value: int) -> None:
        self.leaves[line] = value
        if value != ZERO_LINE_CRC:
            self._nonzero.add(line)
        else:
            self._nonzero.discard(line)

    def _bubble(self, line: int) -> None:
        """Eagerly re-hash the root-to-leaf path above ``line``."""
        levels = self._require_levels()
        crc = zlib.crc32
        idx = line
        for depth in range(len(levels) - 1):
            idx >>= _FAN_SHIFT
            child = levels[depth]
            levels[depth + 1][idx] = crc(
                child[idx << _FAN_SHIFT : (idx + 1) << _FAN_SHIFT].tobytes()
            )
            self.node_hashes += 1
        self.root_published = levels[-1][0]
        self.epoch += 1

    def apply_pending(self) -> int:
        """Fold the pending log into the tree in one coalesced batch.

        Each dirty interior node is re-hashed exactly once regardless of
        how many children changed; returns the number of node hashes the
        batch spent.  No-op (and no epoch bump) when the log is empty.
        """
        if not self.pending:
            return 0
        levels = self._require_levels()
        crc = zlib.crc32
        dirty = set()
        for line, value in self.pending.items():
            self._set_leaf(line, value)
            dirty.add(line >> _FAN_SHIFT)
        spent = 0
        for depth in range(len(levels) - 1):
            child = levels[depth]
            parent = levels[depth + 1]
            nxt = set()
            for idx in dirty:
                parent[idx] = crc(
                    child[idx << _FAN_SHIFT : (idx + 1) << _FAN_SHIFT].tobytes()
                )
                spent += 1
                nxt.add(idx >> _FAN_SHIFT)
            dirty = nxt
        self.node_hashes += spent
        self.batches += 1
        self.pending.clear()
        self.root_published = levels[-1][0]
        self.epoch += 1
        return spent

    # -- verification -----------------------------------------------------

    def expected_crc(self, line: int) -> int:
        """The CRC the tree currently commits to for ``line``."""
        pending = self.pending
        if line in pending:
            return pending[line]
        return self.leaves[line]

    def verify_line(self, line: int, durable) -> bool:
        base = line << _LINE_SHIFT
        return zlib.crc32(durable[base : base + CACHE_LINE]) == self.expected_crc(line)

    def scan(self, durable, first: int = 0, last: Optional[int] = None) -> List[int]:
        """Return every line in ``[first, last]`` whose durable bytes
        mismatch the tree.

        Touched lines (leaf != zero CRC, or pending) are verified
        individually; the untouched gaps between them are checked with
        bulk ``bytes.count(0)`` zero-run scans, bisecting into per-line
        checks only when a gap turns out not to be all zeros.  One
        ``bytes()`` snapshot keeps the numpy backend's memoryview exports
        off the per-line hot path (a single vectorized copy of the
        contiguous run, identical bytes on the pure backend).
        """
        if last is None:
            last = self.n_lines - 1
        last = min(last, self.n_lines - 1)
        if first > last:
            return []
        blob = bytes(durable[first << _LINE_SHIFT : (last + 1) << _LINE_SHIFT])
        crc = zlib.crc32
        bad: List[int] = []
        interesting = sorted(
            ln
            for ln in self._nonzero.union(self.pending)
            if first <= ln <= last
        )
        zero_leaf = ZERO_LINE_CRC

        def check_gap(lo: int, hi: int) -> None:
            # lines [lo, hi) are expected all-zero (zero leaf, no pending)
            if lo >= hi:
                return
            s = (lo - first) << _LINE_SHIFT
            e = (hi - first) << _LINE_SHIFT
            if blob.count(0, s, e) == e - s:
                return
            for ln in range(lo, hi):
                ls = (ln - first) << _LINE_SHIFT
                le = ls + CACHE_LINE
                if blob.count(0, ls, le) != CACHE_LINE:
                    if crc(blob[ls:le]) != self.expected_crc(ln):
                        bad.append(ln)

        cursor = first
        for ln in interesting:
            check_gap(cursor, ln)
            s = (ln - first) << _LINE_SHIFT
            if crc(blob[s : s + CACHE_LINE]) != self.expected_crc(ln):
                bad.append(ln)
            cursor = ln + 1
        check_gap(cursor, last + 1)
        # Zero-leaf lines can also sit in self._nonzero gaps when their
        # expected value IS the zero CRC but bytes are nonzero — handled
        # inside check_gap via expected_crc.  (A crc collision with the
        # zero CRC on nonzero bytes is out of model, as for the sidecar.)
        bad.sort()
        return bad

    # -- crash / recovery -------------------------------------------------

    def recover(self, durable=None) -> "IntegrityTree":
        """Land on a verifiable tree after a crash.

        Replays the pending update log into the leaves (idempotent,
        latest-wins), rebuilds the volatile interior cache bottom-up, and
        checks the rebuilt root against the published root.  Raises
        :class:`RootMismatchError` if the persist-domain state is
        internally inconsistent — recovery never proceeds on a tree it
        cannot verify.
        """
        if not self._blessed:
            raise IntegrityTreeError("integrity tree recovered before bless_all()")
        for line, value in self.pending.items():
            self._set_leaf(line, value)
        had_pending = bool(self.pending)
        self.pending.clear()
        self._levels = self._build_levels(self.leaves)
        root = self._levels[-1][0]
        if had_pending:
            # The log held updates the published root predates: publish
            # the replayed root (the log IS the durable intent).
            self.root_published = root
            self.epoch += 1
        elif root != self.root_published:
            raise RootMismatchError(
                "integrity tree root mismatch after recovery: "
                f"rebuilt {root:#010x} != published {self.root_published:#010x}"
            )
        return self

    def drop_interior(self) -> None:
        """Model a crash taking the volatile interior cache."""
        self._levels = None

    def clone(self) -> "IntegrityTree":
        """Deep-copy persist-domain state; the clone's interior cache is
        dropped in streamed mode (it is volatile — :meth:`recover`
        rebuilds it) and kept in eager mode (eager keeps the whole tree
        in the persist domain; there is no log to replay)."""
        twin = IntegrityTree(self.n_lines, mode=self.mode, watermark=self.watermark)
        twin.leaves = self.leaves[:]
        twin.pending = dict(self.pending)
        twin.epoch = self.epoch
        twin.root_published = self.root_published
        twin._nonzero = set(self._nonzero)
        twin._blessed = self._blessed
        if self.mode == "eager" and self._levels is not None:
            twin._levels = [lvl[:] for lvl in self._levels]
        return twin

    # -- introspection ----------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._require_levels())

    def root(self) -> int:
        """The root over the *applied* leaves (ignores pending)."""
        return self._require_levels()[-1][0]

    def stats(self) -> Dict[str, int]:
        return {
            "mode": self.mode,
            "n_lines": self.n_lines,
            "depth": self.depth,
            "leaf_updates": self.leaf_updates,
            "node_hashes": self.node_hashes,
            "batches": self.batches,
            "pending_peak": self.pending_peak,
            "pending": len(self.pending),
            "epoch": self.epoch,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IntegrityTree(mode={self.mode!r}, lines={self.n_lines}, "
            f"root={self.root_published:#010x}, pending={len(self.pending)})"
        )
