"""Seeded media-fault model: bit rot, stuck-at bits, and dead lines.

The :class:`MediaFaultModel` attaches to an
:class:`~repro.nvm.device.NVMDevice` (``device.attach_media()``) and
corrupts *durable* data — the failure class below fail-stop that crash
recovery alone cannot see:

* **latent bit flips** silently invert durable bits; reads return the
  corrupted bytes with no error (that is the point — detection is the
  checksum sidecar's job);
* **stuck-at bits** re-assert themselves after every legitimate write to
  their line, so a repair that simply rewrites the data fails again
  until the line is quarantined;
* **dead lines** are uncorrectable: any read touching one raises
  :class:`~repro.errors.UncorrectableMediaError` until the line is
  quarantined and remapped to a spare
  (:meth:`~repro.nvm.pool.PmemPool.quarantine_line` + :meth:`retire`);
* lines whose every copy is gone are marked **lost**; reads then raise
  :class:`~repro.errors.BothCopiesLostError` — a typed degradation, never
  silent garbage.

The model also owns the :class:`~repro.integrity.checksum.ChecksumSidecar`
(when ``protect=True``) and keeps it honest from the device's persist
paths: every flushed line is re-checksummed over its intended content
*before* stuck-at bits re-corrupt it, so a stuck line is detectably bad
after every write.  Crash resolution re-blesses torn lines — a torn
write is a crash artifact for recovery to handle, not a media fault —
except lines carrying still-uninspected injected corruption, whose stale
checksum keeps them detectable.

Everything is deterministic under ``seed``; with no faults injected the
model is invisible: no :class:`~repro.nvm.stats.NVMStats` counter moves
and durable bytes are untouched, which the differential property tests
pin against :class:`~repro.nvm.reference.ReferenceNVMDevice`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import zlib

from ..errors import BothCopiesLostError, UncorrectableMediaError
from ..nvm.latency import CACHE_LINE
from .checksum import ChecksumSidecar
from .tree import TREE_MODES, IntegrityTree

_LINE_SHIFT = CACHE_LINE.bit_length() - 1


class MediaFaultModel:
    """Fault state + injection API for one device's media."""

    def __init__(
        self,
        device=None,
        seed: int = 0,
        protect: bool = True,
        tree: Optional[str] = None,
        bless: bool = False,
    ):
        if tree in ("off", ""):
            tree = None
        if tree is not None and tree not in TREE_MODES:
            raise ValueError(f"unknown tree mode {tree!r}; expected {TREE_MODES}")
        if tree is not None and not protect:
            raise ValueError("integrity tree requires protect=True (it hangs "
                             "off the checksum sidecar's leaf CRCs)")
        if bless and not protect:
            raise ValueError("bless-on-attach requires protect=True")
        self.device = device
        self.rng = random.Random(seed)
        self.sidecar: Optional[ChecksumSidecar] = ChecksumSidecar() if protect else None
        #: integrity tree over the line CRCs (None = checksum-only)
        self.tree: Optional[IntegrityTree] = None
        self._tree_mode = tree
        self._bless_on_attach = bless
        #: uncorrectable lines: reads raise UncorrectableMediaError
        self.dead: Set[int] = set()
        #: lines whose every copy is gone: reads raise BothCopiesLostError
        self.lost: Set[int] = set()
        #: line -> [(byte offset in line, bit, forced value), ...]
        self.stuck: Dict[int, List[Tuple[int, int, int]]] = {}
        #: lines holding injected-but-unrepaired corruption; their stale
        #: checksum must survive crash re-blessing so scrub still detects
        self.tainted: Set[int] = set()
        #: quarantined lines remapped to spares (reads work again)
        self.retired: Set[int] = set()
        if device is not None:
            self.bind(device)

    # -- attachment ---------------------------------------------------------

    def bind(self, device) -> "MediaFaultModel":
        self.device = device
        if self._tree_mode is not None and self.tree is None:
            self.tree = IntegrityTree(device.size >> _LINE_SHIFT, mode=self._tree_mode)
        if self.tree is not None and not self.tree._blessed:
            # total coverage from the first instruction: every leaf holds
            # the CRC of the line's current content, so corruption landing
            # before a line's first persist is detectable (the sidecar's
            # lazy-coverage window is closed by the tree).
            self.tree.bless_all(device._durable)
        if self._bless_on_attach and self.sidecar is not None:
            # explicit alternative when running checksum-only: record
            # every line's current CRC into the sidecar at attach time.
            self._bless_all_sidecar()
        return self

    def _bless_all_sidecar(self) -> None:
        """Record every line's current content in the sidecar (eagerly
        closing the lazy-coverage window without a tree)."""
        n_lines = self.device.size >> _LINE_SHIFT
        self.sidecar.record_span(0, n_lines - 1, self.device._durable)

    @property
    def protected(self) -> bool:
        """True when a checksum sidecar is maintained (detection works)."""
        return self.sidecar is not None

    @property
    def faulty(self) -> bool:
        return bool(self.dead or self.lost or self.stuck or self.tainted)

    # -- read-path surface --------------------------------------------------

    def check_read(self, addr: int, size: int) -> None:
        """Raise the typed error if the read touches a dead/lost line."""
        dead = self.dead
        lost = self.lost
        if not dead and not lost:
            return
        first = addr >> _LINE_SHIFT
        last = (addr + size - 1) >> _LINE_SHIFT
        hit_lost = [ln for ln in lost if first <= ln <= last]
        if hit_lost:
            raise BothCopiesLostError(
                f"lines {sorted(hit_lost)} lost beyond repair "
                f"(read [{addr}, {addr + size}))",
                lines=sorted(hit_lost),
            )
        hit_dead = [ln for ln in dead if first <= ln <= last]
        if hit_dead:
            raise UncorrectableMediaError(
                f"uncorrectable media error on lines {sorted(hit_dead)} "
                f"(read [{addr}, {addr + size}))",
                lines=sorted(hit_dead),
            )

    # -- persist-path hooks (called by the device) --------------------------

    def on_persist(self, lines: Iterable[int]) -> None:
        """Lines were legitimately flushed: re-checksum their intended
        content, then let stuck-at bits re-corrupt the media."""
        sidecar = self.sidecar
        durable = self.device._durable
        stuck = self.stuck
        tainted = self.tainted
        lines = list(lines)
        for line in lines:
            tainted.discard(line)
        if sidecar is not None:
            # bulk re-checksum: contiguous runs snapshot once.  Lines are
            # distinct within one persist call and stuck-at bits only
            # touch their own line, so recording before the stuck pass is
            # byte-identical to the old interleaved per-line loop.
            sidecar.record_many(lines, durable)
            if self.tree is not None:
                # same hook, same CRCs: dirty leaves stream into the tree
                # (queued in streamed mode, bubbled in eager mode).
                self.tree.note_lines(lines, sidecar._crcs)
        for line in lines:
            faults = stuck.get(line)
            if faults:
                self._assert_stuck(line, faults)

    def on_crash(self, entries: Iterable[Tuple[int, bool]]) -> None:
        """Crash resolution rewrote (parts of) these lines on the media.

        ``entries`` is ``(line, full_rewrite)``; a full rewrite clears
        any outstanding injected corruption (the whole line was replaced
        with intended bytes).  Torn lines are re-blessed so recovery —
        not the scrubber — owns them, unless they still carry injected
        corruption, in which case the stale checksum stays so detection
        survives the crash.
        """
        sidecar = self.sidecar
        durable = self.device._durable
        for line, full_rewrite in entries:
            if full_rewrite:
                self.tainted.discard(line)
            if sidecar is not None and line not in self.tainted:
                sidecar.record(line, durable)
                if self.tree is not None:
                    self.tree.note_line(line, sidecar._crcs[line])
            faults = self.stuck.get(line)
            if faults:
                self._assert_stuck(line, faults)

    def _assert_stuck(self, line: int, faults: Sequence[Tuple[int, int, int]]) -> None:
        durable = self.device._durable
        base = line << _LINE_SHIFT
        changed = False
        for off, bit, value in faults:
            byte = durable[base + off]
            forced = byte | (1 << bit) if value else byte & ~(1 << bit)
            if forced != byte:
                durable[base + off] = forced
                changed = True
        if changed:
            self.tainted.add(line)

    # -- fault injection ----------------------------------------------------

    def bless(self, line: int) -> None:
        """Checksum a line's current (pre-decay) content, as the media
        carried valid ECC before rotting."""
        if self.sidecar is not None and line not in self.sidecar:
            self.sidecar.record(line, self.device._durable)

    def flip_bit(self, addr: int, bit: int) -> None:
        """Invert one durable bit (a latent media flip)."""
        line = addr >> _LINE_SHIFT
        self.bless(line)
        self.device._durable[addr] ^= 1 << bit
        self.tainted.add(line)
        self.device.stats.media_flips += 1

    def inject_flips(
        self,
        n: int,
        lo: int = 0,
        hi: Optional[int] = None,
        ranges: Optional[Sequence[Tuple[int, int]]] = None,
        rng: Optional[random.Random] = None,
    ) -> List[Tuple[int, int]]:
        """Flip ``n`` seeded random bits inside ``[lo, hi)`` (or inside
        the given ``(start, length)`` ranges); returns the (addr, bit)
        list for test assertions."""
        rng = rng if rng is not None else self.rng
        if ranges:
            spans = [(s, ln) for s, ln in ranges if ln > 0]
        else:
            hi = hi if hi is not None else self.device.size
            spans = [(lo, hi - lo)]
        if not spans:
            return []
        total = sum(ln for _s, ln in spans)
        flips: List[Tuple[int, int]] = []
        for _ in range(n):
            pick = rng.randrange(total)
            for start, length in spans:
                if pick < length:
                    addr = start + pick
                    break
                pick -= length
            bit = rng.randrange(8)
            self.flip_bit(addr, bit)
            flips.append((addr, bit))
        return flips

    def stick_bit(self, addr: int, bit: int, value: int) -> None:
        """Force one durable bit to ``value`` now and after every
        subsequent write to its line (a stuck-at fault)."""
        line = addr >> _LINE_SHIFT
        self.bless(line)
        fault = (addr & (CACHE_LINE - 1), bit, 1 if value else 0)
        self.stuck.setdefault(line, []).append(fault)
        self.device.stats.media_flips += 1
        self._assert_stuck(line, [fault])

    def kill_line(self, line: int) -> None:
        """Declare a line uncorrectable; reads raise until quarantined."""
        self.bless(line)
        self.dead.add(line)
        self.tainted.add(line)
        self.device.stats.media_dead += 1

    def kill_lines(
        self,
        n: int,
        lo: int = 0,
        hi: Optional[int] = None,
        ranges: Optional[Sequence[Tuple[int, int]]] = None,
        rng: Optional[random.Random] = None,
    ) -> List[int]:
        """Kill ``n`` seeded random distinct lines inside the byte range
        (or ranges); returns the killed line indices."""
        rng = rng if rng is not None else self.rng
        if ranges:
            spans = [(s, ln) for s, ln in ranges if ln > 0]
        else:
            hi = hi if hi is not None else self.device.size
            spans = [(lo, hi - lo)]
        lines: Set[int] = set()
        for start, length in spans:
            first = start >> _LINE_SHIFT
            last = (start + length - 1) >> _LINE_SHIFT
            lines.update(range(first, last + 1))
        lines -= self.dead
        killed = sorted(rng.sample(sorted(lines), min(n, len(lines))))
        for line in killed:
            self.kill_line(line)
        return killed

    # -- repair / quarantine ------------------------------------------------

    def mark_lost(self, line: int) -> None:
        """No surviving copy exists: degrade with a typed error on read."""
        self.dead.discard(line)
        self.lost.add(line)

    def retire(self, line: int) -> None:
        """Quarantine: the controller remapped the address to a spare
        line, so the address serves (spare) media again.  Content must be
        restored by the caller (:meth:`repair_line`) or the line marked
        lost."""
        self.dead.discard(line)
        self.lost.discard(line)
        self.stuck.pop(line, None)
        self.tainted.discard(line)
        self.retired.add(line)

    def repair_line(self, line: int, data: bytes) -> None:
        """Controller-level repair: write authoritative bytes straight to
        the media and re-checksum.  Stuck-at bits re-corrupt immediately
        (repair of a stuck line fails verification again — quarantine is
        the only cure), which :meth:`verify_line` exposes."""
        if len(data) != CACHE_LINE:
            raise ValueError("repair_line wants exactly one cache line")
        base = line << _LINE_SHIFT
        durable = self.device._durable
        durable[base : base + CACHE_LINE] = data
        self.tainted.discard(line)
        self.lost.discard(line)
        if self.sidecar is not None:
            self.sidecar.record(line, durable)
            if self.tree is not None:
                # a controller repair is a legitimate persist: the leaf
                # follows the repaired content.  Safety comes from the
                # *source* side — the scrubber only repairs from copies
                # that pass tree-aware verification (or from a peer), so
                # a stale-replayed partner can never become the donor.
                self.tree.note_line(line, self.sidecar._crcs[line])
        faults = self.stuck.get(line)
        if faults:
            self._assert_stuck(line, faults)
        self.device.stats.media_repaired += 1

    # -- adversarial consistent corruption ----------------------------------

    def snapshot_lines(
        self, ranges: Sequence[Tuple[int, int]]
    ) -> Dict[int, bytes]:
        """Durable images of every line covered by the ``(start, length)``
        byte spans — ammunition for a later :meth:`replay_stale`."""
        durable = self.device._durable
        images: Dict[int, bytes] = {}
        for start, length in ranges:
            if length <= 0:
                continue
            first = start >> _LINE_SHIFT
            last = (start + length - 1) >> _LINE_SHIFT
            blob = bytes(durable[first << _LINE_SHIFT : (last + 1) << _LINE_SHIFT])
            for line in range(first, last + 1):
                off = (line - first) << _LINE_SHIFT
                images[line] = blob[off : off + CACHE_LINE]
        return images

    def replay_stale(
        self, images: Dict[int, bytes], lines: Iterable[int]
    ) -> List[int]:
        """Adversarial *consistent* corruption: write each line's stale
        image back to the media **and forge the matching stale CRC** in
        the checksum sidecar, so per-line verification passes.

        This models a firmware/controller replay (or a targeted attack)
        that is internally consistent — old data with its old checksum.
        The sidecar is fooled by construction; only the integrity tree,
        whose leaves kept moving with every persist, still disputes the
        line.  The tree is deliberately *not* told about the replay.
        Returns the lines actually replayed (those present in ``images``).
        """
        durable = self.device._durable
        replayed: List[int] = []
        for line in lines:
            image = images.get(line)
            if image is None:
                continue
            base = line << _LINE_SHIFT
            durable[base : base + CACHE_LINE] = image
            if self.sidecar is not None:
                self.sidecar._crcs[line] = zlib.crc32(image)
            # no taint: taint models *detected-by-checksum* corruption and
            # would let crash re-blessing keep the line detectable — the
            # whole point here is that the sidecar verifies clean.
            self.tainted.discard(line)
            replayed.append(line)
        if replayed:
            self.device.stats.media_stale += len(replayed)
        return replayed

    # -- verification -------------------------------------------------------

    def verify_line(self, line: int) -> bool:
        """True when the line is readable and matches its checksum (and,
        when an integrity tree is attached, the tree's expected leaf —
        a stale-CRC replay that satisfies the sidecar still fails here)."""
        if line in self.dead or line in self.lost:
            return False
        if self.sidecar is None:
            return True
        if not self.sidecar.verify(line, self.device._durable):
            return False
        if self.tree is not None:
            return self.tree.verify_line(line, self.device._durable)
        return True

    def bad_lines(self, first: int = 0, last: Optional[int] = None) -> List[int]:
        """Every detectably bad line in the inclusive line range: dead,
        lost, or failing checksum verification."""
        bad = {
            ln
            for ln in self.dead | self.lost
            if ln >= first and (last is None or ln <= last)
        }
        if self.sidecar is not None:
            bad.update(self.sidecar.scan(self.device._durable, first, last))
        if self.tree is not None:
            bad.update(self.tree.scan(self.device._durable, first, last))
        return sorted(bad)

    # -- state carried across clones / fingerprints -------------------------

    def fingerprint_token(self) -> bytes:
        """Media state folded into the device's crash fingerprint: two
        images with equal bytes but different dead/lost/stuck maps behave
        differently."""
        parts = [
            b"dead:", repr(sorted(self.dead)).encode(),
            b"lost:", repr(sorted(self.lost)).encode(),
            b"stuck:", repr(sorted(self.stuck.items())).encode(),
            b"retired:", repr(sorted(self.retired)).encode(),
        ]
        return b"|".join(parts)

    def clone(self, device) -> "MediaFaultModel":
        """Carry media state onto a cloned device (checker replays)."""
        other = MediaFaultModel(device, protect=False)
        other.rng.setstate(self.rng.getstate())
        other.sidecar = self.sidecar.clone() if self.sidecar is not None else None
        other._tree_mode = self._tree_mode
        other.tree = self.tree.clone() if self.tree is not None else None
        other.dead = set(self.dead)
        other.lost = set(self.lost)
        other.stuck = {ln: list(faults) for ln, faults in self.stuck.items()}
        other.tainted = set(self.tainted)
        other.retired = set(self.retired)
        return other
