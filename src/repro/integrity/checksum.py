"""Per-cache-line checksum sidecar: the detection half of integrity.

A :class:`ChecksumSidecar` models the out-of-band per-line ECC/CRC
metadata an integrity-protected NVDIMM controller maintains next to the
media.  It is deliberately *not* stored in the pool: like ECC bits it
lives beside the data, survives restarts with the module, and is updated
by the controller (here: the device's persist paths) on every legitimate
line write.

Coverage is lazy: a line gets an entry the first time it is persisted
after the model is attached (or the moment a fault is injected into it,
see :meth:`MediaFaultModel.bless` — the line's pre-decay content is
checksummed first, exactly as real media carries valid ECC before it
rots).  Lines with no entry verify clean, so attaching integrity to a
long-lived device is O(1).
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List

from ..nvm.latency import CACHE_LINE

_LINE_SHIFT = CACHE_LINE.bit_length() - 1


class ChecksumSidecar:
    """CRC32-per-line metadata maintained at flush/fence time."""

    __slots__ = ("_crcs",)

    def __init__(self) -> None:
        self._crcs: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._crcs)

    def __contains__(self, line: int) -> bool:
        return line in self._crcs

    def record(self, line: int, durable) -> None:
        """(Re)checksum ``line`` from the media's current content."""
        base = line << _LINE_SHIFT
        self._crcs[line] = zlib.crc32(bytes(durable[base : base + CACHE_LINE]))

    def record_many(self, lines: Iterable[int], durable) -> None:
        crcs = self._crcs
        for line in lines:
            base = line << _LINE_SHIFT
            crcs[line] = zlib.crc32(bytes(durable[base : base + CACHE_LINE]))

    def verify(self, line: int, durable) -> bool:
        """True when ``line`` matches its recorded checksum (or has none)."""
        crc = self._crcs.get(line)
        if crc is None:
            return True
        base = line << _LINE_SHIFT
        return crc == zlib.crc32(bytes(durable[base : base + CACHE_LINE]))

    def forget(self, line: int) -> None:
        self._crcs.pop(line, None)

    def scan(self, durable, first: int = 0, last: int | None = None) -> List[int]:
        """Lines whose media content no longer matches their checksum.

        Walks every *covered* line (uncovered lines were never persisted
        under protection and verify clean by definition), optionally
        restricted to the inclusive line range ``[first, last]``.
        """
        bad: List[int] = []
        crc32 = zlib.crc32
        for line, crc in self._crcs.items():
            if line < first or (last is not None and line > last):
                continue
            base = line << _LINE_SHIFT
            if crc != crc32(bytes(durable[base : base + CACHE_LINE])):
                bad.append(line)
        bad.sort()
        return bad

    def clone(self) -> "ChecksumSidecar":
        other = ChecksumSidecar()
        other._crcs = dict(self._crcs)
        return other
