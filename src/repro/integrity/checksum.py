"""Per-cache-line checksum sidecar: the detection half of integrity.

A :class:`ChecksumSidecar` models the out-of-band per-line ECC/CRC
metadata an integrity-protected NVDIMM controller maintains next to the
media.  It is deliberately *not* stored in the pool: like ECC bits it
lives beside the data, survives restarts with the module, and is updated
by the controller (here: the device's persist paths) on every legitimate
line write.

Coverage is lazy: a line gets an entry the first time it is persisted
after the model is attached (or the moment a fault is injected into it,
see :meth:`MediaFaultModel.bless` — the line's pre-decay content is
checksummed first, exactly as real media carries valid ECC before it
rots).  Lines with no entry verify clean, so attaching integrity to a
long-lived device is O(1).
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List

from ..nvm.latency import CACHE_LINE

_LINE_SHIFT = CACHE_LINE.bit_length() - 1


class ChecksumSidecar:
    """CRC32-per-line metadata maintained at flush/fence time."""

    __slots__ = ("_crcs",)

    def __init__(self) -> None:
        self._crcs: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._crcs)

    def __contains__(self, line: int) -> bool:
        return line in self._crcs

    def record(self, line: int, durable) -> None:
        """(Re)checksum ``line`` from the media's current content."""
        base = line << _LINE_SHIFT
        self._crcs[line] = zlib.crc32(bytes(durable[base : base + CACHE_LINE]))

    def record_many(self, lines: Iterable[int], durable) -> None:
        """(Re)checksum a batch of lines in one pass.

        Contiguous runs are snapshotted with a single bulk ``bytes()``
        conversion and sliced locally — one buffer copy per run instead
        of one per line, which is what makes the numpy-backed store
        (where per-line ``bytes(arr[a:b])`` round-trips through array
        indexing) as cheap to protect as the pure one.
        """
        run_start = run_end = None
        for line in sorted(set(lines)):
            if run_start is None:
                run_start = run_end = line
            elif line == run_end + 1:
                run_end = line
            else:
                self.record_span(run_start, run_end, durable)
                run_start = run_end = line
        if run_start is not None:
            self.record_span(run_start, run_end, durable)

    def record_span(self, first: int, last: int, durable) -> None:
        """(Re)checksum the inclusive line range ``[first, last]`` from
        one bulk snapshot of the media."""
        base = first << _LINE_SHIFT
        blob = bytes(durable[base : (last + 1) << _LINE_SHIFT])
        crcs = self._crcs
        crc32 = zlib.crc32
        off = 0
        for line in range(first, last + 1):
            crcs[line] = crc32(blob[off : off + CACHE_LINE])
            off += CACHE_LINE

    def verify(self, line: int, durable) -> bool:
        """True when ``line`` matches its recorded checksum (or has none)."""
        crc = self._crcs.get(line)
        if crc is None:
            return True
        base = line << _LINE_SHIFT
        return crc == zlib.crc32(bytes(durable[base : base + CACHE_LINE]))

    def forget(self, line: int) -> None:
        self._crcs.pop(line, None)

    def scan(self, durable, first: int = 0, last: int | None = None) -> List[int]:
        """Lines whose media content no longer matches their checksum.

        Walks every *covered* line (uncovered lines were never persisted
        under protection and verify clean by definition), optionally
        restricted to the inclusive line range ``[first, last]``.
        Contiguous covered runs are snapshotted once and verified from
        the local buffer, so a scrub over a numpy-backed store does one
        bulk conversion per run instead of one array round-trip per line.
        """
        covered = sorted(
            line
            for line in self._crcs
            if line >= first and (last is None or line <= last)
        )
        bad: List[int] = []
        crcs = self._crcs
        crc32 = zlib.crc32
        i, n = 0, len(covered)
        while i < n:
            j = i
            while j + 1 < n and covered[j + 1] == covered[j] + 1:
                j += 1
            run_first, run_last = covered[i], covered[j]
            base = run_first << _LINE_SHIFT
            blob = bytes(durable[base : (run_last + 1) << _LINE_SHIFT])
            off = 0
            for line in range(run_first, run_last + 1):
                if crcs[line] != crc32(blob[off : off + CACHE_LINE]):
                    bad.append(line)
                off += CACHE_LINE
            i = j + 1
        return bad

    def clone(self) -> "ChecksumSidecar":
        other = ChecksumSidecar()
        other._crcs = dict(self._crcs)
        return other
