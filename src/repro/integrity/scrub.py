"""The scrubber: walk the pool, verify checksums, repair from the copy.

Kamino-Tx's full backup mirror exists for atomicity, but the same
redundancy is the textbook remedy for media decay: a corrupt main line
is restored from the backup, a corrupt backup line from main.  The
:class:`Scrubber` runs that detect/repair/degrade loop — once on demand
(``repro scrub``, recovery), or periodically as an
:class:`~repro.sim.events.EventSimulator` task.

Authority rules (which copy wins) per bad line:

==============================  =========================================
situation                       action
==============================  =========================================
main bad, backup clean,         repair main from backup (the mirror is
line not pending sync           consistent wherever no sync is pending)
main bad, backup clean,         backup is *stale* for this line (commit
line inside a pending range     landed, roll-forward hasn't): backup
                                must not overwrite committed data — fall
                                back to a peer, else the line is lost
backup bad, main readable       repair backup from main (main is always
                                authoritative for the mirror's content)
both copies bad                 peer state transfer, else mark **lost**:
                                reads raise BothCopiesLostError
dead line                       quarantine + remap to a spare
                                (:meth:`PmemPool.quarantine_line`), then
                                restore content by the same rules
unmirrored region bad           peer transfer if available; otherwise
                                report only — self-checksummed
                                structures (intent log, ring) own their
                                semantics
==============================  =========================================

"Pending" ranges come from the engine's committed-but-unsynced queue
(:meth:`AtomicityEngine.pending_ranges` — the ``BackupSyncer`` lag), the
same information the crash-summary path reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..nvm.latency import CACHE_LINE

_LINE_SHIFT = CACHE_LINE.bit_length() - 1

#: optional callback fetching authoritative bytes from a replication
#: peer: ``(abs_addr, size) -> bytes | None``
PeerRepair = Callable[[int, int], Optional[bytes]]


@dataclass
class ScrubReport:
    """What one scrub pass found and did."""

    lines_covered: int = 0
    bad_lines: int = 0
    repaired: int = 0
    quarantined: int = 0
    lost: int = 0
    #: (line, reason) for lines detected but not restored locally
    unrepaired: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.bad_lines == 0

    @property
    def ok(self) -> bool:
        """True when nothing detectably corrupt was left behind silently:
        every bad line ended repaired, quarantined+restored, degraded to
        a typed-error (lost) state, or reported to its self-validating
        owner — the only bad outcome is a repair that did not verify."""
        return not any(reason != "reported" for _ln, reason in self.unrepaired)

    def merge(self, other: "ScrubReport") -> None:
        self.lines_covered += other.lines_covered
        self.bad_lines += other.bad_lines
        self.repaired += other.repaired
        self.quarantined += other.quarantined
        self.lost += other.lost
        self.unrepaired.extend(other.unrepaired)

    def summary(self) -> str:
        return (
            f"scrub: covered={self.lines_covered} bad={self.bad_lines} "
            f"repaired={self.repaired} quarantined={self.quarantined} "
            f"lost={self.lost} unrepaired={len(self.unrepaired)}"
        )


class Scrubber:
    """Periodic (or on-demand) verify-and-repair over one device's pool.

    Args:
        device: the device whose media is scrubbed; must have a
            :class:`~repro.integrity.model.MediaFaultModel` attached
            (``device.attach_media()``).
        pool: the :class:`~repro.nvm.pool.PmemPool` on the device; gives
            the scrubber region geometry (main↔backup pairing) and the
            quarantine table.  Without it only detection and peer repair
            are possible.
        engine: the atomicity engine, for backup pairing
            (``engine.backup``) and pending-sync authority
            (``engine.pending_ranges()``).
        peer_repair: optional ``(abs_addr, size) -> bytes|None`` callback
            fetching authoritative bytes from a replica peer (chain
            deployments); the last resort before a line is declared lost.
    """

    def __init__(
        self,
        device,
        pool=None,
        engine=None,
        peer_repair: Optional[PeerRepair] = None,
    ):
        self.device = device
        self.pool = pool
        self.engine = engine
        self.peer_repair = peer_repair
        self.passes = 0
        self.last_report: Optional[ScrubReport] = None
        self._armed = None
        self._cancelled = False

    # -- geometry helpers ---------------------------------------------------

    def _mirror(self):
        """(heap_region, backup_region) if the engine runs a full mirror."""
        backup = getattr(self.engine, "backup", None)
        region = getattr(backup, "region", None)
        heap_region = getattr(backup, "heap_region", None)
        if region is not None and heap_region is not None:
            if region.size == heap_region.size:
                return heap_region, region
        if self.pool is not None:
            regions = self.pool.regions
            heap = regions.get("heap")
            bak = regions.get("backup")
            if heap is not None and bak is not None and heap.size == bak.size:
                return heap, bak
        return None, None

    def _pending_ranges(self) -> Sequence[Tuple[int, int]]:
        fn = getattr(self.engine, "pending_ranges", None)
        return tuple(fn()) if fn is not None else ()

    @staticmethod
    def _covers(ranges: Sequence[Tuple[int, int]], rel: int) -> bool:
        end = rel + CACHE_LINE
        for off, size in ranges:
            if off < end and off + size > rel:
                return True
        return False

    def _durable_line(self, line: int) -> bytes:
        base = line << _LINE_SHIFT
        return bytes(self.device._durable[base : base + CACHE_LINE])

    def _peer_line(self, line: int) -> Optional[bytes]:
        if self.peer_repair is None:
            return None
        data = self.peer_repair(line << _LINE_SHIFT, CACHE_LINE)
        if data is not None and len(data) != CACHE_LINE:
            return None
        return data

    # -- one pass -----------------------------------------------------------

    def scrub_once(self) -> ScrubReport:
        """Verify every covered line; repair, quarantine, or degrade."""
        media = getattr(self.device, "media", None)
        report = ScrubReport()
        if media is None:
            self.last_report = report
            return report
        if media.tree is not None:
            report.lines_covered = media.tree.n_lines
        else:
            report.lines_covered = (
                len(media.sidecar) if media.sidecar is not None else 0
            ) or len(media.dead | media.lost)
        bad = media.bad_lines()
        report.bad_lines = len(bad)
        self.device.stats.media_detected += len(bad)
        heap, backup = self._mirror()
        pending = self._pending_ranges()
        for line in bad:
            self._handle_bad_line(line, media, heap, backup, pending, report)
        # a repair is only a repair if it verifies; stuck-at lines fail
        # here and get one quarantine attempt before being declared lost
        for line in list(bad):
            if line in media.lost or line in media.dead:
                continue
            if not media.verify_line(line):
                if self._quarantine(line, media, report):
                    self._handle_bad_line(line, media, heap, backup, pending, report)
                if not media.verify_line(line) and line not in media.lost:
                    report.unrepaired.append((line, "repair did not verify"))
        self.passes += 1
        self.last_report = report
        return report

    def _handle_bad_line(self, line, media, heap, backup, pending, report) -> None:
        addr = line << _LINE_SHIFT
        if line in media.dead and not self._quarantine(line, media, report):
            report.unrepaired.append((line, "dead, no spare line available"))
            return
        partner_data = None
        source = None
        if heap is not None and heap.offset <= addr < heap.offset + heap.size:
            rel = addr - heap.offset
            partner_line = (backup.offset + rel) >> _LINE_SHIFT
            if media.verify_line(partner_line) and partner_line not in media.dead:
                if not self._covers(pending, rel):
                    partner_data = self._durable_line(partner_line)
                    source = "backup"
                # else: backup stale for this line — peer fallback below
        elif backup is not None and backup.offset <= addr < backup.offset + backup.size:
            rel = addr - backup.offset
            partner_line = (heap.offset + rel) >> _LINE_SHIFT
            if media.verify_line(partner_line) and partner_line not in media.dead:
                # main is authoritative for the mirror, pending or not
                partner_data = self._durable_line(partner_line)
                source = "main"
        if partner_data is None:
            partner_data = self._peer_line(line)
            source = "peer" if partner_data is not None else None
        if partner_data is not None:
            media.repair_line(line, partner_data)
            report.repaired += 1
            return
        if heap is None and backup is None and line not in media.lost:
            if media.tree is not None:
                # the tree disputes the line and no copy can restore it:
                # degrade typed (reads raise) rather than leave bytes the
                # root disagrees with in service
                media.mark_lost(line)
                report.lost += 1
                return
            # no mirror geometry at all: detection-only deployment
            report.unrepaired.append((line, "reported"))
            return
        in_mirror = any(
            r is not None and r.offset <= addr < r.offset + r.size
            for r in (heap, backup)
        )
        if (
            in_mirror
            or line in media.lost
            or line in media.retired
            or media.tree is not None
        ):
            # with an integrity tree attached even unmirrored lines
            # degrade typed: the root disputes them and self-validation
            # cannot clear a consistent (stale-CRC) replay
            media.mark_lost(line)
            report.lost += 1
        else:
            # unmirrored metadata (intent log, rings) self-validates;
            # record the detection and leave the bytes to their owner
            report.unrepaired.append((line, "reported"))

    def _quarantine(self, line, media, report) -> bool:
        if self.pool is None:
            return False
        spare = self.pool.quarantine_line(line)
        if spare is None:
            return False
        media.retire(line)
        report.quarantined += 1
        return True

    # -- periodic operation -------------------------------------------------

    def arm(self, sim, interval_ns: float = 1_000_000.0) -> "Scrubber":
        """Schedule this scrubber as a repeating simulator task."""
        self._cancelled = False

        def tick():
            if self._cancelled:
                return
            self.scrub_once()
            self._armed = sim.schedule(interval_ns, tick)

        self._armed = sim.schedule(interval_ns, tick)
        return self

    def disarm(self) -> None:
        self._cancelled = True
        event = self._armed
        if event is not None and hasattr(event, "cancel"):
            event.cancel()
        self._armed = None


def verify_ranges(device, ranges: Sequence[Tuple[int, int]]) -> List[int]:
    """Bad lines among the absolute ``(addr, size)`` ranges — the
    checksum-verify step recovery runs before rolling back or forward.
    Returns an empty list when no media model (or no sidecar) is
    attached: an unprotected deployment has nothing to verify with."""
    media = getattr(device, "media", None)
    if media is None:
        return []
    bad: List[int] = []
    seen = set()
    for addr, size in ranges:
        if size <= 0:
            continue
        first = addr >> _LINE_SHIFT
        last = (addr + size - 1) >> _LINE_SHIFT
        for line in range(first, last + 1):
            if line in seen:
                continue
            seen.add(line)
            if not media.verify_line(line):
                bad.append(line)
    if bad:
        device.stats.media_detected += len(bad)
    return sorted(bad)
