"""Membership management: views, failure declaration, chain order.

Stands in for the paper's Zookeeper instance (§5.3): it owns the
``viewID``, decides when a replica is *failed* (vs merely rebooting
quickly), and answers a rejoining replica's "who are my neighbours?"
query.  Chain repair itself is orchestrated by
:mod:`repro.replication.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReplicationError, StaleViewError


@dataclass
class ViewInfo:
    """One concrete chain instance."""

    view_id: int
    order: Tuple[str, ...]


class MembershipManager:
    """Authoritative view of which replicas form the chain, in order."""

    def __init__(self, initial_order: List[str], failure_timeout_ns: float = 50_000_000.0):
        if not initial_order:
            raise ReplicationError("chain cannot be empty")
        self.failure_timeout_ns = failure_timeout_ns
        self._views: List[ViewInfo] = [ViewInfo(1, tuple(initial_order))]
        self._last_seen: Dict[str, float] = {n: 0.0 for n in initial_order}
        #: every replica ever declared failed, so a duplicate declaration
        #: (two detectors racing) is distinguishable from an unknown node
        self._removed: set = set()

    # -- views ---------------------------------------------------------------

    @property
    def current(self) -> ViewInfo:
        return self._views[-1]

    @property
    def view_id(self) -> int:
        return self.current.view_id

    def order(self) -> Tuple[str, ...]:
        return self.current.order

    def neighbours(self, node_id: str) -> Tuple[Optional[str], Optional[str]]:
        """(predecessor, successor) in the current view."""
        order = self.current.order
        if node_id not in order:
            raise ReplicationError(f"{node_id} is not in the current view")
        idx = order.index(node_id)
        pred = order[idx - 1] if idx > 0 else None
        succ = order[idx + 1] if idx + 1 < len(order) else None
        return pred, succ

    def validate_view(self, view_id: int) -> None:
        if view_id < self.view_id:
            raise StaleViewError(
                f"message from view {view_id}, current view is {self.view_id}"
            )

    # -- transitions ---------------------------------------------------------------

    def declare_failed(self, node_id: str) -> ViewInfo:
        """Remove a failed replica; bumps the view.

        A duplicate declaration (two failure detectors racing on the
        same node) is rejected without a view bump — the first one
        already reshaped the chain."""
        order = list(self.current.order)
        if node_id not in order:
            if node_id in self._removed:
                raise ReplicationError(
                    f"{node_id} was already declared failed (duplicate declaration)"
                )
            raise ReplicationError(f"{node_id} is not in the chain")
        order.remove(node_id)
        if not order:
            raise ReplicationError("cannot remove the last replica")
        view = ViewInfo(self.view_id + 1, tuple(order))
        self._views.append(view)
        self._last_seen.pop(node_id, None)
        self._removed.add(node_id)
        return view

    def add_at_tail(self, node_id: str) -> ViewInfo:
        """Join protocol: new replicas always enter as the tail."""
        if node_id in self.current.order:
            raise ReplicationError(f"{node_id} is already in the chain")
        view = ViewInfo(self.view_id + 1, self.current.order + (node_id,))
        self._views.append(view)
        self._last_seen[node_id] = 0.0
        self._removed.discard(node_id)
        return view

    def replace_failed(self, failed_id: str, spare_id: str) -> ViewInfo:
        """View-change-with-replacement: one bump that removes the
        failed replica and splices a caught-up spare in at the tail.

        A single transition (instead of ``declare_failed`` followed by
        ``add_at_tail``) means no intermediate view exists in which the
        chain is shorter than its fault target — in-flight messages are
        either pre-failure (rejected as stale) or already addressed to
        the replacement topology."""
        order = list(self.current.order)
        if failed_id not in order:
            if failed_id in self._removed:
                raise ReplicationError(
                    f"{failed_id} was already declared failed (duplicate declaration)"
                )
            raise ReplicationError(f"{failed_id} is not in the chain")
        if spare_id in order:
            raise ReplicationError(f"{spare_id} is already in the chain")
        order.remove(failed_id)
        order.append(spare_id)
        view = ViewInfo(self.view_id + 1, tuple(order))
        self._views.append(view)
        self._last_seen.pop(failed_id, None)
        self._last_seen[spare_id] = 0.0
        self._removed.add(failed_id)
        self._removed.discard(spare_id)
        return view

    # -- failure detection --------------------------------------------------------------

    def heartbeat(self, node_id: str, now_ns: float) -> None:
        self._last_seen[node_id] = now_ns

    def is_quick_reboot(self, node_id: str, went_down_at_ns: float, now_ns: float) -> bool:
        """True if the replica recovered before the detector fired —
        the §5.3 case that must repair in place instead of rejoining."""
        return (now_ns - went_down_at_ns) < self.failure_timeout_ns

    def rejoin_request(self, node_id: str, claimed_view: int) -> ViewInfo:
        """A rebooted replica asks to rejoin with the view it remembers.

        If the view moved on while it was down, the quick-reboot path is
        no longer safe (its neighbours may have changed identity):
        :class:`~repro.errors.StaleViewError` tells the caller to run
        the fail-stop repair path (or join as a new tail) instead.
        """
        if node_id not in self.current.order:
            raise ReplicationError(f"{node_id} was removed; rejoin as a new tail")
        if claimed_view < self.view_id:
            raise StaleViewError(
                f"{node_id} rejoined claiming view {claimed_view}, "
                f"current view is {self.view_id}"
            )
        return self.current
