"""Chain replication: traditional baseline and Kamino-Tx-Chain (§5)."""

from .chain import KAMINO, TRADITIONAL, ChainCluster, RetryPolicy
from .client import ChainClient, run_clients
from .inplace_engine import IntentOnlyEngine
from .membership import MembershipManager, ViewInfo
from .messages import (
    CleanupAck,
    ClientReply,
    ReadReply,
    ReadRequest,
    TailAck,
    TxForward,
    TxRequest,
)
from .node import ROLE_HEAD, ROLE_MID, ROLE_TAIL, ReplicaNode, engine_for
from .recovery import fail_stop, join_new_replica, quick_reboot, replace_node, settle

__all__ = [
    "ChainClient",
    "ChainCluster",
    "CleanupAck",
    "ClientReply",
    "IntentOnlyEngine",
    "KAMINO",
    "MembershipManager",
    "ROLE_HEAD",
    "ROLE_MID",
    "ROLE_TAIL",
    "ReadReply",
    "ReadRequest",
    "ReplicaNode",
    "RetryPolicy",
    "TRADITIONAL",
    "TailAck",
    "TxForward",
    "TxRequest",
    "ViewInfo",
    "engine_for",
    "fail_stop",
    "join_new_replica",
    "quick_reboot",
    "replace_node",
    "run_clients",
    "settle",
]
