"""Typed messages of the chain protocols (§5.1).

All chain traffic is view-stamped: replicas reject messages from an
older view, which is what makes chain repair safe ("All messages carry
a viewID and replicas reject messages with an older viewID", §5.3).

Every message may be retransmitted: the network drops, duplicates, and
reorders under fault injection, so the protocol relies on sequence
numbers (``seq``, filtered by each replica's ``applied_seq``) and the
head's ``(client_id, request_id)`` dedup table rather than on exactly-
once delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple


def wire_size(msg: Any) -> int:
    """Approximate on-the-wire payload bytes, for the replicas' durable
    input-queue accounting (header + per-argument cost)."""
    args = getattr(msg, "args", ())
    return 64 + 8 * len(args)


@dataclass(frozen=True)
class TxRequest:
    """Client → head: run ``proc(*args)`` as one atomic transaction."""

    client_id: str
    request_id: int
    proc: str
    args: Tuple[Any, ...]


@dataclass(frozen=True)
class TxForward:
    """Replica → successor: the named-procedure RPC of §5.1."""

    view_id: int
    seq: int
    proc: str
    args: Tuple[Any, ...]


@dataclass(frozen=True)
class TailAck:
    """Tail → head: transaction ``seq`` committed chain-wide."""

    view_id: int
    seq: int


@dataclass(frozen=True)
class CleanupAck:
    """Tail → ... → head: drop in-flight state for ``seq``."""

    view_id: int
    seq: int


@dataclass(frozen=True)
class ReadRequest:
    """Client/head → tail: linearizable read at the tail."""

    client_id: str
    request_id: int
    proc: str
    args: Tuple[Any, ...]


@dataclass(frozen=True)
class ReadReply:
    tail_id: str
    request_id: int
    result: Any


@dataclass(frozen=True)
class ClientReply:
    """Head → client: the transaction's chain-wide completion."""

    request_id: int
    result: Any
