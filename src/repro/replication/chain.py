"""Chain replication: the traditional baseline and Kamino-Tx-Chain (§5).

Both deployments share the message flow of Figure 8:

1. every write enters at the **head**, which admission-controls
   dependent transactions (an operation touching a key still held by an
   in-flight transaction queues at the head);
2. the head executes the transaction locally; only *committed*
   transactions are forwarded down the chain as named-procedure RPCs;
3. each replica durably buffers the call, executes it, and forwards it;
4. the **tail** acknowledges completion to the head (the client lives on
   the head, §5.1) and sends clean-up acks upstream;
5. the head releases the transaction's locks when (a) the tail ack
   arrived and (b) — Kamino only — the head's backup sync for the
   transaction has landed.

Differences:

=================  =====================  ============================
                   traditional            kamino
=================  =====================  ============================
replicas           f + 1                  f + 2
per-replica undo   yes (copies in the     none; head keeps the only
                   critical path at       backup, others are in-place
                   every replica)         with intent logs
storage            (f+1) × dataSize       (f+2+α) × dataSize
                   (+ undo logs)
=================  =====================  ============================

Reads execute at the tail (linearizability, as in van Renesse &
Schneider's original protocol).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import ChainConfigError, NodeFailedError, StaleViewError, TxAborted
from ..nvm.device import CrashPolicy
from ..nvm.latency import NVDIMM, LatencyModel
from ..runtime.context import ExecutionContext
from ..sim.events import EventSimulator
from ..sim.network import DEFAULT_HOP_NS, SimNetwork
from ..sim.resources import FIFOServer
from .membership import MembershipManager
from .messages import CleanupAck, ClientReply, ReadReply, ReadRequest, TailAck, TxForward
from .node import ROLE_HEAD, ROLE_MID, ROLE_TAIL, ReplicaNode

TRADITIONAL = "traditional"
KAMINO = "kamino"


class _PendingWrite:
    """A client write queued at the head (admission or execution)."""

    __slots__ = ("proc", "args", "keys", "callback", "submitted_at", "seq", "result")

    def __init__(self, proc, args, keys, callback, submitted_at):
        self.proc = proc
        self.args = args
        self.keys = tuple(keys)
        self.callback = callback
        self.submitted_at = submitted_at
        self.seq: Optional[int] = None
        self.result: Any = None


class ChainCluster:
    """A full chain deployment over the event simulator.

    Args:
        f: failures to tolerate; traditional builds f+1 replicas,
            kamino f+2 (§5's impossibility argument).
        mode: ``"traditional"`` or ``"kamino"``.
        alpha: head backup sizing for kamino (1.0 = full mirror).
        runtime: an :class:`~repro.runtime.context.ExecutionContext`
            supplying the cluster's clock, event simulator, and shared
            resource registry; a private one is built when omitted.  The
            per-node FIFO servers register with it, so the uniform
            reset/snapshot contract covers the whole cluster.
    """

    def __init__(
        self,
        f: int = 2,
        mode: str = KAMINO,
        heap_mb: int = 8,
        value_size: int = 128,
        alpha: float = 1.0,
        sim: Optional[EventSimulator] = None,
        hop_ns: float = DEFAULT_HOP_NS,
        model: LatencyModel = NVDIMM,
        runtime: Optional["ExecutionContext"] = None,
    ):
        if f < 1:
            raise ChainConfigError("f must be at least 1")
        if mode not in (TRADITIONAL, KAMINO):
            raise ChainConfigError(f"unknown mode '{mode}'")
        self.f = f
        self.mode = mode
        self.runtime = runtime if runtime is not None else ExecutionContext(model=model)
        self.sim = sim if sim is not None else self.runtime.events
        self.net = SimNetwork(self.sim, hop_latency_ns=hop_ns)
        n = f + 2 if mode == KAMINO else f + 1
        self.chain: List[ReplicaNode] = []
        for i in range(n):
            role = ROLE_HEAD if i == 0 else (ROLE_TAIL if i == n - 1 else ROLE_MID)
            node = ReplicaNode(
                f"r{i}", mode, role, heap_mb=heap_mb, value_size=value_size,
                alpha=alpha, model=model, seed=i,
            )
            self.chain.append(node)
            self.net.register(node.node_id, self._make_handler(node))
        self._servers: Dict[str, FIFOServer] = {
            node.node_id: self.runtime.resources.register(FIFOServer(node.node_id))
            for node in self.chain
        }
        # the Zookeeper stand-in (§5.3): owns views and chain order
        self.membership = MembershipManager([node.node_id for node in self.chain])
        # head protocol state
        self._next_seq = 1
        self._busy_keys: Dict[Any, int] = {}
        self._admission_queue: Deque[_PendingWrite] = deque()
        self._inflight_writes: Dict[int, _PendingWrite] = {}
        self._tail_acked: Dict[int, float] = {}
        # metrics
        self.write_latencies_ns: List[float] = []
        self.read_latencies_ns: List[float] = []
        self.aborted = 0
        self.committed = 0
        self.dependent_queued = 0

    # -- topology ------------------------------------------------------------

    @property
    def view_id(self) -> int:
        """Current view, owned by the membership manager."""
        return self.membership.view_id

    @property
    def head(self) -> ReplicaNode:
        return self.chain[0]

    @property
    def tail(self) -> ReplicaNode:
        return self.chain[-1]

    def successor(self, node: ReplicaNode) -> Optional[ReplicaNode]:
        idx = self.chain.index(node)
        return self.chain[idx + 1] if idx + 1 < len(self.chain) else None

    def predecessor(self, node: ReplicaNode) -> Optional[ReplicaNode]:
        idx = self.chain.index(node)
        return self.chain[idx - 1] if idx > 0 else None

    @property
    def total_storage_bytes(self) -> int:
        """Cluster-wide provisioned NVM (Table 1's storage column)."""
        return sum(node.storage_bytes for node in self.chain)

    # -- client API -----------------------------------------------------------------

    def submit_write(
        self,
        proc: str,
        args: Tuple[Any, ...],
        keys: Sequence[Any],
        callback: Optional[Callable[[Any, float], None]] = None,
    ) -> None:
        """Submit a write transaction at the head.

        ``keys`` is the transaction's object footprint, used for the
        head's admission control of dependent transactions.  The
        callback receives (result, latency_ns) at chain-wide commit.
        """
        op = _PendingWrite(proc, args, keys, callback, self.sim.now)
        self._try_admit(op)

    def submit_read(
        self, proc: str, args: Tuple[Any, ...],
        callback: Optional[Callable[[Any, float], None]] = None,
    ) -> None:
        """Linearizable read at the tail (one hop there, one back)."""
        submitted = self.sim.now
        tail = self.tail

        def deliver() -> None:
            result, cost = tail.execute(proc, args)
            done = self._servers[tail.node_id].request(self.sim.now, cost)

            def reply() -> None:
                latency = self.sim.now - submitted
                self.read_latencies_ns.append(latency)
                if callback is not None:
                    callback(result, latency)

            self.sim.at(done + self.net.hop_latency_ns, reply)

        self.sim.schedule(self.net.hop_latency_ns, deliver)

    # -- head: admission + execution ---------------------------------------------------

    def _try_admit(self, op: _PendingWrite) -> None:
        if any(k in self._busy_keys for k in op.keys):
            self.dependent_queued += 1
            self._admission_queue.append(op)
            return
        seq = self._next_seq
        self._next_seq += 1
        op.seq = seq
        for k in op.keys:
            self._busy_keys[k] = seq
        self._execute_at_head(op)

    def _execute_at_head(self, op: _PendingWrite) -> None:
        head = self.head
        try:
            result, cost = head.execute(op.proc, op.args)
        except TxAborted:
            # aborts are resolved locally at the head (Figure 8, right):
            # the backup (or undo log) rolls the head back; nothing is
            # ever forwarded downstream.
            self.aborted += 1
            self._release_keys(op)
            if op.callback is not None:
                op.callback(None, self.sim.now - op.submitted_at)
            return
        self._inflight_writes[op.seq] = op
        op.result = result  # type: ignore[attr-defined]
        done = self._servers[head.node_id].request(self.sim.now, cost)
        msg = TxForward(self.view_id, op.seq, op.proc, op.args)
        successor = self.successor(head)
        head.inflight[op.seq] = (op.seq, msg)
        head.applied_ranges[op.seq] = head.last_write_set
        if successor is None:  # degenerate single-node chain (tests)
            self.sim.at(done, self._on_tail_ack, TailAck(self.view_id, op.seq))
        else:
            self.sim.at(done, self.net.send, head.node_id, successor.node_id, msg)

    def _release_keys(self, op: _PendingWrite) -> None:
        for k in op.keys:
            if self._busy_keys.get(k) == op.seq or op.seq is None:
                self._busy_keys.pop(k, None)
        self._drain_admission_queue()

    def _drain_admission_queue(self) -> None:
        requeue = list(self._admission_queue)
        self._admission_queue.clear()
        for op in requeue:
            self._try_admit(op)

    # -- replica message handling -----------------------------------------------------------

    def _make_handler(self, node: ReplicaNode):
        def handler(src: str, msg: Any) -> None:
            if isinstance(msg, TxForward):
                self._on_forward(node, msg)
            elif isinstance(msg, TailAck):
                self._on_tail_ack(msg)
            elif isinstance(msg, CleanupAck):
                self._on_cleanup(node, msg)
        return handler

    def _on_forward(self, node: ReplicaNode, msg: TxForward) -> None:
        if msg.view_id < self.view_id:
            return  # stale view: reject (§5.3)
        if msg.seq > node.applied_seq + 1:
            # sequence gap: a crash consumed an earlier forward and this
            # one overtook its retransmission.  Applying it would commit
            # a state that is no prefix, so drop it — the upstream
            # retransmission window resends the run in order.
            return
        qcost = node.persist_to_input_queue(64 + 8 * len(msg.args))
        if msg.seq > node.applied_seq:
            _result, cost = node.execute(msg.proc, msg.args)
            node.applied_seq = msg.seq
            node.applied_ranges[msg.seq] = node.last_write_set
        else:
            cost = 0.0  # replayed during chain repair: already applied
        done = self._servers[node.node_id].request(self.sim.now, qcost + cost)
        successor = self.successor(node)
        if successor is not None:
            node.inflight[msg.seq] = (msg.seq, msg)
            self.sim.at(done, self.net.send, node.node_id, successor.node_id, msg)
        else:
            # tail: completion ack to the head, clean-up acks upstream;
            # the tail's own intent log is freed at its commit point
            release = getattr(node.engine, "release_oldest_committed", None)
            if release is not None:
                release()
            head = self.head
            self.sim.at(done, self.net.send, node.node_id, head.node_id,
                        TailAck(self.view_id, msg.seq))
            pred = self.predecessor(node)
            if pred is not None:
                self.sim.at(done, self.net.send, node.node_id, pred.node_id,
                            CleanupAck(self.view_id, msg.seq))

    def _on_tail_ack(self, msg: TailAck) -> None:
        if msg.view_id < self.view_id:
            return
        op = self._inflight_writes.pop(msg.seq, None)
        if op is None:
            return
        self._tail_acked[msg.seq] = self.sim.now
        head = self.head
        # the final call to the client is a local up-call on the head
        # (§5.1) — it happens at the tail ack, not after the backup sync
        self.committed += 1
        head.inflight.pop(msg.seq, None)
        head.applied_ranges.pop(msg.seq, None)
        latency = self.sim.now - op.submitted_at
        self.write_latencies_ns.append(latency)
        if op.callback is not None:
            op.callback(getattr(op, "result", None), latency)
        if self.mode == KAMINO:
            # §5.1's two lock-release conditions: tail ack received AND
            # the head's backup has absorbed the transaction — dependent
            # transactions stay queued until then
            cost = head.sync_backup(limit=1)
            done = self._servers[head.node_id].request(self.sim.now, cost)
            self.sim.at(done, self._release_keys, op)
        else:
            self._release_keys(op)

    def _on_cleanup(self, node: ReplicaNode, msg: CleanupAck) -> None:
        if msg.view_id < self.view_id:
            return
        node.inflight.pop(msg.seq, None)
        node.applied_ranges.pop(msg.seq, None)
        release = getattr(node.engine, "release_oldest_committed", None)
        if release is not None:
            release()
        pred = self.predecessor(node)
        if pred is not None:
            self.net.send(node.node_id, pred.node_id, msg)

    # -- execution driver ---------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def drain(self) -> None:
        """Run the simulator dry and flush any head backup backlog."""
        self.sim.run()
        while self.head.engine.pending_count:
            self.head.engine.sync_pending()

    # -- verification ----------------------------------------------------------------------------

    def kv_states(self) -> List[Dict[int, bytes]]:
        """Every replica's logical KV contents (tests/verification)."""
        states = []
        for node in self.chain:
            state = {}
            for key, ptr in node.kv.tree.items():
                state[key] = node.heap.read_blob(ptr)
            states.append(state)
        return states

    def assert_replicas_consistent(self) -> None:
        states = self.kv_states()
        for i, state in enumerate(states[1:], start=1):
            if state != states[0]:
                diff = {
                    k
                    for k in set(state) | set(states[0])
                    if state.get(k) != states[0].get(k)
                }
                raise AssertionError(
                    f"replica {i} diverges from head on keys {sorted(diff)[:10]}"
                )
