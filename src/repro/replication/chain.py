"""Chain replication: the traditional baseline and Kamino-Tx-Chain (§5).

Both deployments share the message flow of Figure 8:

1. every write enters at the **head**, which admission-controls
   dependent transactions (an operation touching a key still held by an
   in-flight transaction queues at the head);
2. the head executes the transaction locally; only *committed*
   transactions are forwarded down the chain as named-procedure RPCs;
3. each replica durably buffers the call, executes it, and forwards it;
4. the **tail** acknowledges completion to the head (the client lives on
   the head, §5.1) and sends clean-up acks upstream;
5. the head releases the transaction's locks when (a) the tail ack
   arrived and (b) — Kamino only — the head's backup sync for the
   transaction has landed.

Differences:

=================  =====================  ============================
                   traditional            kamino
=================  =====================  ============================
replicas           f + 1                  f + 2
per-replica undo   yes (copies in the     none; head keeps the only
                   critical path at       backup, others are in-place
                   every replica)         with intent logs
storage            (f+1) × dataSize       (f+2+α) × dataSize
                   (+ undo logs)
=================  =====================  ============================

Reads execute at the tail (linearizability, as in van Renesse &
Schneider's original protocol).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    ChainConfigError,
    ClusterDegraded,
    NodeFailedError,
    RequestTimeoutError,
    StaleViewError,
    TxAborted,
)
from ..nvm.device import CrashPolicy
from ..nvm.latency import NVDIMM, LatencyModel
from ..runtime.context import ExecutionContext
from ..sim.events import Event, EventSimulator
from ..sim.network import DEFAULT_HOP_NS, SimNetwork
from ..sim.resources import FIFOServer
from .membership import MembershipManager
from .messages import (
    CleanupAck,
    ClientReply,
    ReadReply,
    ReadRequest,
    TailAck,
    TxForward,
    wire_size,
)
from .node import ROLE_HEAD, ROLE_MID, ROLE_TAIL, ReplicaNode

TRADITIONAL = "traditional"
KAMINO = "kamino"


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retransmission knobs shared by the head and the clients.

    The head arms a timer per forwarded transaction; a missing tail ack
    retransmits the forward end-to-end with capped exponential backoff
    (each replica's ``applied_seq`` filter and the idempotent procedures
    make duplicates harmless).  After ``max_retries`` the outcome is
    unknown and the submitter gets a typed
    :class:`~repro.errors.RequestTimeoutError`.

    ``timeout_for(attempt)`` = ``min(timeout_ns * backoff**attempt,
    max_timeout_ns)``.
    """

    timeout_ns: float = 400_000.0
    backoff: float = 2.0
    max_timeout_ns: float = 6_400_000.0
    max_retries: int = 10
    enabled: bool = True

    @classmethod
    def disabled(cls) -> "RetryPolicy":
        """The deliberately unhardened configuration: no timers, no
        retransmission — what the nemesis corpus proves is insufficient."""
        return cls(enabled=False)

    def timeout_for(self, attempt: int) -> float:
        return min(self.timeout_ns * (self.backoff ** attempt), self.max_timeout_ns)


class _PendingWrite:
    """A client write queued at the head (admission or execution)."""

    __slots__ = (
        "proc", "args", "keys", "callback", "submitted_at", "seq", "result",
        "client_id", "request_id", "attempts",
    )

    def __init__(self, proc, args, keys, callback, submitted_at,
                 client_id=None, request_id=None):
        self.proc = proc
        self.args = args
        self.keys = tuple(keys)
        self.callback = callback
        self.submitted_at = submitted_at
        self.seq: Optional[int] = None
        self.result: Any = None
        self.client_id: Optional[str] = client_id
        self.request_id: Optional[int] = request_id
        self.attempts = 0


class ChainCluster:
    """A full chain deployment over the event simulator.

    Args:
        f: failures to tolerate; traditional builds f+1 replicas,
            kamino f+2 (§5's impossibility argument).
        mode: ``"traditional"`` or ``"kamino"``.
        alpha: head backup sizing for kamino (1.0 = full mirror).
        runtime: an :class:`~repro.runtime.context.ExecutionContext`
            supplying the cluster's clock, event simulator, and shared
            resource registry; a private one is built when omitted.  The
            per-node FIFO servers register with it, so the uniform
            reset/snapshot contract covers the whole cluster.
    """

    def __init__(
        self,
        f: int = 2,
        mode: str = KAMINO,
        heap_mb: int = 8,
        value_size: int = 128,
        alpha: float = 1.0,
        sim: Optional[EventSimulator] = None,
        hop_ns: float = DEFAULT_HOP_NS,
        model: LatencyModel = NVDIMM,
        runtime: Optional["ExecutionContext"] = None,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        max_backup_lag: int = 64,
        write_quorum: Optional[int] = None,
        degraded_policy: str = "reject",
        degrade_after: int = 3,
        degraded_cooldown_ns: float = 10_000_000.0,
        net: Optional[SimNetwork] = None,
        node_prefix: str = "",
    ):
        if f < 1:
            raise ChainConfigError("f must be at least 1")
        if mode not in (TRADITIONAL, KAMINO):
            raise ChainConfigError(f"unknown mode '{mode}'")
        if degraded_policy not in ("reject", "queue"):
            raise ChainConfigError(f"unknown degraded_policy '{degraded_policy}'")
        self.f = f
        self.mode = mode
        self.runtime = (
            runtime if runtime is not None else ExecutionContext(model=model, seed=seed)
        )
        self.sim = sim if sim is not None else self.runtime.events
        # ``net`` lets many chain groups share one transport (the
        # sharded cluster); ``node_prefix`` keeps their node ids from
        # colliding on it.  The defaults are the original single-chain
        # deployment: a private network and bare ``r<i>`` names.
        self.net = (
            net if net is not None
            else SimNetwork(self.sim, hop_latency_ns=hop_ns, rng=self.runtime.rng)
        )
        self.node_prefix = node_prefix
        self.retry = retry if retry is not None else RetryPolicy()
        #: bound on the head's deferred backup-sync backlog: admission
        #: stalls (back-pressure) instead of letting a slow tail grow it
        self.max_backup_lag = max_backup_lag
        #: minimum chain length that still accepts writes; kamino needs
        #: two live replicas to repair an in-place crash (§5)
        self.write_quorum = (
            write_quorum if write_quorum is not None else (2 if mode == KAMINO else 1)
        )
        self.degraded_policy = degraded_policy
        self.degrade_after = degrade_after
        self.degraded_cooldown_ns = degraded_cooldown_ns
        n = f + 2 if mode == KAMINO else f + 1
        self.chain: List[ReplicaNode] = []
        for i in range(n):
            role = ROLE_HEAD if i == 0 else (ROLE_TAIL if i == n - 1 else ROLE_MID)
            node = ReplicaNode(
                f"{node_prefix}r{i}", mode, role, heap_mb=heap_mb,
                value_size=value_size, alpha=alpha, model=model, seed=i,
            )
            self.chain.append(node)
            self.net.register(node.node_id, self._make_handler(node))
        self._servers: Dict[str, FIFOServer] = {
            node.node_id: self.runtime.resources.register(FIFOServer(node.node_id))
            for node in self.chain
        }
        # the Zookeeper stand-in (§5.3): owns views and chain order
        self.membership = MembershipManager([node.node_id for node in self.chain])
        for node in self.chain:
            node.view_id = self.membership.view_id
        # head protocol state
        self._next_seq = 1
        self._busy_keys: Dict[Any, int] = {}
        self._admission_queue: Deque[_PendingWrite] = deque()
        self._inflight_writes: Dict[int, _PendingWrite] = {}
        self._tail_acked: Dict[int, float] = {}
        #: seq -> armed retransmission timer (cancelled at the tail ack)
        self._retx_events: Dict[int, Event] = {}
        #: client dedup table: client_id -> (request_id, result) of the
        #: last completed request — closed-loop clients have exactly one
        #: outstanding request, so one slot per client suffices
        self._completed_requests: Dict[str, Tuple[int, Any]] = {}
        #: (client_id, request_id) -> seq for requests still in flight
        self._inflight_requests: Dict[Tuple[str, int], int] = {}
        #: writes parked while the cluster is degraded (policy "queue")
        self._degraded_queue: Deque[_PendingWrite] = deque()
        # circuit breaker: consecutive exhausted retransmission ladders
        # open it; a success (or a view change) closes it again
        self._consecutive_failures = 0
        self._degraded_until: Optional[float] = None
        self._backpressure_event: Optional[Event] = None
        #: breaker-transition listeners (the serving layer's admission
        #: controller registers here for queue-and-readmit)
        self._degradation_listeners: List[Callable[["ChainCluster", bool], None]] = []
        # metrics
        self.write_latencies_ns: List[float] = []
        self.read_latencies_ns: List[float] = []
        self.aborted = 0
        self.committed = 0
        self.dependent_queued = 0
        self.retransmissions = 0
        self.timed_out = 0
        self.degraded_rejections = 0
        self.degraded_readmissions = 0
        self.duplicate_requests = 0
        self.backpressure_stalls = 0

    # -- topology ------------------------------------------------------------

    @property
    def view_id(self) -> int:
        """Current view, owned by the membership manager."""
        return self.membership.view_id

    @property
    def head(self) -> ReplicaNode:
        return self.chain[0]

    @property
    def tail(self) -> ReplicaNode:
        return self.chain[-1]

    def successor(self, node: ReplicaNode) -> Optional[ReplicaNode]:
        idx = self.chain.index(node)
        return self.chain[idx + 1] if idx + 1 < len(self.chain) else None

    def predecessor(self, node: ReplicaNode) -> Optional[ReplicaNode]:
        idx = self.chain.index(node)
        return self.chain[idx - 1] if idx > 0 else None

    @property
    def total_storage_bytes(self) -> int:
        """Cluster-wide provisioned NVM (Table 1's storage column)."""
        return sum(node.storage_bytes for node in self.chain)

    # -- degradation ----------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while the cluster cannot responsibly accept writes:
        either the chain is below its write quorum, or the circuit
        breaker is open after repeated end-to-end delivery failures."""
        if len(self.chain) < self.write_quorum:
            return True
        if self._degraded_until is not None and self.sim.now < self._degraded_until:
            return True
        return False

    def _note_write_failure(self) -> None:
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.degrade_after:
            # open the breaker: reject fast for a cooldown window rather
            # than burning a full retransmission ladder per write
            was_open = self._degraded_until is not None
            self._degraded_until = self.sim.now + self.degraded_cooldown_ns
            if not was_open:
                self._notify_degradation(True)

    def _note_write_success(self) -> None:
        self._consecutive_failures = 0
        if self._degraded_until is not None:
            self._degraded_until = None
            self._notify_degradation(False)
        self._readmit_degraded_queue()

    def _readmit_degraded_queue(self) -> None:
        if self._degraded_queue and not self.degraded:
            parked = list(self._degraded_queue)
            self._degraded_queue.clear()
            for op in parked:
                self.degraded_readmissions += 1
                self._try_admit(op)

    def retry_after_ns(self) -> Optional[float]:
        """Admission-control hint: how long until this group can be
        expected to accept writes again.  ``None`` when healthy; the
        breaker's remaining cooldown when it is open; one full cooldown
        when below write quorum (repair has no fixed deadline, so the
        cooldown doubles as the client's poll interval)."""
        if self._degraded_until is not None and self.sim.now < self._degraded_until:
            return self._degraded_until - self.sim.now
        if len(self.chain) < self.write_quorum:
            return self.degraded_cooldown_ns
        return None

    def trip_breaker(self, cooldown_ns: Optional[float] = None) -> None:
        """Force the circuit breaker open for one cooldown window, as if
        ``degrade_after`` ladders had just been exhausted — the nemesis
        verb behind the overload scenarios and an operator's manual
        drain switch."""
        was_open = self.degraded
        self._consecutive_failures = self.degrade_after
        self._degraded_until = self.sim.now + (
            cooldown_ns if cooldown_ns is not None else self.degraded_cooldown_ns
        )
        if not was_open:
            self._notify_degradation(True)

    def close_breaker(self) -> None:
        """Force the breaker shut and readmit anything parked on it."""
        self._note_write_success()

    def add_degradation_listener(
        self, listener: Callable[["ChainCluster", bool], None]
    ) -> None:
        """Register ``listener(group, degraded)`` to fire on breaker
        transitions — the serving layer's queue-and-readmit path hangs
        off this instead of polling."""
        self._degradation_listeners.append(listener)

    def _notify_degradation(self, degraded: bool) -> None:
        for listener in self._degradation_listeners:
            listener(self, degraded)

    # -- routing --------------------------------------------------------------------

    #: single-chain deployments have no shard map; clients that cache a
    #: map version see ``None`` and skip version checks entirely
    map_version: Optional[int] = None

    def route(self, key: Any, map_version: Optional[int] = None) -> "ChainCluster":
        """Per-key submission target.  A plain chain owns every key, so
        routing is the identity; the sharded cluster overrides this with
        consistent-hash placement and stale-map redirects."""
        return self

    # -- client API -----------------------------------------------------------------

    def submit_write(
        self,
        proc: str,
        args: Tuple[Any, ...],
        keys: Sequence[Any],
        callback: Optional[Callable[[Any, float], None]] = None,
        client_id: Optional[str] = None,
        request_id: Optional[int] = None,
    ) -> None:
        """Submit a write transaction at the head.

        ``keys`` is the transaction's object footprint, used for the
        head's admission control of dependent transactions.  The
        callback receives (result, latency_ns) at chain-wide commit; on
        rejection or timeout ``result`` is a typed
        :class:`~repro.errors.ReplicationError` instance
        (:class:`~repro.errors.ClusterDegraded` /
        :class:`~repro.errors.RequestTimeoutError`), surfaced exactly
        once per submission.

        ``(client_id, request_id)`` makes the submission idempotent: a
        retransmitted request whose original is still in flight is
        absorbed (the original's completion answers both), and one whose
        original already completed is answered from the dedup table
        without re-executing.
        """
        op = _PendingWrite(
            proc, args, keys, callback, self.sim.now,
            client_id=client_id, request_id=request_id,
        )
        if client_id is not None and request_id is not None:
            done = self._completed_requests.get(client_id)
            if done is not None and done[0] == request_id:
                # duplicate of a completed request: replay the reply
                self.duplicate_requests += 1
                self._reply(op, done[1])
                return
            if (client_id, request_id) in self._inflight_requests:
                # duplicate of an in-flight request: drop; the original's
                # completion resolves the client's state
                self.duplicate_requests += 1
                return
            self._inflight_requests[(client_id, request_id)] = -1
        if self.degraded:
            if self.degraded_policy == "queue":
                self._degraded_queue.append(op)
            else:
                self.degraded_rejections += 1
                self._reply(op, ClusterDegraded(
                    f"chain has {len(self.chain)} replica(s), write quorum is "
                    f"{self.write_quorum}" if len(self.chain) < self.write_quorum
                    else "circuit breaker open after repeated delivery failures"
                ))
            return
        self._try_admit(op)

    def _reply(self, op: _PendingWrite, result: Any) -> None:
        """Complete one submission exactly once: record it in the dedup
        table, free the in-flight slot, and up-call the client."""
        if op.client_id is not None and op.request_id is not None:
            self._inflight_requests.pop((op.client_id, op.request_id), None)
            # unknown outcomes (timeouts) are NOT recorded as completed:
            # a client retry must re-execute, which idempotence makes safe
            if not isinstance(result, RequestTimeoutError):
                self._completed_requests[op.client_id] = (op.request_id, result)
        if op.callback is not None:
            op.callback(result, self.sim.now - op.submitted_at)

    def _read_target(self) -> Optional[ReplicaNode]:
        """The deepest live replica: normally the tail; with the tail
        unreachable, reads degrade to the longest consistent prefix
        (every replica's state is a prefix of its predecessor's)."""
        for node in reversed(self.chain):
            if not self.net.is_down(node.node_id):
                return node
        return None

    def submit_read(
        self, proc: str, args: Tuple[Any, ...],
        callback: Optional[Callable[[Any, float], None]] = None,
    ) -> None:
        """Linearizable read at the tail (one hop there, one back)."""
        submitted = self.sim.now
        tail = self._read_target()
        if tail is None:
            if callback is not None:
                callback(ClusterDegraded("no live replica to serve reads"), 0.0)
            return

        def deliver() -> None:
            result, cost = tail.execute(proc, args)
            done = self._servers[tail.node_id].request(self.sim.now, cost)

            def reply() -> None:
                latency = self.sim.now - submitted
                self.read_latencies_ns.append(latency)
                if callback is not None:
                    callback(result, latency)

            self.sim.at(done + self.net.hop_latency_ns, reply)

        self.sim.schedule(self.net.hop_latency_ns, deliver)

    # -- head: admission + execution ---------------------------------------------------

    def _try_admit(self, op: _PendingWrite) -> None:
        if any(k in self._busy_keys for k in op.keys):
            self.dependent_queued += 1
            self._admission_queue.append(op)
            return
        head = self.head
        if getattr(head.engine, "pending_count", 0) >= self.max_backup_lag:
            # back-pressure: the head's backup-sync backlog is at its
            # bound; stall admission and drain before taking new work,
            # so a slow tail cannot grow the lag without limit
            self.backpressure_stalls += 1
            self._admission_queue.append(op)
            if self._backpressure_event is None:
                self._backpressure_event = self.sim.schedule(
                    0.0, self._relieve_backpressure
                )
            return
        seq = self._next_seq
        self._next_seq += 1
        op.seq = seq
        if op.client_id is not None and op.request_id is not None:
            self._inflight_requests[(op.client_id, op.request_id)] = seq
        for k in op.keys:
            self._busy_keys[k] = seq
        self._execute_at_head(op)

    def _relieve_backpressure(self) -> None:
        self._backpressure_event = None
        head = self.head
        cost = head.sync_backup(limit=max(1, self.max_backup_lag // 2))
        done = self._servers[head.node_id].request(self.sim.now, cost)
        self.sim.at(done, self._drain_admission_queue)

    def _execute_at_head(self, op: _PendingWrite) -> None:
        head = self.head
        try:
            result, cost = head.execute(op.proc, op.args)
        except TxAborted:
            # aborts are resolved locally at the head (Figure 8, right):
            # the backup (or undo log) rolls the head back; nothing is
            # ever forwarded downstream.
            self.aborted += 1
            self._release_keys(op)
            self._reply(op, None)
            return
        self._inflight_writes[op.seq] = op
        op.result = result  # type: ignore[attr-defined]
        done = self._servers[head.node_id].request(self.sim.now, cost)
        msg = TxForward(self.view_id, op.seq, op.proc, op.args)
        successor = self.successor(head)
        head.inflight[op.seq] = (op.seq, msg)
        head.applied_ranges[op.seq] = head.last_write_set
        if successor is None:  # degenerate single-node chain (tests)
            self.sim.at(done, self._on_tail_ack, TailAck(self.view_id, op.seq))
        else:
            self.sim.at(done, self.net.send, head.node_id, successor.node_id, msg)
            self._arm_retransmit(op)

    # -- head: retransmission (timeouts + capped exponential backoff) ------------------

    def _arm_retransmit(self, op: _PendingWrite) -> None:
        if not self.retry.enabled or op.seq is None:
            return
        old = self._retx_events.pop(op.seq, None)
        if old is not None:
            old.cancel()
        self._retx_events[op.seq] = self.sim.schedule(
            self.retry.timeout_for(op.attempts), self._retransmit, op.seq
        )

    def _retransmit(self, seq: int) -> None:
        op = self._inflight_writes.get(seq)
        self._retx_events.pop(seq, None)
        if op is None or seq in self._tail_acked:
            return  # completed while the timer was in flight
        if op.attempts >= self.retry.max_retries:
            self._abandon(op)
            return
        op.attempts += 1
        self.retransmissions += 1
        head = self.head
        successor = self.successor(head)
        if successor is None:
            self._on_tail_ack(TailAck(self.view_id, seq))
            return
        # resend the whole un-cleaned window up to this seq, not just the
        # stalled forward: an earlier transaction (even an abandoned one)
        # may still be a sequence-gap blocker at some replica, and the
        # replicas' applied_seq filter makes the duplicates free
        for s in sorted(head.inflight):
            if s > seq:
                break
            _txid, m = head.inflight[s]
            self.net.send(
                head.node_id, successor.node_id,
                TxForward(self.view_id, m.seq, m.proc, m.args),
            )
        self._arm_retransmit(op)

    def _abandon(self, op: _PendingWrite) -> None:
        """Retransmission budget exhausted: the transaction's chain-wide
        outcome is unknown.  Release its keys, surface a typed timeout to
        the submitter (exactly once), and trip the circuit breaker.

        The head's protocol-window entry (``head.inflight``) is kept: the
        head *did* execute the transaction, so downstream replicas must
        still receive it eventually (later retransmissions resend it as
        part of the window) or they could never apply anything after it.
        """
        self.timed_out += 1
        self._inflight_writes.pop(op.seq, None)
        self._note_write_failure()
        self._release_keys(op)
        self._reply(op, RequestTimeoutError(
            f"seq={op.seq} saw no tail ack after {op.attempts} retransmissions"
        ))

    def _release_keys(self, op: _PendingWrite) -> None:
        for k in op.keys:
            if self._busy_keys.get(k) == op.seq or op.seq is None:
                self._busy_keys.pop(k, None)
        self._drain_admission_queue()

    def _drain_admission_queue(self) -> None:
        requeue = list(self._admission_queue)
        self._admission_queue.clear()
        for op in requeue:
            self._try_admit(op)

    # -- replica message handling -----------------------------------------------------------

    def _make_handler(self, node: ReplicaNode):
        def handler(src: str, msg: Any) -> None:
            if isinstance(msg, TxForward):
                self._on_forward(node, msg)
            elif isinstance(msg, TailAck):
                self._on_tail_ack(msg)
            elif isinstance(msg, CleanupAck):
                self._on_cleanup(node, msg)
        return handler

    def _on_forward(self, node: ReplicaNode, msg: TxForward) -> None:
        if msg.view_id < self.view_id:
            return  # stale view: reject (§5.3)
        if msg.seq > node.applied_seq + 1:
            # sequence gap: a crash consumed an earlier forward and this
            # one overtook its retransmission.  Applying it would commit
            # a state that is no prefix, so drop it — the upstream
            # retransmission window resends the run in order.
            return
        qcost = node.persist_to_input_queue(wire_size(msg))
        if msg.seq > node.applied_seq:
            _result, cost = node.execute(msg.proc, msg.args)
            node.applied_seq = msg.seq
            node.applied_ranges[msg.seq] = node.last_write_set
        else:
            cost = 0.0  # replayed during chain repair: already applied
        done = self._servers[node.node_id].request(self.sim.now, qcost + cost)
        successor = self.successor(node)
        if successor is not None:
            node.inflight[msg.seq] = (msg.seq, msg)
            self.sim.at(done, self.net.send, node.node_id, successor.node_id, msg)
        else:
            # tail: completion ack to the head, clean-up acks upstream;
            # the tail's own intent log is freed at its commit point
            release = getattr(node.engine, "release_oldest_committed", None)
            if release is not None:
                release()
            head = self.head
            self.sim.at(done, self.net.send, node.node_id, head.node_id,
                        TailAck(self.view_id, msg.seq))
            pred = self.predecessor(node)
            if pred is not None:
                self.sim.at(done, self.net.send, node.node_id, pred.node_id,
                            CleanupAck(self.view_id, msg.seq))

    def _on_tail_ack(self, msg: TailAck) -> None:
        if msg.view_id < self.view_id:
            return
        timer = self._retx_events.pop(msg.seq, None)
        if timer is not None:
            timer.cancel()
        op = self._inflight_writes.pop(msg.seq, None)
        if op is None:
            return  # duplicate ack, or the head already abandoned it
        self._tail_acked[msg.seq] = self.sim.now
        head = self.head
        # the final call to the client is a local up-call on the head
        # (§5.1) — it happens at the tail ack, not after the backup sync
        self.committed += 1
        self._note_write_success()
        head.inflight.pop(msg.seq, None)
        head.applied_ranges.pop(msg.seq, None)
        latency = self.sim.now - op.submitted_at
        self.write_latencies_ns.append(latency)
        self._reply(op, getattr(op, "result", None))
        if self.mode == KAMINO:
            # §5.1's two lock-release conditions: tail ack received AND
            # the head's backup has absorbed the transaction — dependent
            # transactions stay queued until then
            cost = head.sync_backup(limit=1)
            done = self._servers[head.node_id].request(self.sim.now, cost)
            self.sim.at(done, self._release_keys, op)
        else:
            self._release_keys(op)

    def _on_cleanup(self, node: ReplicaNode, msg: CleanupAck) -> None:
        if msg.view_id < self.view_id:
            return
        node.inflight.pop(msg.seq, None)
        node.applied_ranges.pop(msg.seq, None)
        release = getattr(node.engine, "release_oldest_committed", None)
        if release is not None:
            release()
        pred = self.predecessor(node)
        if pred is not None:
            self.net.send(node.node_id, pred.node_id, msg)

    # -- view installation --------------------------------------------------------------------

    def _install_view(self) -> None:
        """Propagate the membership's current view to every live replica
        (so a later quick reboot rejoins claiming the right view) and
        reset the head's degradation state — a repaired topology deserves
        a fresh chance before the circuit breaker re-opens."""
        for node in self.chain:
            node.view_id = self.view_id
        self._consecutive_failures = 0
        if self._degraded_until is not None:
            self._degraded_until = None
            self._notify_degradation(False)
        self._readmit_degraded_queue()

    # -- execution driver ---------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def drain(self) -> None:
        """Run the simulator dry and flush any head backup backlog."""
        self.sim.run()
        while self.head.engine.pending_count:
            self.head.engine.sync_pending()

    # -- verification ----------------------------------------------------------------------------

    def kv_states(self) -> List[Dict[int, bytes]]:
        """Every replica's logical KV contents (tests/verification)."""
        states = []
        for node in self.chain:
            state = {}
            for key, ptr in node.kv.tree.items():
                state[key] = node.heap.read_blob(ptr)
            states.append(state)
        return states

    def assert_replicas_consistent(self) -> None:
        states = self.kv_states()
        for i, state in enumerate(states[1:], start=1):
            if state != states[0]:
                diff = {
                    k
                    for k in set(state) | set(states[0])
                    if state.get(k) != states[0].get(k)
                }
                raise AssertionError(
                    f"replica {i} diverges from head on keys {sorted(diff)[:10]}"
                )
