"""The non-head replica engine: in-place updates, intent log, no backup.

§5's storage argument hinges on this: replicas other than the head
"modify the objects in place without creating any copies of data or
maintaining backup versions of data".  They still keep a Log Manager —
the intent logs identify the write sets of incomplete transactions after
a quick reboot, which the chain protocol then repairs by copying those
ranges from a neighbour (roll forward from the predecessor, or roll back
from the successor when acting as the new head).

Consequences, faithfully reproduced:

* local aborts are impossible (the head never forwards aborts, so this
  never happens in normal operation);
* commit durably marks the slot ``COMMITTED``; the slot is only freed
  when the chain's clean-up acknowledgment arrives;
* recovery cannot repair the heap alone — it *reports* the incomplete
  ranges for the chain recovery protocol (Figure 9) to fix.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from ..errors import TxError
from ..runtime.registry import EngineCapabilities, register_engine
from ..tx._common import LockingLogEngine
from ..tx.base import IntentKind, RecoveryReport, Transaction
from ..tx.intent_log import SlotState, TxLog


@register_engine(
    "intent-only",
    capabilities=EngineCapabilities(
        description="chain replica: in-place updates + intent log; repair needs a neighbour",
        copies_in_critical_path=False,
        recoverable=False,
        needs_chain_repair=True,
        cost_profile="kamino",
    ),
)
class IntentOnlyEngine(LockingLogEngine):
    """In-place updates guarded only by a persistent intent log."""

    name = "intent-only"
    copies_in_critical_path = False
    uses_log = True
    log_data_bytes = 0

    def __init__(self, n_slots: int = 128, max_entries: int = 256, lock_timeout: float = 10.0):
        super().__init__(n_slots, max_entries, lock_timeout)
        #: committed transactions whose chain clean-up has not arrived
        self._awaiting_cleanup: Dict[int, TxLog] = {}
        self._cleanup_order: Deque[int] = deque()
        #: write ranges of transactions that were in flight at the crash
        self.incomplete_ranges: List[Tuple[int, int]] = []

    # -- intents ---------------------------------------------------------------

    def on_add(self, tx: Transaction, offset: int, size: int, kind: IntentKind) -> None:
        self._record_intent(tx, offset, size, kind, 0)

    # -- outcomes -----------------------------------------------------------------

    def commit(self, tx: Transaction) -> None:
        log = self._txlog(tx)
        self._apply_deferred_frees(tx)
        log.make_durable()
        self._flush_modified_ranges(tx)
        log.set_state(SlotState.COMMITTED)
        if tx.intents:
            # the slot outlives the transaction until the clean-up ack
            self._awaiting_cleanup[tx.txid] = log
            self._cleanup_order.append(tx.txid)
        else:
            # read-only transaction: nothing for the chain to clean up
            log.release()
        self._release_all(tx)

    def abort(self, tx: Transaction) -> None:
        raise TxError(
            "a chain replica without a backup cannot roll back locally; "
            "aborts are decided at the head and never forwarded"
        )

    def release_committed(self, txid: int) -> None:
        """Clean-up ack for the transaction arrived: drop its intent log."""
        log = self._awaiting_cleanup.pop(txid, None)
        if log is not None:
            try:
                self._cleanup_order.remove(txid)
            except ValueError:
                pass
            log.release()

    def release_all_committed(self) -> None:
        """Drop every awaiting slot — used for setup-time transactions
        committed before the replica enters the chain protocol."""
        while self._cleanup_order:
            self.release_committed(self._cleanup_order[0])

    def release_oldest_committed(self) -> None:
        """Clean-up acks arrive in commit order (FIFO links); drop the
        oldest awaiting slot.  The tail calls this for itself at commit
        time — it originates the clean-up acks and receives none."""
        if self._cleanup_order:
            self.release_committed(self._cleanup_order[0])

    @property
    def cleanup_backlog(self) -> int:
        return len(self._awaiting_cleanup)

    # -- recovery --------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Classify surviving slots; repair is the chain's job.

        ``COMMITTED`` slots are locally complete (their data was flushed
        before the commit record) and are freed.  ``RUNNING`` slots are
        incomplete: their write ranges are published via
        ``incomplete_ranges`` so the node can roll them forward/back from
        a neighbour, after which :meth:`ack_repaired` frees the slots.
        """
        report = RecoveryReport()
        self.incomplete_ranges = []
        self._repair_slots: List[int] = []
        for rec in self.log.scan():
            if rec.state is SlotState.COMMITTED:
                self.log.free_slot_by_index(rec.index)
                report.rolled_forward += 1
                continue
            for entry in rec.entries:
                if entry.kind is not IntentKind.FREE:
                    self.incomplete_ranges.append((entry.offset, entry.size))
            self._repair_slots.append(rec.index)
            report.incomplete += 1
        return report

    def ack_repaired(self) -> None:
        """The chain repaired every incomplete range: free their slots."""
        for index in getattr(self, "_repair_slots", []):
            self.log.free_slot_by_index(index)
        self._repair_slots = []
        self.incomplete_ranges = []
