"""One chain replica: a full NVM stack plus the chain-protocol state.

Every replica owns its own simulated device, pool, heap, and KV store —
the replicated system really is N independent persistent stores kept
consistent by the protocol, exactly like the paper's deployment.  The
node measures the simulated NVM cost of everything it executes so the
chain harness can schedule message forwarding at realistic times (the
``lt``/``lc`` terms of Table 1).
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..heap import PersistentHeap
from ..kvstore import KVStore
from ..kvstore.ring import PersistentRing
from ..nvm.backend import make_device
from ..nvm.device import CrashPolicy, NVMDevice
from ..nvm.latency import NVDIMM, LatencyModel
from ..nvm.pool import PmemPool
from ..sim.resources import cost_model_for
from ..tx import UndoLogEngine, kamino_dynamic, kamino_simple
from ..tx.base import IntentKind
from .inplace_engine import IntentOnlyEngine

INPUT_QUEUE_REGION = "input_queue"

#: roles a replica can play
ROLE_HEAD = "head"
ROLE_MID = "mid"
ROLE_TAIL = "tail"


def engine_for(mode: str, role: str, alpha: float = 1.0):
    """The engine a replica runs, by deployment mode and chain role.

    * traditional — undo logging everywhere (copies in the critical path
      at every replica);
    * kamino — the head runs Kamino-Tx (full backup when α=1, dynamic
      otherwise); every other replica updates in place with only an
      intent log (no local copies at all).
    """
    if mode == "traditional":
        return UndoLogEngine(n_slots=128)
    if mode == "kamino":
        if role == ROLE_HEAD:
            if alpha >= 1.0:
                return kamino_simple(n_slots=128)
            return kamino_dynamic(alpha=alpha, n_slots=128)
        return IntentOnlyEngine()
    raise ValueError(f"unknown chain mode '{mode}'")


class ReplicaNode:
    """A chain replica's local state machine (transport-agnostic)."""

    def __init__(
        self,
        node_id: str,
        mode: str,
        role: str,
        heap_mb: int = 8,
        value_size: int = 128,
        alpha: float = 1.0,
        model: LatencyModel = NVDIMM,
        seed: int = 0,
    ):
        self.node_id = node_id
        self.mode = mode
        self.role = role
        self.alpha = alpha
        self.model = model
        heap_bytes = heap_mb << 20
        pool_bytes = heap_bytes * 3 + (16 << 20)
        self.device = make_device(pool_bytes, model=model, seed=seed)
        pool = PmemPool.create(self.device)
        self.engine = engine_for(mode, role, alpha)
        self.heap = PersistentHeap.create(pool, self.engine, heap_size=heap_bytes)
        # a persistent ring for the input queue of forwarded calls (§5.1:
        # "replicas buffer such calls in an input queue in non-volatile
        # memory before the receipt is acknowledged upstream")
        self.queue_region = pool.create_region(INPUT_QUEUE_REGION, 1 << 20)
        self.input_queue = PersistentRing.create(self.queue_region)
        self.kv = KVStore.create(self.heap, value_size=value_size)
        # setup transactions precede the protocol: no cleanup acks coming
        release_setup = getattr(self.engine, "release_all_committed", None)
        if release_setup is not None:
            release_setup()
        self.procs: Dict[str, Callable] = {}
        self._register_builtin_procs()
        # protocol state
        self.view_id = 0
        self.applied_seq = 0
        #: seq -> (txid, TxForward) awaiting downstream clean-up
        self.inflight: Dict[int, Tuple[int, Any]] = {}
        #: seq -> byte ranges the transaction wrote, kept while the seq
        #: is in flight so a rebooting successor can repair by copying
        #: the write-set instead of re-executing (see _replay_missed)
        self.applied_ranges: Dict[int, List[Tuple[int, int]]] = {}
        #: write-set of the most recent execute() (volatile scratch)
        self.last_write_set: List[Tuple[int, int]] = []

    # -- procedures -------------------------------------------------------------

    def _register_builtin_procs(self) -> None:
        self.register_proc("put", lambda kv, key, value: kv.put(key, value))
        self.register_proc("delete", lambda kv, key: kv.delete(key))
        self.register_proc("get", lambda kv, key: kv.get(key))
        self.register_proc(
            "rmw_const", lambda kv, key, value: kv.read_modify_write(key, lambda _o: value)
        )
        self.register_proc("scan", lambda kv, key, limit: kv.scan(key, limit))

    def register_proc(self, name: str, fn: Callable) -> None:
        """Procedures must be deterministic and idempotent — the chain
        may re-execute them during repair."""
        self.procs[name] = fn

    # -- execution with cost measurement ----------------------------------------------

    def persist_to_input_queue(self, payload_bytes: int) -> float:
        """Durably buffer an incoming call; returns the simulated cost.

        The queue is a crash-consistent :class:`PersistentRing`; records
        are drained once the transaction has been executed and forwarded
        (they exist to survive the window in between).
        """
        s0 = self.device.stats.snapshot()
        payload = struct.pack("<I", payload_bytes) + b"\x5a" * min(payload_bytes, 248)
        if self.input_queue.free_bytes < 2 * (len(payload) + 16):
            self.input_queue.drain()
        self.input_queue.append(payload)
        return self.device.stats.delta(s0).simulated_ns(self.model)

    def execute(self, proc: str, args: Tuple[Any, ...]) -> Tuple[Any, float]:
        """Run a named procedure locally; returns (result, cost_ns).

        The cost is the simulated NVM time of the local transaction —
        the ``lt`` (+ ``lc`` for copying schemes) term of Table 1 — plus
        the scheme's log-management software overhead (allocating,
        indexing and freeing log entries; see
        :mod:`repro.sim.resources`), which the paper identifies as most
        of undo-logging's cost.
        """
        fn = self.procs[proc]
        captured = {"intents": 0, "ranges": []}

        def hook(tx):
            captured["intents"] = len(tx.intents)
            # the committed byte-level write-set (FREE'd blocks excluded:
            # their contents are dead, and the bitmap clears have their
            # own WRITE intents) — neighbours copy these during repair
            captured["ranges"] = [
                (off, size)
                for off, size, kind in tx.intents
                if kind is not IntentKind.FREE
            ]

        self.engine.trace_hook = hook
        s0 = self.device.stats.snapshot()
        try:
            result = fn(self.kv, *args)
        finally:
            self.engine.trace_hook = None
        self.last_write_set = captured["ranges"]
        delta = self.device.stats.delta(s0)
        cost = delta.simulated_ns(self.model)
        cm = cost_model_for(self.engine.name)
        # fixed per-intent software cost only: the log copy's device time
        # is already inside the measured delta
        cost += cm.serial_ns_per_intent * captured["intents"]
        return result, cost

    def sync_backup(self, limit: Optional[int] = 1) -> float:
        """Head only: drain one committed tx's backup sync; returns cost."""
        s0 = self.device.stats.snapshot()
        self.engine.sync_pending(limit=limit)
        return self.device.stats.delta(s0).simulated_ns(self.model)

    # -- failure & repair support ----------------------------------------------------------

    def crash(self, policy: CrashPolicy = CrashPolicy.DROP_ALL, survival: float = 0.5) -> None:
        self.device.crash(policy, survival)

    def reopen(self) -> None:
        """Local restart: fresh engine + heap on the surviving bytes."""
        self.device.restart()
        pool = PmemPool.open(self.device)
        self.engine = engine_for(self.mode, self.role, self.alpha)
        self.heap = PersistentHeap.open(pool, self.engine)
        self.queue_region = pool.region(INPUT_QUEUE_REGION)
        self.input_queue = PersistentRing.open(self.queue_region)
        self.kv = KVStore.open(self.heap)
        self.inflight = {}
        self.applied_ranges = {}

    def read_heap_bytes(self, offset: int, size: int) -> bytes:
        """State-transfer read used by neighbours during repair."""
        return self.heap.region.read(offset, size)

    def write_heap_bytes(self, offset: int, data: bytes) -> None:
        """Apply repair bytes received from a neighbour, durably."""
        self.heap.region.write(offset, data)
        self.heap.region.flush(offset, len(data))
        self.device.fence()

    def heap_image(self) -> bytes:
        """Full heap snapshot for new-replica state transfer."""
        return self.heap.region.read(0, self.heap.region.size)

    def load_heap_image(self, image: bytes) -> None:
        self.heap.region.write(0, image)
        self.heap.region.flush(0, len(image))
        self.device.fence()
        self.heap.allocator.open()

    @property
    def storage_bytes(self) -> int:
        """Provisioned NVM, for Table 1's storage-requirement check."""
        total = self.heap.region.size
        backup = getattr(self.engine, "backup", None)
        if backup is not None:
            total += backup.storage_bytes
        return total
